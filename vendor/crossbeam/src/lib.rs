//! Offline stand-in for the `crossbeam` crate.
//!
//! Implements the API subset the workspace uses — `deque::{Worker, Stealer,
//! Injector, Steal}` and `channel::{bounded, Sender, Receiver}` — on plain
//! `std::sync` primitives. Lock-based rather than lock-free, so it is slower
//! under contention but observationally equivalent: FIFO worker deques,
//! batch-stealing that migrates work, and bounded channels that close when
//! the last peer drops.

pub mod deque {
    use std::collections::VecDeque;
    use std::sync::{Arc, Mutex};

    fn locked<T>(q: &Mutex<VecDeque<T>>) -> std::sync::MutexGuard<'_, VecDeque<T>> {
        q.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Outcome of a steal attempt. This stub never yields `Retry`, but the
    /// variant exists because callers match on it.
    pub enum Steal<T> {
        Empty,
        Success(T),
        Retry,
    }

    impl<T> Steal<T> {
        pub fn is_empty(&self) -> bool {
            matches!(self, Steal::Empty)
        }

        pub fn success(self) -> Option<T> {
            match self {
                Steal::Success(v) => Some(v),
                _ => None,
            }
        }
    }

    /// A worker's local FIFO queue.
    pub struct Worker<T> {
        queue: Arc<Mutex<VecDeque<T>>>,
    }

    impl<T> Worker<T> {
        pub fn new_fifo() -> Worker<T> {
            Worker {
                queue: Arc::new(Mutex::new(VecDeque::new())),
            }
        }

        pub fn push(&self, value: T) {
            locked(&self.queue).push_back(value);
        }

        pub fn pop(&self) -> Option<T> {
            locked(&self.queue).pop_front()
        }

        pub fn is_empty(&self) -> bool {
            locked(&self.queue).is_empty()
        }

        pub fn len(&self) -> usize {
            locked(&self.queue).len()
        }

        pub fn stealer(&self) -> Stealer<T> {
            Stealer {
                queue: Arc::clone(&self.queue),
            }
        }
    }

    /// Handle for stealing from another worker's queue.
    pub struct Stealer<T> {
        queue: Arc<Mutex<VecDeque<T>>>,
    }

    impl<T> Clone for Stealer<T> {
        fn clone(&self) -> Stealer<T> {
            Stealer {
                queue: Arc::clone(&self.queue),
            }
        }
    }

    impl<T> Stealer<T> {
        pub fn steal(&self) -> Steal<T> {
            match locked(&self.queue).pop_front() {
                Some(v) => Steal::Success(v),
                None => Steal::Empty,
            }
        }

        pub fn is_empty(&self) -> bool {
            locked(&self.queue).is_empty()
        }
    }

    /// A shared FIFO injector queue.
    pub struct Injector<T> {
        queue: Mutex<VecDeque<T>>,
    }

    impl<T> Default for Injector<T> {
        fn default() -> Injector<T> {
            Injector::new()
        }
    }

    impl<T> Injector<T> {
        pub fn new() -> Injector<T> {
            Injector {
                queue: Mutex::new(VecDeque::new()),
            }
        }

        pub fn push(&self, value: T) {
            locked(&self.queue).push_back(value);
        }

        pub fn steal(&self) -> Steal<T> {
            match locked(&self.queue).pop_front() {
                Some(v) => Steal::Success(v),
                None => Steal::Empty,
            }
        }

        /// Move up to half of the queue (at least one item) into `dest`,
        /// returning one stolen item directly.
        pub fn steal_batch_and_pop(&self, dest: &Worker<T>) -> Steal<T> {
            let mut q = locked(&self.queue);
            let first = match q.pop_front() {
                Some(v) => v,
                None => return Steal::Empty,
            };
            let extra = q.len() / 2;
            for _ in 0..extra {
                match q.pop_front() {
                    Some(v) => dest.push(v),
                    None => break,
                }
            }
            Steal::Success(first)
        }

        pub fn is_empty(&self) -> bool {
            locked(&self.queue).is_empty()
        }

        pub fn len(&self) -> usize {
            locked(&self.queue).len()
        }
    }

    impl<T> Stealer<T> {
        /// Same batch semantics as [`Injector::steal_batch_and_pop`].
        pub fn steal_batch_and_pop(&self, dest: &Worker<T>) -> Steal<T> {
            let mut q = locked(&self.queue);
            let first = match q.pop_front() {
                Some(v) => v,
                None => return Steal::Empty,
            };
            let extra = q.len() / 2;
            for _ in 0..extra {
                match q.pop_front() {
                    Some(v) => dest.push(v),
                    None => break,
                }
            }
            Steal::Success(first)
        }
    }
}

pub mod channel {
    use std::collections::VecDeque;
    use std::sync::{Arc, Condvar, Mutex};

    struct Chan<T> {
        state: Mutex<ChanState<T>>,
        /// Signalled when an item arrives or all senders disconnect.
        recv_cv: Condvar,
        /// Signalled when space frees up or the receiver side disconnects.
        send_cv: Condvar,
    }

    struct ChanState<T> {
        queue: VecDeque<T>,
        capacity: usize,
        senders: usize,
        receivers: usize,
    }

    /// Error returned by [`Sender::send`] when every receiver is gone; the
    /// unsent value is handed back.
    pub struct SendError<T>(pub T);

    impl<T> std::fmt::Debug for SendError<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str("SendError(..)")
        }
    }

    /// Error returned by [`Receiver::recv`] when the channel is empty and
    /// every sender is gone.
    #[derive(Debug, PartialEq, Eq)]
    pub struct RecvError;

    /// Error returned by [`Receiver::try_recv`].
    #[derive(Debug, PartialEq, Eq)]
    pub enum TryRecvError {
        /// The channel is currently empty but senders remain.
        Empty,
        /// The channel is empty and every sender is gone.
        Disconnected,
    }

    /// Error returned by [`Receiver::recv_timeout`].
    #[derive(Debug, PartialEq, Eq)]
    pub enum RecvTimeoutError {
        /// The deadline passed with the channel still empty.
        Timeout,
        /// The channel is empty and every sender is gone.
        Disconnected,
    }

    impl TryRecvError {
        pub fn is_empty(&self) -> bool {
            matches!(self, TryRecvError::Empty)
        }

        pub fn is_disconnected(&self) -> bool {
            matches!(self, TryRecvError::Disconnected)
        }
    }

    /// Create a bounded MPMC channel with the given capacity.
    pub fn bounded<T>(capacity: usize) -> (Sender<T>, Receiver<T>) {
        let chan = Arc::new(Chan {
            state: Mutex::new(ChanState {
                queue: VecDeque::new(),
                // A rendezvous channel (capacity 0) degenerates to
                // capacity 1 in this stub; callers here never use 0.
                capacity: capacity.max(1),
                senders: 1,
                receivers: 1,
            }),
            recv_cv: Condvar::new(),
            send_cv: Condvar::new(),
        });
        (
            Sender {
                chan: Arc::clone(&chan),
            },
            Receiver { chan },
        )
    }

    pub struct Sender<T> {
        chan: Arc<Chan<T>>,
    }

    impl<T> Sender<T> {
        /// Block until there is space, then enqueue. Fails only when every
        /// receiver has been dropped.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            let mut st = self.chan.state.lock().unwrap_or_else(|e| e.into_inner());
            loop {
                if st.receivers == 0 {
                    return Err(SendError(value));
                }
                if st.queue.len() < st.capacity {
                    st.queue.push_back(value);
                    self.chan.recv_cv.notify_one();
                    return Ok(());
                }
                st = self
                    .chan
                    .send_cv
                    .wait(st)
                    .unwrap_or_else(|e| e.into_inner());
            }
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Sender<T> {
            let mut st = self.chan.state.lock().unwrap_or_else(|e| e.into_inner());
            st.senders += 1;
            drop(st);
            Sender {
                chan: Arc::clone(&self.chan),
            }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            let mut st = self.chan.state.lock().unwrap_or_else(|e| e.into_inner());
            st.senders -= 1;
            if st.senders == 0 {
                self.chan.recv_cv.notify_all();
            }
        }
    }

    pub struct Receiver<T> {
        chan: Arc<Chan<T>>,
    }

    impl<T> Receiver<T> {
        /// Block for the next item; errs once the channel is drained and
        /// every sender is gone.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut st = self.chan.state.lock().unwrap_or_else(|e| e.into_inner());
            loop {
                if let Some(v) = st.queue.pop_front() {
                    self.chan.send_cv.notify_one();
                    return Ok(v);
                }
                if st.senders == 0 {
                    return Err(RecvError);
                }
                st = self
                    .chan
                    .recv_cv
                    .wait(st)
                    .unwrap_or_else(|e| e.into_inner());
            }
        }

        /// Block for the next item up to `timeout`; reports `Timeout` if the
        /// deadline passes first, `Disconnected` once the channel is drained
        /// and every sender is gone.
        pub fn recv_timeout(&self, timeout: std::time::Duration) -> Result<T, RecvTimeoutError> {
            let deadline = std::time::Instant::now() + timeout;
            let mut st = self.chan.state.lock().unwrap_or_else(|e| e.into_inner());
            loop {
                if let Some(v) = st.queue.pop_front() {
                    self.chan.send_cv.notify_one();
                    return Ok(v);
                }
                if st.senders == 0 {
                    return Err(RecvTimeoutError::Disconnected);
                }
                let now = std::time::Instant::now();
                let Some(left) = deadline
                    .checked_duration_since(now)
                    .filter(|d| !d.is_zero())
                else {
                    return Err(RecvTimeoutError::Timeout);
                };
                let (guard, _timed_out) = self
                    .chan
                    .recv_cv
                    .wait_timeout(st, left)
                    .unwrap_or_else(|e| e.into_inner());
                st = guard;
            }
        }

        /// Non-blocking receive: pop an item if one is ready, otherwise
        /// report `Empty` (senders remain) or `Disconnected` (channel dead).
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let mut st = self.chan.state.lock().unwrap_or_else(|e| e.into_inner());
            if let Some(v) = st.queue.pop_front() {
                self.chan.send_cv.notify_one();
                return Ok(v);
            }
            if st.senders == 0 {
                Err(TryRecvError::Disconnected)
            } else {
                Err(TryRecvError::Empty)
            }
        }

        /// Blocking iterator that ends when the channel closes.
        pub fn iter(&self) -> Iter<'_, T> {
            Iter { receiver: self }
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Receiver<T> {
            let mut st = self.chan.state.lock().unwrap_or_else(|e| e.into_inner());
            st.receivers += 1;
            drop(st);
            Receiver {
                chan: Arc::clone(&self.chan),
            }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            let mut st = self.chan.state.lock().unwrap_or_else(|e| e.into_inner());
            st.receivers -= 1;
            if st.receivers == 0 {
                self.chan.send_cv.notify_all();
            }
        }
    }

    pub struct Iter<'a, T> {
        receiver: &'a Receiver<T>,
    }

    impl<T> Iterator for Iter<'_, T> {
        type Item = T;
        fn next(&mut self) -> Option<T> {
            self.receiver.recv().ok()
        }
    }

    impl<'a, T> IntoIterator for &'a Receiver<T> {
        type Item = T;
        type IntoIter = Iter<'a, T>;
        fn into_iter(self) -> Iter<'a, T> {
            self.iter()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::channel::bounded;
    use super::deque::{Injector, Steal, Worker};

    #[test]
    fn worker_fifo_order() {
        let w = Worker::new_fifo();
        w.push(1);
        w.push(2);
        assert_eq!(w.pop(), Some(1));
        let s = w.stealer();
        assert!(matches!(s.steal(), Steal::Success(2)));
        assert!(s.steal().is_empty());
    }

    #[test]
    fn injector_batch_steal_migrates_work() {
        let inj = Injector::new();
        for i in 0..6 {
            inj.push(i);
        }
        let local = Worker::new_fifo();
        match inj.steal_batch_and_pop(&local) {
            Steal::Success(v) => assert_eq!(v, 0),
            _ => panic!("expected a stolen item"),
        }
        assert!(!local.is_empty());
        assert!(local.len() + inj.len() == 5);
    }

    #[test]
    fn channel_closes_when_senders_drop() {
        let (tx, rx) = bounded::<u32>(2);
        let h = std::thread::spawn(move || {
            for i in 0..10 {
                tx.send(i).unwrap();
            }
        });
        let got: Vec<u32> = rx.iter().collect();
        h.join().unwrap();
        assert_eq!(got, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn send_fails_without_receiver() {
        let (tx, rx) = bounded::<u32>(1);
        drop(rx);
        assert!(tx.send(7).is_err());
    }

    #[test]
    fn recv_timeout_times_out_then_delivers() {
        use super::channel::RecvTimeoutError;
        let (tx, rx) = bounded::<u32>(2);
        assert_eq!(
            rx.recv_timeout(std::time::Duration::from_millis(5)),
            Err(RecvTimeoutError::Timeout)
        );
        tx.send(9).unwrap();
        assert_eq!(rx.recv_timeout(std::time::Duration::from_secs(1)), Ok(9));
        drop(tx);
        assert_eq!(
            rx.recv_timeout(std::time::Duration::from_millis(1)),
            Err(RecvTimeoutError::Disconnected)
        );
    }
}
