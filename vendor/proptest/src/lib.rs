//! Offline stand-in for the `proptest` crate.
//!
//! The registry is unreachable in this build environment, so the workspace
//! vendors the subset of proptest it uses: the `proptest!`/`prop_assert*`/
//! `prop_oneof!` macros, `Strategy` with `prop_map`/`prop_filter`/
//! `prop_recursive`, `any`, `Just`, range and regex-literal strategies, and
//! `collection::{vec, btree_set}`.
//!
//! Differences from real proptest, by design: generation is driven by a
//! fixed per-test seed (fully deterministic, no persisted failure files) and
//! failing cases are reported but not shrunk. Shrinking only affects how
//! readable a counterexample is, not whether one is found.

pub mod strategy;
pub mod test_runner;

pub mod collection {
    use crate::strategy::{SizeRange, Strategy, StrategyFn};
    use std::collections::BTreeSet;

    /// Strategy for vectors whose length is drawn from `size`.
    pub fn vec<S>(element: S, size: impl Into<SizeRange>) -> StrategyFn<Vec<S::Value>>
    where
        S: Strategy + 'static,
    {
        let size = size.into();
        StrategyFn::new(move |rng| {
            let n = size.pick(rng);
            (0..n).map(|_| element.new_value(rng)).collect()
        })
    }

    /// Strategy for ordered sets; sizes are best-effort since duplicate
    /// draws collapse.
    pub fn btree_set<S>(element: S, size: impl Into<SizeRange>) -> StrategyFn<BTreeSet<S::Value>>
    where
        S: Strategy + 'static,
        S::Value: Ord,
    {
        let size = size.into();
        StrategyFn::new(move |rng| {
            let want = size.pick(rng);
            let mut out = BTreeSet::new();
            // Bounded attempts: a narrow domain may not hold `want`
            // distinct values.
            for _ in 0..want.saturating_mul(8).max(8) {
                if out.len() >= want {
                    break;
                }
                out.insert(element.new_value(rng));
            }
            out
        })
    }
}

pub mod prelude {
    pub use crate::strategy::{any, Just, Strategy, StrategyFn};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Uniform choice between strategies, all yielding the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::strategy::union(vec![
            $( $crate::strategy::Strategy::boxed($strategy) ),+
        ])
    };
}

/// Property-test entry point: wraps each `fn name(arg in strategy, ...)`
/// item in a deterministic generate-and-run loop.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($config) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { ($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    ( ($config:expr) ) => {};
    ( ($config:expr)
      $(#[$meta:meta])*
      fn $name:ident ( $($arg:ident in $strategy:expr),+ $(,)? ) $body:block
      $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config = $config;
            let mut rng = $crate::test_runner::TestRng::from_name(stringify!($name));
            for case in 0..config.cases {
                $(
                    let $arg =
                        $crate::strategy::Strategy::new_value(&($strategy), &mut rng);
                )+
                let outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                    (|| {
                        $body
                        ::std::result::Result::Ok(())
                    })();
                if let ::std::result::Result::Err(e) = outcome {
                    panic!(
                        "proptest {} failed at case {}/{}: {}",
                        stringify!($name),
                        case + 1,
                        config.cases,
                        e
                    );
                }
            }
        }
        $crate::__proptest_items! { ($config) $($rest)* }
    };
}

/// Assert inside a `proptest!` body; failure aborts the case with a
/// [`test_runner::TestCaseError`] instead of unwinding.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)+)),
            );
        }
    };
}

/// Equality assert inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let left = $left;
        let right = $right;
        $crate::prop_assert!(
            left == right,
            "assertion failed: `{:?}` != `{:?}`",
            left,
            right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let left = $left;
        let right = $right;
        $crate::prop_assert!(left == right, $($fmt)+);
    }};
}

/// Inequality assert inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let left = $left;
        let right = $right;
        $crate::prop_assert!(
            left != right,
            "assertion failed: `{:?}` == `{:?}`",
            left,
            right
        );
    }};
}
