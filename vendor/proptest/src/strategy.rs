//! Strategies: composable deterministic value generators.
//!
//! The central type is [`StrategyFn`], a cheaply clonable boxed generator;
//! every combinator lowers to it. Primitive strategies exist for integer
//! ranges, `Just`, tuples of strategies, and string literals interpreted as
//! a small regex subset (character classes with ranges, escapes and `&&[^…]`
//! subtraction, plus `{m,n}` quantifiers) — the subset the workspace's
//! property tests rely on.

use crate::test_runner::TestRng;
use std::ops::{Range, RangeInclusive};
use std::rc::Rc;

/// A generator of values of some type.
pub trait Strategy {
    type Value;

    /// Produce one value. (Real proptest returns a shrinkable tree; this
    /// stub generates final values directly and does not shrink.)
    fn new_value(&self, rng: &mut TestRng) -> Self::Value;

    /// Type-erase into a [`StrategyFn`].
    fn boxed(self) -> StrategyFn<Self::Value>
    where
        Self: Sized + 'static,
    {
        StrategyFn::new(move |rng| self.new_value(rng))
    }

    /// Transform generated values.
    fn prop_map<U, F>(self, map: F) -> StrategyFn<U>
    where
        Self: Sized + 'static,
        F: Fn(Self::Value) -> U + 'static,
    {
        StrategyFn::new(move |rng| map(self.new_value(rng)))
    }

    /// Keep only values satisfying `pred`, regenerating otherwise.
    fn prop_filter<F>(self, whence: &'static str, pred: F) -> StrategyFn<Self::Value>
    where
        Self: Sized + 'static,
        F: Fn(&Self::Value) -> bool + 'static,
    {
        StrategyFn::new(move |rng| {
            for _ in 0..1000 {
                let v = self.new_value(rng);
                if pred(&v) {
                    return v;
                }
            }
            panic!("prop_filter rejected 1000 candidates in a row: {whence}");
        })
    }

    /// Build a recursive strategy: `self` is the leaf case and `recurse`
    /// lifts a strategy for depth-k values to depth-k+1. `depth` bounds
    /// nesting; the size/branch hints of real proptest are accepted but
    /// unused (container strategies bound their own lengths here).
    fn prop_recursive<S2, F>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch_size: u32,
        recurse: F,
    ) -> StrategyFn<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
        S2: Strategy<Value = Self::Value> + 'static,
        F: Fn(StrategyFn<Self::Value>) -> S2,
    {
        let leaf = self.boxed();
        let mut current = leaf.clone();
        for _ in 0..depth {
            let deeper = recurse(current).boxed();
            let leaf = leaf.clone();
            // One level up: usually recurse, sometimes bottom out early so
            // shallow values stay represented at every depth.
            current = StrategyFn::new(move |rng| {
                if rng.below(3) == 0 {
                    leaf.new_value(rng)
                } else {
                    deeper.new_value(rng)
                }
            });
        }
        current
    }
}

/// Type-erased strategy; clones share the generator.
pub struct StrategyFn<T> {
    generate: Rc<dyn Fn(&mut TestRng) -> T>,
}

impl<T> Clone for StrategyFn<T> {
    fn clone(&self) -> StrategyFn<T> {
        StrategyFn {
            generate: Rc::clone(&self.generate),
        }
    }
}

impl<T> StrategyFn<T> {
    pub fn new(generate: impl Fn(&mut TestRng) -> T + 'static) -> StrategyFn<T> {
        StrategyFn {
            generate: Rc::new(generate),
        }
    }
}

impl<T> Strategy for StrategyFn<T> {
    type Value = T;
    fn new_value(&self, rng: &mut TestRng) -> T {
        (self.generate)(rng)
    }
}

/// Uniform choice among already-boxed strategies (backs `prop_oneof!`).
pub fn union<T: 'static>(options: Vec<StrategyFn<T>>) -> StrategyFn<T> {
    assert!(!options.is_empty(), "prop_oneof! needs at least one option");
    StrategyFn::new(move |rng| {
        let k = rng.below(options.len() as u64) as usize;
        options[k].new_value(rng)
    })
}

/// Strategy that always yields a clone of one value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn new_value(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized {
    fn arbitrary(rng: &mut TestRng) -> Self;
}

/// The canonical strategy for `T`: uniform over the whole domain.
pub fn any<T: Arbitrary + 'static>() -> StrategyFn<T> {
    StrategyFn::new(T::arbitrary)
}

macro_rules! arbitrary_int {
    ($($ty:ty),*) => {$(
        impl Arbitrary for $ty {
            fn arbitrary(rng: &mut TestRng) -> $ty {
                rng.next_u64() as $ty
            }
        }

        impl Strategy for Range<$ty> {
            type Value = $ty;
            fn new_value(&self, rng: &mut TestRng) -> $ty {
                assert!(self.start < self.end, "empty range strategy");
                // Offset arithmetic in u64 handles negative bounds.
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $ty
            }
        }

        impl Strategy for RangeInclusive<$ty> {
            type Value = $ty;
            fn new_value(&self, rng: &mut TestRng) -> $ty {
                let (lo, hi) = (*self.start() as i128, *self.end() as i128);
                assert!(lo <= hi, "empty range strategy");
                let span = (hi - lo) as u64;
                if span == u64::MAX {
                    rng.next_u64() as $ty
                } else {
                    (lo + rng.below(span + 1) as i128) as $ty
                }
            }
        }
    )*};
}

arbitrary_int!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.below(2) == 1
    }
}

macro_rules! tuple_strategy {
    ($(($($name:ident),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn new_value(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.new_value(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (A)
    (A, B)
    (A, B, C)
    (A, B, C, D)
    (A, B, C, D, E)
}

/// A string literal is a strategy via the regex subset in [`regex`].
impl Strategy for &'static str {
    type Value = String;
    fn new_value(&self, rng: &mut TestRng) -> String {
        regex::generate(self, rng)
    }
}

/// Collection-size specification accepted by `collection::vec` and friends.
#[derive(Clone, Copy, Debug)]
pub struct SizeRange {
    min: usize,
    /// Inclusive.
    max: usize,
}

impl SizeRange {
    pub fn pick(&self, rng: &mut TestRng) -> usize {
        rng.in_range_inclusive(self.min as u64, self.max as u64) as usize
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> SizeRange {
        assert!(r.start < r.end, "empty size range");
        SizeRange {
            min: r.start,
            max: r.end - 1,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> SizeRange {
        SizeRange {
            min: *r.start(),
            max: *r.end(),
        }
    }
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> SizeRange {
        SizeRange { min: n, max: n }
    }
}

mod regex {
    //! Generator for the regex subset used as string strategies:
    //! literal characters, `[…]` classes (ranges, escapes, and `&&[^…]`
    //! class subtraction), and `{m}` / `{m,n}` quantifiers.

    use crate::test_runner::TestRng;

    struct Piece {
        choices: Vec<char>,
        min: usize,
        max: usize,
    }

    pub fn generate(pattern: &str, rng: &mut TestRng) -> String {
        let pieces = parse(pattern);
        let mut out = String::new();
        for p in &pieces {
            let n = rng.in_range_inclusive(p.min as u64, p.max as u64) as usize;
            for _ in 0..n {
                let k = rng.below(p.choices.len() as u64) as usize;
                out.push(p.choices[k]);
            }
        }
        out
    }

    fn parse(pattern: &str) -> Vec<Piece> {
        let chars: Vec<char> = pattern.chars().collect();
        let mut i = 0;
        let mut pieces = Vec::new();
        while i < chars.len() {
            let choices = match chars[i] {
                '[' => {
                    let (set, next) = parse_class(&chars, i + 1);
                    i = next;
                    set
                }
                '\\' => {
                    i += 1;
                    let c = escaped(chars[i]);
                    i += 1;
                    vec![c]
                }
                c => {
                    i += 1;
                    vec![c]
                }
            };
            assert!(!choices.is_empty(), "empty character class in {pattern:?}");
            let (min, max) = if i < chars.len() && chars[i] == '{' {
                let (m, n, next) = parse_quantifier(&chars, i + 1);
                i = next;
                (m, n)
            } else {
                (1, 1)
            };
            pieces.push(Piece { choices, min, max });
        }
        pieces
    }

    fn escaped(c: char) -> char {
        match c {
            'n' => '\n',
            't' => '\t',
            'r' => '\r',
            other => other,
        }
    }

    /// Parse a class body starting just after `[`; returns the resolved
    /// character set and the index just past the closing `]`.
    fn parse_class(chars: &[char], mut i: usize) -> (Vec<char>, usize) {
        let negated = chars[i] == '^';
        if negated {
            i += 1;
        }
        let mut include: Vec<char> = Vec::new();
        let mut intersections: Vec<Vec<char>> = Vec::new();
        while chars[i] != ']' {
            if chars[i] == '&' && chars[i + 1] == '&' {
                // `&&[…]` intersects with the nested class; with a negated
                // nested class (`&&[^…]`) this is class subtraction.
                assert!(chars[i + 2] == '[', "expected class after &&");
                let (nested, next) = parse_class(chars, i + 3);
                i = next;
                intersections.push(nested);
                continue;
            }
            let lo = if chars[i] == '\\' {
                i += 1;
                let c = escaped(chars[i]);
                i += 1;
                c
            } else {
                let c = chars[i];
                i += 1;
                c
            };
            if chars[i] == '-' && chars[i + 1] != ']' {
                i += 1;
                let hi = if chars[i] == '\\' {
                    i += 1;
                    let c = escaped(chars[i]);
                    i += 1;
                    c
                } else {
                    let c = chars[i];
                    i += 1;
                    c
                };
                include.extend((lo as u32..=hi as u32).filter_map(char::from_u32));
            } else {
                include.push(lo);
            }
        }
        i += 1; // consume ']'
        let mut set = if negated {
            // Negation relative to printable ASCII.
            (' '..='~').filter(|c| !include.contains(c)).collect()
        } else {
            include
        };
        for allowed in &intersections {
            set.retain(|c| allowed.contains(c));
        }
        (set, i)
    }

    /// Parse `{m}` or `{m,n}` starting just after `{`; returns
    /// `(min, max, index just past '}')`.
    fn parse_quantifier(chars: &[char], mut i: usize) -> (usize, usize, usize) {
        let read_number = |i: &mut usize| {
            let mut v = 0usize;
            while chars[*i].is_ascii_digit() {
                v = v * 10 + (chars[*i] as usize - '0' as usize);
                *i += 1;
            }
            v
        };
        let m = read_number(&mut i);
        let n = if chars[i] == ',' {
            i += 1;
            read_number(&mut i)
        } else {
            m
        };
        assert!(chars[i] == '}', "unterminated quantifier");
        (m, n, i + 1)
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        fn rng() -> TestRng {
            TestRng::from_seed(42)
        }

        #[test]
        fn identifier_shapes() {
            let mut rng = rng();
            for _ in 0..200 {
                let s = generate("[a-z][a-z0-9_]{0,6}", &mut rng);
                assert!(!s.is_empty() && s.len() <= 7, "{s:?}");
                let mut cs = s.chars();
                assert!(cs.next().unwrap().is_ascii_lowercase());
                assert!(cs.all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '_'));
            }
        }

        #[test]
        fn class_subtraction_excludes() {
            let mut rng = rng();
            for _ in 0..300 {
                // Printable ASCII minus quote, backslash, apostrophe
                // (source form of the round-trip test's string strategy).
                let s = generate("[ -~&&[^\"\\\\']]{0,6}", &mut rng);
                assert!(s.len() <= 6);
                for c in s.chars() {
                    assert!((' '..='~').contains(&c));
                    assert!(c != '"' && c != '\\' && c != '\'', "{s:?}");
                }
            }
        }

        #[test]
        fn plain_range_class() {
            let mut rng = rng();
            for _ in 0..100 {
                let s = generate("[ -~]{0,8}", &mut rng);
                assert!(s.len() <= 8);
                assert!(s.chars().all(|c| (' '..='~').contains(&c)));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> TestRng {
        TestRng::from_seed(7)
    }

    #[test]
    fn ranges_hit_bounds_only() {
        let mut rng = rng();
        let s = -3i64..3;
        for _ in 0..500 {
            let v = s.new_value(&mut rng);
            assert!((-3..3).contains(&v));
        }
    }

    #[test]
    fn map_filter_compose() {
        let mut rng = rng();
        let evens = (0u32..100)
            .prop_map(|v| v * 2)
            .prop_filter("must stay even", |v| v % 2 == 0);
        for _ in 0..100 {
            assert!(evens.new_value(&mut rng) % 2 == 0);
        }
    }

    #[test]
    fn recursive_strategy_bounds_depth() {
        #[derive(Debug)]
        enum T {
            Leaf,
            Node(Vec<T>),
        }
        fn depth(t: &T) -> usize {
            match t {
                T::Leaf => 0,
                T::Node(cs) => 1 + cs.iter().map(depth).max().unwrap_or(0),
            }
        }
        let mut rng = rng();
        let strat = Just(())
            .prop_map(|_| T::Leaf)
            .prop_recursive(3, 8, 2, |inner| {
                crate::collection::vec(inner, 0..3).prop_map(T::Node)
            });
        for _ in 0..200 {
            assert!(depth(&strat.new_value(&mut rng)) <= 3);
        }
    }

    #[test]
    fn union_picks_every_arm() {
        let mut rng = rng();
        let s = union(vec![Just(1u8).boxed(), Just(2u8).boxed()]);
        let mut seen = [false; 3];
        for _ in 0..100 {
            seen[s.new_value(&mut rng) as usize] = true;
        }
        assert!(seen[1] && seen[2]);
    }
}
