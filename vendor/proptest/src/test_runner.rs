//! Test-loop configuration, case errors, and the deterministic RNG that
//! drives value generation.

use std::fmt;

/// Configuration for a `proptest!` block.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of generated cases per test.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> ProptestConfig {
        ProptestConfig { cases: 64 }
    }
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

/// A failed `prop_assert*` inside a test case.
#[derive(Debug)]
pub struct TestCaseError {
    message: String,
}

impl TestCaseError {
    pub fn fail(message: impl Into<String>) -> TestCaseError {
        TestCaseError {
            message: message.into(),
        }
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for TestCaseError {}

/// SplitMix64 generator: deterministic, seeded per test from the test name
/// so every run of the suite explores the same cases.
#[derive(Clone, Debug)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    pub fn from_seed(seed: u64) -> TestRng {
        TestRng { state: seed }
    }

    pub fn from_name(name: &str) -> TestRng {
        // FNV-1a over the test name picks a stable per-test stream.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x100_0000_01b3);
        }
        TestRng::from_seed(h)
    }

    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, bound)`; `bound` must be nonzero.
    pub fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        // Modulo bias is irrelevant for test-data generation.
        self.next_u64() % bound
    }

    /// Uniform value in `[lo, hi]` over the full u64 circle.
    pub fn in_range_inclusive(&mut self, lo: u64, hi: u64) -> u64 {
        let span = hi.wrapping_sub(lo);
        if span == u64::MAX {
            self.next_u64()
        } else {
            lo.wrapping_add(self.below(span + 1))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rng_is_deterministic_per_name() {
        let mut a = TestRng::from_name("some_test");
        let mut b = TestRng::from_name("some_test");
        let mut c = TestRng::from_name("other_test");
        let xs: Vec<u64> = (0..4).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..4).map(|_| b.next_u64()).collect();
        let zs: Vec<u64> = (0..4).map(|_| c.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn below_stays_in_bounds() {
        let mut rng = TestRng::from_seed(7);
        for _ in 0..1000 {
            assert!(rng.below(10) < 10);
        }
    }
}
