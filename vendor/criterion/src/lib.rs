//! Offline stand-in for the `criterion` crate.
//!
//! Exposes the same bench-definition surface the workspace benches use
//! (`criterion_group!`/`criterion_main!`, `Criterion::bench_function`,
//! groups with `sample_size`/`bench_with_input`) but measures with a simple
//! warmup-plus-median loop and prints one line per benchmark. No plots, no
//! statistics machinery — enough to time hot paths offline and to keep
//! `cargo bench` working without the real crate.

use std::fmt;
use std::time::{Duration, Instant};

/// Prevent the optimizer from deleting a computed value.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Top-level bench driver; collect with [`Criterion::default`] and pass to
/// group functions.
pub struct Criterion {
    filter: Option<String>,
    sample_size: usize,
    measurement: Duration,
}

impl Default for Criterion {
    fn default() -> Criterion {
        // cargo bench passes flags like `--bench`; the first non-flag
        // argument is a name filter, matching criterion's CLI behaviour.
        let filter = std::env::args().skip(1).find(|a| !a.starts_with('-'));
        Criterion {
            filter,
            sample_size: 10,
            measurement: Duration::from_millis(200),
        }
    }
}

impl Criterion {
    pub fn configure_from_args(self) -> Criterion {
        self
    }

    fn should_run(&self, id: &str) -> bool {
        match &self.filter {
            Some(f) => id.contains(f.as_str()),
            None => true,
        }
    }

    fn run_one(&self, id: &str, sample_size: usize, f: &mut dyn FnMut(&mut Bencher)) {
        if !self.should_run(id) {
            return;
        }
        let mut bencher = Bencher {
            samples: Vec::new(),
            sample_size,
            measurement: self.measurement,
        };
        f(&mut bencher);
        bencher.report(id);
    }

    pub fn bench_function(&mut self, id: &str, mut f: impl FnMut(&mut Bencher)) -> &mut Criterion {
        let n = self.sample_size;
        self.run_one(id, n, &mut f);
        self
    }

    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.to_string(),
            sample_size: None,
        }
    }

    pub fn final_summary(&mut self) {}
}

/// A named group of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: Option<usize>,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = Some(n);
        self
    }

    fn effective_samples(&self) -> usize {
        self.sample_size.unwrap_or(self.criterion.sample_size)
    }

    pub fn bench_function(
        &mut self,
        id: impl Into<BenchmarkId>,
        mut f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let id = id.into();
        let full = format!("{}/{}", self.name, id);
        let n = self.effective_samples();
        self.criterion.run_one(&full, n, &mut f);
        self
    }

    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) -> &mut Self {
        let id = id.into();
        let full = format!("{}/{}", self.name, id);
        let n = self.effective_samples();
        self.criterion.run_one(&full, n, &mut |b| f(b, input));
        self
    }

    pub fn finish(self) {}
}

/// Identifier `function_name/parameter` for parameterized benches.
pub struct BenchmarkId {
    text: String,
}

impl BenchmarkId {
    pub fn new(function_name: impl Into<String>, parameter: impl fmt::Display) -> BenchmarkId {
        BenchmarkId {
            text: format!("{}/{}", function_name.into(), parameter),
        }
    }

    pub fn from_parameter(parameter: impl fmt::Display) -> BenchmarkId {
        BenchmarkId {
            text: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> BenchmarkId {
        BenchmarkId {
            text: s.to_string(),
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> BenchmarkId {
        BenchmarkId { text: s }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.text)
    }
}

/// Passed to the measured closure; call [`Bencher::iter`] with the routine.
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
    measurement: Duration,
}

impl Bencher {
    pub fn iter<R>(&mut self, mut routine: impl FnMut() -> R) {
        // Warmup + calibration: run once to size the per-sample iteration
        // count so one sample stays well under the measurement budget.
        let t0 = Instant::now();
        black_box(routine());
        let once = t0.elapsed().max(Duration::from_nanos(1));
        let budget = self.measurement / (self.sample_size.max(1) as u32);
        let iters = (budget.as_nanos() / once.as_nanos()).clamp(1, 10_000) as u32;

        self.samples.clear();
        for _ in 0..self.sample_size {
            let start = Instant::now();
            for _ in 0..iters {
                black_box(routine());
            }
            self.samples.push(start.elapsed() / iters);
        }
    }

    fn report(&mut self, id: &str) {
        if self.samples.is_empty() {
            return;
        }
        self.samples.sort();
        let median = self.samples[self.samples.len() / 2];
        let min = self.samples[0];
        let max = self.samples[self.samples.len() - 1];
        println!(
            "{id:<50} median {:>12} (min {:?}, max {:?})",
            format!("{median:?}"),
            min,
            max
        );
    }
}

/// Define a bench group function from target functions.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name(c: &mut $crate::Criterion) {
            $( $target(c); )+
        }
    };
}

/// Define `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $( $group(&mut criterion); )+
            criterion.final_summary();
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_runs_and_reports() {
        let mut c = Criterion {
            filter: None,
            sample_size: 3,
            measurement: Duration::from_millis(5),
        };
        let mut ran = 0u64;
        c.bench_function("smoke", |b| b.iter(|| ran += 1));
        assert!(ran > 0);
    }

    #[test]
    fn group_filtering() {
        let mut c = Criterion {
            filter: Some("nomatch".into()),
            sample_size: 3,
            measurement: Duration::from_millis(5),
        };
        let mut ran = false;
        let mut g = c.benchmark_group("grp");
        g.sample_size(2).bench_function("case", |b| {
            b.iter(|| ran = true);
        });
        g.finish();
        assert!(!ran);
    }
}
