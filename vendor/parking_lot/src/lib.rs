//! Offline stand-in for the `parking_lot` crate.
//!
//! The build environment has no network access to a registry, so the
//! workspace vendors the small API subset it actually uses, implemented on
//! `std::sync`. Semantics match parking_lot where it matters to callers:
//! `lock()` returns the guard directly (no `Result`), poisoning is ignored
//! (a panicking holder does not wedge the lock), and `Condvar::wait*` take
//! the guard by `&mut` instead of by value.

use std::fmt;
use std::ops::{Deref, DerefMut};
use std::time::Duration;

/// Mutual exclusion, parking_lot style: no poisoning, guard returned
/// directly from [`Mutex::lock`].
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

impl<T> Mutex<T> {
    pub const fn new(value: T) -> Mutex<T> {
        Mutex {
            inner: std::sync::Mutex::new(value),
        }
    }

    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard {
            inner: Some(self.inner.lock().unwrap_or_else(|e| e.into_inner())),
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Mutex<T> {
        Mutex::new(T::default())
    }
}

impl<T: fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.inner.fmt(f)
    }
}

/// RAII guard; the protected value is reachable through `Deref`/`DerefMut`.
///
/// Internally an `Option` so [`Condvar`] can take the std guard by value
/// (std's `wait` consumes it) while exposing parking_lot's `&mut` API.
pub struct MutexGuard<'a, T: ?Sized> {
    inner: Option<std::sync::MutexGuard<'a, T>>,
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard present")
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard present")
    }
}

/// Result of [`Condvar::wait_for`].
#[derive(Clone, Copy, Debug)]
pub struct WaitTimeoutResult {
    timed_out: bool,
}

impl WaitTimeoutResult {
    pub fn timed_out(&self) -> bool {
        self.timed_out
    }
}

/// Condition variable taking guards by `&mut`, parking_lot style.
#[derive(Default)]
pub struct Condvar {
    inner: std::sync::Condvar,
}

impl Condvar {
    pub const fn new() -> Condvar {
        Condvar {
            inner: std::sync::Condvar::new(),
        }
    }

    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let g = guard.inner.take().expect("guard present");
        guard.inner = Some(self.inner.wait(g).unwrap_or_else(|e| e.into_inner()));
    }

    pub fn wait_for<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        timeout: Duration,
    ) -> WaitTimeoutResult {
        let g = guard.inner.take().expect("guard present");
        let (g, res) = self
            .inner
            .wait_timeout(g, timeout)
            .unwrap_or_else(|e| e.into_inner());
        guard.inner = Some(g);
        WaitTimeoutResult {
            timed_out: res.timed_out(),
        }
    }

    pub fn notify_one(&self) {
        self.inner.notify_one();
    }

    pub fn notify_all(&self) {
        self.inner.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn lock_and_mutate() {
        let m = Mutex::new(1);
        *m.lock() += 41;
        assert_eq!(*m.lock(), 42);
    }

    #[test]
    fn condvar_wakes_waiter() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let p2 = Arc::clone(&pair);
        let h = std::thread::spawn(move || {
            let (lock, cv) = &*p2;
            let mut started = lock.lock();
            while !*started {
                cv.wait(&mut started);
            }
        });
        {
            let (lock, cv) = &*pair;
            *lock.lock() = true;
            cv.notify_all();
        }
        h.join().unwrap();
    }

    #[test]
    fn wait_for_times_out() {
        let m = Mutex::new(());
        let cv = Condvar::new();
        let mut g = m.lock();
        let res = cv.wait_for(&mut g, Duration::from_millis(1));
        assert!(res.timed_out());
    }
}
