//! Smoke tests for the experiment harness: every listed experiment is
//! runnable (the cheap ones end to end; the expensive ones are covered by
//! `motif-bench` itself and by the claims tests).

#[test]
fn every_experiment_name_resolves() {
    for name in bench::EXPERIMENTS {
        // Resolution only — unknown names must be the only None.
        assert!(
            bench::EXPERIMENTS.contains(name),
            "inconsistent experiment list"
        );
    }
    assert!(bench::run_experiment("no-such-experiment").is_none());
}

#[test]
fn cheap_experiments_render_tables() {
    for name in ["fig1", "fig4", "e5-loc"] {
        let out = bench::run_experiment(name).expect("known experiment");
        assert!(out.contains("=="), "{name} produced no table:\n{out}");
        assert!(out.lines().count() > 4, "{name} table too small");
    }
}

#[test]
fn fig5_prints_all_three_stages() {
    let out = bench::run_experiment("fig5").expect("fig5 exists");
    assert!(out.contains("Stage 1"));
    assert!(out.contains("Stage 2"));
    assert!(out.contains("Stage 3"));
    assert!(out.contains("@random"));
    assert!(out.contains("distribute("));
}

#[test]
fn motif_catalog_is_complete_and_exclusive() {
    for name in bench::MOTIF_SOURCES {
        assert!(bench::motif_source(name).is_some(), "{name} missing");
    }
    assert!(bench::motif_source("not-a-motif").is_none());
}
