//! Determinism conformance harness: every inventory motif program runs in
//! three columns — the deterministic simulator on the **compiled**
//! rule-execution tier (the default), the same simulator on the reference
//! **interpreter** (`--exec interpreted`), and the multi-threaded
//! `strand-parallel` engine at 1, 2, 4 and 8 worker threads — and must
//! produce equivalent results.
//!
//! The two tiers share one scheduler, so their comparison is the strictest
//! in the suite: **bit-identical** bindings, ordered output, status, and
//! reduction/suspension counts (DESIGN.md, "Compiled execution tier").
//!
//! Equivalence is checked per the contract in DESIGN.md ("Execution
//! backends"):
//!
//! * at 1 thread, programs without `merge/2`/`after_unless/4` must match
//!   the simulator **exactly** (ordered output, identical bindings);
//! * run status discriminants match;
//! * every goal binding is equal after unbound-variable renaming
//!   (`_N` numbers depend on allocation order, which the parallel engine
//!   does not preserve), with a **multiset** fallback for bindings that
//!   are proper lists assembled by nondeterministic merges;
//! * `print/1` output is compared as a multiset (interleaving across real
//!   threads is unordered by design); the supervised case compares the
//!   *set* of outputs because its at-least-once delivery may legally
//!   print a replayed message twice.

use std::collections::BTreeMap;

use algorithmic_motifs::motifs::{
    self, dc, graph, grid, pipeline, random_tree_src, search, sequential_reduce, tree_reduce_1,
    tree_reduce_2, ARITH_EVAL,
};
use algorithmic_motifs::strand_core::Term;
use algorithmic_motifs::strand_machine::{run_parsed_goal, ChaosPlan, GoalResult, MachineConfig};
use algorithmic_motifs::strand_parallel;
use bench::{FIGURE2_HANDWRITTEN, PAPER_TREE, RING_APP};
use proptest::prelude::*;
use strand_parse::parse_program;

/// Rewrite machine-allocated variable numbers (`_123`) to a canonical
/// sequence in order of first appearance, so two runs that allocated
/// variables in different orders still render identically.
fn normalize_vars(s: &str) -> String {
    let mut map: BTreeMap<String, usize> = BTreeMap::new();
    let mut out = String::with_capacity(s.len());
    let bytes = s.as_bytes();
    let mut i = 0;
    while i < bytes.len() {
        if bytes[i] == b'_' && i + 1 < bytes.len() && bytes[i + 1].is_ascii_digit() {
            let start = i;
            i += 1;
            while i < bytes.len() && bytes[i].is_ascii_digit() {
                i += 1;
            }
            let name = &s[start..i];
            let next = map.len();
            let id = *map.entry(name.to_string()).or_insert(next);
            out.push_str(&format!("_v{id}"));
        } else {
            let ch = s[i..].chars().next().unwrap();
            out.push(ch);
            i += ch.len_utf8();
        }
    }
    out
}

/// Elements of a proper list, or `None` if the term is not one.
fn list_elems(t: &Term) -> Option<Vec<&Term>> {
    let mut out = Vec::new();
    let mut cur = t;
    loop {
        match cur {
            Term::Nil => return Some(out),
            Term::List(cell) => {
                out.push(&cell.0);
                cur = &cell.1;
            }
            _ => return None,
        }
    }
}

/// Terms are conformant when they render identically after variable
/// renaming, or when both are proper lists with equal element multisets
/// (merge order across real threads is the one sanctioned divergence).
fn terms_conform(a: &Term, b: &Term) -> bool {
    let (sa, sb) = (
        normalize_vars(&a.to_string()),
        normalize_vars(&b.to_string()),
    );
    if sa == sb {
        return true;
    }
    match (list_elems(a), list_elems(b)) {
        (Some(xs), Some(ys)) => {
            let mut xs: Vec<String> = xs.iter().map(|t| normalize_vars(&t.to_string())).collect();
            let mut ys: Vec<String> = ys.iter().map(|t| normalize_vars(&t.to_string())).collect();
            xs.sort();
            ys.sort();
            xs == ys
        }
        _ => false,
    }
}

fn sorted(v: &[String]) -> Vec<String> {
    let mut v = v.to_vec();
    v.sort();
    v
}

/// Run `goal` on both backends and assert conformance. Returns the
/// deterministic result for case-specific value checks.
///
/// At **one** worker thread the parallel backend promises to be an exact
/// replica of the simulator for programs without `merge/2` or
/// `after_unless/4` (same pids, same rng, same scheduling order), so for
/// those the 1-thread leg upgrades to strict equality: ordered output and
/// identical binding terms, not just multiset conformance.
fn assert_conform(
    label: &str,
    program: &strand_parse::Program,
    goal: &str,
    cfg: MachineConfig,
) -> GoalResult {
    strand_parallel::install();
    // Conservative eligibility scan: a false positive (a user predicate
    // merely *named* merge) only downgrades the 1-thread leg back to the
    // multiset check, never weakens a guarantee.
    let dbg = format!("{program:?}");
    let exact_at_one = !dbg.contains("merge") && !dbg.contains("after_unless");
    let det = run_parsed_goal(program, goal, cfg.clone())
        .unwrap_or_else(|e| panic!("{label}: deterministic run: {e}"));
    // Third column: the reference interpreter under the same deterministic
    // scheduler. The compiled tier (cfg default) must be bit-identical to
    // it — no renaming slack, no multiset fallback.
    let interp = run_parsed_goal(program, goal, cfg.clone().interpreted())
        .unwrap_or_else(|e| panic!("{label}: interpreted run: {e}"));
    assert_eq!(
        det.bindings, interp.bindings,
        "{label}: compiled tier bindings must equal the interpreter's exactly"
    );
    assert_eq!(
        det.report.output, interp.report.output,
        "{label}: compiled tier output must equal the interpreter's exactly (ordered)"
    );
    assert_eq!(
        det.report.status, interp.report.status,
        "{label}: compiled tier status must equal the interpreter's"
    );
    assert_eq!(
        (
            det.report.metrics.total_reductions,
            det.report.metrics.suspensions,
        ),
        (
            interp.report.metrics.total_reductions,
            interp.report.metrics.suspensions,
        ),
        "{label}: compiled tier must perform the same reductions/suspensions"
    );
    for threads in [1u32, 2, 4, 8] {
        let par = run_parsed_goal(program, goal, cfg.clone().parallel(threads))
            .unwrap_or_else(|e| panic!("{label}: parallel({threads}) run: {e}"));
        assert_eq!(
            std::mem::discriminant(&det.report.status),
            std::mem::discriminant(&par.report.status),
            "{label}: status diverged at {threads} threads: {:?} vs {:?}",
            det.report.status,
            par.report.status,
        );
        if threads == 1 && exact_at_one {
            assert_eq!(
                det.bindings, par.bindings,
                "{label}: 1-thread bindings must equal the simulator's exactly"
            );
            assert_eq!(
                det.report.output, par.report.output,
                "{label}: 1-thread output must equal the simulator's exactly (ordered)"
            );
            continue;
        }
        assert_eq!(
            det.bindings.keys().collect::<Vec<_>>(),
            par.bindings.keys().collect::<Vec<_>>(),
            "{label}: binding keys diverged at {threads} threads"
        );
        for (k, dv) in &det.bindings {
            let pv = &par.bindings[k];
            assert!(
                terms_conform(dv, pv),
                "{label}: binding {k} diverged at {threads} threads:\n  det: {dv}\n  par: {pv}"
            );
        }
        assert_eq!(
            sorted(&det.report.output),
            sorted(&par.report.output),
            "{label}: output multiset diverged at {threads} threads"
        );
    }
    det
}

// ---------------------------------------------------------------------------
// Paper programs
// ---------------------------------------------------------------------------

#[test]
fn conform_figure2_handwritten() {
    let src = format!(
        "{ARITH_EVAL}\n{FIGURE2_HANDWRITTEN}\n{}",
        motifs::SERVER_LIBRARY
    );
    let program = parse_program(&src).unwrap();
    let r = assert_conform(
        "figure2",
        &program,
        &format!("create(4, reduce({PAPER_TREE}, Value))"),
        MachineConfig::with_nodes(4).seed(11),
    );
    assert_eq!(r.bindings["Value"].to_string(), "24");
}

#[test]
fn conform_tree_reduce_1() {
    let tree = random_tree_src(20, 5);
    let expected = sequential_reduce(&tree).to_string();
    let p = tree_reduce_1().apply_src(ARITH_EVAL).unwrap();
    let r = assert_conform(
        "tree-reduce-1",
        &p,
        &format!("create(4, reduce({tree}, Value))"),
        MachineConfig::with_nodes(4).seed(5),
    );
    assert_eq!(r.bindings["Value"].to_string(), expected);
}

#[test]
fn conform_tree_reduce_2() {
    let tree = random_tree_src(16, 7);
    let expected = sequential_reduce(&tree).to_string();
    let p = tree_reduce_2().apply_src(ARITH_EVAL).unwrap();
    let r = assert_conform(
        "tree-reduce-2",
        &p,
        &format!("create(4, tr2({tree}, Value))"),
        MachineConfig::with_nodes(4).seed(7),
    );
    assert_eq!(r.bindings["Value"].to_string(), expected);
}

// ---------------------------------------------------------------------------
// Inventory motifs
// ---------------------------------------------------------------------------

#[test]
fn conform_server_flood() {
    // Fig. 4 shape: every node probes every higher-numbered node.
    let flood = r#"
        server([probe(K)|In]) :- fan(K), server(In).
        server([]).
        fan(K) :- fan1(K, 4).
        fan1(K, N) :- K < N | K1 := K + 1, send(K1, probe(K1)), fan1(K1, N).
        fan1(K, N) :- K >= N | true.
    "#;
    let p = motifs::server().apply_src(flood).unwrap();
    assert_conform(
        "server-flood",
        &p,
        "create(4, probe(1))",
        MachineConfig::with_nodes(4).seed(3),
    );
}

#[test]
fn conform_scheduler() {
    let costs: Vec<u64> = (0..24).map(|i| 3 + (i % 7)).collect();
    let p = motifs::scheduler::scheduler()
        .apply_src(motifs::scheduler::BURN_TASK)
        .unwrap();
    let goal = format!(
        "create(5, start({}, Results))",
        motifs::scheduler::tasks_src(&costs)
    );
    let r = assert_conform(
        "scheduler",
        &p,
        &goal,
        MachineConfig::with_nodes(5).seed(17),
    );
    // Results is a merge-ordered list: checked as a multiset inside
    // assert_conform; here just confirm all 24 results arrived.
    assert_eq!(list_elems(&r.bindings["Results"]).unwrap().len(), 24);
}

#[test]
fn conform_scheduler_hierarchical() {
    let costs: Vec<u64> = (0..18).map(|i| 2 + (i % 5)).collect();
    let p = motifs::scheduler::scheduler_hierarchical()
        .apply_src(motifs::scheduler::BURN_TASK)
        .unwrap();
    let goal = format!(
        "create(9, start2({}, Results, 2))",
        motifs::scheduler::tasks_src(&costs)
    );
    assert_conform(
        "scheduler-2",
        &p,
        &goal,
        MachineConfig::with_nodes(9).seed(23),
    );
}

#[test]
fn conform_task_pragma() {
    let app = r#"
        gen(0, V) :- V := 0.
        gen(N, V) :- N > 0 |
            cost(N, C),
            burn(C, V1)@task,
            N1 := N - 1,
            gen(N1, V2),
            add(V1, V2, V).
        cost(N, C) :- M := N mod 7, C := 5 + M * M.
        burn(C, V) :- work(C), V := 1.
        add(V1, V2, V) :- V := V1 + V2.
    "#;
    let p = motifs::task_scheduler_with_entries(&[("gen", 2)])
        .apply_src(app)
        .unwrap();
    let goal = motifs::boot_goal(5, "gen", &["12", "V"]);
    let r = assert_conform(
        "task-pragma",
        &p,
        &goal,
        MachineConfig::with_nodes(5).seed(13),
    );
    assert_eq!(r.bindings["V"].to_string(), "12");
}

#[test]
fn conform_divide_and_conquer() {
    let p = dc::divide_and_conquer()
        .apply_src(dc::MERGESORT_APP)
        .unwrap();
    let goal = format!(
        "create(4, dc({}, S))",
        dc::int_list_src(&[9, 2, 7, 4, 1, 8, 3, 6, 5, 0])
    );
    let r = assert_conform(
        "dc-mergesort",
        &p,
        &goal,
        MachineConfig::with_nodes(4).seed(29),
    );
    assert_eq!(r.bindings["S"].to_string(), "[0,1,2,3,4,5,6,7,8,9]");
}

#[test]
fn conform_search_nqueens() {
    let p = search::search().apply_src(search::NQUEENS_APP).unwrap();
    let r = assert_conform(
        "search-5queens",
        &p,
        "create(4, search(q(5, [], 1), Count))",
        MachineConfig::with_nodes(4).seed(31),
    );
    assert_eq!(r.bindings["Count"].to_string(), "10");
}

#[test]
fn conform_grid_stencil() {
    let p = grid::grid()
        .apply_src("cell_init(I, V) :- V := I * 1.0.")
        .unwrap();
    assert_conform(
        "grid-stencil",
        &p,
        "grid(8, 6, Final)",
        MachineConfig::with_nodes(4).seed(37),
    );
}

#[test]
fn conform_graph_components() {
    // Vertices are 1-based: {1,2,3} u {4,5} u {6,7,8}.
    let edges = [(1u32, 2), (2, 3), (4, 5), (6, 7), (7, 8)];
    let p = graph::graph_components().apply_src("noop(1).").unwrap();
    let goal = format!("create(4, cc(8, {}, Final))", graph::edges_src(&edges));
    assert_conform(
        "graph-components",
        &p,
        &goal,
        MachineConfig::with_nodes(4).seed(41),
    );
}

#[test]
fn conform_pipeline() {
    let p = pipeline::pipeline()
        .apply_src("stage(K, X, Y) :- Y := X + K.")
        .unwrap();
    let r = assert_conform(
        "pipeline",
        &p,
        "pipe(3, [0, 10, 20, 30], Out)",
        MachineConfig::with_nodes(3).seed(43),
    );
    // A pipeline preserves order: the stronger ordered check must hold too.
    assert_eq!(r.bindings["Out"].to_string(), "[6,16,26,36]");
}

/// Supervised ring: at-least-once delivery means a replayed message may be
/// printed twice on either backend, so compare the *set* of distinct
/// outputs (the dedup guarantee) rather than the multiset.
#[test]
fn conform_supervise_ring() {
    strand_parallel::install();
    let program = motifs::supervised_server().apply_src(RING_APP).unwrap();
    let goal = "create(4, token(1))";
    let cfg = MachineConfig::with_nodes(4).seed(47);
    let det = run_parsed_goal(&program, goal, cfg.clone()).unwrap();
    let interp = run_parsed_goal(&program, goal, cfg.clone().interpreted()).unwrap();
    assert_eq!(
        det.report.output, interp.report.output,
        "supervise-ring: compiled tier must replay the interpreter exactly"
    );
    assert_eq!(det.report.status, interp.report.status);
    let par = run_parsed_goal(&program, goal, cfg.parallel(4)).unwrap();
    assert_eq!(
        std::mem::discriminant(&det.report.status),
        std::mem::discriminant(&par.report.status),
        "supervise-ring: status diverged: {:?} vs {:?}",
        det.report.status,
        par.report.status,
    );
    let dedup = |out: &[String]| {
        let mut v = sorted(out);
        v.dedup();
        v
    };
    assert_eq!(
        dedup(&det.report.output),
        dedup(&par.report.output),
        "supervise-ring: distinct output set diverged"
    );
}

// ---------------------------------------------------------------------------
// Chaos tier: supervised programs under wall-clock fault injection
// ---------------------------------------------------------------------------

/// Pick a kill deadline that lands mid-run: a clean run's reduction count
/// scaled down. `kill_at` triggers on the *global* reduction counter, so it
/// is a progress trigger, not a timer — by the time it fires the supervised
/// network has necessarily made that much progress (bootstrap included),
/// and the chaos run always reaches it (faults only add reductions).
fn mid_run_kill_at(
    program: &strand_parse::Program,
    goal: &str,
    cfg: &MachineConfig,
    threads: u32,
) -> u64 {
    let clean = run_parsed_goal(program, goal, cfg.clone().parallel(threads))
        .unwrap_or_else(|e| panic!("clean calibration run: {e}"));
    (clean.report.metrics.total_reductions / 3).max(1)
}

/// The chaos acceptance scenario, ring half: the `Supervise ∘ Server ∘
/// Rand` ring must still visit every server when one worker shard is
/// killed mid-run on top of 10% batch drop and 5% duplication. Recovery is
/// wall-clock real: the dead shard's servers restart from their durable
/// wires on the monitors' (surviving) nodes.
#[test]
fn chaos_supervised_ring_survives_kill_drop_dup() {
    strand_parallel::install();
    let program = motifs::supervised_random().apply_src(RING_APP).unwrap();
    let goal = "create(8, token(1))";
    let base = MachineConfig::with_nodes(8).seed(47);
    let expected: Vec<String> = (1..=8).map(|k| k.to_string()).collect();
    for threads in [2u32, 4, 8] {
        let kill_at = mid_run_kill_at(&program, goal, &base, threads);
        let mut cfg = base.clone().parallel(threads).chaos(
            ChaosPlan::default()
                .kill(1, kill_at)
                .drop_prob(0.10)
                .dup_prob(0.05)
                .seed(61),
        );
        cfg.fail_fast = false;
        // A recovery regression diverges (beat loops mint variables without
        // bound); a modest budget turns that into `Truncated` + a readable
        // assertion instead of a variable-space panic.
        cfg.max_reductions = 2_000_000;
        let r = run_parsed_goal(&program, goal, cfg)
            .unwrap_or_else(|e| panic!("chaos ring at {threads} threads: {e}"));
        assert_eq!(
            r.report.metrics.shards_killed, 1,
            "the kill must land at {threads} threads (kill_at={kill_at})"
        );
        let mut distinct = sorted(&r.report.output);
        distinct.dedup();
        assert_eq!(
            distinct, expected,
            "token must visit every server at {threads} threads despite the \
             dead shard; status {:?}, errors {:?}",
            r.report.status, r.report.errors
        );
        assert!(
            !matches!(
                r.report.status,
                algorithmic_motifs::strand_machine::RunStatus::Truncated { .. }
            ),
            "chaos must not exhaust the budget: {:?}",
            r.report.status
        );
    }
}

/// The chaos acceptance scenario, task half: a supervised task scheduler
/// (Supervise ∘ Server ∘ Sched) completing a fan of idempotent tasks. The
/// tasks acknowledge into test-and-set slots (`arg/3` + `ack/1`), per the
/// Supervise contract that handlers tolerate replay — so a killed worker
/// shard, replayed wires and duplicated submissions must still fill every
/// slot exactly to `ok`.
#[test]
fn chaos_supervised_task_sched_reaches_answers() {
    strand_parallel::install();
    let app = r#"
        gen(0, _).
        gen(N, T) :- N > 0 |
            cost(N, C),
            mark(C, N, T)@task,
            N1 := N - 1,
            gen(N1, T).
        cost(N, C) :- M := N mod 7, C := 5 + M * M.
        mark(C, N, T) :- work(C), arg(N, T, S), ack(S).
    "#;
    let program = motifs::supervise()
        .compose(&motifs::task_scheduler_with_entries(&[("gen", 2)]))
        .apply_src(app)
        .unwrap();
    let goal = motifs::boot_goal(9, "gen", &["8", "t(S1, S2, S3, S4, S5, S6, S7, S8)"]);
    let base = MachineConfig::with_nodes(9).seed(53);
    for threads in [2u32, 4, 8] {
        let kill_at = mid_run_kill_at(&program, &goal, &base, threads);
        let mut cfg = base.clone().parallel(threads).chaos(
            ChaosPlan::default()
                .kill(1, kill_at)
                .drop_prob(0.10)
                .dup_prob(0.05)
                .seed(67),
        );
        cfg.fail_fast = false;
        cfg.max_reductions = 2_000_000;
        let r = run_parsed_goal(&program, &goal, cfg)
            .unwrap_or_else(|e| panic!("chaos task_sched at {threads} threads: {e}"));
        assert_eq!(
            r.report.metrics.shards_killed, 1,
            "the kill must land at {threads} threads (kill_at={kill_at})"
        );
        for slot in ["S1", "S2", "S3", "S4", "S5", "S6", "S7", "S8"] {
            assert_eq!(
                r.bindings[slot].to_string(),
                "ok",
                "task {slot} must be applied at {threads} threads; status {:?}, \
                 errors {:?}",
                r.report.status,
                r.report.errors
            );
        }
    }
}

// ---------------------------------------------------------------------------
// Satellite 3: acked sends apply exactly once under duplicated batches
// ---------------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Supervise's retry/backoff against wall-clock batch duplication:
    /// every duplicated spawn batch is re-delivered with fresh pids, yet
    /// the sequence-numbered envelopes and the test-and-set bootstrap must
    /// keep *application* effects exactly-once. Absent a supervisor
    /// restart (none is triggered without a kill — heartbeats ride
    /// reliable wakes), each token must print exactly once; with one, the
    /// replay may legally repeat a print but never lose one.
    #[test]
    fn duplicated_batches_keep_acked_sends_exactly_once(
        chaos_seed in 0u64..10_000,
        threads_ix in 0usize..3,
    ) {
        let threads = [2u32, 4, 8][threads_ix];
        strand_parallel::install();
        let program = motifs::supervised_server().apply_src(RING_APP).unwrap();
        let goal = "create(4, token(1))";
        let mut cfg = MachineConfig::with_nodes(4)
            .seed(47)
            .parallel(threads)
            .chaos(ChaosPlan::default().dup_prob(0.75).seed(chaos_seed));
        cfg.fail_fast = false;
        let r = run_parsed_goal(&program, goal, cfg).unwrap();
        let expected: Vec<String> = (1..=4).map(|k| k.to_string()).collect();
        let mut distinct = sorted(&r.report.output);
        distinct.dedup();
        prop_assert_eq!(&distinct, &expected, "every token must arrive");
        if r.report.metrics.supervisor_restarts == 0 {
            prop_assert_eq!(
                sorted(&r.report.output),
                expected,
                "exactly-once violated without any restart"
            );
        }
    }
}

// ---------------------------------------------------------------------------
// Satellite 3 (cont.): random fault-free programs conform across seeds
// ---------------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Random fault-free tree programs (the fault-determinism generator's
    /// shape with faults disabled) produce identical values on both
    /// backends across 3 machine seeds, and the compiled tier is
    /// bit-identical to the reference interpreter on each of them.
    #[test]
    fn random_programs_conform(
        leaves in 2u32..16,
        tree_seed in 0u64..1000,
        p in 1u32..6,
    ) {
        strand_parallel::install();
        let tree = random_tree_src(leaves, tree_seed);
        let expected = sequential_reduce(&tree).to_string();
        let program = tree_reduce_1().apply_src(ARITH_EVAL).unwrap();
        let goal = format!("create({p}, reduce({tree}, Value))");
        for machine_seed in [1u64, 2, 3] {
            let cfg = MachineConfig::with_nodes(p).seed(machine_seed);
            let det = run_parsed_goal(&program, &goal, cfg.clone()).unwrap();
            prop_assert_eq!(det.bindings["Value"].to_string(), expected.clone());
            let interp = run_parsed_goal(&program, &goal, cfg.clone().interpreted()).unwrap();
            prop_assert_eq!(&det.bindings, &interp.bindings);
            prop_assert_eq!(&det.report.output, &interp.report.output);
            prop_assert_eq!(
                det.report.metrics.total_reductions,
                interp.report.metrics.total_reductions
            );
            prop_assert_eq!(
                det.report.metrics.suspensions,
                interp.report.metrics.suspensions
            );
            let par = run_parsed_goal(&program, &goal, cfg.parallel(2)).unwrap();
            prop_assert_eq!(par.bindings["Value"].to_string(), expected.clone());
        }
    }
}

// ---------------------------------------------------------------------------
// Soak tier: wide machines, many workers sharing few cores
// ---------------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Soak for the sharded backend: 64-node machines on 2 worker threads
    /// put 32 nodes on each shard, so cross-worker batches, suspensions on
    /// foreign-stripe variables and wakeup routing churn far harder than
    /// the quick cases above. Ignored by default (it multiplies runtime by
    /// ~case count × tree size); run explicitly with
    /// `cargo test --test conformance -- --ignored --test-threads=1`,
    /// which is also what the nightly ThreadSanitizer CI job does.
    #[test]
    #[ignore]
    fn soak_wide_machine_conforms(
        leaves in 16u32..48,
        tree_seed in 0u64..10_000,
        machine_seed in 0u64..1000,
    ) {
        strand_parallel::install();
        let tree = random_tree_src(leaves, tree_seed);
        let expected = sequential_reduce(&tree).to_string();
        let program = tree_reduce_1().apply_src(ARITH_EVAL).unwrap();
        let goal = format!("create(64, reduce({tree}, Value))");
        let cfg = MachineConfig::with_nodes(64).seed(machine_seed);
        for threads in [2u32, 4] {
            let par = run_parsed_goal(&program, &goal, cfg.clone().parallel(threads)).unwrap();
            prop_assert_eq!(par.bindings["Value"].to_string(), expected.clone());
        }
    }
}
