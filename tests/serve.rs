//! Serve conformance + soak tier (DESIGN.md §9).
//!
//! * **Conformance** — a request replayed through the resident service
//!   (over loopback TCP, through the real accept loop and wire protocol)
//!   must yield the **bit-identical** reply to the same message run batch
//!   through `create/2` on the deterministic simulator — and the resident
//!   engine must agree whether it is the simulator or the parallel
//!   backend at 1, 2 or 4 worker threads. The doubler exercises arithmetic
//!   handlers, the echo app round-trips arbitrary ground terms through
//!   the store and back out of the renderer.
//! * **Soak** — ≥1000 open/close session cycles must leave the store
//!   bounded: session-close reclamation really does return slots (the
//!   free list is reused), on both engines. Growth here would be the
//!   week-long-process leak the region sweep exists to prevent.

use std::io::{BufRead, BufReader, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use algorithmic_motifs::strand_machine::{run_parsed_goal, MachineConfig, RunStatus};
use algorithmic_motifs::strand_parallel;
use algorithmic_motifs::strand_serve::{
    serve, MotifService, ServeBackend, ServeConfig, DOUBLER_APP, ECHO_APP,
};

const SERVERS: u32 = 4;

fn serve_cfg(backend: ServeBackend) -> ServeConfig {
    if matches!(backend, ServeBackend::Parallel(_)) {
        strand_parallel::install();
    }
    ServeConfig {
        servers: SERVERS,
        backend,
        ..ServeConfig::default()
    }
}

/// Every engine the service can keep resident. Parallel thread counts
/// follow the conformance ladder (1 is the exact-replica configuration).
fn backends() -> Vec<ServeBackend> {
    vec![
        ServeBackend::Sim,
        ServeBackend::Parallel(1),
        ServeBackend::Parallel(2),
        ServeBackend::Parallel(4),
    ]
}

/// The batch reference: deliver `req(Payload, R)` through the library's
/// own `create/2` on the deterministic simulator and render the bound
/// reply — the value the resident replay must reproduce bit-for-bit.
fn batch_reply(app: &str, payload: &str) -> String {
    let program = algorithmic_motifs::motifs::server()
        .apply_src(app)
        .expect("Server motif applies");
    let goal = format!("create({SERVERS}, req({payload}, R))");
    let r = run_parsed_goal(&program, &goal, MachineConfig::with_nodes(SERVERS))
        .expect("batch reference runs");
    // The network idles awaiting further messages — quiescent, by design.
    assert!(
        matches!(r.report.status, RunStatus::Quiescent { .. }),
        "{:?}",
        r.report.status
    );
    r.bindings["R"].to_string()
}

/// Replay payloads through a resident service over loopback TCP — the
/// real accept loop, wire protocol and session lifecycle — and return the
/// reply payloads (the text after `OK `).
fn tcp_replay(app: &str, backend: ServeBackend, payloads: &[&str]) -> Vec<String> {
    let service = MotifService::start(app, serve_cfg(backend)).expect("service boots");
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind loopback");
    let addr = listener.local_addr().expect("ephemeral addr");
    let shutdown = Arc::new(AtomicBool::new(false));
    let serve_thread = {
        let shutdown = Arc::clone(&shutdown);
        std::thread::spawn(move || serve(listener, service, shutdown, Duration::from_secs(10)))
    };

    let stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .expect("client timeout");
    let _ = stream.set_nodelay(true);
    let mut writer = stream.try_clone().expect("clone stream");
    let mut reader = BufReader::new(stream);
    let mut replies = Vec::new();
    for payload in payloads {
        writer
            .write_all(format!("{payload}\n").as_bytes())
            .expect("send request");
        let mut line = String::new();
        reader.read_line(&mut line).expect("read reply");
        let line = line.trim();
        let reply = line
            .strip_prefix("OK ")
            .unwrap_or_else(|| panic!("expected OK for {payload:?}, got {line:?}"));
        replies.push(reply.to_string());
    }
    drop((reader, writer));
    shutdown.store(true, Ordering::Release);
    let summary = serve_thread
        .join()
        .expect("serve loop joins")
        .expect("serve loop exits cleanly");
    assert_eq!(summary.report.metrics.sessions_opened, 1);
    assert_eq!(summary.report.metrics.sessions_closed, 1);
    assert_eq!(
        summary.report.metrics.requests_admitted,
        payloads.len() as u64
    );
    replies
}

#[test]
fn doubler_replay_matches_batch_on_every_backend() {
    let payloads = ["21", "0", "-17", "1000000"];
    let want: Vec<String> = payloads
        .iter()
        .map(|p| batch_reply(DOUBLER_APP, p))
        .collect();
    for backend in backends() {
        let got = tcp_replay(DOUBLER_APP, backend, &payloads);
        assert_eq!(got, want, "replay diverged from batch on {backend:?}");
    }
}

#[test]
fn echo_replay_matches_batch_on_every_backend() {
    // Compound payloads: the reply round-trips through head matching, the
    // striped store, the resolver and the renderer — any divergence in
    // term construction between ingress and batch shows up here.
    let payloads = [
        "point(1, 2)",
        "[a, b, [c, 4]]",
        "nested(f(g(h)), [1, [2], x])",
        "atom",
    ];
    let want: Vec<String> = payloads.iter().map(|p| batch_reply(ECHO_APP, p)).collect();
    for backend in backends() {
        let got = tcp_replay(ECHO_APP, backend, &payloads);
        assert_eq!(got, want, "replay diverged from batch on {backend:?}");
    }
}

/// 1000 open/close cycles, each issuing requests, probing the live store
/// size after every close. The high-water mark across the tail must not
/// exceed the early-cycle mark: reclamation returns every session's slots
/// to the free list, so the store stops growing once the per-server
/// steady state is reached.
fn soak(backend: ServeBackend, cycles: usize) {
    let service = MotifService::start(DOUBLER_APP, serve_cfg(backend)).expect("service boots");
    let mut baseline = 0usize;
    for cycle in 0..cycles {
        let session = service.open_session();
        for k in 0..2i64 {
            let got = service.request(session, &(10 + k).to_string());
            assert_eq!(
                got,
                algorithmic_motifs::strand_serve::Response::Ok(((10 + k) * 2).to_string()),
                "cycle {cycle}"
            );
        }
        service.close_session(session);
        // Reclaim events ride the worker channels; idle means they landed.
        assert!(service.wait_idle(Duration::from_secs(10)), "cycle {cycle}");
        let len = service.store_len();
        if cycle < 10 {
            baseline = baseline.max(len);
        } else {
            assert!(
                len <= baseline,
                "store grew past the early high-water mark: {len} > {baseline} \
                 after cycle {cycle} (reclamation is leaking)"
            );
        }
    }
    let report = service.shutdown().expect("clean shutdown");
    assert_eq!(report.metrics.sessions_opened, cycles as u64);
    assert_eq!(report.metrics.sessions_closed, cycles as u64);
    assert!(report.metrics.vars_reclaimed > 0);
}

#[test]
fn soak_sim_store_is_bounded_over_1000_sessions() {
    soak(ServeBackend::Sim, 1000);
}

#[test]
fn soak_parallel_store_is_bounded_over_1000_sessions() {
    soak(ServeBackend::Parallel(2), 1000);
}
