//! Serve conformance + soak tier (DESIGN.md §9).
//!
//! * **Conformance** — a request replayed through the resident service
//!   (over loopback TCP, through the real accept loop and wire protocol)
//!   must yield the **bit-identical** reply to the same message run batch
//!   through `create/2` on the deterministic simulator — and the resident
//!   engine must agree whether it is the simulator or the parallel
//!   backend at 1, 2 or 4 worker threads. The doubler exercises arithmetic
//!   handlers, the echo app round-trips arbitrary ground terms through
//!   the store and back out of the renderer.
//! * **Soak** — ≥1000 open/close session cycles must leave the store
//!   bounded: session-close reclamation really does return slots (the
//!   free list is reused), on both engines. Growth here would be the
//!   week-long-process leak the region sweep exists to prevent.
//! * **Supervised** — `Supervise ∘ Server` kept resident on wall-clock
//!   timers must be invisible on clean runs (bit-identical replies to the
//!   unsupervised tier at 1/2/4 threads) and load-bearing under chaos: a
//!   worker shard killed mid-load on top of 10% batch drop must cost no
//!   client its reply — retransmission, restart and the re-registered
//!   reply probe together make the kill a latency event, not a loss.

use std::io::{BufRead, BufReader, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use algorithmic_motifs::strand_machine::{run_parsed_goal, ChaosPlan, MachineConfig, RunStatus};
use algorithmic_motifs::strand_parallel;
use algorithmic_motifs::strand_serve::{
    serve, MotifService, Response, ServeBackend, ServeConfig, Session, DOUBLER_APP, ECHO_APP,
};

const SERVERS: u32 = 4;

fn serve_cfg(backend: ServeBackend) -> ServeConfig {
    if matches!(backend, ServeBackend::Parallel(_)) {
        strand_parallel::install();
    }
    ServeConfig {
        servers: SERVERS,
        backend,
        ..ServeConfig::default()
    }
}

/// Every engine the service can keep resident. Parallel thread counts
/// follow the conformance ladder (1 is the exact-replica configuration).
fn backends() -> Vec<ServeBackend> {
    vec![
        ServeBackend::Sim,
        ServeBackend::Parallel(1),
        ServeBackend::Parallel(2),
        ServeBackend::Parallel(4),
    ]
}

/// The batch reference: deliver `req(Payload, R)` through the library's
/// own `create/2` on the deterministic simulator and render the bound
/// reply — the value the resident replay must reproduce bit-for-bit.
fn batch_reply(app: &str, payload: &str) -> String {
    let program = algorithmic_motifs::motifs::server()
        .apply_src(app)
        .expect("Server motif applies");
    let goal = format!("create({SERVERS}, req({payload}, R))");
    let r = run_parsed_goal(&program, &goal, MachineConfig::with_nodes(SERVERS))
        .expect("batch reference runs");
    // The network idles awaiting further messages — quiescent, by design.
    assert!(
        matches!(r.report.status, RunStatus::Quiescent { .. }),
        "{:?}",
        r.report.status
    );
    r.bindings["R"].to_string()
}

/// Replay payloads through a resident service over loopback TCP — the
/// real accept loop, wire protocol and session lifecycle — and return the
/// reply payloads (the text after `OK `).
fn tcp_replay(app: &str, cfg: ServeConfig, payloads: &[&str]) -> Vec<String> {
    let service = MotifService::start(app, cfg).expect("service boots");
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind loopback");
    let addr = listener.local_addr().expect("ephemeral addr");
    let shutdown = Arc::new(AtomicBool::new(false));
    let serve_thread = {
        let shutdown = Arc::clone(&shutdown);
        std::thread::spawn(move || serve(listener, service, shutdown, Duration::from_secs(10)))
    };

    let stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .expect("client timeout");
    let _ = stream.set_nodelay(true);
    let mut writer = stream.try_clone().expect("clone stream");
    let mut reader = BufReader::new(stream);
    let mut replies = Vec::new();
    for payload in payloads {
        writer
            .write_all(format!("{payload}\n").as_bytes())
            .expect("send request");
        let mut line = String::new();
        reader.read_line(&mut line).expect("read reply");
        let line = line.trim();
        let reply = line
            .strip_prefix("OK ")
            .unwrap_or_else(|| panic!("expected OK for {payload:?}, got {line:?}"));
        replies.push(reply.to_string());
    }
    drop((reader, writer));
    shutdown.store(true, Ordering::Release);
    let summary = serve_thread
        .join()
        .expect("serve loop joins")
        .expect("serve loop exits cleanly");
    assert_eq!(summary.report.metrics.sessions_opened, 1);
    assert_eq!(summary.report.metrics.sessions_closed, 1);
    assert_eq!(
        summary.report.metrics.requests_admitted,
        payloads.len() as u64
    );
    replies
}

#[test]
fn doubler_replay_matches_batch_on_every_backend() {
    let payloads = ["21", "0", "-17", "1000000"];
    let want: Vec<String> = payloads
        .iter()
        .map(|p| batch_reply(DOUBLER_APP, p))
        .collect();
    for backend in backends() {
        let got = tcp_replay(DOUBLER_APP, serve_cfg(backend), &payloads);
        assert_eq!(got, want, "replay diverged from batch on {backend:?}");
    }
}

#[test]
fn echo_replay_matches_batch_on_every_backend() {
    // Compound payloads: the reply round-trips through head matching, the
    // striped store, the resolver and the renderer — any divergence in
    // term construction between ingress and batch shows up here.
    let payloads = [
        "point(1, 2)",
        "[a, b, [c, 4]]",
        "nested(f(g(h)), [1, [2], x])",
        "atom",
    ];
    let want: Vec<String> = payloads.iter().map(|p| batch_reply(ECHO_APP, p)).collect();
    for backend in backends() {
        let got = tcp_replay(ECHO_APP, serve_cfg(backend), &payloads);
        assert_eq!(got, want, "replay diverged from batch on {backend:?}");
    }
}

/// 1000 open/close cycles, each issuing requests, probing the live store
/// size after every close. The high-water mark across the tail must not
/// exceed the early-cycle mark: reclamation returns every session's slots
/// to the free list, so the store stops growing once the per-server
/// steady state is reached.
fn soak(backend: ServeBackend, cycles: usize) {
    let service = MotifService::start(DOUBLER_APP, serve_cfg(backend)).expect("service boots");
    let mut baseline = 0usize;
    for cycle in 0..cycles {
        let session = service.open_session();
        for k in 0..2i64 {
            let got = service.request(session, &(10 + k).to_string());
            assert_eq!(
                got,
                algorithmic_motifs::strand_serve::Response::Ok(((10 + k) * 2).to_string()),
                "cycle {cycle}"
            );
        }
        service.close_session(session);
        // Reclaim events ride the worker channels; idle means they landed.
        assert!(service.wait_idle(Duration::from_secs(10)), "cycle {cycle}");
        let len = service.store_len();
        if cycle < 10 {
            baseline = baseline.max(len);
        } else {
            assert!(
                len <= baseline,
                "store grew past the early high-water mark: {len} > {baseline} \
                 after cycle {cycle} (reclamation is leaking)"
            );
        }
    }
    let report = service.shutdown().expect("clean shutdown");
    eprintln!("[soak] shutdown returned");
    assert_eq!(report.metrics.sessions_opened, cycles as u64);
    assert_eq!(report.metrics.sessions_closed, cycles as u64);
    assert!(report.metrics.vars_reclaimed > 0);
}

#[test]
fn soak_sim_store_is_bounded_over_1000_sessions() {
    soak(ServeBackend::Sim, 1000);
}

#[test]
fn soak_parallel_store_is_bounded_over_1000_sessions() {
    soak(ServeBackend::Parallel(2), 1000);
}

// ---------------------------------------------------------------------------
// Supervised tier: Supervise ∘ Server resident on wall-clock timers
// ---------------------------------------------------------------------------

fn supervised_cfg(threads: u32) -> ServeConfig {
    strand_parallel::install();
    ServeConfig {
        servers: SERVERS,
        backend: ServeBackend::Parallel(threads),
        supervise: true,
        ..ServeConfig::default()
    }
}

/// Issue one request, honoring `BUSY` by sleeping exactly the advertised
/// hint before retrying — the contract the supervised service makes cheap
/// by deriving the hint from the timer wheel's next-due horizon instead of
/// parroting the configured `retry_ms`.
fn request_with_retry(svc: &MotifService, s: Session, payload: &str) -> Response {
    for _ in 0..1_000 {
        match svc.request(s, payload) {
            Response::Busy(hint) => std::thread::sleep(Duration::from_millis(hint.max(1))),
            other => return other,
        }
    }
    panic!("backpressure never cleared for {payload:?}");
}

/// Supervision must be invisible when nothing fails: the same payloads
/// replayed through a supervised resident service (heartbeats beating,
/// acked `rsend` envelopes, wall-clock wheel armed) produce bit-identical
/// replies to the unsupervised batch reference at every thread count on
/// the conformance ladder.
#[test]
fn supervised_replay_is_bit_identical_to_unsupervised_when_clean() {
    let payloads = ["21", "0", "-17", "1000000"];
    let want: Vec<String> = payloads
        .iter()
        .map(|p| batch_reply(DOUBLER_APP, p))
        .collect();
    for threads in [1u32, 2, 4] {
        let got = tcp_replay(DOUBLER_APP, supervised_cfg(threads), &payloads);
        assert_eq!(
            got, want,
            "supervised replay diverged from batch at {threads} threads"
        );
    }
}

/// The doubler written for replay: the Supervise contract is that a
/// restarted server may see delivered-but-unacked envelopes again, so the
/// reply bind goes through the `put_arg/4` test-and-set (first delivery
/// wins, replays are no-ops) instead of a bare `:=` that would double-bind.
const REPLAY_SAFE_DOUBLER: &str = r#"
server([]).
server([halt|_]).
server([req(Q, R)|In]) :- put_reply(Q, R), server(In).
put_reply(Q, R) :- D := Q * 2, T := t(R), put_arg(1, T, D, _).
"#;

/// The acceptance scenario: kill a worker shard mid-load, on top of 10%
/// cross-worker batch drop, while concurrent clients stream requests. No
/// client may lose its reply — requests routed at the dead shard are
/// retransmitted by `rsend` until the supervisor's watch window expires
/// and restarts the shard's servers from their durable wires, and the
/// service re-sends any still-unanswered request (same reply variable) at
/// a live node. The kill must demonstrably land (`shards_killed`), and
/// recovery must run through the supervisor (`supervisor_restarts`), not
/// luck — so the clients pace their stream to hold the fleet resident
/// past the supervisor's watch window instead of finishing in a burst
/// that drains before any wall-clock deadline can expire.
fn chaos_serve_loses_no_client(threads: u32) {
    // Calibrate "mid-load": the kill triggers on the global reduction
    // counter, so aim it just past a clean boot's count — the fleet is
    // then necessarily booted (give or take chaos-retry noise) and the
    // client burst below is in flight when it fires.
    let boot_reductions = {
        let svc = MotifService::start(REPLAY_SAFE_DOUBLER, supervised_cfg(threads))
            .expect("calibration boot");
        let report = svc.shutdown().expect("calibration shutdown");
        report.metrics.total_reductions
    };
    let mut cfg = supervised_cfg(threads);
    cfg.chaos = ChaosPlan::default()
        .kill(1, boot_reductions + 500)
        .drop_prob(0.10)
        .seed(71);
    cfg.reply_timeout_ms = 30_000;
    let service =
        Arc::new(MotifService::start(REPLAY_SAFE_DOUBLER, cfg).expect("chaos service boots"));
    let clients = 4i64;
    let per_client = 8i64;
    let mut handles = Vec::new();
    for c in 0..clients {
        let svc = Arc::clone(&service);
        handles.push(std::thread::spawn(move || {
            let s = svc.open_session();
            for k in 0..per_client {
                // Pace the stream: 8 requests x 400ms keeps this client
                // active for ~3.2s, comfortably past the supervisor's
                // 1.8s watch window, so the restart fires under load.
                if k > 0 {
                    std::thread::sleep(Duration::from_millis(400));
                }
                let q = c * per_client + k + 1;
                match request_with_retry(&svc, s, &q.to_string()) {
                    Response::Ok(reply) => assert_eq!(
                        reply,
                        (q * 2).to_string(),
                        "client {c} got a wrong reply for {q}"
                    ),
                    other => panic!("client {c} lost request {q}: {other:?}"),
                }
            }
            svc.close_session(s);
        }));
    }
    for h in handles {
        h.join().expect("client thread panicked");
    }
    let service = Arc::try_unwrap(service).ok().expect("all clients joined");
    let report = service.shutdown().expect("chaos shutdown");
    assert_eq!(
        report.metrics.shards_killed, 1,
        "the kill must land at {threads} threads"
    );
    assert!(
        report.metrics.supervisor_restarts > 0,
        "recovery must run through the supervisor at {threads} threads: {:?}",
        report.metrics
    );
    assert!(
        report.metrics.timers_fired > 0,
        "retransmit/watch deadlines must have fired: {:?}",
        report.metrics
    );
}

#[test]
fn chaos_on_serve_2_threads_loses_no_client() {
    chaos_serve_loses_no_client(2);
}

#[test]
fn chaos_on_serve_4_threads_loses_no_client() {
    chaos_serve_loses_no_client(4);
}

/// Supervised quick soak: 200 session cycles through `request_with_retry`,
/// so any `BUSY` bounce is answered by sleeping the advertised wheel-derived
/// hint (the `max_pending` squeeze makes bounces plausible under the
/// heartbeat background load). Every cycle must complete and session
/// reclamation must keep working with the supervision machinery resident.
#[test]
fn soak_supervised_sessions_complete_honoring_busy_hints() {
    let mut cfg = supervised_cfg(2);
    cfg.max_pending = 64;
    let service = MotifService::start(DOUBLER_APP, cfg).expect("service boots");
    let cycles = 200i64;
    for cycle in 0..cycles {
        let s = service.open_session();
        let q = cycle + 1;
        match request_with_retry(&service, s, &q.to_string()) {
            Response::Ok(reply) => assert_eq!(reply, (q * 2).to_string(), "cycle {cycle}"),
            other => panic!("cycle {cycle} failed: {other:?}"),
        }
        service.close_session(s);
    }
    let report = service.shutdown().expect("clean shutdown");
    assert_eq!(report.metrics.sessions_opened, cycles as u64);
    assert_eq!(report.metrics.sessions_closed, cycles as u64);
    assert!(report.metrics.requests_admitted >= cycles as u64);
    assert!(report.metrics.timers_armed > 0, "{:?}", report.metrics);
    assert!(report.metrics.vars_reclaimed > 0, "{:?}", report.metrics);
}
