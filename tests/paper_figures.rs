//! Integration tests reproducing the paper's figures (F1–F7 in
//! EXPERIMENTS.md) across the whole stack: parser → transformations →
//! motifs → abstract machine.

use algorithmic_motifs::motifs::{
    self, rand_map, server, tree1, tree_reduce_1, tree_reduce_2, ARITH_EVAL,
};
use algorithmic_motifs::strand_machine::{run_goal, run_parsed_goal, MachineConfig, RunStatus};
use algorithmic_motifs::strand_parse::{parse_program, pretty};

const FIGURE1: &str = r#"
    go(N) :- producer(N, Xs, sync), consumer(Xs).
    producer(N, Xs, sync) :- N > 0 |
        Xs := [X|Xs1], N1 := N - 1, producer(N1, Xs1, X).
    producer(0, Xs, _) :- Xs := [].
    consumer([X|Xs]) :- X := sync, consumer(Xs).
    consumer([]).
"#;

#[test]
fn fig1_producer_consumer_terminates_synchronously() {
    let r = run_goal(FIGURE1, "go(4)", MachineConfig::default()).unwrap();
    assert_eq!(r.report.status, RunStatus::Completed);
    // The communication is synchronous: each element needs an ack, so
    // suspensions scale with N.
    let r64 = run_goal(FIGURE1, "go(64)", MachineConfig::default()).unwrap();
    assert!(r64.report.metrics.suspensions > r.report.metrics.suspensions);
    // And the producer never runs ahead: bounded queue.
    assert!(r64.report.metrics.peak_queue[0] <= 8);
}

#[test]
fn fig2_handwritten_program_evaluates_the_example_tree() {
    let src = format!(
        "{ARITH_EVAL}\n{}\n{}",
        bench::FIGURE2_HANDWRITTEN,
        motifs::SERVER_LIBRARY
    );
    let r = run_goal(
        &src,
        &format!("create(4, reduce({}, Value))", bench::PAPER_TREE),
        MachineConfig::with_nodes(4).seed(1),
    )
    .unwrap();
    assert_eq!(r.bindings["Value"].to_string(), "24");
}

#[test]
fn fig4_every_server_pair_communicates() {
    let flood = r#"
        server([probe(K)|In]) :- fan(K), server(In).
        server([halt|_]).
        fan(K) :- nodes(N), fan1(K, N).
        fan1(K, N) :- K < N | K1 := K + 1, send(K1, probe(K1)), fan1(K1, N).
        fan1(N, N) :- halt.
    "#;
    for n in [2u32, 5, 9] {
        let p = server().apply_src(flood).unwrap();
        let r = run_parsed_goal(
            &p,
            &format!("create({n}, probe(1))"),
            MachineConfig::with_nodes(n),
        )
        .unwrap();
        assert_eq!(r.report.status, RunStatus::Completed, "n={n}");
        assert!(r.report.metrics.port_msgs_cross >= (n as u64) * (n as u64 - 1) / 2);
    }
}

#[test]
fn fig5_stages_match_the_paper_structure() {
    let app = parse_program(ARITH_EVAL).unwrap();
    let s1 = tree1().apply(&app).unwrap();
    let p1 = pretty(&s1);
    // Stage 1: the @random pragma is present, no server machinery.
    assert!(p1.contains("reduce(R, RV)@random"), "{p1}");
    assert!(!p1.contains("server"), "{p1}");

    let s2 = rand_map().apply(&s1).unwrap();
    let p2 = pretty(&s2);
    // Stage 2: pragma expanded into nodes/rand_num/send; dispatch rules.
    assert!(!p2.contains("@random"), "{p2}");
    assert!(p2.contains("rand_num"), "{p2}");
    assert!(p2.contains("send("), "{p2}");
    assert!(p2.contains("server([reduce(V1, V2)|In]) :-"), "{p2}");
    assert!(p2.contains("server([halt|_])."), "{p2}");

    let s3 = server().apply(&s2).unwrap();
    let p3 = pretty(&s3);
    // Stage 3: operations translated, DT threaded, library linked.
    assert!(!p3.contains("send("), "{p3}");
    assert!(p3.contains("distribute("), "{p3}");
    assert!(p3.contains("length(DT"), "{p3}");
    assert!(p3.contains("create(N, Msg)"), "{p3}");
    assert!(p3.contains("server_init"), "{p3}");
}

#[test]
fn fig6_composition_equation_holds() {
    // M(A) = M2(M1(A)) for the full chain, on two different applications.
    for app_src in [ARITH_EVAL, "eval(_, L, R, V) :- V := L + R."] {
        let app = parse_program(app_src).unwrap();
        let staged = server()
            .apply(&rand_map().apply(&tree1().apply(&app).unwrap()).unwrap())
            .unwrap();
        let composed = server()
            .compose(&rand_map())
            .compose(&tree1())
            .apply(&app)
            .unwrap();
        assert_eq!(pretty(&staged), pretty(&composed));
    }
}

#[test]
fn fig7_tree_reduce_2_runs_and_halts() {
    let p = tree_reduce_2().apply_src(ARITH_EVAL).unwrap();
    let tree = motifs::random_tree_src(20, 5);
    let expected = motifs::sequential_reduce(&tree);
    let cfg = MachineConfig::with_nodes(4).seed(5).track("eval");
    let r = run_parsed_goal(&p, &format!("create(4, tr2({tree}, Value))"), cfg).unwrap();
    assert_eq!(r.report.status, RunStatus::Completed);
    assert_eq!(r.bindings["Value"].to_string(), expected.to_string());
    assert_eq!(r.report.metrics.max_peak_tracked(), 1);
}

#[test]
fn both_tree_motifs_share_one_user_interface() {
    // §3.6: "These provide the same interface to the user, who need
    // provide only a node evaluation function."
    let tree = motifs::random_tree_src(10, 2);
    let expected = motifs::sequential_reduce(&tree).to_string();
    let p1 = tree_reduce_1().apply_src(ARITH_EVAL).unwrap();
    let r1 = run_parsed_goal(
        &p1,
        &format!("create(3, reduce({tree}, Value))"),
        MachineConfig::with_nodes(3).seed(2),
    )
    .unwrap();
    let p2 = tree_reduce_2().apply_src(ARITH_EVAL).unwrap();
    let r2 = run_parsed_goal(
        &p2,
        &format!("create(3, tr2({tree}, Value))"),
        MachineConfig::with_nodes(3).seed(2),
    )
    .unwrap();
    assert_eq!(r1.bindings["Value"].to_string(), expected);
    assert_eq!(r2.bindings["Value"].to_string(), expected);
}
