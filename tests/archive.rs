//! The "archives of expertise" invariants (§1): every motif library in the
//! catalog parses, pretty-prints, reparses, and is consistent with the
//! inventory (E5) — the properties a library must keep to stay
//! consultable, modifiable, and extensible.

use algorithmic_motifs::strand_parse::{parse_program, pretty};

#[test]
fn every_catalog_source_parses_and_roundtrips() {
    for name in bench::MOTIF_SOURCES {
        let (title, src) = bench::motif_source(name).expect("catalog entry exists");
        let program =
            parse_program(&src).unwrap_or_else(|e| panic!("{title} source does not parse: {e}"));
        assert!(program.rule_count() > 0, "{title} has rules");
        let printed = pretty(&program);
        let reparsed = parse_program(&printed)
            .unwrap_or_else(|e| panic!("{title} pretty output does not reparse: {e}"));
        assert_eq!(program, reparsed, "{title} must round-trip");
    }
}

#[test]
fn inventory_matches_catalog_sources() {
    let inventory = algorithmic_motifs::motifs::inventory::inventory();
    // Every inventory row with a nonempty library corresponds to a source
    // that parses to the same rule count.
    for (name, inv_name) in [
        ("server", "Server"),
        ("tree1", "Tree1"),
        ("tree-reduce-2", "Tree-Reduce-2"),
        ("scheduler", "Scheduler"),
        ("scheduler-2", "Scheduler-2-level"),
        ("sched", "Sched (@task pragma)"),
        ("dc", "DivideAndConquer"),
        ("search", "Search"),
        ("grid", "Grid"),
        ("graph", "Graph (components)"),
        ("pipeline", "Pipeline"),
    ] {
        let (_, src) = bench::motif_source(name).expect("catalog entry");
        let rules = parse_program(&src).unwrap().rule_count();
        let row = inventory
            .iter()
            .find(|r| r.motif == inv_name)
            .unwrap_or_else(|| panic!("inventory row {inv_name} missing"));
        assert_eq!(row.library_rules, rules, "{inv_name} rule count");
    }
}

#[test]
fn shipped_libraries_are_lint_clean() {
    use algorithmic_motifs::strand_parse::{lint, LintKind};
    // Each library's documented external procedures (supplied by the user
    // program or by other composition stages).
    let externals: &[(&str, &[(&str, usize)])] = &[
        ("server", &[("server", 2)]),
        ("tree1", &[("eval", 4)]),
        ("tree-reduce-2", &[("eval", 4)]),
        ("scheduler", &[("task", 2)]),
        ("scheduler-2", &[("task", 2)]),
        ("sched", &[]),
        ("dc", &[("dc_case", 2), ("dc_merge", 3)]),
        ("search", &[("branch", 2), ("accept", 2)]),
        ("grid", &[("cell_init", 2)]),
        ("graph", &[]),
        ("pipeline", &[("stage", 3)]),
    ];
    for (name, assume) in externals {
        let (title, src) = bench::motif_source(name).expect("catalog entry");
        let program = parse_program(&src).unwrap();
        let findings = lint(&program, assume);
        let serious: Vec<_> = findings
            .iter()
            .filter(|l| l.kind != LintKind::SingletonVariable)
            .collect();
        assert!(serious.is_empty(), "{title} has lint findings: {serious:?}");
    }
}

#[test]
fn libraries_have_no_unresolved_pragmas_after_their_motifs() {
    // Applying each end-user motif to a minimal valid application must
    // produce a compilable program (all pragmas resolved, all arities
    // consistent).
    use algorithmic_motifs::strand_parse::compile_program;
    let cases: Vec<(&str, algorithmic_motifs::motifs::Motif, &str)> = vec![
        (
            "tree_reduce_1",
            algorithmic_motifs::motifs::tree_reduce_1(),
            algorithmic_motifs::motifs::ARITH_EVAL,
        ),
        (
            "tree_reduce_2",
            algorithmic_motifs::motifs::tree_reduce_2(),
            algorithmic_motifs::motifs::ARITH_EVAL,
        ),
        (
            "scheduler",
            algorithmic_motifs::motifs::scheduler::scheduler(),
            algorithmic_motifs::motifs::scheduler::BURN_TASK,
        ),
        (
            "graph",
            algorithmic_motifs::motifs::graph::graph_components(),
            "noop(1).",
        ),
    ];
    for (name, motif, app) in cases {
        let program = motif
            .apply_src(app)
            .unwrap_or_else(|e| panic!("{name} fails to apply: {e}"));
        compile_program(&program).unwrap_or_else(|e| panic!("{name} output fails to compile: {e}"));
    }
}
