//! Integration tests for the paper's evaluation claims (E1–E8 in
//! EXPERIMENTS.md), at sizes small enough for CI.

use algorithmic_motifs::motifs::scheduler::{
    scheduler, scheduler_hierarchical, tasks_src, BURN_TASK,
};
use algorithmic_motifs::motifs::{random_tree_src, tree_reduce_1, tree_reduce_2, ARITH_EVAL};
use algorithmic_motifs::strand_machine::{run_parsed_goal, GoalResult, MachineConfig};
use bench::{heavy_eval, uniform_eval};

fn tr1(eval: &str, tree: &str, p: u32, seed: u64, track: &str) -> GoalResult {
    let prog = tree_reduce_1().apply_src(eval).unwrap();
    let mut cfg = MachineConfig::with_nodes(p).seed(seed);
    if !track.is_empty() {
        cfg = cfg.track(track);
    }
    run_parsed_goal(&prog, &format!("create({p}, reduce({tree}, Value))"), cfg).unwrap()
}

fn tr2(eval: &str, tree: &str, p: u32, seed: u64, track: &str) -> GoalResult {
    let prog = tree_reduce_2().apply_src(eval).unwrap();
    let mut cfg = MachineConfig::with_nodes(p).seed(seed);
    if !track.is_empty() {
        cfg = cfg.track(track);
    }
    run_parsed_goal(&prog, &format!("create({p}, tr2({tree}, Value))"), cfg).unwrap()
}

#[test]
fn e1_random_mapping_balances_when_tree_is_large() {
    // §3.1: "should produce a reasonably balanced load if |Nodes| >>
    // |Processors|".
    let p = 4u32;
    let small = tr1(&uniform_eval(50), &random_tree_src(p, 101), p, 101, "");
    let large = tr1(&uniform_eval(50), &random_tree_src(p * 64, 101), p, 101, "");
    let imb_small = small.report.metrics.imbalance().unwrap();
    let imb_large = large.report.metrics.imbalance().unwrap();
    assert!(
        imb_large < imb_small,
        "imbalance should fall: {imb_small:.2} -> {imb_large:.2}"
    );
    assert!(imb_large < 1.5, "large-tree imbalance {imb_large:.2}");
}

#[test]
fn e2_tr1_stacks_evaluations_tr2_sequences_them() {
    let tree = random_tree_src(96, 11);
    let r1 = tr1(&heavy_eval(10), &tree, 4, 11, "eval");
    let r2 = tr2(&heavy_eval(10), &tree, 4, 11, "eval");
    assert!(
        r1.report.metrics.max_peak_tracked() >= 5,
        "TR1 peak {}",
        r1.report.metrics.max_peak_tracked()
    );
    assert_eq!(r2.report.metrics.max_peak_tracked(), 1, "TR2 sequences");
    // TR2's price: a pending-value queue, bounded by the tree size.
    let pend = r2.report.metrics.max_gauge("pending");
    assert!((1..96).contains(&pend), "pending {pend}");
}

#[test]
fn e3_tr2_communication_bound_holds_over_seeds() {
    for seed in 1..8u64 {
        let leaves = 32u32;
        let tree = random_tree_src(leaves, seed);
        let r = tr2(ARITH_EVAL, &tree, 5, seed, "");
        let crossings = r
            .report
            .metrics
            .port_msgs_by_functor
            .get("value")
            .copied()
            .unwrap_or(0);
        assert!(
            crossings <= (leaves - 1) as u64,
            "seed {seed}: {crossings} > {}",
            leaves - 1
        );
    }
}

#[test]
fn e4_both_motifs_speed_up_with_processors() {
    let tree = random_tree_src(64, 21);
    let eval = uniform_eval(200);
    let m1 = tr1(&eval, &tree, 1, 21, "").report.metrics.makespan;
    let m8 = tr1(&eval, &tree, 8, 21, "").report.metrics.makespan;
    assert!(
        (m1 as f64 / m8 as f64) > 2.0,
        "TR1 speedup {:.2}",
        m1 as f64 / m8 as f64
    );
    let n1 = tr2(&eval, &tree, 1, 21, "").report.metrics.makespan;
    let n8 = tr2(&eval, &tree, 8, 21, "").report.metrics.makespan;
    assert!(
        (n1 as f64 / n8 as f64) > 2.0,
        "TR2 speedup {:.2}",
        n1 as f64 / n8 as f64
    );
}

#[test]
fn e6_composition_is_free() {
    // The composed Tree-Reduce-1 performs exactly like the hand-written
    // Figure 2 program: same values, same reduction counts.
    let hand_src = format!(
        "{ARITH_EVAL}\n{}\n{}",
        bench::FIGURE2_HANDWRITTEN,
        algorithmic_motifs::motifs::SERVER_LIBRARY
    );
    for seed in [1u64, 9] {
        let tree = random_tree_src(16, seed);
        let hand = algorithmic_motifs::strand_machine::run_goal(
            &hand_src,
            &format!("create(4, reduce({tree}, Value))"),
            MachineConfig::with_nodes(4).seed(seed),
        )
        .unwrap();
        let composed = tr1(ARITH_EVAL, &tree, 4, seed, "");
        assert_eq!(
            hand.bindings["Value"], composed.bindings["Value"],
            "values differ at seed {seed}"
        );
        assert_eq!(
            hand.report.metrics.total_reductions, composed.report.metrics.total_reductions,
            "reduction counts differ at seed {seed}"
        );
    }
}

#[test]
fn e7_hierarchy_cuts_manager_load() {
    let costs: Vec<u64> = vec![5; 120];
    let p = 17u32;
    let p1 = scheduler().apply_src(BURN_TASK).unwrap();
    let r1 = run_parsed_goal(
        &p1,
        &format!("create({p}, start({}, Results))", tasks_src(&costs)),
        MachineConfig::with_nodes(p).seed(7),
    )
    .unwrap();
    let p2 = scheduler_hierarchical().apply_src(BURN_TASK).unwrap();
    let r2 = run_parsed_goal(
        &p2,
        &format!("create({p}, start2({}, Results, 4))", tasks_src(&costs)),
        MachineConfig::with_nodes(p).seed(7),
    )
    .unwrap();
    assert_eq!(r1.bindings["Results"].as_proper_list().unwrap().len(), 120);
    assert_eq!(r2.bindings["Results"].as_proper_list().unwrap().len(), 120);
    assert!(r2.report.metrics.busy[0] * 2 < r1.report.metrics.busy[0]);
}

#[test]
fn e10_task_pragma_beats_oblivious_mapping_on_skew() {
    // §2.2's scheduler pragma (demand dispatch) vs §3.3's random mapping
    // on one skewed-cost program.
    const APP: &str = r#"
        gen(0, V) :- V := 0.
        gen(N, V) :- N > 0 |
            cost(N, C),
            burn(C, V1)@task,
            N1 := N - 1,
            gen(N1, V2),
            add(V1, V2, V).
        cost(N, C) :- M := N mod 13, C := 30 + M * M * M.
        burn(C, V) :- work(C), V := 1.
        add(V1, V2, V) :- V := V1 + V2.
    "#;
    let p = 9u32;
    let n = 80u32;
    let task_prog = algorithmic_motifs::motifs::task_scheduler_with_entries(&[("gen", 2)])
        .apply_src(APP)
        .unwrap();
    let task_run = run_parsed_goal(
        &task_prog,
        &algorithmic_motifs::motifs::boot_goal(p, "gen", &[&n.to_string(), "V"]),
        MachineConfig::with_nodes(p).seed(13),
    )
    .unwrap();
    let rand_prog = algorithmic_motifs::motifs::random_with_entries(&[("gen", 2)])
        .apply_src(&APP.replace("@task", "@random"))
        .unwrap();
    let rand_run = run_parsed_goal(
        &rand_prog,
        &format!("create({p}, gen({n}, V))"),
        MachineConfig::with_nodes(p).seed(13),
    )
    .unwrap();
    assert_eq!(task_run.bindings["V"].to_string(), n.to_string());
    assert_eq!(rand_run.bindings["V"].to_string(), n.to_string());
    assert!(
        task_run.report.metrics.makespan < rand_run.report.metrics.makespan,
        "demand {} should beat random {}",
        task_run.report.metrics.makespan,
        rand_run.report.metrics.makespan
    );
}

#[test]
fn a1_tr2_tolerates_latency_better() {
    let tree = random_tree_src(64, 31);
    let eval = uniform_eval(50);
    let slow = |lat: u64, tr2_flag: bool| -> u64 {
        if tr2_flag {
            tr2(&eval, &tree, 8, 31, "").report.metrics.makespan
        } else {
            let prog = tree_reduce_1().apply_src(&eval).unwrap();
            run_parsed_goal(
                &prog,
                &format!("create(8, reduce({tree}, Value))"),
                MachineConfig::with_nodes(8).seed(31).latency(lat),
            )
            .unwrap()
            .report
            .metrics
            .makespan
        }
    };
    // TR1 degrades with heavy latency far more than proportionally.
    let tr1_fast = slow(1, false);
    let prog = tree_reduce_1().apply_src(&eval).unwrap();
    let tr1_slow = run_parsed_goal(
        &prog,
        &format!("create(8, reduce({tree}, Value))"),
        MachineConfig::with_nodes(8).seed(31).latency(1000),
    )
    .unwrap()
    .report
    .metrics
    .makespan;
    assert!(
        tr1_slow as f64 / tr1_fast as f64 > 2.0,
        "TR1 {tr1_fast} -> {tr1_slow}"
    );
}

#[test]
fn e8_alignment_is_strategy_independent() {
    use algorithmic_motifs::seqalign::{
        align_family_parallel, align_family_seq, generate_family, FamilyParams, ScoreParams,
    };
    use algorithmic_motifs::skeletons::{Labeling, Pool};
    let fam = generate_family(&FamilyParams {
        leaves: 10,
        ancestral_len: 60,
        seed: 77,
        ..Default::default()
    });
    let p = ScoreParams::default();
    let reference = align_family_seq(&fam.sequences, &p);
    assert!(reference.column_identity() > 0.7);
    for labeling in [Labeling::Random(1), Labeling::Paper(1), Labeling::Static] {
        let pool = Pool::new(3, false);
        let out = align_family_parallel(&pool, &fam.sequences, &p, labeling);
        assert_eq!(out.value, reference);
        pool.shutdown();
    }
}

#[test]
fn a2_supervised_ring_delivers_under_message_loss() {
    // ISSUE 3's acceptance bar: at drop probability 0.1 the supervised
    // ring still delivers >= 99% of tokens, at a bounded makespan cost.
    let seeds: Vec<u64> = (1..=10).collect();
    let pts = bench::fault_sweep(6, &[0.0, 0.1], &seeds);
    let (base, lossy) = (&pts[0], &pts[1]);
    assert_eq!(base.delivery_rate(), 1.0, "lossless baseline: {base:?}");
    assert!(
        lossy.delivery_rate() >= 0.99,
        "delivery at p=0.1: {:.3} ({lossy:?})",
        lossy.delivery_rate()
    );
    assert_eq!(lossy.completed, lossy.runs, "every run must complete");
    let overhead = lossy.mean_makespan / base.mean_makespan;
    assert!(
        overhead < 8.0,
        "makespan overhead at p=0.1 must stay bounded, got {overhead:.2}x"
    );
}
