//! Property-based integration tests: the invariants that must hold for
//! *every* tree, list, and seed, not just the examples.

use algorithmic_motifs::motifs::{
    self, dc, random_tree_src, sequential_reduce, tree_reduce_1, tree_reduce_2, ARITH_EVAL,
};
use algorithmic_motifs::skeletons::{self, Labeling, Pool};
use algorithmic_motifs::strand_machine::{run_parsed_goal, FaultPlan, MachineConfig};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Both tree-reduction motifs compute the sequential result for any
    /// random tree shape, seed and processor count.
    #[test]
    fn tree_motifs_agree_with_sequential(
        leaves in 2u32..24,
        seed in 0u64..1000,
        p in 1u32..6,
    ) {
        let tree = random_tree_src(leaves, seed);
        let expected = sequential_reduce(&tree).to_string();

        let prog1 = tree_reduce_1().apply_src(ARITH_EVAL).unwrap();
        let r1 = run_parsed_goal(
            &prog1,
            &format!("create({p}, reduce({tree}, Value))"),
            MachineConfig::with_nodes(p).seed(seed),
        ).unwrap();
        prop_assert_eq!(r1.bindings["Value"].to_string(), expected.clone());

        let prog2 = tree_reduce_2().apply_src(ARITH_EVAL).unwrap();
        let r2 = run_parsed_goal(
            &prog2,
            &format!("create({p}, tr2({tree}, Value))"),
            MachineConfig::with_nodes(p).seed(seed),
        ).unwrap();
        prop_assert_eq!(r2.bindings["Value"].to_string(), expected);
    }

    /// Tree-Reduce-2's communication bound: value crossings never exceed
    /// the number of internal nodes (§3.5).
    #[test]
    fn tr2_crossing_bound(leaves in 2u32..32, seed in 0u64..500, p in 2u32..8) {
        let tree = random_tree_src(leaves, seed);
        let prog = tree_reduce_2().apply_src(ARITH_EVAL).unwrap();
        let r = run_parsed_goal(
            &prog,
            &format!("create({p}, tr2({tree}, Value))"),
            MachineConfig::with_nodes(p).seed(seed),
        ).unwrap();
        let crossings = r.report.metrics.port_msgs_by_functor
            .get("value").copied().unwrap_or(0);
        prop_assert!(crossings <= (leaves - 1) as u64,
            "{crossings} crossings > {} internal nodes", leaves - 1);
    }

    /// Tree-Reduce-2 sequences evaluation: at most one live eval per node.
    #[test]
    fn tr2_sequencing_invariant(leaves in 2u32..24, seed in 0u64..200) {
        let tree = random_tree_src(leaves, seed);
        let prog = tree_reduce_2().apply_src(ARITH_EVAL).unwrap();
        let cfg = MachineConfig::with_nodes(3).seed(seed).track("eval");
        let r = run_parsed_goal(
            &prog, &format!("create(3, tr2({tree}, Value))"), cfg,
        ).unwrap();
        prop_assert!(r.report.metrics.max_peak_tracked() <= 1);
    }

    /// The skeleton engine computes the sequential result under every
    /// labeling, for arbitrary trees.
    #[test]
    fn skeleton_reduce_matches_sequential(
        leaves in 1usize..40,
        seed in 0u64..1000,
        workers in 1usize..5,
    ) {
        let tree = skeletons::random_int_tree(leaves, seed);
        let expected = skeletons::reduce_seq(&tree, &|op, l, r| skeletons::int_eval(op, l, r));
        for labeling in [Labeling::Random(seed), Labeling::Paper(seed), Labeling::Static] {
            let pool = Pool::new(workers, false);
            let out = skeletons::reduce(
                &pool,
                skeletons::random_int_tree(leaves, seed),
                labeling,
                skeletons::int_eval,
            );
            prop_assert_eq!(out.value, expected);
            pool.shutdown();
        }
    }

    /// The paper labeling's crossing bound at skeleton level.
    #[test]
    fn skeleton_paper_labeling_bound(
        leaves in 2usize..64,
        seed in 0u64..1000,
        workers in 2usize..8,
    ) {
        let pool = Pool::new(workers, false);
        let out = skeletons::reduce(
            &pool,
            skeletons::random_int_tree(leaves, seed),
            Labeling::Paper(seed),
            skeletons::int_eval,
        );
        prop_assert!(out.cross_child_values < leaves);
        pool.shutdown();
    }

    /// Mergesort through the divide-and-conquer motif sorts any list.
    #[test]
    fn dc_mergesort_sorts(xs in proptest::collection::vec(-100i64..100, 0..24), seed in 0u64..100) {
        let prog = dc::divide_and_conquer().apply_src(dc::MERGESORT_APP).unwrap();
        let goal = format!("create(3, dc({}, S))", dc::int_list_src(&xs));
        let r = run_parsed_goal(&prog, &goal, MachineConfig::with_nodes(3).seed(seed)).unwrap();
        let mut expected = xs.clone();
        expected.sort_unstable();
        let got: Vec<i64> = r.bindings["S"].as_proper_list().unwrap().iter().map(|t| {
            t.to_string().parse::<i64>().unwrap()
        }).collect();
        prop_assert_eq!(got, expected);
    }

    /// Determinism: the whole pipeline (transform → compile → simulate) is
    /// a pure function of (program, goal, config).
    #[test]
    fn simulator_is_deterministic(leaves in 2u32..16, seed in 0u64..100) {
        let tree = random_tree_src(leaves, seed);
        let prog = tree_reduce_1().apply_src(ARITH_EVAL).unwrap();
        let goal = format!("create(4, reduce({tree}, Value))");
        let a = run_parsed_goal(&prog, &goal, MachineConfig::with_nodes(4).seed(seed)).unwrap();
        let b = run_parsed_goal(&prog, &goal, MachineConfig::with_nodes(4).seed(seed)).unwrap();
        prop_assert_eq!(a.report.metrics.total_reductions, b.report.metrics.total_reductions);
        prop_assert_eq!(a.report.metrics.makespan, b.report.metrics.makespan);
        prop_assert_eq!(a.report.metrics.messages, b.report.metrics.messages);
    }

    /// Fault injection is part of the deterministic state: the same program
    /// seed plus the same [`FaultPlan`] (its own seed, drop/dup/delay
    /// probabilities and a crash) reproduce the run bit-for-bit — every
    /// fault counter, the makespan, the reduction count.
    #[test]
    fn fault_injection_is_deterministic(
        leaves in 2u32..16,
        seed in 0u64..100,
        fault_seed in 0u64..100,
        drop_pct in 0u32..25,
    ) {
        let tree = random_tree_src(leaves, seed);
        let prog = tree_reduce_1().apply_src(ARITH_EVAL).unwrap();
        let goal = format!("create(4, reduce({tree}, Value))");
        let plan = FaultPlan::default()
            .seed(fault_seed)
            .drop_prob(drop_pct as f64 / 100.0)
            .dup_prob(0.05)
            .delay(0.1, 40)
            .slowdown(2, 3)
            .crash(3, 5_000);
        let run = || {
            // Duplicated spawns can legitimately re-run `:=` in a program
            // that was never hardened for redelivery; collect those errors
            // instead of aborting, and require they reproduce too.
            let mut cfg = MachineConfig::with_nodes(4).seed(seed).faults(plan.clone());
            cfg.fail_fast = false;
            run_parsed_goal(&prog, &goal, cfg).unwrap()
        };
        let (a, b) = (run(), run());
        prop_assert_eq!(a.report.status, b.report.status);
        prop_assert_eq!(a.report.errors.len(), b.report.errors.len());
        prop_assert_eq!(a.report.metrics.total_reductions, b.report.metrics.total_reductions);
        prop_assert_eq!(a.report.metrics.makespan, b.report.metrics.makespan);
        prop_assert_eq!(a.report.metrics.msgs_dropped, b.report.metrics.msgs_dropped);
        prop_assert_eq!(a.report.metrics.msgs_duplicated, b.report.metrics.msgs_duplicated);
        prop_assert_eq!(a.report.metrics.msgs_delayed, b.report.metrics.msgs_delayed);
        prop_assert_eq!(a.report.metrics.nodes_crashed, b.report.metrics.nodes_crashed);
        prop_assert_eq!(a.report.output, b.report.output);
    }

    /// Pretty-printing round-trips through the parser for motif outputs.
    #[test]
    fn transformed_programs_reparse(seed in 0u64..50) {
        let _ = seed;
        for motif in [tree_reduce_1(), tree_reduce_2()] {
            let p = motif.apply_src(ARITH_EVAL).unwrap();
            let printed = algorithmic_motifs::strand_parse::pretty(&p);
            let reparsed = algorithmic_motifs::strand_parse::parse_program(&printed).unwrap();
            prop_assert_eq!(p, reparsed);
        }
    }
}

#[test]
fn motif_composition_is_associative() {
    // (Server ∘ Rand) ∘ Tree1 == Server ∘ (Rand ∘ Tree1).
    let app = algorithmic_motifs::strand_parse::parse_program(ARITH_EVAL).unwrap();
    let left = motifs::server()
        .compose(&motifs::rand_map())
        .compose(&motifs::tree1())
        .apply(&app)
        .unwrap();
    let right = motifs::server()
        .compose(&motifs::rand_map().compose(&motifs::tree1()))
        .apply(&app)
        .unwrap();
    assert_eq!(
        algorithmic_motifs::strand_parse::pretty(&left),
        algorithmic_motifs::strand_parse::pretty(&right)
    );
}
