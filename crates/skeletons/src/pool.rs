//! A placement-aware work-stealing thread pool.
//!
//! The simulated multicomputer in `strand-machine` models the paper's
//! message-passing machines; this pool is the shared-memory analogue used
//! by the typed skeletons. It supports exactly the placement spectrum the
//! experiments compare:
//!
//! * **global queue** ([`Pool::spawn`]) — demand-driven, like the
//!   scheduler motif's manager;
//! * **named-worker queues** ([`Pool::spawn_at`]) — the paper's `@node`
//!   placement (random mapping pushes to a random worker's queue);
//! * **work stealing** (optional) — the modern baseline the paper predates.
//!
//! Per-worker metrics (tasks run, busy nanoseconds, steals) feed the
//! load-balance experiments (E1/E4 at real-thread level).

use crossbeam::deque::{Injector, Stealer, Worker};
use parking_lot::{Condvar, Mutex};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

type Job = Box<dyn FnOnce() + Send + 'static>;

/// A set of named OS worker threads with idempotent teardown — the
/// spawn/join scaffolding shared by the skeleton [`Pool`] and the
/// `strand-parallel` execution backend's node workers.
pub struct WorkerSet {
    handles: Mutex<Vec<std::thread::JoinHandle<()>>>,
}

impl WorkerSet {
    /// Spawn `n` workers named `{name_prefix}-{idx}`, each running the body
    /// produced for its index. Worker bodies are responsible for exiting on
    /// their own shutdown signal; [`WorkerSet::join`] only waits.
    pub fn spawn(
        n: usize,
        name_prefix: &str,
        mut make_worker: impl FnMut(usize) -> Box<dyn FnOnce() + Send>,
    ) -> WorkerSet {
        assert!(n > 0, "worker set needs at least one worker");
        let handles = (0..n)
            .map(|idx| {
                let body = make_worker(idx);
                std::thread::Builder::new()
                    .name(format!("{name_prefix}-{idx}"))
                    .spawn(body)
                    .expect("spawn worker thread")
            })
            .collect();
        WorkerSet {
            handles: Mutex::new(handles),
        }
    }

    /// Join every worker. Idempotent: later calls (and calls racing from
    /// several clones of an owner) are no-ops.
    pub fn join(&self) {
        let mut handles = self.handles.lock();
        for h in handles.drain(..) {
            let _ = h.join();
        }
    }
}

/// Per-worker execution counters.
#[derive(Debug, Default)]
pub struct WorkerStats {
    pub tasks: AtomicU64,
    pub busy_nanos: AtomicU64,
    pub steals: AtomicU64,
    pub panics: AtomicU64,
}

/// Snapshot of one worker's counters.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct WorkerSnapshot {
    pub tasks: u64,
    pub busy_nanos: u64,
    pub steals: u64,
    pub panics: u64,
}

struct Shared {
    global: Injector<Job>,
    assigned: Vec<Injector<Job>>,
    stealers: Vec<Stealer<Job>>,
    steal_enabled: bool,
    shutdown: AtomicBool,
    sleep_lock: Mutex<()>,
    wakeup: Condvar,
    stats: Vec<WorkerStats>,
}

/// The pool. Cloning shares the same workers.
#[derive(Clone)]
pub struct Pool {
    shared: Arc<Shared>,
    workers: Arc<WorkerSet>,
}

impl Pool {
    /// Create a pool with `n` workers. With `steal` set, idle workers steal
    /// from busy workers' local deques; otherwise each worker only serves
    /// its own assigned queue and the global queue (faithful to the paper's
    /// machines, where work never migrated without an explicit message).
    pub fn new(n: usize, steal: bool) -> Pool {
        assert!(n > 0, "pool needs at least one worker");
        let mut locals: Vec<Option<Worker<Job>>> =
            (0..n).map(|_| Some(Worker::new_fifo())).collect();
        let stealers = locals
            .iter()
            .map(|w| w.as_ref().expect("fresh local").stealer())
            .collect();
        let shared = Arc::new(Shared {
            global: Injector::new(),
            assigned: (0..n).map(|_| Injector::new()).collect(),
            stealers,
            steal_enabled: steal,
            shutdown: AtomicBool::new(false),
            sleep_lock: Mutex::new(()),
            wakeup: Condvar::new(),
            stats: (0..n).map(|_| WorkerStats::default()).collect(),
        });
        let workers = WorkerSet::spawn(n, "skeleton-worker", |idx| {
            let shared = Arc::clone(&shared);
            let local = locals[idx].take().expect("one spawn per worker");
            Box::new(move || worker_loop(shared, idx, local))
        });
        Pool {
            shared,
            workers: Arc::new(workers),
        }
    }

    /// Number of workers.
    pub fn workers(&self) -> usize {
        self.shared.assigned.len()
    }

    /// Submit a job to the global (demand-driven) queue.
    pub fn spawn(&self, job: impl FnOnce() + Send + 'static) {
        self.shared.global.push(Box::new(job));
        self.shared.wakeup.notify_all();
    }

    /// Submit a job to a specific worker's queue (the `@node` placement).
    pub fn spawn_at(&self, worker: usize, job: impl FnOnce() + Send + 'static) {
        let w = worker % self.workers();
        self.shared.assigned[w].push(Box::new(job));
        self.shared.wakeup.notify_all();
    }

    /// Snapshot all worker counters.
    pub fn stats(&self) -> Vec<WorkerSnapshot> {
        self.shared
            .stats
            .iter()
            .map(|s| WorkerSnapshot {
                tasks: s.tasks.load(Ordering::Relaxed),
                busy_nanos: s.busy_nanos.load(Ordering::Relaxed),
                steals: s.steals.load(Ordering::Relaxed),
                panics: s.panics.load(Ordering::Relaxed),
            })
            .collect()
    }

    /// Load imbalance over busy time: max/mean (1.0 = perfect). `None`
    /// until some work ran.
    pub fn imbalance(&self) -> Option<f64> {
        let stats = self.stats();
        let max = stats.iter().map(|s| s.busy_nanos).max()? as f64;
        let sum: u64 = stats.iter().map(|s| s.busy_nanos).sum();
        if sum == 0 {
            return None;
        }
        Some(max / (sum as f64 / stats.len() as f64))
    }

    /// Stop all workers after draining outstanding jobs submitted so far.
    /// Idempotent; also called on drop of the last clone.
    pub fn shutdown(&self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        self.shared.wakeup.notify_all();
        self.workers.join();
    }
}

impl Drop for Pool {
    fn drop(&mut self) {
        if Arc::strong_count(&self.workers) == 1 {
            self.shutdown();
        }
    }
}

fn worker_loop(shared: Arc<Shared>, me: usize, local: Worker<Job>) {
    loop {
        if let Some(job) = find_job(&shared, me, &local) {
            let start = Instant::now();
            // A panicking job must not take the worker thread down with it:
            // queued work behind it (pinned there when stealing is off)
            // would never run and `TaskGroup::wait` would hang. The job's
            // captured state (tickets, result slots) unwinds normally, so
            // completion still fires via `Ticket::drop`.
            let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(job));
            let stats = &shared.stats[me];
            if outcome.is_err() {
                stats.panics.fetch_add(1, Ordering::Relaxed);
            }
            stats.tasks.fetch_add(1, Ordering::Relaxed);
            stats
                .busy_nanos
                .fetch_add(start.elapsed().as_nanos() as u64, Ordering::Relaxed);
            continue;
        }
        if shared.shutdown.load(Ordering::SeqCst) {
            // One more sweep to drain anything racing with shutdown.
            if find_nothing(&shared, me, &local) {
                return;
            }
            continue;
        }
        let mut guard = shared.sleep_lock.lock();
        shared.wakeup.wait_for(&mut guard, Duration::from_millis(1));
    }
}

fn find_job(shared: &Shared, me: usize, local: &Worker<Job>) -> Option<Job> {
    if let Some(job) = local.pop() {
        return Some(job);
    }
    loop {
        match shared.assigned[me].steal_batch_and_pop(local) {
            crossbeam::deque::Steal::Success(job) => return Some(job),
            crossbeam::deque::Steal::Retry => continue,
            crossbeam::deque::Steal::Empty => break,
        }
    }
    loop {
        match shared.global.steal_batch_and_pop(local) {
            crossbeam::deque::Steal::Success(job) => return Some(job),
            crossbeam::deque::Steal::Retry => continue,
            crossbeam::deque::Steal::Empty => break,
        }
    }
    if shared.steal_enabled {
        let n = shared.stealers.len();
        for k in 1..n {
            let victim = (me + k) % n;
            // Steal from the victim's local deque and its assigned queue.
            loop {
                match shared.stealers[victim].steal() {
                    crossbeam::deque::Steal::Success(job) => {
                        shared.stats[me].steals.fetch_add(1, Ordering::Relaxed);
                        return Some(job);
                    }
                    crossbeam::deque::Steal::Retry => continue,
                    crossbeam::deque::Steal::Empty => break,
                }
            }
            loop {
                match shared.assigned[victim].steal_batch_and_pop(local) {
                    crossbeam::deque::Steal::Success(job) => {
                        shared.stats[me].steals.fetch_add(1, Ordering::Relaxed);
                        return Some(job);
                    }
                    crossbeam::deque::Steal::Retry => continue,
                    crossbeam::deque::Steal::Empty => break,
                }
            }
        }
    }
    None
}

fn find_nothing(shared: &Shared, me: usize, local: &Worker<Job>) -> bool {
    // During shutdown: workers must drain their own queues and the global
    // queue (assigned work cannot migrate when stealing is off).
    local.is_empty() && shared.assigned[me].is_empty() && shared.global.is_empty()
}

/// A fork-join completion group: jobs register before running, spawnees
/// can register more, `wait` blocks until everything finished. Clones
/// share the same group.
#[derive(Clone)]
pub struct TaskGroup {
    inner: Arc<GroupInner>,
}

struct GroupInner {
    pending: AtomicUsize,
    lock: Mutex<()>,
    done: Condvar,
}

impl Default for TaskGroup {
    fn default() -> Self {
        Self::new()
    }
}

impl TaskGroup {
    pub fn new() -> TaskGroup {
        TaskGroup {
            inner: Arc::new(GroupInner {
                pending: AtomicUsize::new(0),
                lock: Mutex::new(()),
                done: Condvar::new(),
            }),
        }
    }

    /// Register one unit of pending work. Call *before* submitting the job.
    pub fn add(&self) -> Ticket {
        self.inner.pending.fetch_add(1, Ordering::SeqCst);
        Ticket {
            inner: Arc::clone(&self.inner),
        }
    }

    /// Block until every registered unit completed.
    pub fn wait(&self) {
        let mut guard = self.inner.lock.lock();
        while self.inner.pending.load(Ordering::SeqCst) > 0 {
            self.inner.done.wait(&mut guard);
        }
    }
}

/// Completion token for one unit of work; completing it may release
/// `TaskGroup::wait`.
pub struct Ticket {
    inner: Arc<GroupInner>,
}

impl Ticket {
    /// Mark the unit complete.
    pub fn done(self) {
        // Completion runs in Drop.
    }
}

impl Drop for Ticket {
    fn drop(&mut self) {
        if self.inner.pending.fetch_sub(1, Ordering::SeqCst) == 1 {
            let _guard = self.inner.lock.lock();
            self.inner.done.notify_all();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU32;

    #[test]
    fn runs_spawned_jobs() {
        let pool = Pool::new(4, true);
        let counter = Arc::new(AtomicU32::new(0));
        let group = TaskGroup::new();
        for _ in 0..100 {
            let c = Arc::clone(&counter);
            let t = group.add();
            pool.spawn(move || {
                c.fetch_add(1, Ordering::SeqCst);
                t.done();
            });
        }
        group.wait();
        assert_eq!(counter.load(Ordering::SeqCst), 100);
        pool.shutdown();
    }

    #[test]
    fn spawn_at_without_steal_pins_to_worker() {
        let pool = Pool::new(4, false);
        let group = TaskGroup::new();
        for _ in 0..40 {
            let t = group.add();
            pool.spawn_at(2, move || {
                std::thread::sleep(Duration::from_micros(200));
                t.done();
            });
        }
        group.wait();
        let stats = pool.stats();
        assert_eq!(stats[2].tasks, 40, "{stats:?}");
        assert_eq!(stats[0].tasks + stats[1].tasks + stats[3].tasks, 0);
        pool.shutdown();
    }

    #[test]
    fn stealing_spreads_pinned_work() {
        let pool = Pool::new(4, true);
        let group = TaskGroup::new();
        for _ in 0..200 {
            let t = group.add();
            pool.spawn_at(0, move || {
                std::thread::sleep(Duration::from_micros(300));
                t.done();
            });
        }
        group.wait();
        let stats = pool.stats();
        let others: u64 = stats[1..].iter().map(|s| s.tasks).sum();
        assert!(others > 0, "stealing should move some work: {stats:?}");
        assert_eq!(stats.iter().map(|s| s.tasks).sum::<u64>(), 200);
        pool.shutdown();
    }

    #[test]
    fn nested_spawning_fans_out() {
        let pool = Pool::new(4, true);
        let group = TaskGroup::new();
        let counter = Arc::new(AtomicU32::new(0));

        fn fan(pool: &Pool, group: &TaskGroup, counter: &Arc<AtomicU32>, depth: u32) {
            counter.fetch_add(1, Ordering::SeqCst);
            if depth == 0 {
                return;
            }
            for _ in 0..2 {
                let t = group.add();
                let pool2 = pool.clone();
                let g2 = group.clone();
                let c2 = Arc::clone(counter);
                pool.spawn(move || {
                    fan(&pool2, &g2, &c2, depth - 1);
                    t.done();
                });
            }
        }

        let t = group.add();
        let pool2 = pool.clone();
        let g2 = group.clone();
        let c2 = Arc::clone(&counter);
        pool.spawn(move || {
            fan(&pool2, &g2, &c2, 6);
            t.done();
        });
        group.wait();
        // 2^7 - 1 = 127 calls of fan.
        assert_eq!(counter.load(Ordering::SeqCst), 127);
        pool.shutdown();
    }

    #[test]
    fn shutdown_drains_outstanding_work() {
        let pool = Pool::new(2, false);
        let counter = Arc::new(AtomicU32::new(0));
        for _ in 0..50 {
            let c = Arc::clone(&counter);
            pool.spawn(move || {
                c.fetch_add(1, Ordering::SeqCst);
            });
        }
        pool.shutdown();
        assert_eq!(counter.load(Ordering::SeqCst), 50);
    }

    #[test]
    fn panicking_job_neither_kills_worker_nor_hangs_wait() {
        // One worker, no stealing: if the panic killed the thread, the
        // jobs queued behind it could never run and wait() would hang.
        let pool = Pool::new(1, false);
        let group = TaskGroup::new();
        let counter = Arc::new(AtomicU32::new(0));
        let t = group.add();
        pool.spawn_at(0, move || {
            let _t = t;
            panic!("task failure is survivable");
        });
        for _ in 0..10 {
            let c = Arc::clone(&counter);
            let t = group.add();
            pool.spawn_at(0, move || {
                c.fetch_add(1, Ordering::SeqCst);
                t.done();
            });
        }
        group.wait();
        assert_eq!(counter.load(Ordering::SeqCst), 10);
        // Join workers before reading stats: the final ticket fires inside
        // the job, a moment before that job's counter update.
        pool.shutdown();
        let stats = pool.stats();
        assert_eq!(stats[0].panics, 1, "{stats:?}");
        assert_eq!(stats[0].tasks, 11, "panicked job still counts as run");
    }

    #[test]
    fn stats_accumulate_busy_time() {
        let pool = Pool::new(2, true);
        let group = TaskGroup::new();
        for _ in 0..8 {
            let t = group.add();
            pool.spawn(move || {
                std::thread::sleep(Duration::from_millis(2));
                t.done();
            });
        }
        group.wait();
        let total: u64 = pool.stats().iter().map(|s| s.busy_nanos).sum();
        assert!(total >= 8 * 1_500_000, "busy nanos {total}");
        pool.shutdown();
    }
}
