//! Generic divide-and-conquer skeleton (§4 future work), the typed
//! analogue of `motifs::dc`.
//!
//! The problem type decides itself: [`DcProblem::case`] returns either a
//! directly-computed solution or two subproblems; [`DcProblem::merge`]
//! combines sub-solutions. `run` executes the recursion on the pool with a
//! sequential cutoff (below the cutoff the recursion stays on the current
//! worker — the standard grain-size control the paper's era lacked).

use crate::pool::{Pool, TaskGroup};
use parking_lot::Mutex;
use std::sync::Arc;

/// What a problem divides into.
pub enum Case<P, S> {
    /// Solved directly.
    Base(S),
    /// Split into two subproblems.
    Split(P, P),
}

/// A divide-and-conquer problem.
pub trait DcProblem: Sized + Send + 'static {
    type Solution: Send + 'static;

    /// Classify: solve directly or split.
    fn case(self) -> Case<Self, Self::Solution>;

    /// Combine two sub-solutions.
    fn merge(left: Self::Solution, right: Self::Solution) -> Self::Solution;

    /// Problems at or below this size are solved sequentially on the
    /// current worker (measured by [`DcProblem::size`]).
    fn cutoff() -> usize {
        1
    }

    /// Problem size for the cutoff test.
    fn size(&self) -> usize;
}

/// Solve sequentially (reference and below-cutoff path).
pub fn run_seq<P: DcProblem>(problem: P) -> P::Solution {
    match problem.case() {
        Case::Base(s) => s,
        Case::Split(a, b) => {
            let sa = run_seq(a);
            let sb = run_seq(b);
            P::merge(sa, sb)
        }
    }
}

/// Solve on the pool.
pub fn run<P: DcProblem>(pool: &Pool, problem: P) -> P::Solution {
    let group = TaskGroup::new();
    let slot: Arc<Mutex<Option<P::Solution>>> = Arc::new(Mutex::new(None));
    spawn_dc(pool, &group, problem, {
        let slot = Arc::clone(&slot);
        Box::new(move |s| {
            *slot.lock() = Some(s);
        })
    });
    group.wait();
    match Arc::try_unwrap(slot) {
        Ok(m) => m.into_inner().expect("root solution delivered"),
        Err(arc) => arc.lock().take().expect("root solution delivered"),
    }
}

type Sink<S> = Box<dyn FnOnce(S) + Send>;

fn spawn_dc<P: DcProblem>(pool: &Pool, group: &TaskGroup, problem: P, sink: Sink<P::Solution>) {
    let ticket = group.add();
    let pool2 = pool.clone();
    let group2 = group.clone();
    pool.spawn(move || {
        solve(&pool2, &group2, problem, sink);
        ticket.done();
    });
}

fn solve<P: DcProblem>(pool: &Pool, group: &TaskGroup, problem: P, sink: Sink<P::Solution>) {
    if problem.size() <= P::cutoff() {
        sink(run_seq(problem));
        return;
    }
    match problem.case() {
        Case::Base(s) => sink(s),
        Case::Split(a, b) => {
            // Merge point: whichever half finishes second merges.
            let pending: Arc<Mutex<Option<P::Solution>>> = Arc::new(Mutex::new(None));
            let sink = Arc::new(Mutex::new(Some(sink)));
            let make_sink = |is_left: bool| -> Sink<P::Solution> {
                let pending = Arc::clone(&pending);
                let sink = Arc::clone(&sink);
                Box::new(move |s: P::Solution| {
                    let other = {
                        let mut slot = pending.lock();
                        match slot.take() {
                            None => {
                                *slot = Some(s);
                                return;
                            }
                            Some(o) => o,
                        }
                    };
                    let merged = if is_left {
                        P::merge(s, other)
                    } else {
                        P::merge(other, s)
                    };
                    let sink = sink.lock().take().expect("sink used once");
                    sink(merged);
                })
            };
            let right_sink = make_sink(false);
            let left_sink = make_sink(true);
            spawn_dc(pool, group, b, right_sink);
            // Solve the left half on the current worker (fork one, keep one
            // — the shape of the paper's Tree1 body).
            solve(pool, group, a, left_sink);
        }
    }
}

/// Mergesort as a divide-and-conquer problem (the Sort motif of §4).
pub struct SortProblem(pub Vec<i64>);

impl DcProblem for SortProblem {
    type Solution = Vec<i64>;

    fn case(self) -> Case<Self, Vec<i64>> {
        let mut v = self.0;
        if v.len() <= 1 {
            return Case::Base(v);
        }
        let right = v.split_off(v.len() / 2);
        Case::Split(SortProblem(v), SortProblem(right))
    }

    fn merge(left: Vec<i64>, right: Vec<i64>) -> Vec<i64> {
        let mut out = Vec::with_capacity(left.len() + right.len());
        let (mut i, mut j) = (0, 0);
        while i < left.len() && j < right.len() {
            if left[i] <= right[j] {
                out.push(left[i]);
                i += 1;
            } else {
                out.push(right[j]);
                j += 1;
            }
        }
        out.extend_from_slice(&left[i..]);
        out.extend_from_slice(&right[j..]);
        out
    }

    fn cutoff() -> usize {
        64
    }

    fn size(&self) -> usize {
        self.0.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use strand_core::SplitMix64;

    fn random_vec(n: usize, seed: u64) -> Vec<i64> {
        let mut rng = SplitMix64::new(seed);
        (0..n)
            .map(|_| rng.next_below(1_000_000) as i64 - 500_000)
            .collect()
    }

    #[test]
    fn parallel_sort_matches_std() {
        for seed in [1u64, 2, 3] {
            let xs = random_vec(10_000, seed);
            let mut expected = xs.clone();
            expected.sort_unstable();
            let pool = Pool::new(4, true);
            let got = run(&pool, SortProblem(xs));
            assert_eq!(got, expected, "seed {seed}");
            pool.shutdown();
        }
    }

    #[test]
    fn sequential_reference_agrees() {
        let xs = random_vec(500, 9);
        let mut expected = xs.clone();
        expected.sort_unstable();
        assert_eq!(run_seq(SortProblem(xs)), expected);
    }

    #[test]
    fn sort_edge_cases() {
        let pool = Pool::new(2, true);
        assert_eq!(run(&pool, SortProblem(vec![])), Vec::<i64>::new());
        assert_eq!(run(&pool, SortProblem(vec![1])), vec![1]);
        assert_eq!(run(&pool, SortProblem(vec![3, 3, 3])), vec![3, 3, 3]);
        pool.shutdown();
    }

    #[test]
    fn dc_uses_multiple_workers() {
        let pool = Pool::new(4, true);
        let _ = run(&pool, SortProblem(random_vec(200_000, 5)));
        let stats = pool.stats();
        let active = stats.iter().filter(|s| s.tasks > 0).count();
        assert!(active >= 2, "{stats:?}");
        pool.shutdown();
    }
}
