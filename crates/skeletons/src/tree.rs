//! Tree-reduction skeletons: the typed analogues of `Tree-Reduce-1` and
//! `Tree-Reduce-2` (§3.4, §3.5).
//!
//! All strategies share one event-driven engine ([`reduce`]): every
//! internal node is assigned a *label* (a worker index); a node's
//! evaluation is spawned on its labeled worker as soon as both children's
//! values exist. The strategies differ only in the labeling:
//!
//! * [`Labeling::Random`] — independent random label per node: the
//!   Tree-Reduce-1 random mapping;
//! * [`Labeling::Paper`] — the Tree-Reduce-2 rule: sibling leaves share a
//!   random label, an interior node takes its left child's label, so **at
//!   most one of each node's offspring values crosses workers** (counted in
//!   [`ReduceOutcome::cross_child_values`] and property-tested);
//! * [`Labeling::Static`] — size-balanced static partition, the paper's
//!   "probably ideal for the simple arithmetic example" baseline.
//!
//! The engine tracks the peak of live intermediate bytes
//! ([`MemSize`]), the measurable form of §3.5's memory argument.

use crate::pool::{Pool, TaskGroup};
use parking_lot::Mutex;
use std::sync::atomic::{AtomicI64, AtomicU64, AtomicU8, Ordering};
use std::sync::Arc;
use strand_core::SplitMix64;

/// A binary reduction tree with leaf values `V` and operators `O`.
#[derive(Clone, Debug, PartialEq)]
pub enum Tree<V, O> {
    Leaf(V),
    Node(O, Box<Tree<V, O>>, Box<Tree<V, O>>),
}

impl<V, O> Tree<V, O> {
    /// Internal node constructor.
    pub fn node(op: O, left: Tree<V, O>, right: Tree<V, O>) -> Tree<V, O> {
        Tree::Node(op, Box::new(left), Box::new(right))
    }

    /// Number of leaves.
    pub fn leaves(&self) -> usize {
        match self {
            Tree::Leaf(_) => 1,
            Tree::Node(_, l, r) => l.leaves() + r.leaves(),
        }
    }

    /// Height (leaf = 0).
    pub fn height(&self) -> usize {
        match self {
            Tree::Leaf(_) => 0,
            Tree::Node(_, l, r) => 1 + l.height().max(r.height()),
        }
    }
}

/// Sequential reference reduction.
pub fn reduce_seq<V: Clone, O>(tree: &Tree<V, O>, eval: &impl Fn(&O, V, V) -> V) -> V {
    match tree {
        Tree::Leaf(v) => v.clone(),
        Tree::Node(op, l, r) => {
            let lv = reduce_seq(l, eval);
            let rv = reduce_seq(r, eval);
            eval(op, lv, rv)
        }
    }
}

/// Approximate size of a value held live between production and
/// consumption (experiment E2's memory gauge).
pub trait MemSize {
    fn mem_bytes(&self) -> usize;
}

impl MemSize for i64 {
    fn mem_bytes(&self) -> usize {
        8
    }
}

impl MemSize for f64 {
    fn mem_bytes(&self) -> usize {
        8
    }
}

impl<T> MemSize for Vec<T> {
    fn mem_bytes(&self) -> usize {
        self.len() * std::mem::size_of::<T>() + std::mem::size_of::<Self>()
    }
}

impl MemSize for String {
    fn mem_bytes(&self) -> usize {
        self.len() + std::mem::size_of::<Self>()
    }
}

/// Result of a parallel reduction.
#[derive(Clone, Debug)]
pub struct ReduceOutcome<V> {
    pub value: V,
    /// Peak of live intermediate bytes across the whole run.
    pub peak_live_bytes: usize,
    /// Internal non-root nodes whose label differs from their parent's —
    /// each one is a child value that must cross workers.
    pub cross_child_values: usize,
    /// Evaluations executed per worker.
    pub evals_per_worker: Vec<u64>,
}

/// Flat representation used by the engine.
struct FlatTree<V, O> {
    /// Per internal node: operator, parent internal-node index (usize::MAX
    /// for the root).
    ops: Vec<O>,
    parent: Vec<usize>,
    side: Vec<u8>, // 0 = left child of parent, 1 = right
    /// Leaf seeds: (internal node index, side, value).
    leaf_feeds: Vec<(usize, u8, V)>,
    /// For labeling: children of each internal node (leaf → None, internal
    /// node index → Some).
    kids: Vec<[Option<usize>; 2]>,
}

fn flatten<V, O>(tree: Tree<V, O>) -> Result<FlatTree<V, O>, V> {
    let mut flat = FlatTree {
        ops: Vec::new(),
        parent: Vec::new(),
        side: Vec::new(),
        leaf_feeds: Vec::new(),
        kids: Vec::new(),
    };
    match tree {
        Tree::Leaf(v) => Err(v),
        node => {
            walk(node, usize::MAX, 0, &mut flat);
            Ok(flat)
        }
    }
}

/// Returns the internal-node index created (None for leaves).
fn walk<V, O>(
    tree: Tree<V, O>,
    parent: usize,
    side: u8,
    flat: &mut FlatTree<V, O>,
) -> Option<usize> {
    match tree {
        Tree::Leaf(v) => {
            flat.leaf_feeds.push((parent, side, v));
            None
        }
        Tree::Node(op, l, r) => {
            let me = flat.ops.len();
            flat.ops.push(op);
            flat.parent.push(parent);
            flat.side.push(side);
            flat.kids.push([None, None]);
            let lk = walk(*l, me, 0, flat);
            let rk = walk(*r, me, 1, flat);
            flat.kids[me] = [lk, rk];
            Some(me)
        }
    }
}

/// Labeling strategies over the flat tree. All return one worker index per
/// internal node.
fn flat_labels_random<V, O>(flat: &FlatTree<V, O>, workers: usize, seed: u64) -> Vec<usize> {
    let mut rng = SplitMix64::new(seed);
    (0..flat.ops.len())
        .map(|_| rng.next_below(workers as u64) as usize)
        .collect()
}

/// The paper's Tree-Reduce-2 labeling on internal nodes: an interior node
/// takes its *left child's* label; nodes whose left child is a leaf get a
/// random label (shared with a leaf sibling by construction — the leaf
/// values are fed directly to this node's worker anyway).
fn flat_labels_paper<V, O>(flat: &FlatTree<V, O>, workers: usize, seed: u64) -> Vec<usize> {
    let mut rng = SplitMix64::new(seed);
    let n = flat.ops.len();
    let mut labels = vec![usize::MAX; n];
    // Nodes are stored in preorder, so children have larger indices:
    // resolve labels bottom-up by iterating in reverse.
    for i in (0..n).rev() {
        labels[i] = match flat.kids[i][0] {
            Some(left_child) => labels[left_child],
            None => rng.next_below(workers as u64) as usize,
        };
    }
    labels
}

/// Size-balanced static partition: nodes are assigned blockwise by
/// preorder index.
fn flat_labels_static<V, O>(flat: &FlatTree<V, O>, workers: usize) -> Vec<usize> {
    let n = flat.ops.len().max(1);
    let per = n.div_ceil(workers).max(1);
    (0..flat.ops.len()).map(|i| i / per).collect()
}

/// Which labeling to use.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Labeling {
    /// Independent random label per node (Tree-Reduce-1).
    Random(u64),
    /// The paper's Tree-Reduce-2 labeling (≤ 1 crossing per node).
    Paper(u64),
    /// Static blockwise partition.
    Static,
}

/// Reduce a tree on the pool under the given labeling.
pub fn reduce<V, O>(
    pool: &Pool,
    tree: Tree<V, O>,
    labeling: Labeling,
    eval: impl Fn(&O, V, V) -> V + Send + Sync + 'static,
) -> ReduceOutcome<V>
where
    V: MemSize + Send + 'static,
    O: Send + Sync + 'static,
{
    let flat = match flatten(tree) {
        Ok(flat) => flat,
        Err(v) => {
            // Single-leaf tree: nothing to evaluate.
            let bytes = v.mem_bytes();
            return ReduceOutcome {
                value: v,
                peak_live_bytes: bytes,
                cross_child_values: 0,
                evals_per_worker: vec![0; pool.workers()],
            };
        }
    };
    let workers = pool.workers();
    let labels = match labeling {
        Labeling::Random(seed) => flat_labels_random(&flat, workers, seed),
        Labeling::Paper(seed) => flat_labels_paper(&flat, workers, seed),
        Labeling::Static => flat_labels_static(&flat, workers),
    };
    let cross_child_values = (0..flat.ops.len())
        .filter(|&i| flat.parent[i] != usize::MAX && labels[i] != labels[flat.parent[i]])
        .count();

    let n = flat.ops.len();
    let engine = Arc::new(Engine {
        ops: flat.ops,
        parent: flat.parent,
        side: flat.side,
        labels,
        slots: (0..n)
            .map(|_| [Mutex::new(None), Mutex::new(None)])
            .collect(),
        arrived: (0..n).map(|_| AtomicU8::new(0)).collect(),
        live: AtomicI64::new(0),
        peak: AtomicI64::new(0),
        evals: (0..workers).map(|_| AtomicU64::new(0)).collect(),
        result: Mutex::new(None),
        eval: Box::new(eval),
        pool: pool.clone(),
        group: TaskGroup::new(),
        tickets: Mutex::new(Vec::new()),
    });

    // Pre-register every internal evaluation so wait() releases only when
    // the root value exists.
    let tickets: Vec<_> = (0..n).map(|_| engine.group.add()).collect();
    *engine.tickets.lock() = tickets;

    // Feed the leaves.
    for (node, side, v) in flat.leaf_feeds {
        Engine::deliver(&engine, node, side, v);
    }
    engine.group.wait();
    let value = engine
        .result
        .lock()
        .take()
        .expect("root evaluation stored its result");
    ReduceOutcome {
        value,
        peak_live_bytes: engine.peak.load(Ordering::SeqCst).max(0) as usize,
        cross_child_values,
        evals_per_worker: engine
            .evals
            .iter()
            .map(|e| e.load(Ordering::SeqCst))
            .collect(),
    }
}

type EvalFn<V, O> = Box<dyn Fn(&O, V, V) -> V + Send + Sync>;

struct Engine<V, O> {
    ops: Vec<O>,
    parent: Vec<usize>,
    side: Vec<u8>,
    labels: Vec<usize>,
    slots: Vec<[Mutex<Option<V>>; 2]>,
    arrived: Vec<AtomicU8>,
    live: AtomicI64,
    peak: AtomicI64,
    evals: Vec<AtomicU64>,
    result: Mutex<Option<V>>,
    eval: EvalFn<V, O>,
    pool: Pool,
    group: TaskGroup,
    tickets: Mutex<Vec<crate::pool::Ticket>>,
}

impl<V, O> Engine<V, O>
where
    V: MemSize + Send + 'static,
    O: Send + Sync + 'static,
{
    fn gauge_add(&self, bytes: i64) {
        let now = self.live.fetch_add(bytes, Ordering::SeqCst) + bytes;
        self.peak.fetch_max(now, Ordering::SeqCst);
    }

    /// Deliver a child value to `node`'s `side`; spawn its evaluation when
    /// both halves are present.
    fn deliver(self: &Arc<Self>, node: usize, side: u8, v: V) {
        self.gauge_add(v.mem_bytes() as i64);
        *self.slots[node][side as usize].lock() = Some(v);
        if self.arrived[node].fetch_add(1, Ordering::SeqCst) == 1 {
            let this = Arc::clone(self);
            let worker = self.labels[node];
            self.pool.spawn_at(worker, move || {
                let lv = this.slots[node][0].lock().take().expect("left value");
                let rv = this.slots[node][1].lock().take().expect("right value");
                this.gauge_add(-((lv.mem_bytes() + rv.mem_bytes()) as i64));
                let out = (this.eval)(&this.ops[node], lv, rv);
                this.evals[worker].fetch_add(1, Ordering::SeqCst);
                let parent = this.parent[node];
                if parent == usize::MAX {
                    this.gauge_add(out.mem_bytes() as i64);
                    *this.result.lock() = Some(out);
                } else {
                    Self::deliver(&this, parent, this.side[node], out);
                }
                let ticket = this.tickets.lock().pop();
                drop(ticket);
            });
        }
    }
}

/// Generate a random binary tree with `leaves` leaves: shape from a seeded
/// random split, leaf values `1..=9`, operators alternating by parity.
pub fn random_int_tree(leaves: usize, seed: u64) -> Tree<i64, char> {
    fn go(leaves: usize, rng: &mut SplitMix64, counter: &mut i64) -> Tree<i64, char> {
        if leaves <= 1 {
            *counter += 1;
            Tree::Leaf((*counter % 9) + 1)
        } else {
            let left = 1 + rng.next_below((leaves - 1) as u64) as usize;
            let op = if rng.next_below(2) == 0 { '+' } else { 'm' };
            Tree::node(op, go(left, rng, counter), go(leaves - left, rng, counter))
        }
    }
    let mut rng = SplitMix64::new(seed);
    let mut counter = 0;
    go(leaves, &mut rng, &mut counter)
}

/// Evaluate the generated tree's operators: `+` adds, `m` takes the max.
pub fn int_eval(op: &char, l: i64, r: i64) -> i64 {
    match op {
        '+' => l + r,
        'm' => l.max(r),
        other => panic!("unknown operator {other}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn check_all_labelings(leaves: usize, seed: u64, workers: usize) {
        let expected = reduce_seq(&random_int_tree(leaves, seed), &|op, l, r| {
            int_eval(op, l, r)
        });
        for labeling in [
            Labeling::Random(seed),
            Labeling::Paper(seed),
            Labeling::Static,
        ] {
            let pool = Pool::new(workers, false);
            let out = reduce(&pool, random_int_tree(leaves, seed), labeling, int_eval);
            assert_eq!(out.value, expected, "labeling {labeling:?} seed {seed}");
            assert_eq!(
                out.evals_per_worker.iter().sum::<u64>(),
                (leaves - 1) as u64
            );
            pool.shutdown();
        }
    }

    #[test]
    fn all_labelings_compute_the_same_value() {
        for seed in [1u64, 2, 3] {
            check_all_labelings(33, seed, 4);
        }
    }

    #[test]
    fn single_leaf_tree() {
        let pool = Pool::new(2, false);
        let out = reduce(
            &pool,
            Tree::<i64, char>::Leaf(7),
            Labeling::Static,
            |_, _, _| 0,
        );
        assert_eq!(out.value, 7);
        assert_eq!(out.cross_child_values, 0);
        pool.shutdown();
    }

    #[test]
    fn paper_labeling_bounds_crossings() {
        // E3, real-thread form: with the paper labeling, an internal node's
        // label equals its left child's, so only right-child values can
        // cross: crossings <= internal nodes. Random labeling crosses far
        // more often on wide machines.
        for seed in [1u64, 5, 9] {
            let leaves = 200;
            let internal = leaves - 1;
            let pool = Pool::new(8, false);
            let paper = reduce(
                &pool,
                random_int_tree(leaves, seed),
                Labeling::Paper(seed),
                int_eval,
            );
            let random = reduce(
                &pool,
                random_int_tree(leaves, seed),
                Labeling::Random(seed),
                int_eval,
            );
            assert!(
                paper.cross_child_values * 2 <= internal,
                "paper labeling crossings {} should be ~internal/2, internal {internal}",
                paper.cross_child_values
            );
            assert!(
                paper.cross_child_values < random.cross_child_values,
                "paper {} vs random {}",
                paper.cross_child_values,
                random.cross_child_values
            );
            pool.shutdown();
        }
    }

    #[test]
    fn memory_gauge_tracks_live_values() {
        // Reducing vectors: peak live bytes must cover at least one row but
        // stay below the sum of all intermediate values for a deep tree.
        let leaves = 64usize;
        let row = 1024usize;
        let mut tree = Tree::Leaf(vec![0u8; row]);
        for _ in 1..leaves {
            tree = Tree::node((), tree, Tree::Leaf(vec![0u8; row]));
        }
        let pool = Pool::new(4, false);
        let out = reduce(&pool, tree, Labeling::Paper(3), |_, l, r: Vec<u8>| {
            let mut l = l;
            l.extend_from_slice(&r);
            l
        });
        assert_eq!(out.value.len(), leaves * row);
        assert!(out.peak_live_bytes >= leaves * row);
        pool.shutdown();
    }

    #[test]
    fn tree_shape_helpers() {
        let t = random_int_tree(17, 4);
        assert_eq!(t.leaves(), 17);
        assert!(t.height() >= 5); // log2(17) ceil
        assert_eq!(random_int_tree(17, 4), random_int_tree(17, 4));
    }
}
