//! Stream pipeline skeleton: a chain of stages connected by bounded
//! channels, one thread per stage — the typed analogue of
//! `motifs::pipeline` (stream programming is the paper's native idiom,
//! §2.1).

use crossbeam::channel::{bounded, Receiver, Sender};
use std::thread::JoinHandle;

/// A pipeline over items of type `T` (all stages are `T → T`; use an enum
/// or boxed payload for heterogeneous pipelines).
pub struct Pipeline<T: Send + 'static> {
    input: Sender<T>,
    output: Receiver<T>,
    handles: Vec<JoinHandle<()>>,
}

impl<T: Send + 'static> Pipeline<T> {
    /// Build a pipeline from stage functions; `capacity` bounds each
    /// inter-stage channel (back-pressure).
    pub fn new(stages: Vec<Box<dyn FnMut(T) -> T + Send>>, capacity: usize) -> Pipeline<T> {
        assert!(!stages.is_empty(), "pipeline needs at least one stage");
        let (input, mut upstream) = bounded::<T>(capacity);
        let mut handles = Vec::with_capacity(stages.len());
        for (k, mut stage) in stages.into_iter().enumerate() {
            let (tx, rx) = bounded::<T>(capacity);
            let upstream_rx = upstream;
            let handle = std::thread::Builder::new()
                .name(format!("pipeline-stage-{k}"))
                .spawn(move || {
                    for item in upstream_rx.iter() {
                        if tx.send(stage(item)).is_err() {
                            break;
                        }
                    }
                })
                .expect("spawn stage thread");
            handles.push(handle);
            upstream = rx;
        }
        Pipeline {
            input,
            output: upstream,
            handles,
        }
    }

    /// Feed one item.
    pub fn push(&self, item: T) {
        self.input.send(item).expect("pipeline accepts input");
    }

    /// Close the input and collect every remaining output, joining stage
    /// threads.
    pub fn finish(self) -> Vec<T> {
        drop(self.input);
        let out: Vec<T> = self.output.iter().collect();
        for h in self.handles {
            let _ = h.join();
        }
        out
    }

    /// Run a whole batch through the pipeline. Feeding happens on a helper
    /// thread so the bounded channels' back-pressure cannot deadlock large
    /// batches.
    pub fn run_batch(
        stages: Vec<Box<dyn FnMut(T) -> T + Send>>,
        capacity: usize,
        items: impl IntoIterator<Item = T> + Send + 'static,
    ) -> Vec<T> {
        let Pipeline {
            input,
            output,
            handles,
        } = Pipeline::new(stages, capacity);
        let feeder = std::thread::spawn(move || {
            for item in items {
                if input.send(item).is_err() {
                    break;
                }
            }
            // Dropping `input` here closes the chain stage by stage.
        });
        let out: Vec<T> = output.iter().collect();
        feeder.join().expect("feeder thread");
        for h in handles {
            let _ = h.join();
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn add_stage(k: i64) -> Box<dyn FnMut(i64) -> i64 + Send> {
        Box::new(move |x| x + k)
    }

    #[test]
    fn three_stages_shift_by_six() {
        let out = Pipeline::run_batch(
            vec![add_stage(1), add_stage(2), add_stage(3)],
            8,
            vec![0i64, 10, 20],
        );
        assert_eq!(out, vec![6, 16, 26]);
    }

    #[test]
    fn order_is_preserved() {
        let out = Pipeline::run_batch(vec![add_stage(0)], 4, (0..1000i64).collect::<Vec<_>>());
        assert_eq!(out, (0..1000i64).collect::<Vec<_>>());
    }

    #[test]
    fn empty_batch() {
        let out = Pipeline::run_batch(vec![add_stage(1)], 4, Vec::<i64>::new());
        assert!(out.is_empty());
    }

    #[test]
    fn back_pressure_does_not_deadlock() {
        // Batch far larger than channel capacity.
        let out = Pipeline::run_batch(
            vec![add_stage(1), add_stage(1)],
            2,
            (0..5000i64).collect::<Vec<_>>(),
        );
        assert_eq!(out.len(), 5000);
        assert_eq!(out[4999], 5001);
    }

    #[test]
    fn push_and_finish_api() {
        let pipe = Pipeline::new(vec![add_stage(5)], 4);
        pipe.push(1);
        pipe.push(2);
        let out = pipe.finish();
        assert_eq!(out, vec![6, 7]);
    }
}
