//! Iterated 1-D three-point stencil (the Grid motif's typed analogue,
//! §4 "grid problems").
//!
//! The array is split into blocks, one per worker; each iteration applies
//! `v'_i = (v_{i-1} + v_i + v_{i+1}) / 3` (zero boundaries) to every block
//! in parallel, with a barrier between iterations — the classic BSP
//! formulation of the paper's mesh computations.

use crate::pool::{Pool, TaskGroup};
use parking_lot::Mutex;
use std::sync::Arc;

/// Run `steps` iterations over `values`; returns the final array.
pub fn stencil_1d(pool: &Pool, values: Vec<f64>, steps: u32) -> Vec<f64> {
    let n = values.len();
    if n == 0 {
        return values;
    }
    let workers = pool.workers();
    let block = n.div_ceil(workers).max(1);
    let mut cur = Arc::new(values);
    for _ in 0..steps {
        let next = Arc::new((0..n).map(|_| Mutex::new(0.0f64)).collect::<Vec<_>>());
        let group = TaskGroup::new();
        for start in (0..n).step_by(block) {
            let end = (start + block).min(n);
            let cur = Arc::clone(&cur);
            let next = Arc::clone(&next);
            let ticket = group.add();
            pool.spawn(move || {
                for i in start..end {
                    let left = if i == 0 { 0.0 } else { cur[i - 1] };
                    let right = if i + 1 == n { 0.0 } else { cur[i + 1] };
                    *next[i].lock() = (left + cur[i] + right) / 3.0;
                }
                ticket.done();
            });
        }
        group.wait(); // barrier
        let next_vals: Vec<f64> = next.iter().map(|m| *m.lock()).collect();
        cur = Arc::new(next_vals);
    }
    Arc::try_unwrap(cur).unwrap_or_else(|arc| (*arc).clone())
}

/// Sequential reference (identical arithmetic).
pub fn stencil_1d_seq(values: &[f64], steps: u32) -> Vec<f64> {
    let n = values.len();
    let mut cur = values.to_vec();
    for _ in 0..steps {
        let mut next = vec![0.0; n];
        for i in 0..n {
            let left = if i == 0 { 0.0 } else { cur[i - 1] };
            let right = if i + 1 == n { 0.0 } else { cur[i + 1] };
            next[i] = (left + cur[i] + right) / 3.0;
        }
        cur = next;
    }
    cur
}

/// A dense 2-D grid for the five-point stencil.
#[derive(Clone, Debug, PartialEq)]
pub struct Grid2d {
    pub rows: usize,
    pub cols: usize,
    pub data: Vec<f64>,
}

impl Grid2d {
    /// Build from a generator function.
    pub fn from_fn(rows: usize, cols: usize, f: impl Fn(usize, usize) -> f64) -> Grid2d {
        let data = (0..rows * cols).map(|k| f(k / cols, k % cols)).collect();
        Grid2d { rows, cols, data }
    }

    /// Element accessor (row-major).
    pub fn at(&self, r: usize, c: usize) -> f64 {
        self.data[r * self.cols + c]
    }
}

/// One five-point-stencil step over a row range, reading `cur`, writing
/// the same range of `out` (zero boundaries).
fn step_rows(cur: &Grid2d, out: &mut [f64], r0: usize, r1: usize) {
    let (rows, cols) = (cur.rows, cur.cols);
    for r in r0..r1 {
        for c in 0..cols {
            let up = if r == 0 { 0.0 } else { cur.at(r - 1, c) };
            let down = if r + 1 == rows { 0.0 } else { cur.at(r + 1, c) };
            let left = if c == 0 { 0.0 } else { cur.at(r, c - 1) };
            let right = if c + 1 == cols { 0.0 } else { cur.at(r, c + 1) };
            out[(r - r0) * cols + c] = (up + down + left + right + cur.at(r, c)) / 5.0;
        }
    }
}

/// Iterated 2-D five-point stencil, block-row decomposition with a barrier
/// per iteration — the mesh computations of the paper's DIME example
/// (§1), BSP-style.
pub fn stencil_2d(pool: &Pool, grid: Grid2d, steps: u32) -> Grid2d {
    if grid.rows == 0 || grid.cols == 0 {
        return grid;
    }
    let workers = pool.workers();
    let block = grid.rows.div_ceil(workers).max(1);
    let mut cur = Arc::new(grid);
    for _ in 0..steps {
        let group = TaskGroup::new();
        let slices: Arc<Vec<Mutex<Vec<f64>>>> = Arc::new(
            (0..cur.rows.div_ceil(block))
                .map(|_| Mutex::new(Vec::new()))
                .collect(),
        );
        for (bi, r0) in (0..cur.rows).step_by(block).enumerate() {
            let r1 = (r0 + block).min(cur.rows);
            let cur2 = Arc::clone(&cur);
            let slices2 = Arc::clone(&slices);
            let ticket = group.add();
            pool.spawn(move || {
                let mut out = vec![0.0; (r1 - r0) * cur2.cols];
                step_rows(&cur2, &mut out, r0, r1);
                *slices2[bi].lock() = out;
                ticket.done();
            });
        }
        group.wait();
        let mut data = Vec::with_capacity(cur.rows * cur.cols);
        for s in slices.iter() {
            data.extend_from_slice(&s.lock());
        }
        cur = Arc::new(Grid2d {
            rows: cur.rows,
            cols: cur.cols,
            data,
        });
    }
    Arc::try_unwrap(cur).unwrap_or_else(|arc| (*arc).clone())
}

/// Sequential 2-D reference.
pub fn stencil_2d_seq(grid: &Grid2d, steps: u32) -> Grid2d {
    let mut cur = grid.clone();
    for _ in 0..steps {
        let mut out = vec![0.0; cur.rows * cur.cols];
        step_rows(&cur, &mut out, 0, cur.rows);
        cur = Grid2d {
            rows: cur.rows,
            cols: cur.cols,
            data: out,
        };
    }
    cur
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_sequential_reference() {
        let init: Vec<f64> = (0..257).map(|i| (i % 13) as f64).collect();
        let pool = Pool::new(4, true);
        let par = stencil_1d(&pool, init.clone(), 20);
        let seq = stencil_1d_seq(&init, 20);
        assert_eq!(par.len(), seq.len());
        for (p, s) in par.iter().zip(seq.iter()) {
            assert!((p - s).abs() < 1e-12, "{p} vs {s}");
        }
        pool.shutdown();
    }

    #[test]
    fn zero_steps_is_identity() {
        let init = vec![1.0, 2.0, 3.0];
        let pool = Pool::new(2, true);
        assert_eq!(stencil_1d(&pool, init.clone(), 0), init);
        pool.shutdown();
    }

    #[test]
    fn empty_array() {
        let pool = Pool::new(2, true);
        assert!(stencil_1d(&pool, vec![], 5).is_empty());
        pool.shutdown();
    }

    #[test]
    fn heat_diffuses_toward_zero() {
        let init = vec![0.0, 0.0, 100.0, 0.0, 0.0];
        let pool = Pool::new(2, true);
        let out = stencil_1d(&pool, init, 50);
        // With absorbing boundaries everything decays.
        assert!(out.iter().all(|v| *v < 10.0), "{out:?}");
        pool.shutdown();
    }

    #[test]
    fn stencil2d_matches_sequential() {
        let grid = Grid2d::from_fn(13, 9, |r, c| ((r * 7 + c * 3) % 11) as f64);
        let pool = Pool::new(4, true);
        let par = stencil_2d(&pool, grid.clone(), 12);
        let seq = stencil_2d_seq(&grid, 12);
        assert_eq!(par.rows, seq.rows);
        for (a, b) in par.data.iter().zip(seq.data.iter()) {
            assert!((a - b).abs() < 1e-12, "{a} vs {b}");
        }
        pool.shutdown();
    }

    #[test]
    fn stencil2d_edge_shapes() {
        let pool = Pool::new(3, true);
        // Single row, single column, 1x1, zero steps.
        for (r, c) in [(1usize, 8usize), (8, 1), (1, 1)] {
            let g = Grid2d::from_fn(r, c, |x, y| (x + y) as f64);
            let par = stencil_2d(&pool, g.clone(), 5);
            let seq = stencil_2d_seq(&g, 5);
            assert_eq!(par, seq, "shape {r}x{c}");
        }
        let g = Grid2d::from_fn(4, 4, |x, y| (x * y) as f64);
        assert_eq!(stencil_2d(&pool, g.clone(), 0), g);
        pool.shutdown();
    }

    #[test]
    fn grid2d_accessors() {
        let g = Grid2d::from_fn(2, 3, |r, c| (r * 10 + c) as f64);
        assert_eq!(g.at(0, 0), 0.0);
        assert_eq!(g.at(1, 2), 12.0);
        assert_eq!(g.data.len(), 6);
    }
}
