//! The task-farm skeleton with placement policies.
//!
//! The policies span the paper's design space:
//!
//! * [`Policy::StaticBlock`] / [`Policy::StaticCyclic`] — *"a static
//!   partition of the tree is probably ideal in the simple arithmetic
//!   example"* (§3.1);
//! * [`Policy::Random`] — the Random motif's strategy: each task goes to a
//!   uniformly random worker (*"this random mapping should produce a
//!   reasonably balanced load if |Nodes| ≫ |Processors|"*);
//! * [`Policy::Demand`] — the Scheduler motif: a shared queue, workers pull
//!   when idle;
//! * [`Policy::Stealing`] — the modern work-stealing baseline.

use crate::pool::{Pool, TaskGroup};
use parking_lot::Mutex;
use std::sync::Arc;
use strand_core::SplitMix64;

/// How tasks are mapped onto workers.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Policy {
    /// Contiguous blocks of tasks per worker.
    StaticBlock,
    /// Round-robin assignment.
    StaticCyclic,
    /// Uniform random worker per task (seeded).
    Random(u64),
    /// Shared global queue; idle workers pull.
    Demand,
    /// Tasks enter the global queue and idle workers steal from busy ones
    /// (only meaningful on a pool created with stealing enabled).
    Stealing,
}

/// Run `f` over `tasks` on `pool` under `policy`; returns results in task
/// order.
pub fn farm<T, R, F>(pool: &Pool, policy: Policy, tasks: Vec<T>, f: F) -> Vec<R>
where
    T: Send + 'static,
    R: Send + 'static,
    F: Fn(T) -> R + Send + Sync + 'static,
{
    let n = tasks.len();
    let workers = pool.workers();
    let f = Arc::new(f);
    let results: Arc<Vec<Mutex<Option<R>>>> = Arc::new((0..n).map(|_| Mutex::new(None)).collect());
    let group = TaskGroup::new();
    let mut rng = match policy {
        Policy::Random(seed) => Some(SplitMix64::new(seed)),
        _ => None,
    };
    for (i, task) in tasks.into_iter().enumerate() {
        let f = Arc::clone(&f);
        let results = Arc::clone(&results);
        let ticket = group.add();
        let job = move || {
            let r = f(task);
            *results[i].lock() = Some(r);
            // Release our Arc clones before signalling completion so the
            // caller can usually unwrap the results without contention.
            drop(results);
            drop(f);
            ticket.done();
        };
        match policy {
            Policy::StaticBlock => {
                let per = n.div_ceil(workers).max(1);
                pool.spawn_at(i / per, job);
            }
            Policy::StaticCyclic => pool.spawn_at(i % workers, job),
            Policy::Random(_) => {
                let w = rng
                    .as_mut()
                    .expect("rng present")
                    .next_below(workers as u64);
                pool.spawn_at(w as usize, job);
            }
            Policy::Demand | Policy::Stealing => pool.spawn(job),
        }
    }
    group.wait();
    // A panicked task leaves its slot empty (the pool contains the panic
    // and its ticket completes on unwind, so wait() returned normally);
    // surface that as a caller-side panic rather than a hang or a corrupt
    // result vector.
    let missing = "farm task panicked before producing a result";
    match Arc::try_unwrap(results) {
        Ok(v) => v
            .into_iter()
            .map(|slot| slot.into_inner().expect(missing))
            .collect(),
        // A worker may still hold its clone for an instant after the last
        // ticket fired; take the values through the locks instead.
        Err(arc) => arc
            .iter()
            .map(|slot| slot.lock().take().expect(missing))
            .collect(),
    }
}

/// Like [`farm`], but groups tasks into chunks of `chunk` before
/// dispatching — the grain-size control that keeps per-task overhead from
/// dominating fine-grained workloads (a lesson the skeleton literature
/// learned after the paper's era).
pub fn farm_chunked<T, R, F>(
    pool: &Pool,
    policy: Policy,
    tasks: Vec<T>,
    chunk: usize,
    f: F,
) -> Vec<R>
where
    T: Send + 'static,
    R: Send + 'static,
    F: Fn(T) -> R + Send + Sync + 'static,
{
    let chunk = chunk.max(1);
    let mut chunks: Vec<Vec<T>> = Vec::with_capacity(tasks.len().div_ceil(chunk));
    let mut tasks = tasks;
    while !tasks.is_empty() {
        let rest = tasks.split_off(tasks.len().min(chunk));
        chunks.push(tasks);
        tasks = rest;
    }
    let f = Arc::new(f);
    let nested = farm(pool, policy, chunks, move |batch| {
        batch.into_iter().map(|t| f(t)).collect::<Vec<R>>()
    });
    nested.into_iter().flatten().collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn squares(n: usize) -> Vec<u64> {
        (0..n as u64).map(|x| x * x).collect()
    }

    #[test]
    fn all_policies_compute_in_order() {
        for policy in [
            Policy::StaticBlock,
            Policy::StaticCyclic,
            Policy::Random(7),
            Policy::Demand,
            Policy::Stealing,
        ] {
            let pool = Pool::new(4, matches!(policy, Policy::Stealing));
            let out = farm(&pool, policy, (0..64u64).collect(), |x| x * x);
            assert_eq!(out, squares(64), "policy {policy:?}");
            pool.shutdown();
        }
    }

    #[test]
    fn empty_task_list() {
        let pool = Pool::new(2, false);
        let out: Vec<u64> = farm(&pool, Policy::Demand, Vec::<u64>::new(), |x| x);
        assert!(out.is_empty());
        pool.shutdown();
    }

    #[test]
    fn static_block_pins_contiguously() {
        let pool = Pool::new(4, false);
        let out = farm(&pool, Policy::StaticBlock, (0..16).collect(), |x: usize| {
            // Record which worker ran the task by thread name.
            let name = std::thread::current().name().unwrap_or("").to_string();
            (x, name)
        });
        // Tasks 0..4 on worker 0, 4..8 on worker 1, etc.
        for (i, (x, name)) in out.iter().enumerate() {
            assert_eq!(*x, i);
            let expected = format!("skeleton-worker-{}", i / 4);
            assert_eq!(name, &expected, "task {i}");
        }
        pool.shutdown();
    }

    #[test]
    fn random_policy_is_deterministic_per_seed() {
        let pool = Pool::new(4, false);
        let run = |seed| {
            farm(
                &pool,
                Policy::Random(seed),
                (0..32).collect(),
                |_: usize| std::thread::current().name().unwrap_or("").to_string(),
            )
        };
        assert_eq!(run(5), run(5));
        pool.shutdown();
    }

    #[test]
    fn chunked_farm_matches_plain_farm() {
        let pool = Pool::new(4, true);
        for chunk in [1usize, 3, 16, 1000] {
            let out = farm_chunked(&pool, Policy::Stealing, (0..100u64).collect(), chunk, |x| {
                x * x
            });
            assert_eq!(out, squares(100), "chunk {chunk}");
        }
        // Empty input.
        let out: Vec<u64> = farm_chunked(&pool, Policy::Demand, vec![], 8, |x: u64| x);
        assert!(out.is_empty());
        pool.shutdown();
    }

    #[test]
    fn chunking_reduces_dispatch_count() {
        let pool = Pool::new(2, false);
        let _ = farm_chunked(&pool, Policy::StaticCyclic, (0..64u64).collect(), 16, |x| x);
        let dispatched: u64 = pool.stats().iter().map(|s| s.tasks).sum();
        assert_eq!(dispatched, 4, "64 tasks / 16 per chunk = 4 pool jobs");
        pool.shutdown();
    }

    #[test]
    fn panicking_task_fails_the_farm_but_not_the_pool() {
        let pool = Pool::new(2, false);
        let attempt = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            farm(&pool, Policy::Demand, (0..8u64).collect(), |x| {
                if x == 3 {
                    panic!("bad task");
                }
                x
            })
        }));
        assert!(attempt.is_err(), "the failure must reach the caller");
        // The worker bumps its panic counter just after the unwind that
        // released wait(); give it a moment.
        for _ in 0..1000 {
            if pool.stats().iter().map(|s| s.panics).sum::<u64>() == 1 {
                break;
            }
            std::thread::sleep(std::time::Duration::from_millis(1));
        }
        assert_eq!(pool.stats().iter().map(|s| s.panics).sum::<u64>(), 1);
        // The pool survives for the next farm.
        let out = farm(&pool, Policy::Demand, (0..8u64).collect(), |x| x + 1);
        assert_eq!(out, (1..=8u64).collect::<Vec<_>>());
        pool.shutdown();
    }

    #[test]
    fn demand_policy_balances_skewed_costs() {
        let pool = Pool::new(4, false);
        // One long task and many short ones.
        let mut costs = vec![20_000u64];
        costs.extend(std::iter::repeat_n(200, 60));
        let _ = farm(&pool, Policy::Demand, costs, |c| {
            let t = std::time::Instant::now();
            while t.elapsed().as_micros() < c as u128 {
                std::hint::spin_loop();
            }
            c
        });
        let stats = pool.stats();
        let active = stats.iter().filter(|s| s.tasks > 0).count();
        assert!(
            active >= 3,
            "demand farm should use several workers: {stats:?}"
        );
        pool.shutdown();
    }
}
