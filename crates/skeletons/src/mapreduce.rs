//! Parallel map + reduction over slices — the semi-SIMD workhorse the
//! paper's introduction contrasts MIMD programming against.

use crate::pool::{Pool, TaskGroup};
use parking_lot::Mutex;
use std::sync::Arc;

/// Apply `f` to every element in parallel, preserving order.
pub fn par_map<T, R, F>(pool: &Pool, items: Vec<T>, f: F) -> Vec<R>
where
    T: Send + 'static,
    R: Send + 'static,
    F: Fn(T) -> R + Send + Sync + 'static,
{
    crate::farm::farm(pool, crate::farm::Policy::Stealing, items, f)
}

/// Fold chunks in parallel with `fold`, then combine partials with
/// `combine`. `combine` must be associative; `identity` is its unit.
pub fn par_reduce<T, A, FF, CF>(pool: &Pool, items: Vec<T>, identity: A, fold: FF, combine: CF) -> A
where
    T: Send + 'static,
    A: Clone + Send + 'static,
    FF: Fn(A, T) -> A + Send + Sync + 'static,
    CF: Fn(A, A) -> A + Send + Sync + 'static,
{
    let workers = pool.workers();
    if items.is_empty() {
        return identity;
    }
    let chunk = items.len().div_ceil(workers).max(1);
    let mut chunks: Vec<Vec<T>> = Vec::with_capacity(workers);
    let mut items = items;
    while !items.is_empty() {
        let rest = items.split_off(items.len().min(chunk));
        chunks.push(items);
        items = rest;
    }
    let fold = Arc::new(fold);
    let group = TaskGroup::new();
    let partials: Arc<Vec<Mutex<Option<A>>>> =
        Arc::new((0..chunks.len()).map(|_| Mutex::new(None)).collect());
    for (i, chunk_items) in chunks.into_iter().enumerate() {
        let fold = Arc::clone(&fold);
        let partials = Arc::clone(&partials);
        let id = identity.clone();
        let ticket = group.add();
        pool.spawn(move || {
            let acc = chunk_items.into_iter().fold(id, |a, x| fold(a, x));
            *partials[i].lock() = Some(acc);
            drop(partials);
            drop(fold);
            ticket.done();
        });
    }
    group.wait();
    let collected: Vec<A> = match Arc::try_unwrap(partials) {
        Ok(v) => v
            .into_iter()
            .map(|m| m.into_inner().expect("partial computed"))
            .collect(),
        Err(arc) => arc
            .iter()
            .map(|m| m.lock().take().expect("partial computed"))
            .collect(),
    };
    collected.into_iter().fold(identity, combine)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_preserves_order() {
        let pool = Pool::new(4, true);
        let out = par_map(&pool, (0..1000i64).collect(), |x| x * 3);
        assert_eq!(out, (0..1000i64).map(|x| x * 3).collect::<Vec<_>>());
        pool.shutdown();
    }

    #[test]
    fn reduce_sums() {
        let pool = Pool::new(4, true);
        let sum = par_reduce(
            &pool,
            (1..=10_000i64).collect(),
            0i64,
            |a, x| a + x,
            |a, b| a + b,
        );
        assert_eq!(sum, 50_005_000);
        pool.shutdown();
    }

    #[test]
    fn reduce_empty_returns_identity() {
        let pool = Pool::new(2, true);
        let out = par_reduce(&pool, Vec::<i64>::new(), 42i64, |a, x| a + x, |a, b| a + b);
        assert_eq!(out, 42);
        pool.shutdown();
    }

    #[test]
    fn reduce_single_item() {
        let pool = Pool::new(4, true);
        let out = par_reduce(&pool, vec![7i64], 0i64, |a, x| a + x, |a, b| a + b);
        assert_eq!(out, 7);
        pool.shutdown();
    }

    #[test]
    fn reduce_noncommutative_but_associative() {
        // String concatenation: order must be preserved chunkwise.
        let pool = Pool::new(3, true);
        let items: Vec<String> = "abcdefghijklmnop".chars().map(|c| c.to_string()).collect();
        let out = par_reduce(
            &pool,
            items,
            String::new(),
            |mut a, x| {
                a.push_str(&x);
                a
            },
            |mut a, b| {
                a.push_str(&b);
                a
            },
        );
        assert_eq!(out, "abcdefghijklmnop");
        pool.shutdown();
    }
}
