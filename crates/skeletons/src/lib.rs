//! # skeletons
//!
//! Typed Rust parallel skeletons — the modern descendants of the paper's
//! algorithmic motifs (the novelty lineage runs through Cole's skeletons to
//! FastFlow, SkePU and TBB patterns). Where the `motifs` crate reproduces
//! the paper's *source-level* system on a simulated multicomputer, this
//! crate runs the same algorithmic structures on **real threads**:
//!
//! * [`pool`] — a placement-aware work-stealing pool (global queue,
//!   named-worker queues = the paper's `@node`, optional stealing);
//! * [`farm`] — task farm under five placement policies (static block,
//!   static cyclic, random, demand-driven, stealing);
//! * [`tree`] — tree reduction with the paper's two labelings
//!   (Tree-Reduce-1 random mapping vs. Tree-Reduce-2 left-child labeling)
//!   plus a static partition, with live-memory and crossing metrics;
//! * [`dc`] — generic divide and conquer;
//! * [`pipeline`] — multi-stage stream pipeline on bounded channels;
//! * [`mapreduce`] — parallel map + tree reduction over slices;
//! * [`stencil`] — iterated 1-D three-point and 2-D five-point stencils
//!   with barriers (the mesh computations of the paper's DIME context).

pub mod dc;
pub mod farm;
pub mod mapreduce;
pub mod pipeline;
pub mod pool;
pub mod stencil;
pub mod tree;

pub use farm::{farm, farm_chunked, Policy};
pub use pool::{Pool, TaskGroup, WorkerSet, WorkerSnapshot};
pub use tree::{
    int_eval, random_int_tree, reduce, reduce_seq, Labeling, MemSize, ReduceOutcome, Tree,
};
