//! The single-assignment variable store.
//!
//! Strand variables *"have the single assignment property: the value of a
//! variable is initially undefined and, once provided, cannot be modified"*
//! (paper §2.1). The store owns every variable created during a run, records
//! *when* and *on which virtual node* each binding happened (the
//! discrete-event simulation in `strand-machine` uses these timestamps to
//! model communication latency), and keeps the suspension lists used for
//! dataflow synchronization: a process that needs the value of an unbound
//! variable registers a waiter token and is re-scheduled when the binding
//! arrives.

use crate::error::{StrandError, StrandResult};
use crate::term::Term;
use std::collections::HashMap;

/// Identifier of a store variable.
///
/// In the deterministic simulator ids are plain indices into one [`Store`].
/// The sharded store ([`crate::shared::SharedStore`]) packs an *owner tag*
/// into the high bits — see [`VarId::tagged`] — so any worker can route a
/// variable to the stripe that owns it without a global table. Untagged ids
/// (owner 0) and stripe-0 ids coincide on purpose: a 1-worker sharded run
/// allocates exactly the same ids as the simulator.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct VarId(pub u32);

impl VarId {
    /// Bits reserved for the owning stripe (worker) tag.
    pub const OWNER_BITS: u32 = 10;
    /// Bits left for the per-stripe slot index.
    pub const INDEX_BITS: u32 = 32 - Self::OWNER_BITS;
    /// Maximum number of distinct owner stripes an id can name.
    pub const MAX_OWNERS: u32 = 1 << Self::OWNER_BITS;
    /// Maximum variables a single stripe can allocate.
    pub const MAX_INDEX: u32 = 1 << Self::INDEX_BITS;

    /// Pack an owner stripe and per-stripe index into one id.
    pub fn tagged(owner: u32, index: u32) -> VarId {
        debug_assert!(owner < Self::MAX_OWNERS);
        debug_assert!(index < Self::MAX_INDEX);
        VarId((owner << Self::INDEX_BITS) | index)
    }

    /// The owner stripe encoded in this id (0 for simulator ids).
    pub fn owner(self) -> u32 {
        self.0 >> Self::INDEX_BITS
    }

    /// The per-stripe slot index encoded in this id.
    pub fn index(self) -> usize {
        (self.0 & (Self::MAX_INDEX - 1)) as usize
    }
}

/// Virtual time in the discrete-event simulation (abstract "ticks").
pub type Time = u64;

/// Identifier of a virtual node (processor) in the simulated multicomputer.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug, Default)]
pub struct NodeId(pub u32);

/// A committed binding: the value plus provenance used for latency modeling.
#[derive(Clone, Debug, PartialEq)]
pub struct Binding {
    /// The bound value (may itself contain unbound variables).
    pub value: Term,
    /// Virtual time at which the binding was made.
    pub time: Time,
    /// Node whose process made the binding.
    pub node: NodeId,
}

/// Opaque waiter token; the abstract machine uses process identifiers.
pub type Waiter = u64;

pub(crate) enum Slot {
    Unbound { waiters: Vec<Waiter> },
    Bound(Binding),
}

/// The single-assignment store.
///
/// ```
/// use strand_core::{Store, Term, NodeId};
/// let mut store = Store::new();
/// let x = store.new_var();
/// assert!(store.lookup(x).is_none());
/// store.bind(x, Term::int(42), 7, NodeId(0)).unwrap();
/// assert_eq!(store.lookup(x).unwrap().value, Term::int(42));
/// // Second assignment is a run-time error (paper §2.1).
/// assert!(store.bind(x, Term::int(43), 8, NodeId(0)).is_err());
/// ```
#[derive(Default)]
pub struct Store {
    slots: Vec<Slot>,
    bind_count: u64,
    /// Region tag stamped on subsequently allocated variables. Region 0 is
    /// the boot/batch region: allocations there are never tracked and never
    /// reclaimed, so batch runs pay nothing for the machinery.
    region: u32,
    /// Per-region slot indices awaiting reclamation (regions ≠ 0 only).
    region_index: HashMap<u32, Vec<u32>>,
    /// Reclaimed slot indices available for reuse by `new_var`.
    free: Vec<u32>,
    /// Slots from closed regions that still had waiters at reclaim time
    /// (e.g. a live port tail); re-examined on every later reclaim.
    deferred: Vec<u32>,
}

impl Default for Slot {
    fn default() -> Self {
        Slot::Unbound {
            waiters: Vec::new(),
        }
    }
}

impl Store {
    /// Create an empty store.
    pub fn new() -> Store {
        Store::default()
    }

    /// Number of variables ever created.
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// True if no variable has been created.
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// Total number of successful bindings performed.
    pub fn bind_count(&self) -> u64 {
        self.bind_count
    }

    /// Allocate a fresh, unbound variable.
    ///
    /// Reuses a reclaimed slot when one is available, so the slot table's
    /// high-water mark tracks *live* variables, not variables ever created.
    /// When the current [region](Store::set_region) is non-zero the slot is
    /// recorded for [`reclaim_region`](Store::reclaim_region).
    pub fn new_var(&mut self) -> VarId {
        let index = match self.free.pop() {
            Some(i) => i,
            None => {
                let i = self.slots.len() as u32;
                self.slots.push(Slot::default());
                i
            }
        };
        if self.region != 0 {
            self.region_index
                .entry(self.region)
                .or_default()
                .push(index);
        }
        VarId(index)
    }

    /// Set the region tag for subsequent allocations (0 = untracked).
    pub fn set_region(&mut self, region: u32) {
        self.region = region;
    }

    /// The region tag currently stamped on allocations.
    pub fn region(&self) -> u32 {
        self.region
    }

    /// Reclaim every variable allocated under `region`, returning the number
    /// of slots actually freed.
    ///
    /// A slot is freed (reset to unbound-empty and made available for reuse)
    /// when it is bound, or unbound with no waiters. A slot that still has
    /// waiters — typically a live port tail some resident server loop is
    /// suspended on — is *deferred*: it stays allocated and is re-examined
    /// on the next reclaim, by which point the stream has usually advanced
    /// past it. Safety rests on the session-locality contract (DESIGN.md
    /// §9): server state must not retain session terms beyond the reply.
    pub fn reclaim_region(&mut self, region: u32) -> usize {
        let mut candidates = self.region_index.remove(&region).unwrap_or_default();
        candidates.append(&mut self.deferred);
        let mut freed = 0;
        for index in candidates {
            match &self.slots[index as usize] {
                Slot::Unbound { waiters } if !waiters.is_empty() => self.deferred.push(index),
                _ => {
                    self.slots[index as usize] = Slot::default();
                    self.free.push(index);
                    freed += 1;
                }
            }
        }
        freed
    }

    /// The binding of `v`, if any (no dereferencing of chained variables).
    pub fn lookup(&self, v: VarId) -> Option<&Binding> {
        match &self.slots[v.0 as usize] {
            Slot::Bound(b) => Some(b),
            Slot::Unbound { .. } => None,
        }
    }

    /// Follow variable-to-variable bindings until reaching either a
    /// non-variable term or an unbound variable occurrence.
    ///
    /// The result is "one level resolved": its top constructor is reliable,
    /// but subterms may still contain bound variables.
    pub fn deref(&self, t: &Term) -> Term {
        let mut cur = t.clone();
        loop {
            match cur {
                Term::Var(v) => match self.lookup(v) {
                    Some(b) => match &b.value {
                        Term::Var(next) => cur = Term::Var(*next),
                        other => return other.clone(),
                    },
                    None => return Term::Var(v),
                },
                other => return other,
            }
        }
    }

    /// Like [`deref`](Store::deref), but also reports the binding time of
    /// the *last* link followed — i.e. when the data became available.
    pub fn deref_timed(&self, t: &Term) -> (Term, Option<(Time, NodeId)>) {
        let mut cur = t.clone();
        let mut stamp = None;
        loop {
            match cur {
                Term::Var(v) => match self.lookup(v) {
                    Some(b) => {
                        stamp = Some((b.time, b.node));
                        match &b.value {
                            Term::Var(next) => cur = Term::Var(*next),
                            other => return (other.clone(), stamp),
                        }
                    }
                    None => return (Term::Var(v), stamp),
                },
                other => return (other, stamp),
            }
        }
    }

    /// Fully substitute all bound variables in `t`, producing a term whose
    /// only variables are genuinely unbound. Used for snapshots, result
    /// extraction and error messages.
    pub fn resolve(&self, t: &Term) -> Term {
        let top = self.deref(t);
        match top {
            Term::Tuple(name, args) => {
                Term::tuple(name, args.iter().map(|a| self.resolve(a)).collect())
            }
            Term::List(cell) => Term::cons(self.resolve(&cell.0), self.resolve(&cell.1)),
            other => other,
        }
    }

    /// Bind `v` to `value` at virtual `time` on `node`.
    ///
    /// Returns the waiter tokens that were suspended on `v` so the machine
    /// can re-schedule them. Binding a variable to itself (directly or
    /// through a chain) is a no-op; binding an already-bound variable is the
    /// run-time error the paper specifies.
    pub fn bind(
        &mut self,
        v: VarId,
        value: Term,
        time: Time,
        node: NodeId,
    ) -> StrandResult<Vec<Waiter>> {
        // Dereference the target first so alias chains stay acyclic: if the
        // value leads back to `v`, the assignment is `X = X` and a no-op.
        let value = self.deref(&value);
        if let Term::Var(w) = value {
            if w == v {
                return Ok(Vec::new());
            }
        }
        match &mut self.slots[v.0 as usize] {
            Slot::Bound(existing) => Err(StrandError::DoubleAssign {
                var: v,
                existing: existing.value.clone(),
                attempted: value,
            }),
            slot @ Slot::Unbound { .. } => {
                let waiters = match std::mem::take(slot) {
                    Slot::Unbound { waiters } => waiters,
                    Slot::Bound(_) => unreachable!(),
                };
                *slot = Slot::Bound(Binding { value, time, node });
                self.bind_count += 1;
                Ok(waiters)
            }
        }
    }

    /// Register `waiter` to be woken when `v` is bound. If `v` is already
    /// bound the call returns `false` and the waiter is *not* registered —
    /// the caller should treat the data as available.
    pub fn add_waiter(&mut self, v: VarId, waiter: Waiter) -> bool {
        match &mut self.slots[v.0 as usize] {
            Slot::Unbound { waiters } => {
                if !waiters.contains(&waiter) {
                    waiters.push(waiter);
                }
                true
            }
            Slot::Bound(_) => false,
        }
    }

    /// Remove a waiter from a variable's suspension list (used when a
    /// process suspended on several variables is woken by one of them).
    pub fn remove_waiter(&mut self, v: VarId, waiter: Waiter) {
        if let Slot::Unbound { waiters } = &mut self.slots[v.0 as usize] {
            waiters.retain(|w| *w != waiter);
        }
    }

    /// All variables that currently have at least one waiter (diagnostics).
    pub fn vars_with_waiters(&self) -> Vec<VarId> {
        self.slots
            .iter()
            .enumerate()
            .filter_map(|(i, s)| match s {
                Slot::Unbound { waiters } if !waiters.is_empty() => Some(VarId(i as u32)),
                _ => None,
            })
            .collect()
    }
}

/// The store operations term-level code needs: dereferencing, deep
/// substitution and fresh-variable allocation.
///
/// Matching, guard evaluation, arithmetic and pattern instantiation are
/// generic over this trait so they run unchanged against the simulator's
/// exclusive [`Store`] and the sharded concurrent
/// [`SharedStore`](crate::shared::SharedStore) views: the callers
/// monomorphize, so the single-threaded path pays nothing for the
/// abstraction.
pub trait StoreOps {
    /// See [`Store::deref`].
    fn deref(&self, t: &Term) -> Term;
    /// See [`Store::resolve`].
    fn resolve(&self, t: &Term) -> Term;
    /// See [`Store::new_var`].
    fn new_var(&mut self) -> VarId;
}

impl StoreOps for Store {
    fn deref(&self, t: &Term) -> Term {
        Store::deref(self, t)
    }

    fn resolve(&self, t: &Term) -> Term {
        Store::resolve(self, t)
    }

    fn new_var(&mut self) -> VarId {
        Store::new_var(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_assignment_enforced() {
        let mut s = Store::new();
        let x = s.new_var();
        s.bind(x, Term::int(1), 0, NodeId(0)).unwrap();
        let err = s.bind(x, Term::int(2), 1, NodeId(0)).unwrap_err();
        match err {
            StrandError::DoubleAssign {
                existing,
                attempted,
                ..
            } => {
                assert_eq!(existing, Term::int(1));
                assert_eq!(attempted, Term::int(2));
            }
            other => panic!("wrong error: {other}"),
        }
    }

    #[test]
    fn deref_follows_chains() {
        let mut s = Store::new();
        let x = s.new_var();
        let y = s.new_var();
        let z = s.new_var();
        s.bind(x, Term::Var(y), 0, NodeId(0)).unwrap();
        s.bind(y, Term::Var(z), 0, NodeId(0)).unwrap();
        assert_eq!(s.deref(&Term::Var(x)), Term::Var(z));
        s.bind(z, Term::atom("done"), 3, NodeId(1)).unwrap();
        assert_eq!(s.deref(&Term::Var(x)), Term::atom("done"));
        let (val, stamp) = s.deref_timed(&Term::Var(x));
        assert_eq!(val, Term::atom("done"));
        assert_eq!(stamp, Some((3, NodeId(1))));
    }

    #[test]
    fn self_binding_is_noop_and_breaks_cycles() {
        let mut s = Store::new();
        let x = s.new_var();
        let y = s.new_var();
        s.bind(x, Term::Var(y), 0, NodeId(0)).unwrap();
        // Y := X dereferences to Y := Y, which must be a no-op (not a cycle).
        let waiters = s.bind(y, Term::Var(x), 0, NodeId(0)).unwrap();
        assert!(waiters.is_empty());
        assert!(s.lookup(y).is_none());
        // The chain still dereferences without looping.
        assert_eq!(s.deref(&Term::Var(x)), Term::Var(y));
    }

    #[test]
    fn waiters_returned_on_bind() {
        let mut s = Store::new();
        let x = s.new_var();
        assert!(s.add_waiter(x, 11));
        assert!(s.add_waiter(x, 12));
        assert!(s.add_waiter(x, 11)); // duplicate registration is idempotent
        let w = s.bind(x, Term::int(5), 2, NodeId(0)).unwrap();
        assert_eq!(w, vec![11, 12]);
        // Registering on a bound var fails fast.
        assert!(!s.add_waiter(x, 13));
    }

    #[test]
    fn remove_waiter_unregisters() {
        let mut s = Store::new();
        let x = s.new_var();
        s.add_waiter(x, 1);
        s.add_waiter(x, 2);
        s.remove_waiter(x, 1);
        let w = s.bind(x, Term::int(0), 0, NodeId(0)).unwrap();
        assert_eq!(w, vec![2]);
    }

    #[test]
    fn resolve_substitutes_deeply() {
        let mut s = Store::new();
        let x = s.new_var();
        let y = s.new_var();
        s.bind(x, Term::int(3), 0, NodeId(0)).unwrap();
        let t = Term::tuple("f", vec![Term::Var(x), Term::cons(Term::Var(y), Term::Nil)]);
        let r = s.resolve(&t);
        assert_eq!(r.to_string(), format!("f(3,[_{}])", y.0));
    }

    #[test]
    fn reclaimed_regions_recycle_slots_and_bound_store_growth() {
        let mut s = Store::new();
        let boot = s.new_var(); // region 0: never reclaimed
        s.bind(boot, Term::int(1), 0, NodeId(0)).unwrap();
        let mut high_water = 0;
        for session in 1..=100u32 {
            s.set_region(session);
            let a = s.new_var();
            let b = s.new_var();
            s.bind(a, Term::int(session as i64), 0, NodeId(0)).unwrap();
            s.bind(b, Term::Var(a), 0, NodeId(0)).unwrap();
            s.set_region(0);
            assert_eq!(s.reclaim_region(session), 2);
            high_water = high_water.max(s.len());
        }
        // 1 boot slot + at most 2 live session slots, ever.
        assert!(high_water <= 3, "store grew to {high_water} slots");
        // The boot region was untouched.
        assert_eq!(s.lookup(boot).unwrap().value, Term::int(1));
    }

    #[test]
    fn waiter_blocked_slots_defer_until_a_later_reclaim() {
        let mut s = Store::new();
        s.set_region(7);
        let tail = s.new_var();
        s.add_waiter(tail, 99); // a resident loop is suspended on this slot
        s.set_region(0);
        // First reclaim must not free the slot out from under the waiter.
        assert_eq!(s.reclaim_region(7), 0);
        assert_eq!(s.vars_with_waiters(), vec![tail]);
        // The stream advances: the tail is bound, waiter drains.
        s.bind(tail, Term::Nil, 1, NodeId(0)).unwrap();
        // Any later reclaim (even of another region) frees the deferred slot.
        assert_eq!(s.reclaim_region(8), 1);
        // The freed slot is recycled by the next allocation.
        let reused = s.new_var();
        assert_eq!(reused, tail);
        assert!(s.lookup(reused).is_none());
    }

    #[test]
    fn binding_value_is_itself_dereferenced() {
        let mut s = Store::new();
        let x = s.new_var();
        let y = s.new_var();
        s.bind(y, Term::int(9), 0, NodeId(0)).unwrap();
        s.bind(x, Term::Var(y), 1, NodeId(0)).unwrap();
        // x was bound to deref(Y) = 9 directly.
        assert_eq!(s.lookup(x).unwrap().value, Term::int(9));
    }
}
