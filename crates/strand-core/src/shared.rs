//! A sharded single-assignment store for the multi-threaded backend.
//!
//! The simulator owns one exclusive [`Store`](crate::Store); the parallel
//! backend's workers instead share a [`SharedStore`] split into one *stripe*
//! per worker. A worker allocates variables only in its own stripe (ids carry
//! the owner tag — [`VarId::tagged`]), so allocation contends only with
//! readers of that stripe, and every operation locks at most two stripes at
//! a time (ordered by stripe index, so lock acquisition cannot deadlock).
//!
//! Correctness leans on the single-assignment property: a slot moves from
//! `Unbound` to `Bound` exactly once and never back, so alias chains only
//! grow. `deref` can therefore hop lock-to-lock without a global snapshot —
//! any chain it observes is a prefix of the final chain, and a reader that
//! misses a *very* recent binding behaves exactly like a process whose
//! notification has not arrived yet, which the suspension protocol already
//! handles.
//!
//! Alias-cycle freedom (the property that makes `deref` terminate) holds
//! because a variable-to-variable binding `v := w` commits only while *both*
//! stripes are locked and `w` is verified unbound: every committed alias edge
//! points at a variable that was unbound at commit time, so at most one
//! outgoing edge can ever close a cycle — and that case is caught by the
//! self-binding check after re-dereferencing (see [`SharedStore::bind`]).

use crate::error::{StrandError, StrandResult};
use crate::store::{Binding, NodeId, Slot, Time, Waiter};
use crate::term::Term;
use crate::{StoreOps, VarId};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// One worker's slice of the shared store.
#[derive(Default)]
struct Stripe {
    slots: Vec<Slot>,
    /// Per-region slot indices awaiting reclamation (regions ≠ 0 only).
    region_index: HashMap<u32, Vec<u32>>,
    /// Reclaimed slot indices available for reuse.
    free: Vec<u32>,
    /// Slots from closed regions that still had waiters at reclaim time;
    /// re-examined on every later reclaim of this stripe.
    deferred: Vec<u32>,
}

/// The striped concurrent single-assignment store.
///
/// All methods take `&self`; interior mutability is per-stripe
/// `std::sync::Mutex` (strand-core deliberately has no dependencies).
pub struct SharedStore {
    stripes: Vec<Mutex<Stripe>>,
    bind_count: AtomicU64,
}

impl SharedStore {
    /// A store with `owners` stripes (one per worker).
    pub fn new(owners: u32) -> SharedStore {
        assert!(
            (1..=VarId::MAX_OWNERS).contains(&owners),
            "stripe count {owners} out of range"
        );
        SharedStore {
            stripes: (0..owners).map(|_| Mutex::new(Stripe::default())).collect(),
            bind_count: AtomicU64::new(0),
        }
    }

    fn stripe(&self, owner: u32) -> std::sync::MutexGuard<'_, Stripe> {
        self.stripes[owner as usize]
            .lock()
            .unwrap_or_else(|e| e.into_inner())
    }

    /// Number of stripes.
    pub fn owners(&self) -> u32 {
        self.stripes.len() as u32
    }

    /// Total number of successful bindings performed (all stripes).
    pub fn bind_count(&self) -> u64 {
        self.bind_count.load(Ordering::Relaxed)
    }

    /// Number of variables ever created (all stripes).
    pub fn len(&self) -> usize {
        self.stripes
            .iter()
            .map(|s| s.lock().unwrap_or_else(|e| e.into_inner()).slots.len())
            .sum()
    }

    /// True if no variable has been created.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Allocate a fresh, unbound variable in `owner`'s stripe.
    pub fn new_var(&self, owner: u32) -> VarId {
        self.new_var_in(owner, 0)
    }

    /// Allocate a fresh, unbound variable in `owner`'s stripe under
    /// `region` (0 = untracked). Reclaimed slots are reused first, so a
    /// resident process's stripe tables track live variables, not variables
    /// ever created. See [`Store::reclaim_region`](crate::Store::reclaim_region)
    /// for the reclamation contract.
    pub fn new_var_in(&self, owner: u32, region: u32) -> VarId {
        let mut stripe = self.stripe(owner);
        let index = match stripe.free.pop() {
            Some(i) => i,
            None => {
                let i = stripe.slots.len() as u32;
                assert!(
                    i < VarId::MAX_INDEX,
                    "stripe {owner} exhausted its variable index space"
                );
                stripe.slots.push(Slot::default());
                i
            }
        };
        if region != 0 {
            stripe.region_index.entry(region).or_default().push(index);
        }
        VarId::tagged(owner, index)
    }

    /// Reclaim every variable allocated under `region` in `owner`'s stripe,
    /// returning the number of slots freed. Bound slots and unbound slots
    /// without waiters are reset and recycled; slots that still have waiters
    /// are deferred to a later reclaim of this stripe (the striped analogue
    /// of [`Store::reclaim_region`](crate::Store::reclaim_region)).
    pub fn reclaim_region_stripe(&self, owner: u32, region: u32) -> usize {
        let mut stripe = self.stripe(owner);
        let mut candidates = stripe.region_index.remove(&region).unwrap_or_default();
        candidates.append(&mut stripe.deferred);
        let mut freed = 0;
        for index in candidates {
            match &stripe.slots[index as usize] {
                Slot::Unbound { waiters } if !waiters.is_empty() => {
                    stripe.deferred.push(index);
                }
                _ => {
                    stripe.slots[index as usize] = Slot::default();
                    stripe.free.push(index);
                    freed += 1;
                }
            }
        }
        freed
    }

    /// The binding of `v`, if any (cloned out of the stripe lock).
    pub fn lookup(&self, v: VarId) -> Option<Binding> {
        match &self.stripe(v.owner()).slots[v.index()] {
            Slot::Bound(b) => Some(b.clone()),
            Slot::Unbound { .. } => None,
        }
    }

    /// Follow variable-to-variable bindings hop by hop, locking one stripe
    /// per hop. See [`Store::deref`](crate::Store::deref) for the contract.
    pub fn deref(&self, t: &Term) -> Term {
        let mut cur = t.clone();
        loop {
            match cur {
                Term::Var(v) => match self.lookup(v) {
                    Some(b) => match b.value {
                        Term::Var(next) => cur = Term::Var(next),
                        other => return other,
                    },
                    None => return Term::Var(v),
                },
                other => return other,
            }
        }
    }

    /// Like [`deref`](SharedStore::deref), also reporting when/where the
    /// last link was bound.
    pub fn deref_timed(&self, t: &Term) -> (Term, Option<(Time, NodeId)>) {
        let mut cur = t.clone();
        let mut stamp = None;
        loop {
            match cur {
                Term::Var(v) => match self.lookup(v) {
                    Some(b) => {
                        stamp = Some((b.time, b.node));
                        match b.value {
                            Term::Var(next) => cur = Term::Var(next),
                            other => return (other, stamp),
                        }
                    }
                    None => return (Term::Var(v), stamp),
                },
                other => return (other, stamp),
            }
        }
    }

    /// Fully substitute all bound variables in `t`.
    pub fn resolve(&self, t: &Term) -> Term {
        let top = self.deref(t);
        match top {
            Term::Tuple(name, args) => {
                Term::tuple(name, args.iter().map(|a| self.resolve(a)).collect())
            }
            Term::List(cell) => Term::cons(self.resolve(&cell.0), self.resolve(&cell.1)),
            other => other,
        }
    }

    /// Bind `v` to `value` at virtual `time` on `node`, returning the waiter
    /// tokens that were suspended on `v`.
    ///
    /// Semantics match [`Store::bind`](crate::Store::bind): the value is
    /// dereferenced first, self-binding (directly or through a chain) is a
    /// no-op, and double assignment is a run-time error. When the
    /// dereferenced value is itself an unbound variable `w`, both stripes
    /// are locked in index order and the commit happens only if `w` is
    /// *still* unbound — if a concurrent bind won the race, we retry from
    /// the dereference (the chain got longer, never cyclic).
    pub fn bind(
        &self,
        v: VarId,
        value: Term,
        time: Time,
        node: NodeId,
    ) -> StrandResult<Vec<Waiter>> {
        loop {
            let value = self.deref(&value);
            if let Term::Var(w) = value {
                if w == v {
                    return Ok(Vec::new());
                }
                // Alias bind: verify `w` unbound under both stripe locks.
                let (first, second) = if v.owner() == w.owner() {
                    (self.stripe(v.owner()), None)
                } else if v.owner() < w.owner() {
                    let a = self.stripe(v.owner());
                    let b = self.stripe(w.owner());
                    (a, Some(b))
                } else {
                    let b = self.stripe(w.owner());
                    let a = self.stripe(v.owner());
                    (a, Some(b))
                };
                let mut v_stripe = first;
                let w_bound = {
                    let w_slot = match &second {
                        Some(ws) => &ws.slots[w.index()],
                        None => &v_stripe.slots[w.index()],
                    };
                    matches!(w_slot, Slot::Bound(_))
                };
                if w_bound {
                    // Lost the race: `w` gained a value. Drop the locks and
                    // re-dereference; the next pass binds to the new tip.
                    continue;
                }
                return self.commit(&mut v_stripe.slots[v.index()], v, value, time, node);
            }
            // Ground (non-variable) value: only `v`'s stripe is involved.
            let mut v_stripe = self.stripe(v.owner());
            return self.commit(&mut v_stripe.slots[v.index()], v, value, time, node);
        }
    }

    fn commit(
        &self,
        slot: &mut Slot,
        v: VarId,
        value: Term,
        time: Time,
        node: NodeId,
    ) -> StrandResult<Vec<Waiter>> {
        match slot {
            Slot::Bound(existing) => Err(StrandError::DoubleAssign {
                var: v,
                existing: existing.value.clone(),
                attempted: value,
            }),
            unbound @ Slot::Unbound { .. } => {
                let waiters = match std::mem::take(unbound) {
                    Slot::Unbound { waiters } => waiters,
                    Slot::Bound(_) => unreachable!(),
                };
                *unbound = Slot::Bound(Binding { value, time, node });
                self.bind_count.fetch_add(1, Ordering::Relaxed);
                Ok(waiters)
            }
        }
    }

    /// Register `waiter` on `v`; returns `false` (not registered) if `v` is
    /// already bound. See [`Store::add_waiter`](crate::Store::add_waiter).
    pub fn add_waiter(&self, v: VarId, waiter: Waiter) -> bool {
        match &mut self.stripe(v.owner()).slots[v.index()] {
            Slot::Unbound { waiters } => {
                if !waiters.contains(&waiter) {
                    waiters.push(waiter);
                }
                true
            }
            Slot::Bound(_) => false,
        }
    }

    /// Remove a waiter registration (no-op if `v` got bound meanwhile).
    pub fn remove_waiter(&self, v: VarId, waiter: Waiter) {
        if let Slot::Unbound { waiters } = &mut self.stripe(v.owner()).slots[v.index()] {
            waiters.retain(|w| *w != waiter);
        }
    }

    /// All variables that currently have at least one waiter (diagnostics;
    /// called only after the workers have quiesced).
    pub fn vars_with_waiters(&self) -> Vec<VarId> {
        let mut out = Vec::new();
        for (owner, stripe) in self.stripes.iter().enumerate() {
            let stripe = stripe.lock().unwrap_or_else(|e| e.into_inner());
            for (i, s) in stripe.slots.iter().enumerate() {
                if let Slot::Unbound { waiters } = s {
                    if !waiters.is_empty() {
                        out.push(VarId::tagged(owner as u32, i as u32));
                    }
                }
            }
        }
        out
    }
}

/// A worker's view of a [`SharedStore`]: all reads/binds go to the shared
/// stripes; fresh variables are allocated in the worker's own stripe.
///
/// This is the type that implements [`StoreOps`] for the parallel backend —
/// it is `Clone` + cheap, so each worker machine holds its own view.
#[derive(Clone)]
pub struct SharedStoreView {
    store: std::sync::Arc<SharedStore>,
    owner: u32,
    region: u32,
}

impl SharedStoreView {
    /// A view allocating into `owner`'s stripe.
    pub fn new(store: std::sync::Arc<SharedStore>, owner: u32) -> SharedStoreView {
        assert!(owner < store.owners());
        SharedStoreView {
            store,
            owner,
            region: 0,
        }
    }

    /// The underlying shared store.
    pub fn shared(&self) -> &SharedStore {
        &self.store
    }

    /// The stripe this view allocates into.
    pub fn owner(&self) -> u32 {
        self.owner
    }

    /// Set the region tag for subsequent allocations (0 = untracked).
    pub fn set_region(&mut self, region: u32) {
        self.region = region;
    }

    /// The region tag currently stamped on allocations.
    pub fn region(&self) -> u32 {
        self.region
    }
}

impl StoreOps for SharedStoreView {
    fn deref(&self, t: &Term) -> Term {
        self.store.deref(t)
    }

    fn resolve(&self, t: &Term) -> Term {
        self.store.resolve(t)
    }

    fn new_var(&mut self) -> VarId {
        self.store.new_var_in(self.owner, self.region)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn ids_carry_owner_tags_and_stripe_zero_matches_simulator() {
        let s = SharedStore::new(4);
        let a = s.new_var(0);
        let b = s.new_var(0);
        let c = s.new_var(3);
        // Stripe 0 ids are plain indices — identical to Store::new_var.
        assert_eq!((a.0, b.0), (0, 1));
        assert_eq!((c.owner(), c.index()), (3, 0));
        assert_eq!(s.len(), 3);
    }

    #[test]
    fn bind_and_deref_across_stripes() {
        let s = SharedStore::new(2);
        let x = s.new_var(0);
        let y = s.new_var(1);
        s.bind(x, Term::Var(y), 0, NodeId(0)).unwrap();
        assert_eq!(s.deref(&Term::Var(x)), Term::Var(y));
        s.bind(y, Term::int(7), 3, NodeId(1)).unwrap();
        assert_eq!(s.deref(&Term::Var(x)), Term::int(7));
        let (v, stamp) = s.deref_timed(&Term::Var(x));
        assert_eq!(v, Term::int(7));
        assert_eq!(stamp, Some((3, NodeId(1))));
        assert_eq!(s.bind_count(), 2);
    }

    #[test]
    fn double_assign_and_self_binding_match_store_semantics() {
        let s = SharedStore::new(2);
        let x = s.new_var(0);
        let y = s.new_var(1);
        s.bind(x, Term::Var(y), 0, NodeId(0)).unwrap();
        // y := x dereferences to y := y: a no-op, not a cycle.
        assert!(s.bind(y, Term::Var(x), 0, NodeId(0)).unwrap().is_empty());
        assert!(s.lookup(y).is_none());
        s.bind(y, Term::int(1), 0, NodeId(0)).unwrap();
        assert!(matches!(
            s.bind(y, Term::int(2), 0, NodeId(0)),
            Err(StrandError::DoubleAssign { .. })
        ));
    }

    #[test]
    fn waiters_follow_store_semantics() {
        let s = SharedStore::new(2);
        let x = s.new_var(1);
        assert!(s.add_waiter(x, 11));
        assert!(s.add_waiter(x, 12));
        assert!(s.add_waiter(x, 11));
        s.remove_waiter(x, 12);
        assert_eq!(s.vars_with_waiters(), vec![x]);
        let w = s.bind(x, Term::int(5), 2, NodeId(0)).unwrap();
        assert_eq!(w, vec![11]);
        assert!(!s.add_waiter(x, 13));
        assert!(s.vars_with_waiters().is_empty());
    }

    #[test]
    fn stripe_reclaim_recycles_slots_and_defers_waiter_blocked_ones() {
        let s = SharedStore::new(2);
        let boot = s.new_var(1); // region 0 in stripe 1: never reclaimed
        s.bind(boot, Term::int(1), 0, NodeId(0)).unwrap();
        let mut high_water = 0;
        for session in 1..=50u32 {
            let a = s.new_var_in(1, session);
            let tail = s.new_var_in(1, session);
            s.bind(a, Term::int(session as i64), 0, NodeId(0)).unwrap();
            s.add_waiter(tail, u64::from(session));
            // The waiter-blocked slot defers; the bound one frees. From the
            // second session on, the previous session's deferred tail (bound
            // at the end of that session) is freed here too.
            let expected = if session == 1 { 1 } else { 2 };
            assert_eq!(s.reclaim_region_stripe(1, session), expected);
            // Binding drains the waiter; the next reclaim frees the deferral.
            s.bind(tail, Term::Nil, 0, NodeId(0)).unwrap();
            high_water = high_water.max(s.len());
        }
        // The final tail is still deferred; one more reclaim frees it.
        assert_eq!(s.reclaim_region_stripe(1, 51), 1);
        assert!(high_water <= 4, "stripe grew to {high_water} slots");
        assert_eq!(s.lookup(boot).unwrap().value, Term::int(1));
        // Stripe 0 was never touched.
        assert_eq!(s.reclaim_region_stripe(0, 1), 0);
    }

    #[test]
    fn view_region_tags_route_allocations_to_reclaim() {
        let s = Arc::new(SharedStore::new(2));
        let mut view = SharedStoreView::new(Arc::clone(&s), 1);
        assert_eq!(view.region(), 0);
        view.set_region(3);
        let v = StoreOps::new_var(&mut view);
        assert_eq!(v.owner(), 1);
        s.bind(v, Term::int(9), 0, NodeId(0)).unwrap();
        view.set_region(0);
        let untracked = StoreOps::new_var(&mut view);
        assert_eq!(s.reclaim_region_stripe(1, 3), 1);
        // The untracked allocation survives any reclaim.
        assert!(s.lookup(untracked).is_none());
        s.bind(untracked, Term::int(1), 0, NodeId(0)).unwrap();
    }

    #[test]
    fn concurrent_alias_race_never_cycles_or_loses_a_bind() {
        // Hammer the x:=y / y:=x race from two threads; whatever interleaving
        // happens, deref must terminate and exactly one alias edge commits.
        for round in 0..200 {
            let s = Arc::new(SharedStore::new(2));
            let x = s.new_var(0);
            let y = s.new_var(1);
            let s1 = Arc::clone(&s);
            let t = std::thread::spawn(move || s1.bind(x, Term::Var(y), 0, NodeId(0)));
            let r2 = s.bind(y, Term::Var(x), 0, NodeId(1));
            let r1 = t.join().unwrap();
            assert!(r1.is_ok() && r2.is_ok(), "round {round}: {r1:?} {r2:?}");
            // At most one of the two slots is bound, and chains terminate.
            let bound = [x, y].iter().filter(|v| s.lookup(**v).is_some()).count();
            assert!(bound <= 1, "round {round}: cycle committed");
            let _ = s.deref(&Term::Var(x));
            let _ = s.deref(&Term::Var(y));
        }
    }

    #[test]
    fn concurrent_ground_binds_keep_single_assignment() {
        let s = Arc::new(SharedStore::new(4));
        let vars: Vec<VarId> =
            (0..4)
                .flat_map(|o| (0..64).map(move |_| o))
                .fold(Vec::new(), |mut acc, o| {
                    acc.push(s.new_var(o));
                    acc
                });
        let mut handles = Vec::new();
        for t in 0..4u32 {
            let s = Arc::clone(&s);
            let vars = vars.clone();
            handles.push(std::thread::spawn(move || {
                let mut wins = 0u32;
                for v in vars {
                    if s.bind(v, Term::int(t as i64), 0, NodeId(t)).is_ok() {
                        wins += 1;
                    }
                }
                wins
            }));
        }
        let total: u32 = handles.into_iter().map(|h| h.join().unwrap()).sum();
        // Every variable bound exactly once across all threads.
        assert_eq!(total as usize, vars.len());
        assert_eq!(s.bind_count() as usize, vars.len());
    }
}
