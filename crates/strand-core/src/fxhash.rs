//! A minimal Fx-style hasher for hot dispatch maps.
//!
//! Procedure lookup happens once per reduction: the scheduler derefs a goal,
//! reads its functor, and probes a `name → proc` table. With the standard
//! `HashMap` that probe pays SipHash over the functor string every time —
//! measurable against a dispatch path that is otherwise a few dozen
//! nanoseconds. This multiply-rotate hash (the scheme rustc uses internally)
//! is not DoS-resistant, which is fine: the keys are procedure names from the
//! program text, not attacker-controlled input.

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

/// Multiply-rotate hasher over machine words.
#[derive(Default)]
pub struct FxHasher {
    hash: u64,
}

const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

impl FxHasher {
    #[inline]
    fn add(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn write(&mut self, mut bytes: &[u8]) {
        while bytes.len() >= 8 {
            let word = u64::from_le_bytes(bytes[..8].try_into().unwrap());
            self.add(word);
            bytes = &bytes[8..];
        }
        if bytes.len() >= 4 {
            let word = u32::from_le_bytes(bytes[..4].try_into().unwrap());
            self.add(word as u64);
            bytes = &bytes[4..];
        }
        for &b in bytes {
            self.add(b as u64);
        }
    }

    #[inline]
    fn write_u8(&mut self, i: u8) {
        self.add(i as u64);
    }

    #[inline]
    fn write_u16(&mut self, i: u16) {
        self.add(i as u64);
    }

    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.add(i as u64);
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.add(i);
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.add(i as u64);
    }

    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }
}

/// Build-hasher for [`FxHasher`].
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// `HashMap` keyed with the fast hasher.
pub type FxHashMap<K, V> = HashMap<K, V, FxBuildHasher>;

/// `HashSet` keyed with the fast hasher.
pub type FxHashSet<T> = HashSet<T, FxBuildHasher>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distinguishes_nearby_keys() {
        let hash = |s: &str| {
            let mut h = FxHasher::default();
            h.write(s.as_bytes());
            h.finish()
        };
        assert_ne!(hash("reduce"), hash("reduc"));
        assert_ne!(hash("serve"), hash("server"));
        assert_ne!(hash("eval"), hash("lave"));
    }

    #[test]
    fn map_round_trips_string_keys() {
        let mut m: FxHashMap<String, u32> = FxHashMap::default();
        for i in 0..100u32 {
            m.insert(format!("proc_{i}"), i);
        }
        for i in 0..100u32 {
            assert_eq!(m.get(format!("proc_{i}").as_str()), Some(&i));
        }
    }
}
