//! One-way head matching and guard evaluation.
//!
//! *"Conditions expressed by non-variable terms in a rule head define
//! dataflow constraints: a rule cannot be used to reduce a process until the
//! process's arguments match its own"* (§2.1). Matching is one-way: rule
//! patterns never bind goal variables; a non-variable pattern position whose
//! goal counterpart is an unbound variable causes *suspension*, not failure.

use crate::arith::{eval_arith, Evaled};
use crate::error::StrandResult;
use crate::pat::{Frame, Pat};
use crate::store::{StoreOps, VarId};
use crate::term::Term;

/// Outcome of matching goal arguments against a rule head.
#[derive(Clone, Debug, PartialEq)]
pub enum MatchOutcome {
    /// Head matched; the frame holds the local bindings.
    Match,
    /// Not enough data yet: these goal variables must be bound first.
    Suspend(Vec<VarId>),
    /// Definitive mismatch.
    Fail,
}

/// Outcome of evaluating one guard test.
#[derive(Clone, Debug, PartialEq)]
pub enum GuardOutcome {
    True,
    False,
    /// Guard needs these variables bound before it can be decided.
    Suspend(Vec<VarId>),
}

fn push_unique(vs: &mut Vec<VarId>, v: VarId) {
    if !vs.contains(&v) {
        vs.push(v);
    }
}

/// Match goal arguments against head patterns, filling `frame`.
///
/// On [`MatchOutcome::Suspend`] or [`MatchOutcome::Fail`] the frame contents
/// are unspecified and the caller must discard it.
pub fn match_args<S: StoreOps>(
    goal_args: &[Term],
    head: &[Pat],
    store: &S,
    frame: &mut Frame,
) -> MatchOutcome {
    debug_assert_eq!(goal_args.len(), head.len());
    let mut pending: Vec<VarId> = Vec::new();
    for (g, p) in goal_args.iter().zip(head.iter()) {
        match match_one(g, p, store, frame, &mut pending) {
            MatchStep::Ok => {}
            MatchStep::Fail => return MatchOutcome::Fail,
        }
    }
    if pending.is_empty() {
        MatchOutcome::Match
    } else {
        MatchOutcome::Suspend(pending)
    }
}

enum MatchStep {
    Ok,
    Fail,
}

fn match_one<S: StoreOps>(
    goal: &Term,
    pat: &Pat,
    store: &S,
    frame: &mut Frame,
    pending: &mut Vec<VarId>,
) -> MatchStep {
    let g = store.deref(goal);
    match pat {
        Pat::Wild => MatchStep::Ok,
        Pat::Local(i) => {
            match frame.get(*i).cloned() {
                None => {
                    frame.set(*i, g);
                    MatchStep::Ok
                }
                // Non-linear head (e.g. `p(X,X)`): both occurrences must be
                // equal; unknown equality suspends.
                Some(prev) => match term_eq(&prev, &g, store) {
                    EqOutcome::Eq => MatchStep::Ok,
                    EqOutcome::Neq => MatchStep::Fail,
                    EqOutcome::Unknown(vs) => {
                        for v in vs {
                            push_unique(pending, v);
                        }
                        MatchStep::Ok
                    }
                },
            }
        }
        _ => match &g {
            // Goal side not yet instantiated: dataflow suspension.
            Term::Var(v) => {
                push_unique(pending, *v);
                MatchStep::Ok
            }
            Term::Int(i) => match pat {
                Pat::Int(j) if i == j => MatchStep::Ok,
                Pat::Float(x) if *x == *i as f64 => MatchStep::Ok,
                _ => MatchStep::Fail,
            },
            Term::Float(x) => match pat {
                Pat::Float(y) if x == y => MatchStep::Ok,
                Pat::Int(j) if *x == *j as f64 => MatchStep::Ok,
                _ => MatchStep::Fail,
            },
            Term::Atom(a) => match pat {
                Pat::Atom(b) if a == b => MatchStep::Ok,
                _ => MatchStep::Fail,
            },
            Term::Str(s) => match pat {
                Pat::Str(t) if s == t => MatchStep::Ok,
                _ => MatchStep::Fail,
            },
            Term::Nil => match pat {
                Pat::Nil => MatchStep::Ok,
                _ => MatchStep::Fail,
            },
            Term::List(cell) => match pat {
                Pat::List(pcell) => {
                    match match_one(&cell.0, &pcell.0, store, frame, pending) {
                        MatchStep::Fail => return MatchStep::Fail,
                        MatchStep::Ok => {}
                    }
                    match_one(&cell.1, &pcell.1, store, frame, pending)
                }
                _ => MatchStep::Fail,
            },
            Term::Tuple(name, args) => match pat {
                Pat::Tuple(pname, pargs) if name == pname && args.len() == pargs.len() => {
                    for (ga, pa) in args.iter().zip(pargs.iter()) {
                        match match_one(ga, pa, store, frame, pending) {
                            MatchStep::Fail => return MatchStep::Fail,
                            MatchStep::Ok => {}
                        }
                    }
                    MatchStep::Ok
                }
                _ => MatchStep::Fail,
            },
            Term::Port(_) => MatchStep::Fail,
        },
    }
}

/// Three-valued structural equality under a store.
#[derive(Clone, Debug, PartialEq)]
pub enum EqOutcome {
    Eq,
    Neq,
    /// Equality cannot be decided until these variables are bound.
    Unknown(Vec<VarId>),
}

/// Compare two terms structurally, dereferencing through the store.
pub fn term_eq<S: StoreOps>(a: &Term, b: &Term, store: &S) -> EqOutcome {
    let a = store.deref(a);
    let b = store.deref(b);
    match (&a, &b) {
        (Term::Var(x), Term::Var(y)) => {
            if x == y {
                EqOutcome::Eq
            } else {
                EqOutcome::Unknown(vec![*x, *y])
            }
        }
        (Term::Var(x), _) | (_, Term::Var(x)) => EqOutcome::Unknown(vec![*x]),
        (Term::Int(x), Term::Int(y)) => bool_eq(x == y),
        (Term::Float(x), Term::Float(y)) => bool_eq(x == y),
        (Term::Int(x), Term::Float(y)) | (Term::Float(y), Term::Int(x)) => bool_eq(*x as f64 == *y),
        (Term::Atom(x), Term::Atom(y)) => bool_eq(x == y),
        (Term::Str(x), Term::Str(y)) => bool_eq(x == y),
        (Term::Nil, Term::Nil) => EqOutcome::Eq,
        (Term::Port(x), Term::Port(y)) => bool_eq(x == y),
        (Term::List(ca), Term::List(cb)) => combine_eq(term_eq(&ca.0, &cb.0, store), || {
            term_eq(&ca.1, &cb.1, store)
        }),
        (Term::Tuple(fa, aa), Term::Tuple(fb, ab)) => {
            if fa != fb || aa.len() != ab.len() {
                return EqOutcome::Neq;
            }
            let mut pending = Vec::new();
            for (x, y) in aa.iter().zip(ab.iter()) {
                match term_eq(x, y, store) {
                    EqOutcome::Eq => {}
                    EqOutcome::Neq => return EqOutcome::Neq,
                    EqOutcome::Unknown(vs) => {
                        for v in vs {
                            push_unique(&mut pending, v);
                        }
                    }
                }
            }
            if pending.is_empty() {
                EqOutcome::Eq
            } else {
                EqOutcome::Unknown(pending)
            }
        }
        _ => EqOutcome::Neq,
    }
}

fn bool_eq(b: bool) -> EqOutcome {
    if b {
        EqOutcome::Eq
    } else {
        EqOutcome::Neq
    }
}

fn combine_eq(first: EqOutcome, rest: impl FnOnce() -> EqOutcome) -> EqOutcome {
    match first {
        EqOutcome::Neq => EqOutcome::Neq,
        EqOutcome::Eq => rest(),
        EqOutcome::Unknown(mut vs) => match rest() {
            EqOutcome::Neq => EqOutcome::Neq,
            EqOutcome::Eq => EqOutcome::Unknown(vs),
            EqOutcome::Unknown(ws) => {
                for w in ws {
                    push_unique(&mut vs, w);
                }
                EqOutcome::Unknown(vs)
            }
        },
    }
}

/// Evaluate one guard test (already instantiated against the rule frame).
///
/// Supported guards: arithmetic comparisons `< > =< >= == =\=`, type tests
/// `integer/1 float/1 number/1 atom/1 string/1 list/1 tuple/1 data/1
/// unknown/1`, and `true/0`. The machine handles `otherwise` itself.
pub fn eval_guard<S: StoreOps>(guard: &Term, store: &S) -> StrandResult<GuardOutcome> {
    let g = store.deref(guard);
    let (name, arity) = match g.functor() {
        Some(f) => (f.0.as_str().to_string(), f.1),
        None => return Ok(GuardOutcome::False),
    };
    let args = g.goal_args();
    match (name.as_str(), arity) {
        ("true", 0) => Ok(GuardOutcome::True),
        ("<", 2) | (">", 2) | ("=<", 2) | (">=", 2) => {
            let l = eval_arith(&args[0], store)?;
            let r = eval_arith(&args[1], store)?;
            match (l, r) {
                (Evaled::Num(a), Evaled::Num(b)) => {
                    let (a, b) = (a.as_f64(), b.as_f64());
                    let res = match name.as_str() {
                        "<" => a < b,
                        ">" => a > b,
                        "=<" => a <= b,
                        _ => a >= b,
                    };
                    Ok(if res {
                        GuardOutcome::True
                    } else {
                        GuardOutcome::False
                    })
                }
                (l, r) => {
                    let mut vs = Vec::new();
                    if let Evaled::Suspend(mut s) = l {
                        vs.append(&mut s);
                    }
                    if let Evaled::Suspend(s) = r {
                        for v in s {
                            push_unique(&mut vs, v);
                        }
                    }
                    Ok(GuardOutcome::Suspend(vs))
                }
            }
        }
        ("==", 2) | ("=\\=", 2) => {
            let positive = name == "==";
            match term_eq(&args[0], &args[1], store) {
                EqOutcome::Eq => Ok(if positive {
                    GuardOutcome::True
                } else {
                    GuardOutcome::False
                }),
                EqOutcome::Neq => Ok(if positive {
                    GuardOutcome::False
                } else {
                    GuardOutcome::True
                }),
                EqOutcome::Unknown(vs) => Ok(GuardOutcome::Suspend(vs)),
            }
        }
        ("integer", 1)
        | ("float", 1)
        | ("number", 1)
        | ("atom", 1)
        | ("string", 1)
        | ("list", 1)
        | ("tuple", 1)
        | ("data", 1) => {
            let t = store.deref(&args[0]);
            if let Term::Var(v) = t {
                // Type tests are dataflow: wait until the datum arrives.
                return Ok(GuardOutcome::Suspend(vec![v]));
            }
            let ok = match name.as_str() {
                "integer" => matches!(t, Term::Int(_)),
                "float" => matches!(t, Term::Float(_)),
                "number" => t.is_number(),
                "atom" => matches!(t, Term::Atom(_)),
                "string" => matches!(t, Term::Str(_)),
                "list" => matches!(t, Term::List(_) | Term::Nil),
                "tuple" => matches!(t, Term::Tuple(_, _)),
                "data" => true,
                _ => unreachable!(),
            };
            Ok(if ok {
                GuardOutcome::True
            } else {
                GuardOutcome::False
            })
        }
        // Nonmonotonic test used by some system code: true iff currently
        // unbound. Succeeds/fails immediately, never suspends.
        ("unknown", 1) => {
            let t = store.deref(&args[0]);
            Ok(if t.is_var() {
                GuardOutcome::True
            } else {
                GuardOutcome::False
            })
        }
        _ => Err(crate::error::StrandError::BadBuiltin {
            builtin: format!("{name}/{arity}"),
            detail: "unknown guard test".into(),
        }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::{NodeId, Store};

    fn frame_for(head: &[Pat]) -> Frame {
        let n = head.iter().map(Pat::local_count).max().unwrap_or(0);
        Frame::with_locals(n)
    }

    #[test]
    fn match_binds_locals() {
        let store = Store::new();
        let head = vec![
            Pat::tuple("tree", vec![Pat::Local(0), Pat::Local(1), Pat::Local(2)]),
            Pat::Local(3),
        ];
        let goal = vec![
            Term::tuple("tree", vec![Term::atom("+"), Term::int(1), Term::int(2)]),
            Term::Var(VarId(0)),
        ];
        let mut frame = frame_for(&head);
        // Note: goal var exists conceptually; matching a Local against a var
        // is fine — locals accept anything.
        let mut store2 = store;
        let _v = store2.new_var();
        assert_eq!(
            match_args(&goal, &head, &store2, &mut frame),
            MatchOutcome::Match
        );
        assert_eq!(frame.get(0), Some(&Term::atom("+")));
        assert_eq!(frame.get(3), Some(&Term::Var(VarId(0))));
    }

    #[test]
    fn unbound_goal_var_against_structure_suspends() {
        let mut store = Store::new();
        let x = store.new_var();
        let head = vec![Pat::cons(Pat::Local(0), Pat::Local(1))];
        let mut frame = frame_for(&head);
        assert_eq!(
            match_args(&[Term::Var(x)], &head, &store, &mut frame),
            MatchOutcome::Suspend(vec![x])
        );
        // Once bound, the same match succeeds.
        store
            .bind(x, Term::cons(Term::int(1), Term::Nil), 0, NodeId(0))
            .unwrap();
        let mut frame = frame_for(&head);
        assert_eq!(
            match_args(&[Term::Var(x)], &head, &store, &mut frame),
            MatchOutcome::Match
        );
        assert_eq!(frame.get(0), Some(&Term::int(1)));
    }

    #[test]
    fn constant_mismatch_fails() {
        let store = Store::new();
        let head = vec![Pat::Int(0)];
        let mut frame = frame_for(&head);
        assert_eq!(
            match_args(&[Term::int(1)], &head, &store, &mut frame),
            MatchOutcome::Fail
        );
    }

    #[test]
    fn nonlinear_head_requires_equality() {
        let mut store = Store::new();
        let head = vec![Pat::Local(0), Pat::Local(0)];
        let mut frame = frame_for(&head);
        assert_eq!(
            match_args(&[Term::int(1), Term::int(1)], &head, &store, &mut frame),
            MatchOutcome::Match
        );
        let mut frame = frame_for(&head);
        assert_eq!(
            match_args(&[Term::int(1), Term::int(2)], &head, &store, &mut frame),
            MatchOutcome::Fail
        );
        let x = store.new_var();
        let mut frame = frame_for(&head);
        assert_eq!(
            match_args(&[Term::int(1), Term::Var(x)], &head, &store, &mut frame),
            MatchOutcome::Suspend(vec![x])
        );
    }

    #[test]
    fn deep_structure_matching() {
        let store = Store::new();
        let head = vec![Pat::list([Pat::Local(0), Pat::Int(2)])];
        let goal = vec![Term::list([Term::int(1), Term::int(2)])];
        let mut frame = frame_for(&head);
        assert_eq!(
            match_args(&goal, &head, &store, &mut frame),
            MatchOutcome::Match
        );
        assert_eq!(frame.get(0), Some(&Term::int(1)));

        // Wrong length fails.
        let goal = vec![Term::list([Term::int(1)])];
        let mut frame = frame_for(&head);
        assert_eq!(
            match_args(&goal, &head, &store, &mut frame),
            MatchOutcome::Fail
        );
    }

    #[test]
    fn suspension_collects_all_needed_vars() {
        let mut store = Store::new();
        let x = store.new_var();
        let y = store.new_var();
        let head = vec![Pat::Int(1), Pat::Int(2)];
        let mut frame = frame_for(&head);
        assert_eq!(
            match_args(&[Term::Var(x), Term::Var(y)], &head, &store, &mut frame),
            MatchOutcome::Suspend(vec![x, y])
        );
    }

    #[test]
    fn guards_compare_arithmetic() {
        let mut store = Store::new();
        let g = Term::tuple(">", vec![Term::int(3), Term::int(0)]);
        assert_eq!(eval_guard(&g, &store).unwrap(), GuardOutcome::True);
        let g = Term::tuple("=<", vec![Term::int(3), Term::int(0)]);
        assert_eq!(eval_guard(&g, &store).unwrap(), GuardOutcome::False);
        let x = store.new_var();
        let g = Term::tuple(">", vec![Term::Var(x), Term::int(0)]);
        assert_eq!(
            eval_guard(&g, &store).unwrap(),
            GuardOutcome::Suspend(vec![x])
        );
    }

    #[test]
    fn type_test_guards() {
        let mut store = Store::new();
        assert_eq!(
            eval_guard(&Term::tuple("integer", vec![Term::int(1)]), &store).unwrap(),
            GuardOutcome::True
        );
        assert_eq!(
            eval_guard(&Term::tuple("list", vec![Term::Nil]), &store).unwrap(),
            GuardOutcome::True
        );
        assert_eq!(
            eval_guard(&Term::tuple("tuple", vec![Term::int(1)]), &store).unwrap(),
            GuardOutcome::False
        );
        let x = store.new_var();
        assert_eq!(
            eval_guard(&Term::tuple("data", vec![Term::Var(x)]), &store).unwrap(),
            GuardOutcome::Suspend(vec![x])
        );
        assert_eq!(
            eval_guard(&Term::tuple("unknown", vec![Term::Var(x)]), &store).unwrap(),
            GuardOutcome::True
        );
    }

    #[test]
    fn structural_equality_guard() {
        let store = Store::new();
        let a = Term::tuple("f", vec![Term::int(1), Term::atom("x")]);
        let b = Term::tuple("f", vec![Term::int(1), Term::atom("x")]);
        assert_eq!(
            eval_guard(&Term::tuple("==", vec![a.clone(), b.clone()]), &store).unwrap(),
            GuardOutcome::True
        );
        assert_eq!(
            eval_guard(&Term::tuple("=\\=", vec![a, b]), &store).unwrap(),
            GuardOutcome::False
        );
    }

    #[test]
    fn unknown_guard_name_is_error() {
        let store = Store::new();
        assert!(eval_guard(&Term::tuple("frobnicate", vec![Term::int(1)]), &store).is_err());
    }
}
