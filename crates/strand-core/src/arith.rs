//! Arithmetic evaluation for `:=` assignments and comparison guards.
//!
//! Strand evaluates arithmetic eagerly but *data-driven*: an expression
//! containing an unbound variable cannot be evaluated yet, so the process
//! suspends until the variable is bound (§2.1). [`eval_arith`] therefore
//! returns three-way: a number, a set of variables to suspend on, or a type
//! error.

use crate::error::{StrandError, StrandResult};
use crate::store::{StoreOps, VarId};
use crate::term::Term;

/// A numeric value: integers stay exact, floats propagate.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Num {
    Int(i64),
    Float(f64),
}

impl Num {
    /// View as f64 (exact for small ints).
    pub fn as_f64(self) -> f64 {
        match self {
            Num::Int(i) => i as f64,
            Num::Float(x) => x,
        }
    }

    /// Convert back to a term.
    pub fn to_term(self) -> Term {
        match self {
            Num::Int(i) => Term::Int(i),
            Num::Float(x) => Term::Float(x),
        }
    }

    fn binop(
        self,
        other: Num,
        int_op: impl Fn(i64, i64) -> i64,
        float_op: impl Fn(f64, f64) -> f64,
    ) -> Num {
        match (self, other) {
            (Num::Int(a), Num::Int(b)) => Num::Int(int_op(a, b)),
            (a, b) => Num::Float(float_op(a.as_f64(), b.as_f64())),
        }
    }
}

/// Result of attempting to evaluate an expression.
#[derive(Clone, Debug, PartialEq)]
pub enum Evaled {
    /// Fully evaluated.
    Num(Num),
    /// Evaluation must wait for these variables to be bound.
    Suspend(Vec<VarId>),
}

/// Evaluate an arithmetic expression term under `store`.
///
/// Supported operators: binary `+ - * / mod min max`, unary `-` and `abs`.
/// Integer `/` truncates (as in Strand); division or `mod` by integer zero
/// is a run-time error.
///
/// ```
/// use strand_core::{eval_arith, Store, Term, Num};
/// use strand_core::arith::Evaled;
/// let store = Store::new();
/// let e = Term::tuple("+", vec![Term::int(3), Term::tuple("*", vec![Term::int(2), Term::int(4)])]);
/// assert_eq!(eval_arith(&e, &store).unwrap(), Evaled::Num(Num::Int(11)));
/// ```
pub fn eval_arith<S: StoreOps>(expr: &Term, store: &S) -> StrandResult<Evaled> {
    // Fast paths that skip the `deref` clone: numbers and tuples are never
    // variable chains, so only a `Var` head needs the store.
    match expr {
        Term::Int(i) => return Ok(Evaled::Num(Num::Int(*i))),
        Term::Float(x) => return Ok(Evaled::Num(Num::Float(*x))),
        Term::Tuple(op, args) => return eval_arith_tuple(op.as_str(), args, expr, store),
        _ => {}
    }
    let t = store.deref(expr);
    match &t {
        Term::Int(i) => Ok(Evaled::Num(Num::Int(*i))),
        Term::Float(x) => Ok(Evaled::Num(Num::Float(*x))),
        Term::Var(v) => Ok(Evaled::Suspend(vec![*v])),
        Term::Tuple(op, args) => eval_arith_tuple(op.as_str(), args, expr, store),
        _ => Err(StrandError::ArithType {
            expr: store.resolve(expr),
        }),
    }
}

fn eval_arith_tuple<S: StoreOps>(
    op: &str,
    args: &[Term],
    expr: &Term,
    store: &S,
) -> StrandResult<Evaled> {
    // Evaluate sub-expressions first, accumulating suspension sets so a
    // single suspension covers every missing input. All operators take at
    // most two operands, so an inline buffer avoids a heap allocation per
    // expression node; overlong argument lists fall through to the type
    // error below exactly as an unknown operator would.
    let mut nums = [Num::Int(0); 2];
    let mut count = 0usize;
    let mut pending: Vec<VarId> = Vec::new();
    for a in args.iter() {
        match eval_arith(a, store)? {
            Evaled::Num(n) => {
                if count < 2 {
                    nums[count] = n;
                }
                count += 1;
            }
            Evaled::Suspend(vs) => {
                for v in vs {
                    if !pending.contains(&v) {
                        pending.push(v);
                    }
                }
            }
        }
    }
    if !pending.is_empty() {
        return Ok(Evaled::Suspend(pending));
    }
    let bad = || StrandError::ArithType {
        expr: store.resolve(expr),
    };
    let operands: &[Num] = if count <= 2 { &nums[..count] } else { &[] };
    {
        match (op, operands) {
            ("+", [a, b]) => Ok(Evaled::Num(a.binop(
                *b,
                |x, y| x.wrapping_add(y),
                |x, y| x + y,
            ))),
            ("-", [a, b]) => Ok(Evaled::Num(a.binop(
                *b,
                |x, y| x.wrapping_sub(y),
                |x, y| x - y,
            ))),
            ("*", [a, b]) => Ok(Evaled::Num(a.binop(
                *b,
                |x, y| x.wrapping_mul(y),
                |x, y| x * y,
            ))),
            ("-", [a]) => Ok(Evaled::Num(match a {
                Num::Int(i) => Num::Int(-i),
                Num::Float(x) => Num::Float(-x),
            })),
            ("abs", [a]) => Ok(Evaled::Num(match a {
                Num::Int(i) => Num::Int(i.abs()),
                Num::Float(x) => Num::Float(x.abs()),
            })),
            ("/", [a, b]) => match (a, b) {
                (_, Num::Int(0)) => Err(StrandError::DivideByZero {
                    expr: store.resolve(expr),
                }),
                (Num::Int(x), Num::Int(y)) => Ok(Evaled::Num(Num::Int(x / y))),
                (x, y) => Ok(Evaled::Num(Num::Float(x.as_f64() / y.as_f64()))),
            },
            ("mod", [a, b]) => match (a, b) {
                (Num::Int(x), Num::Int(y)) => {
                    if *y == 0 {
                        Err(StrandError::DivideByZero {
                            expr: store.resolve(expr),
                        })
                    } else {
                        Ok(Evaled::Num(Num::Int(x.rem_euclid(*y))))
                    }
                }
                _ => Err(bad()),
            },
            ("min", [a, b]) => Ok(Evaled::Num(if a.as_f64() <= b.as_f64() { *a } else { *b })),
            ("max", [a, b]) => Ok(Evaled::Num(if a.as_f64() >= b.as_f64() { *a } else { *b })),
            _ => Err(bad()),
        }
    }
}

/// Is this term (shallowly) an arithmetic expression — a number, or a tuple
/// whose functor is an arithmetic operator of matching arity?
///
/// `:=` uses this to decide between *arithmetic assignment* (`N1 := N - 1`)
/// and *data assignment* (`Xs := [X|Xs1]`), both of which appear in the
/// paper's Figure 1 with the same operator.
pub fn is_arith_expr(t: &Term) -> bool {
    match t {
        Term::Int(_) | Term::Float(_) => true,
        Term::Tuple(op, args) => matches!(
            (op.as_str(), args.len()),
            ("+", 2)
                | ("-", 2)
                | ("*", 2)
                | ("/", 2)
                | ("mod", 2)
                | ("min", 2)
                | ("max", 2)
                | ("-", 1)
                | ("abs", 1)
        ),
        _ => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::{NodeId, Store};

    fn ev(t: &Term, s: &Store) -> Evaled {
        eval_arith(t, s).unwrap()
    }

    #[test]
    fn basic_integer_arithmetic() {
        let s = Store::new();
        let e = Term::tuple(
            "-",
            vec![
                Term::tuple("*", vec![Term::int(6), Term::int(7)]),
                Term::int(2),
            ],
        );
        assert_eq!(ev(&e, &s), Evaled::Num(Num::Int(40)));
    }

    #[test]
    fn mixed_promotes_to_float() {
        let s = Store::new();
        let e = Term::tuple("+", vec![Term::int(1), Term::float(0.5)]);
        assert_eq!(ev(&e, &s), Evaled::Num(Num::Float(1.5)));
    }

    #[test]
    fn integer_division_truncates_and_guards_zero() {
        let s = Store::new();
        let e = Term::tuple("/", vec![Term::int(7), Term::int(2)]);
        assert_eq!(ev(&e, &s), Evaled::Num(Num::Int(3)));
        let z = Term::tuple("/", vec![Term::int(7), Term::int(0)]);
        assert!(matches!(
            eval_arith(&z, &s),
            Err(StrandError::DivideByZero { .. })
        ));
    }

    #[test]
    fn mod_is_euclidean() {
        let s = Store::new();
        let e = Term::tuple("mod", vec![Term::int(-3), Term::int(5)]);
        assert_eq!(ev(&e, &s), Evaled::Num(Num::Int(2)));
    }

    #[test]
    fn unbound_vars_suspend_with_all_pending() {
        let mut s = Store::new();
        let x = s.new_var();
        let y = s.new_var();
        let e = Term::tuple("+", vec![Term::Var(x), Term::Var(y)]);
        assert_eq!(ev(&e, &s), Evaled::Suspend(vec![x, y]));
        s.bind(x, Term::int(1), 0, NodeId(0)).unwrap();
        assert_eq!(ev(&e, &s), Evaled::Suspend(vec![y]));
        s.bind(y, Term::int(2), 0, NodeId(0)).unwrap();
        assert_eq!(ev(&e, &s), Evaled::Num(Num::Int(3)));
    }

    #[test]
    fn non_numeric_is_type_error() {
        let s = Store::new();
        let e = Term::tuple("+", vec![Term::atom("a"), Term::int(1)]);
        assert!(matches!(
            eval_arith(&e, &s),
            Err(StrandError::ArithType { .. })
        ));
    }

    #[test]
    fn unary_minus_and_abs() {
        let s = Store::new();
        assert_eq!(
            ev(&Term::tuple("-", vec![Term::int(5)]), &s),
            Evaled::Num(Num::Int(-5))
        );
        assert_eq!(
            ev(&Term::tuple("abs", vec![Term::int(-5)]), &s),
            Evaled::Num(Num::Int(5))
        );
    }

    #[test]
    fn min_max() {
        let s = Store::new();
        assert_eq!(
            ev(&Term::tuple("min", vec![Term::int(2), Term::int(9)]), &s),
            Evaled::Num(Num::Int(2))
        );
        assert_eq!(
            ev(&Term::tuple("max", vec![Term::int(2), Term::int(9)]), &s),
            Evaled::Num(Num::Int(9))
        );
    }

    #[test]
    fn is_arith_expr_distinguishes_data() {
        assert!(is_arith_expr(&Term::tuple(
            "-",
            vec![Term::atom("n"), Term::int(1)]
        )));
        assert!(!is_arith_expr(&Term::cons(Term::int(1), Term::Nil)));
        assert!(!is_arith_expr(&Term::tuple("tree", vec![Term::int(1)])));
        assert!(is_arith_expr(&Term::int(3)));
    }
}
