//! Error types shared by the language substrate.

use crate::store::VarId;
use crate::term::Term;
use std::fmt;

/// Errors raised by the language substrate and abstract machine.
///
/// The paper's semantics make one error explicit (§2.1): *"Attempts to
/// assign to a variable that has a value are signaled as run-time errors"*
/// — that is [`StrandError::DoubleAssign`]. The remaining variants cover
/// machine-level failures (no matching rule, arithmetic on non-numbers,
/// deadlock of the process pool).
#[derive(Debug, Clone, PartialEq)]
pub enum StrandError {
    /// A single-assignment variable was assigned twice.
    DoubleAssign {
        var: VarId,
        existing: Term,
        attempted: Term,
    },
    /// A process had all its data available but no rule matched.
    NoMatchingRule { goal: Term },
    /// A call to an undefined procedure.
    UndefinedProcedure { name: String, arity: usize },
    /// Arithmetic was attempted on a non-numeric or unbound term.
    ArithType { expr: Term },
    /// Division (or mod) by zero.
    DivideByZero { expr: Term },
    /// The machine stopped with suspended processes that can never wake.
    Deadlock { suspended_goals: Vec<Term> },
    /// A builtin was called with arguments of the wrong shape.
    BadBuiltin { builtin: String, detail: String },
    /// Reduction budget exhausted (runaway program guard).
    BudgetExhausted { reductions: u64 },
    /// A fault-injection plan was handed to an engine that cannot honor it
    /// (virtual-time `FaultPlan` on the parallel backend, wall-clock
    /// `ChaosPlan` on the simulator). `hint` names the plan type that the
    /// rejecting backend *does* support.
    UnsupportedFaultPlan {
        backend: String,
        plan: String,
        hint: String,
    },
    /// Parse or transformation error carried through to the caller.
    Other(String),
}

/// Convenient result alias used across the workspace.
pub type StrandResult<T> = Result<T, StrandError>;

impl fmt::Display for StrandError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StrandError::DoubleAssign {
                var,
                existing,
                attempted,
            } => write!(
                f,
                "double assignment to _{}: already {existing}, attempted {attempted}",
                var.0
            ),
            StrandError::NoMatchingRule { goal } => {
                write!(f, "no matching rule for goal {goal}")
            }
            StrandError::UndefinedProcedure { name, arity } => {
                write!(f, "undefined procedure {name}/{arity}")
            }
            StrandError::ArithType { expr } => {
                write!(f, "arithmetic on non-numeric term {expr}")
            }
            StrandError::DivideByZero { expr } => write!(f, "division by zero in {expr}"),
            StrandError::Deadlock { suspended_goals } => write!(
                f,
                "deadlock: {} process(es) suspended forever (first: {})",
                suspended_goals.len(),
                suspended_goals
                    .first()
                    .map(|t| t.to_string())
                    .unwrap_or_else(|| "<none>".into())
            ),
            StrandError::BadBuiltin { builtin, detail } => {
                write!(f, "builtin {builtin}: {detail}")
            }
            StrandError::BudgetExhausted { reductions } => {
                write!(
                    f,
                    "reduction budget exhausted after {reductions} reductions"
                )
            }
            StrandError::UnsupportedFaultPlan {
                backend,
                plan,
                hint,
            } => write!(
                f,
                "the {backend} backend does not support {plan} fault injection; {hint}"
            ),
            StrandError::Other(msg) => write!(f, "{msg}"),
        }
    }
}

impl std::error::Error for StrandError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = StrandError::UndefinedProcedure {
            name: "reduce".into(),
            arity: 2,
        };
        assert_eq!(e.to_string(), "undefined procedure reduce/2");

        let e = StrandError::DoubleAssign {
            var: VarId(3),
            existing: Term::int(1),
            attempted: Term::int(2),
        };
        assert!(e.to_string().contains("double assignment"));
        assert!(e.to_string().contains("_3"));
    }

    #[test]
    fn unsupported_fault_plan_names_backend_and_hint() {
        let e = StrandError::UnsupportedFaultPlan {
            backend: "parallel".into(),
            plan: "virtual-time (FaultPlan)".into(),
            hint: "use MachineConfig::chaos (ChaosPlan) for wall-clock faults".into(),
        };
        let s = e.to_string();
        assert!(s.contains("parallel backend"));
        assert!(s.contains("fault"));
        assert!(s.contains("ChaosPlan"));
    }

    #[test]
    fn deadlock_reports_first_goal() {
        let e = StrandError::Deadlock {
            suspended_goals: vec![Term::atom("halt"), Term::int(0)],
        };
        let s = e.to_string();
        assert!(s.contains("2 process(es)"));
        assert!(s.contains("halt"));
    }
}
