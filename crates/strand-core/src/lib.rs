//! # strand-core
//!
//! Core term model for the reproduction of Foster & Stevens,
//! *Parallel Programming with Algorithmic Motifs* (ICPP 1990).
//!
//! The paper expresses motifs in the concurrent logic language **Strand**: a
//! program is a set of guarded rules `H :- G1,…,Gm | B1,…,Bn` reduced by a
//! pool of lightweight processes that communicate through shared
//! *single-assignment* variables. This crate provides the building blocks
//! that the parser (`strand-parse`), the abstract machine
//! (`strand-machine`) and the transformation engine (`transform`) share:
//!
//! * [`Term`] — runtime terms (variables, numbers, atoms, strings, tuples,
//!   lists) with cheap `Arc`-backed cloning;
//! * [`Pat`] — rule-side *pattern* terms with rule-local variable slots;
//! * [`Store`] — the single-assignment variable store with binding
//!   timestamps (for the discrete-event multicomputer simulation) and
//!   suspension lists;
//! * [`matching`] — one-way head matching and guard evaluation, returning
//!   `Fail` / `Suspend(vars)` / a binding frame, exactly the dataflow
//!   synchronization the paper relies on (§2.1: *"the availability of data
//!   serves as the synchronization mechanism"*);
//! * [`arith`] — arithmetic evaluation for `:=` and comparison guards;
//! * [`rng`] — a deterministic SplitMix64 generator standing in for the
//!   paper's `rand_num` primitive, so load-balance experiments are exactly
//!   reproducible.
//!
//! Everything here is deliberately independent of how programs are executed;
//! the machine crate layers process pools, placement and metrics on top.

pub mod arith;
pub mod atom;
pub mod error;
pub mod fxhash;
pub mod matching;
pub mod pat;
pub mod rng;
pub mod shared;
pub mod store;
pub mod term;

pub use arith::{eval_arith, Num};
pub use atom::Atom;
pub use error::{StrandError, StrandResult};
pub use fxhash::{FxBuildHasher, FxHashMap, FxHashSet};
pub use matching::{eval_guard, match_args, GuardOutcome, MatchOutcome};
pub use pat::{Frame, Pat};
pub use rng::SplitMix64;
pub use shared::{SharedStore, SharedStoreView};
pub use store::{Binding, NodeId, Store, StoreOps, Time, VarId, Waiter};
pub use term::Term;
