//! Deterministic pseudo-random numbers for the simulated machine.
//!
//! The paper's random mapping motif relies on a `rand_num(N,R)` primitive.
//! For reproducible experiments (load-balance tables in EXPERIMENTS.md must
//! not change between runs) the machine uses SplitMix64 — a tiny, well-mixed
//! generator whose whole state is one `u64` seed.

/// SplitMix64 generator (Steele, Lea & Flood; public-domain algorithm).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Create a generator from a seed. Equal seeds give equal sequences.
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, bound)`; `bound` must be non-zero.
    ///
    /// Uses Lemire's multiply-shift rejection method for unbiased results.
    pub fn next_below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "next_below bound must be positive");
        loop {
            let x = self.next_u64();
            let m = (x as u128).wrapping_mul(bound as u128);
            let low = m as u64;
            if low >= bound || low >= low.wrapping_neg() % bound {
                return (m >> 64) as u64;
            }
        }
    }

    /// The paper's `rand_num(N,R)`: random integer in `1..=n`.
    pub fn rand_num(&mut self, n: u64) -> u64 {
        1 + self.next_below(n)
    }

    /// Uniform float in `[0,1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Derive an independent child generator (for per-node streams).
    pub fn split(&mut self) -> SplitMix64 {
        SplitMix64::new(self.next_u64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_equal_seeds() {
        let mut a = SplitMix64::new(42);
        let mut b = SplitMix64::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SplitMix64::new(1);
        let mut b = SplitMix64::new(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn rand_num_in_paper_range() {
        let mut r = SplitMix64::new(7);
        for _ in 0..1000 {
            let v = r.rand_num(4);
            assert!((1..=4).contains(&v));
        }
    }

    #[test]
    fn next_below_is_roughly_uniform() {
        let mut r = SplitMix64::new(123);
        let mut counts = [0usize; 8];
        let n = 80_000;
        for _ in 0..n {
            counts[r.next_below(8) as usize] += 1;
        }
        let expected = n / 8;
        for c in counts {
            // Within 5% of expectation — far looser than 6 sigma for this n.
            assert!(
                (c as f64 - expected as f64).abs() < expected as f64 * 0.05,
                "bucket count {c} too far from {expected}"
            );
        }
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut r = SplitMix64::new(9);
        for _ in 0..1000 {
            let x = r.next_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn split_streams_are_independent_of_parent_continuation() {
        let mut parent = SplitMix64::new(5);
        let mut child = parent.split();
        let c1: Vec<u64> = (0..5).map(|_| child.next_u64()).collect();
        // Re-derive the same child: same stream.
        let mut parent2 = SplitMix64::new(5);
        let mut child2 = parent2.split();
        let c2: Vec<u64> = (0..5).map(|_| child2.next_u64()).collect();
        assert_eq!(c1, c2);
    }
}
