//! Rule-side pattern terms.
//!
//! A compiled rule does not mention store variables: its variables are
//! *rule-local slots* ([`Pat::Local`]) numbered densely from 0. Matching a
//! goal against a rule head fills a [`Frame`] mapping slots to runtime
//! terms; instantiating the rule's guard and body terms against that frame
//! (allocating fresh store variables for still-unset slots) yields the new
//! process goals — exactly the reduction step of §2.1.

use crate::atom::Atom;
use crate::store::StoreOps;
use crate::term::Term;
use std::fmt;
use std::sync::Arc;

/// A pattern term as it appears in a compiled rule.
#[derive(Clone, PartialEq)]
pub enum Pat {
    /// Rule-local variable slot.
    Local(u16),
    /// Anonymous variable `_`: matches anything, never binds.
    Wild,
    /// Integer literal.
    Int(i64),
    /// Float literal.
    Float(f64),
    /// Atom literal.
    Atom(Atom),
    /// String literal.
    Str(Arc<str>),
    /// Compound pattern `f(P1,…,Pn)`.
    Tuple(Atom, Arc<Vec<Pat>>),
    /// List cell pattern `[H|T]`.
    List(Arc<(Pat, Pat)>),
    /// Empty list.
    Nil,
}

impl Pat {
    /// Compound pattern constructor (degenerates to an atom when `args` is
    /// empty, mirroring [`Term::tuple`]).
    pub fn tuple(name: impl Into<Atom>, args: Vec<Pat>) -> Pat {
        if args.is_empty() {
            Pat::Atom(name.into())
        } else {
            Pat::Tuple(name.into(), Arc::new(args))
        }
    }

    /// Cons-cell pattern.
    pub fn cons(head: Pat, tail: Pat) -> Pat {
        Pat::List(Arc::new((head, tail)))
    }

    /// Proper-list pattern.
    pub fn list(items: impl IntoIterator<Item = Pat>) -> Pat {
        let items: Vec<Pat> = items.into_iter().collect();
        items
            .into_iter()
            .rev()
            .fold(Pat::Nil, |tail, head| Pat::cons(head, tail))
    }

    /// Atom pattern constructor.
    pub fn atom(name: impl Into<Atom>) -> Pat {
        Pat::Atom(name.into())
    }

    /// Largest local slot index used, plus one (0 if none).
    pub fn local_count(&self) -> u16 {
        match self {
            Pat::Local(i) => i + 1,
            Pat::Tuple(_, args) => args.iter().map(Pat::local_count).max().unwrap_or(0),
            Pat::List(cell) => cell.0.local_count().max(cell.1.local_count()),
            _ => 0,
        }
    }

    /// Instantiate the pattern against `frame`, allocating fresh store
    /// variables for unset locals and for each wildcard occurrence.
    pub fn instantiate<S: StoreOps>(&self, frame: &mut Frame, store: &mut S) -> Term {
        match self {
            Pat::Local(i) => {
                let slot = &mut frame.slots[*i as usize];
                match slot {
                    Some(t) => t.clone(),
                    None => {
                        let v = Term::Var(store.new_var());
                        *slot = Some(v.clone());
                        v
                    }
                }
            }
            Pat::Wild => Term::Var(store.new_var()),
            Pat::Int(i) => Term::Int(*i),
            Pat::Float(x) => Term::Float(*x),
            Pat::Atom(a) => Term::Atom(a.clone()),
            Pat::Str(s) => Term::Str(s.clone()),
            Pat::Nil => Term::Nil,
            Pat::Tuple(name, args) => Term::tuple(
                name.clone(),
                args.iter().map(|p| p.instantiate(frame, store)).collect(),
            ),
            Pat::List(cell) => Term::cons(
                cell.0.instantiate(frame, store),
                cell.1.instantiate(frame, store),
            ),
        }
    }

    /// Instantiate without allocating: returns `None` if the pattern refers
    /// to an unset local slot or a wildcard (used for guard evaluation,
    /// where an unset variable can never receive a value).
    pub fn instantiate_ro(&self, frame: &Frame) -> Option<Term> {
        match self {
            Pat::Local(i) => frame.slots[*i as usize].clone(),
            Pat::Wild => None,
            Pat::Int(i) => Some(Term::Int(*i)),
            Pat::Float(x) => Some(Term::Float(*x)),
            Pat::Atom(a) => Some(Term::Atom(a.clone())),
            Pat::Str(s) => Some(Term::Str(s.clone())),
            Pat::Nil => Some(Term::Nil),
            Pat::Tuple(name, args) => {
                let args: Option<Vec<Term>> =
                    args.iter().map(|p| p.instantiate_ro(frame)).collect();
                Some(Term::tuple(name.clone(), args?))
            }
            Pat::List(cell) => Some(Term::cons(
                cell.0.instantiate_ro(frame)?,
                cell.1.instantiate_ro(frame)?,
            )),
        }
    }
}

/// Bindings of rule-local slots accumulated during head matching.
#[derive(Clone, Debug, Default)]
pub struct Frame {
    pub slots: Vec<Option<Term>>,
}

impl Frame {
    /// A frame with `n` unset slots.
    pub fn with_locals(n: u16) -> Frame {
        Frame {
            slots: vec![None; n as usize],
        }
    }

    /// Clear and resize to `n` unset slots, keeping the allocation. Lets a
    /// machine reuse one scratch frame across rule tries instead of
    /// allocating a fresh `Vec` per attempt.
    pub fn reset(&mut self, n: u16) {
        self.slots.clear();
        self.slots.resize(n as usize, None);
    }

    /// Read slot `i`.
    pub fn get(&self, i: u16) -> Option<&Term> {
        self.slots.get(i as usize).and_then(|s| s.as_ref())
    }

    /// Set slot `i` (panics if out of range — compiler guarantees density).
    pub fn set(&mut self, i: u16, t: Term) {
        self.slots[i as usize] = Some(t);
    }
}

impl fmt::Display for Pat {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Pat::Local(i) => write!(f, "V{i}"),
            Pat::Wild => write!(f, "_"),
            Pat::Int(i) => write!(f, "{i}"),
            Pat::Float(x) => write!(f, "{x:?}"),
            Pat::Atom(a) => write!(f, "{a}"),
            Pat::Str(s) => write!(f, "{s:?}"),
            Pat::Nil => write!(f, "[]"),
            Pat::Tuple(name, args) => {
                write!(f, "{name}(")?;
                for (i, a) in args.iter().enumerate() {
                    if i > 0 {
                        write!(f, ",")?;
                    }
                    write!(f, "{a}")?;
                }
                write!(f, ")")
            }
            Pat::List(cell) => write!(f, "[{}|{}]", cell.0, cell.1),
        }
    }
}

impl fmt::Debug for Pat {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::{NodeId, Store};

    #[test]
    fn local_count_spans_structure() {
        let p = Pat::tuple(
            "f",
            vec![Pat::Local(0), Pat::cons(Pat::Local(3), Pat::Wild)],
        );
        assert_eq!(p.local_count(), 4);
        assert_eq!(Pat::Int(1).local_count(), 0);
    }

    #[test]
    fn instantiate_allocates_fresh_vars_once_per_local() {
        let mut store = Store::new();
        let mut frame = Frame::with_locals(1);
        let p = Pat::tuple("f", vec![Pat::Local(0), Pat::Local(0)]);
        let t = p.instantiate(&mut frame, &mut store);
        // Both occurrences of V0 become the *same* fresh variable.
        if let Term::Tuple(_, args) = &t {
            assert_eq!(args[0], args[1]);
            assert!(args[0].is_var());
        } else {
            panic!("expected tuple");
        }
        assert_eq!(store.len(), 1);
    }

    #[test]
    fn wildcards_are_distinct_fresh_vars() {
        let mut store = Store::new();
        let mut frame = Frame::with_locals(0);
        let p = Pat::tuple("f", vec![Pat::Wild, Pat::Wild]);
        let t = p.instantiate(&mut frame, &mut store);
        if let Term::Tuple(_, args) = &t {
            assert_ne!(args[0], args[1]);
        } else {
            panic!("expected tuple");
        }
    }

    #[test]
    fn instantiate_uses_frame_bindings() {
        let mut store = Store::new();
        let mut frame = Frame::with_locals(2);
        frame.set(0, Term::int(7));
        let p = Pat::list([Pat::Local(0), Pat::Local(1)]);
        let t = p.instantiate(&mut frame, &mut store);
        let items = t.as_proper_list().unwrap();
        assert_eq!(items[0], Term::int(7));
        assert!(items[1].is_var());
        // The fresh var for local 1 was recorded in the frame.
        assert_eq!(frame.get(1), Some(&items[1]));
        let _ = NodeId(0);
    }

    #[test]
    fn instantiate_ro_fails_on_unset_local() {
        let frame = Frame::with_locals(1);
        assert!(Pat::Local(0).instantiate_ro(&frame).is_none());
        assert!(Pat::tuple("f", vec![Pat::Int(1), Pat::Local(0)])
            .instantiate_ro(&frame)
            .is_none());
        assert_eq!(
            Pat::tuple("f", vec![Pat::Int(1)]).instantiate_ro(&frame),
            Some(Term::tuple("f", vec![Term::int(1)]))
        );
    }
}
