//! Runtime terms.
//!
//! A [`Term`] is the value manipulated by Strand processes: an unbound
//! variable, a number, an atom, a string, a tuple `f(T1,…,Tn)`, or a list
//! built from cons cells `[H|T]` and `[]`. Terms are immutable and clone in
//! O(1) (interior `Arc`s); the only mutable state in the system is the
//! single-assignment [`Store`](crate::store::Store).
//!
//! Ports ([`Term::Port`]) are the one extension over the paper's surface
//! language: a port is a handle to the *write end* of a stream, used by the
//! abstract machine to implement the server library's merged input streams
//! (Figure 3's `merge` network) and the `distribute/3` low-level primitive.

use crate::atom::Atom;
use crate::store::VarId;
use std::fmt;
use std::sync::Arc;

/// A runtime term.
#[derive(Clone, PartialEq)]
pub enum Term {
    /// An occurrence of a store variable (may be bound or unbound).
    Var(VarId),
    /// 64-bit integer.
    Int(i64),
    /// 64-bit float.
    Float(f64),
    /// Symbolic constant, e.g. `sync`, `halt`.
    Atom(Atom),
    /// String literal, e.g. `"acgu"`.
    Str(Arc<str>),
    /// Tuple / compound term `f(T1,…,Tn)` with n ≥ 1.
    Tuple(Atom, Arc<Vec<Term>>),
    /// List cell `[H|T]`.
    List(Arc<(Term, Term)>),
    /// Empty list `[]`.
    Nil,
    /// Write end of a stream (machine-level; see module docs).
    Port(u32),
}

impl Term {
    /// Construct an atom term.
    pub fn atom(name: impl Into<Atom>) -> Term {
        Term::Atom(name.into())
    }

    /// Construct an integer term.
    pub fn int(v: i64) -> Term {
        Term::Int(v)
    }

    /// Construct a float term.
    pub fn float(v: f64) -> Term {
        Term::Float(v)
    }

    /// Construct a string term.
    pub fn str(s: impl Into<Arc<str>>) -> Term {
        Term::Str(s.into())
    }

    /// Construct a tuple `name(args…)`. With no arguments this degenerates
    /// to an atom, matching the surface syntax where `f()` is not writable.
    pub fn tuple(name: impl Into<Atom>, args: Vec<Term>) -> Term {
        if args.is_empty() {
            Term::Atom(name.into())
        } else {
            Term::Tuple(name.into(), Arc::new(args))
        }
    }

    /// Construct a cons cell `[head|tail]`.
    pub fn cons(head: Term, tail: Term) -> Term {
        Term::List(Arc::new((head, tail)))
    }

    /// Construct a proper list from an iterator of elements.
    pub fn list(items: impl IntoIterator<Item = Term>) -> Term {
        let items: Vec<Term> = items.into_iter().collect();
        items
            .into_iter()
            .rev()
            .fold(Term::Nil, |tail, head| Term::cons(head, tail))
    }

    /// The functor name and arity of a callable goal, if this term is one.
    ///
    /// Atoms are goals of arity 0 (`halt`); tuples are goals of their own
    /// arity. Other terms are not callable.
    pub fn functor(&self) -> Option<(&Atom, usize)> {
        match self {
            Term::Atom(a) => Some((a, 0)),
            Term::Tuple(f, args) => Some((f, args.len())),
            _ => None,
        }
    }

    /// Arguments of a goal term (empty for atoms).
    pub fn goal_args(&self) -> &[Term] {
        match self {
            Term::Tuple(_, args) => args,
            _ => &[],
        }
    }

    /// Is this term an unbound-variable *occurrence*? (The store decides
    /// whether the variable is actually still unbound.)
    pub fn is_var(&self) -> bool {
        matches!(self, Term::Var(_))
    }

    /// Is this a number (int or float)?
    pub fn is_number(&self) -> bool {
        matches!(self, Term::Int(_) | Term::Float(_))
    }

    /// Collect every variable occurring in the term, in first-occurrence
    /// order, without duplicates.
    pub fn vars(&self) -> Vec<VarId> {
        let mut out = Vec::new();
        self.collect_vars(&mut out);
        out
    }

    fn collect_vars(&self, out: &mut Vec<VarId>) {
        match self {
            Term::Var(v) if !out.contains(v) => {
                out.push(*v);
            }
            Term::Tuple(_, args) => {
                for a in args.iter() {
                    a.collect_vars(out);
                }
            }
            Term::List(cell) => {
                cell.0.collect_vars(out);
                cell.1.collect_vars(out);
            }
            _ => {}
        }
    }

    /// True if the term contains no variables at all.
    pub fn is_ground(&self) -> bool {
        match self {
            Term::Var(_) => false,
            Term::Tuple(_, args) => args.iter().all(Term::is_ground),
            Term::List(cell) => cell.0.is_ground() && cell.1.is_ground(),
            _ => true,
        }
    }

    /// Try to view the term as a proper list; `None` if it is improper or
    /// ends in a variable.
    pub fn as_proper_list(&self) -> Option<Vec<Term>> {
        let mut items = Vec::new();
        let mut cur = self.clone();
        loop {
            match cur {
                Term::Nil => return Some(items),
                Term::List(cell) => {
                    items.push(cell.0.clone());
                    cur = cell.1.clone();
                }
                _ => return None,
            }
        }
    }

    /// Approximate heap size of the term in bytes, used by the memory
    /// experiments (E2) to gauge queued intermediate values.
    pub fn approx_bytes(&self) -> usize {
        match self {
            Term::Var(_) | Term::Int(_) | Term::Float(_) | Term::Nil | Term::Port(_) => 16,
            Term::Atom(a) => 16 + a.as_str().len(),
            Term::Str(s) => 16 + s.len(),
            Term::Tuple(f, args) => {
                16 + f.as_str().len() + args.iter().map(Term::approx_bytes).sum::<usize>()
            }
            Term::List(cell) => 16 + cell.0.approx_bytes() + cell.1.approx_bytes(),
        }
    }
}

impl fmt::Display for Term {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Term::Var(v) => write!(f, "_{}", v.0),
            Term::Int(i) => write!(f, "{i}"),
            Term::Float(x) => write!(f, "{x:?}"),
            Term::Atom(a) => write!(f, "{a}"),
            Term::Str(s) => write!(f, "{s:?}"),
            Term::Port(p) => write!(f, "<port {p}>"),
            Term::Tuple(name, args) => {
                write!(f, "{name}(")?;
                for (i, a) in args.iter().enumerate() {
                    if i > 0 {
                        write!(f, ",")?;
                    }
                    write!(f, "{a}")?;
                }
                write!(f, ")")
            }
            Term::List(_) | Term::Nil => {
                write!(f, "[")?;
                let mut cur = self.clone();
                let mut first = true;
                loop {
                    match cur {
                        Term::Nil => break,
                        Term::List(cell) => {
                            if !first {
                                write!(f, ",")?;
                            }
                            first = false;
                            write!(f, "{}", cell.0)?;
                            cur = cell.1.clone();
                        }
                        other => {
                            write!(f, "|{other}")?;
                            break;
                        }
                    }
                }
                write!(f, "]")
            }
        }
    }
}

impl fmt::Debug for Term {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_and_display() {
        let t = Term::tuple(
            "tree",
            vec![
                Term::atom("+"),
                Term::int(2),
                Term::cons(Term::int(1), Term::Nil),
            ],
        );
        assert_eq!(t.to_string(), "tree(+,2,[1])");
        assert_eq!(
            Term::list([Term::int(1), Term::int(2)]).to_string(),
            "[1,2]"
        );
        assert_eq!(Term::Nil.to_string(), "[]");
        assert_eq!(
            Term::cons(Term::int(1), Term::Var(VarId(7))).to_string(),
            "[1|_7]"
        );
    }

    #[test]
    fn zero_arity_tuple_degenerates_to_atom() {
        assert_eq!(Term::tuple("halt", vec![]), Term::atom("halt"));
    }

    #[test]
    fn functor_extraction() {
        let t = Term::tuple("reduce", vec![Term::int(1), Term::Var(VarId(0))]);
        let (name, arity) = t.functor().unwrap();
        assert_eq!(name.as_str(), "reduce");
        assert_eq!(arity, 2);
        assert_eq!(Term::atom("halt").functor().unwrap().1, 0);
        assert!(Term::int(3).functor().is_none());
    }

    #[test]
    fn vars_first_occurrence_no_dups() {
        let t = Term::tuple(
            "f",
            vec![
                Term::Var(VarId(2)),
                Term::Var(VarId(1)),
                Term::cons(Term::Var(VarId(2)), Term::Var(VarId(5))),
            ],
        );
        assert_eq!(t.vars(), vec![VarId(2), VarId(1), VarId(5)]);
    }

    #[test]
    fn groundness() {
        assert!(Term::list([Term::int(1)]).is_ground());
        assert!(!Term::cons(Term::int(1), Term::Var(VarId(0))).is_ground());
    }

    #[test]
    fn proper_list_roundtrip() {
        let items = vec![Term::int(1), Term::atom("a"), Term::str("x")];
        let l = Term::list(items.clone());
        assert_eq!(l.as_proper_list().unwrap(), items);
        assert!(Term::cons(Term::int(1), Term::Var(VarId(0)))
            .as_proper_list()
            .is_none());
    }

    #[test]
    fn approx_bytes_grows_with_structure() {
        let small = Term::int(1);
        let big = Term::list((0..100).map(Term::int));
        assert!(big.approx_bytes() > small.approx_bytes() * 50);
    }
}
