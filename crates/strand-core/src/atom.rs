//! Interned-style symbolic constants.
//!
//! Strand atoms (`sync`, `halt`, functor names, …) appear everywhere in
//! terms and patterns, so they must be cheap to clone and compare. We wrap
//! an `Arc<str>`: cloning is a refcount bump, and equality first tries
//! pointer identity before falling back to a string compare.

use std::borrow::Borrow;
use std::fmt;
use std::sync::Arc;

/// A symbolic constant (lowercase identifier in the surface syntax).
///
/// ```
/// use strand_core::Atom;
/// let a = Atom::new("reduce");
/// let b = a.clone();
/// assert_eq!(a, b);
/// assert_eq!(a.as_str(), "reduce");
/// ```
#[derive(Clone, Eq)]
pub struct Atom(Arc<str>);

impl Atom {
    /// Create an atom from any string-like value.
    pub fn new(s: impl Into<Arc<str>>) -> Self {
        Atom(s.into())
    }

    /// The atom's textual name.
    pub fn as_str(&self) -> &str {
        &self.0
    }
}

impl PartialEq for Atom {
    fn eq(&self, other: &Self) -> bool {
        // Fast path: same allocation (common after cloning through rules).
        Arc::ptr_eq(&self.0, &other.0) || self.0 == other.0
    }
}

impl PartialEq<str> for Atom {
    fn eq(&self, other: &str) -> bool {
        self.as_str() == other
    }
}

impl PartialEq<&str> for Atom {
    fn eq(&self, other: &&str) -> bool {
        self.as_str() == *other
    }
}

impl std::hash::Hash for Atom {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.0.hash(state);
    }
}

impl PartialOrd for Atom {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Atom {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.as_str().cmp(other.as_str())
    }
}

impl fmt::Debug for Atom {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl fmt::Display for Atom {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl From<&str> for Atom {
    fn from(s: &str) -> Self {
        Atom::new(s)
    }
}

impl From<String> for Atom {
    fn from(s: String) -> Self {
        Atom::new(s)
    }
}

impl Borrow<str> for Atom {
    fn borrow(&self) -> &str {
        self.as_str()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn equality_and_clone() {
        let a = Atom::new("eval");
        let b = a.clone();
        let c = Atom::new(String::from("eval"));
        assert_eq!(a, b);
        assert_eq!(a, c);
        assert_ne!(a, Atom::new("evaluate"));
    }

    #[test]
    fn str_comparison() {
        let a = Atom::new("halt");
        assert_eq!(a, "halt");
        assert!(a == "halt");
    }

    #[test]
    fn works_as_hash_key() {
        let mut set = HashSet::new();
        set.insert(Atom::new("send"));
        assert!(set.contains("send"));
        assert!(!set.contains("recv"));
    }

    #[test]
    fn ordering_is_lexicographic() {
        let mut v = [Atom::new("server"), Atom::new("eval"), Atom::new("reduce")];
        v.sort();
        let names: Vec<_> = v.iter().map(|a| a.as_str().to_string()).collect();
        assert_eq!(names, ["eval", "reduce", "server"]);
    }
}
