//! Property tests for the term model and single-assignment store.

use proptest::prelude::*;
use strand_core::{eval_arith, match_args, MatchOutcome, NodeId, Pat, SplitMix64, Store, Term};

/// Strategy: random ground terms.
fn ground_term() -> impl Strategy<Value = Term> {
    let leaf = prop_oneof![
        any::<i32>().prop_map(|i| Term::int(i as i64)),
        "[a-z][a-z0-9_]{0,6}".prop_map(Term::atom),
        "[ -~]{0,8}".prop_map(Term::str),
        Just(Term::Nil),
    ];
    leaf.prop_recursive(3, 24, 4, |inner| {
        prop_oneof![
            (
                proptest::collection::vec(inner.clone(), 1..4),
                "[a-z][a-z0-9]{0,4}"
            )
                .prop_map(|(args, name)| Term::tuple(name, args)),
            proptest::collection::vec(inner, 0..4).prop_map(Term::list),
        ]
    })
}

/// Convert a ground term into the pattern that matches exactly it.
fn term_to_pat(t: &Term) -> Pat {
    match t {
        Term::Int(i) => Pat::Int(*i),
        Term::Float(x) => Pat::Float(*x),
        Term::Atom(a) => Pat::Atom(a.clone()),
        Term::Str(s) => Pat::Str(s.clone()),
        Term::Nil => Pat::Nil,
        Term::Tuple(f, args) => Pat::tuple(f.clone(), args.iter().map(term_to_pat).collect()),
        Term::List(cell) => Pat::cons(term_to_pat(&cell.0), term_to_pat(&cell.1)),
        Term::Var(_) | Term::Port(_) => unreachable!("ground terms only"),
    }
}

proptest! {
    /// A ground term always matches its own exact pattern, and a Local
    /// pattern captures it verbatim.
    #[test]
    fn ground_term_matches_itself(t in ground_term()) {
        let store = Store::new();
        let pat = term_to_pat(&t);
        let mut frame = strand_core::Frame::with_locals(1);
        prop_assert_eq!(
            match_args(
                std::slice::from_ref(&t),
                std::slice::from_ref(&pat),
                &store,
                &mut frame
            ),
            MatchOutcome::Match
        );
        let mut frame = strand_core::Frame::with_locals(1);
        prop_assert_eq!(
            match_args(std::slice::from_ref(&t), &[Pat::Local(0)], &store, &mut frame),
            MatchOutcome::Match
        );
        prop_assert_eq!(frame.get(0), Some(&t));
    }

    /// Binding through variables is transparent: a term reached through an
    /// alias chain matches exactly like the direct term.
    #[test]
    fn aliased_terms_match_like_direct(t in ground_term(), depth in 1usize..5) {
        let mut store = Store::new();
        let mut cur = t.clone();
        for _ in 0..depth {
            let v = store.new_var();
            store.bind(v, cur, 0, NodeId(0)).unwrap();
            cur = Term::Var(v);
        }
        let pat = term_to_pat(&t);
        let mut frame = strand_core::Frame::with_locals(0);
        prop_assert_eq!(
            match_args(
                std::slice::from_ref(&cur),
                std::slice::from_ref(&pat),
                &store,
                &mut frame
            ),
            MatchOutcome::Match
        );
        prop_assert_eq!(store.resolve(&cur), t);
    }

    /// The single-assignment property: any second binding errors, for any
    /// pair of values.
    #[test]
    fn double_binding_always_errors(a in ground_term(), b in ground_term()) {
        let mut store = Store::new();
        let v = store.new_var();
        store.bind(v, a, 0, NodeId(0)).unwrap();
        prop_assert!(store.bind(v, b, 1, NodeId(0)).is_err());
    }

    /// Waiters registered before a binding are all returned exactly once.
    #[test]
    fn all_waiters_returned(t in ground_term(), waiters in proptest::collection::btree_set(0u64..100, 0..10)) {
        let mut store = Store::new();
        let v = store.new_var();
        for w in &waiters {
            store.add_waiter(v, *w);
        }
        let woken = store.bind(v, t, 0, NodeId(0)).unwrap();
        let woken: std::collections::BTreeSet<u64> = woken.into_iter().collect();
        prop_assert_eq!(woken, waiters);
    }

    /// Arithmetic on ground integer expressions never suspends and matches
    /// a reference evaluation.
    #[test]
    fn arith_reference(a in -1000i64..1000, b in -1000i64..1000, op in 0u8..4) {
        let store = Store::new();
        let (name, reference): (&str, Option<i64>) = match op {
            0 => ("+", Some(a.wrapping_add(b))),
            1 => ("-", Some(a.wrapping_sub(b))),
            2 => ("*", Some(a.wrapping_mul(b))),
            _ => ("/", (b != 0).then(|| a / b)),
        };
        let e = Term::tuple(name, vec![Term::int(a), Term::int(b)]);
        match (eval_arith(&e, &store), reference) {
            (Ok(strand_core::arith::Evaled::Num(strand_core::Num::Int(x))), Some(r)) => {
                prop_assert_eq!(x, r)
            }
            (Err(_), None) => {} // division by zero errors, as specified
            (got, want) => prop_assert!(false, "got {got:?}, wanted {want:?}"),
        }
    }

    /// SplitMix64 `next_below` stays in range for any bound.
    #[test]
    fn rng_below_in_range(seed in any::<u64>(), bound in 1u64..1_000_000) {
        let mut rng = SplitMix64::new(seed);
        for _ in 0..32 {
            prop_assert!(rng.next_below(bound) < bound);
        }
    }

    /// resolve() is idempotent and preserves groundness.
    #[test]
    fn resolve_idempotent(t in ground_term()) {
        let mut store = Store::new();
        let v = store.new_var();
        store.bind(v, t.clone(), 0, NodeId(0)).unwrap();
        let r1 = store.resolve(&Term::Var(v));
        let r2 = store.resolve(&r1);
        prop_assert_eq!(&r1, &r2);
        prop_assert!(r1.is_ground());
        prop_assert_eq!(r1, t);
    }
}
