//! # strand-serve
//!
//! A **resident** motif service: the paper's Server motif (§3.2) describes
//! "a fully connected set of named servers, each capable of initiating
//! computations upon receipt of messages" — this crate keeps such a
//! network alive in a long-running process and feeds it *external* traffic
//! over TCP, instead of a single batch goal that runs to quiescence and
//! exits. See DESIGN.md §9 for the full model; the short version:
//!
//! * **Idle, not terminated.** The engine's quiescence detector normally
//!   ends the run; in resident mode (simulator: `Machine::run` is simply
//!   re-entered per burst; parallel: [`strand_parallel::ResidentHandle`])
//!   quiescence parks the workers and the suspended Server loops wait on
//!   their port streams for the next request.
//! * **Sessions are regions.** Every TCP connection gets a session region;
//!   variables allocated for its requests and the suspensions they leave
//!   behind are tagged with it and swept when the connection closes, so
//!   store growth is bounded by the *live* sessions, not the total ever
//!   served.
//! * **Backpressure, not queues.** Admission checks the engine's regular
//!   work gauge (the same shared gate the lazy-timer rule reads); past the
//!   configured high-water mark clients get `BUSY <retry-ms>` instead of
//!   unbounded queueing.
//!
//! ## Wire protocol
//!
//! Line-based, UTF-8. A request is one **ground** term per line (the
//! payload `Q` of the motif-level message `req(Q, R)`); the service binds
//! the handler's reply `R` and answers with exactly one line:
//!
//! ```text
//! OK <term>      — the resolved reply
//! ERR <message>  — parse error, non-ground request, timeout, shutdown
//! BUSY <millis>  — backpressured; retry after the given delay
//! ```
//!
//! A session is a connection: closing it (EOF) reclaims everything the
//! session allocated. The application supplies `server/1` handler rules
//! (the Server transformation threads the directory argument itself) that
//! answer `req(Q, R)` messages by binding `R` to a ground term, e.g.
//!
//! ```text
//! server([]).
//! server([halt|_]).
//! server([req(Q, R)|In]) :- R := Q * 2, server(In).
//! ```

use std::collections::{BTreeMap, HashMap};
use std::io::{BufRead, BufReader, ErrorKind, Write as IoWrite};
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

use strand_core::{StrandError, StrandResult, Term};
use strand_machine::{ast_to_term, ChaosPlan, ForeignLib, Machine, MachineConfig, RunReport};
use strand_parallel::ResidentHandle;
use strand_parse::{compile_program, parse_term};

/// Boot rule appended to the application before the Server transformation:
/// build the port-tuple directory and spawn one server per node, but —
/// unlike the library's `create/2` — deliver no initial message and never
/// halt: the network starts empty and waits for ingress.
const SERVE_BOOT: &str = "\nserve_boot(N, DT) :- make_tuple(N, DT), spawn_servers(N, DT).\n";

/// The demo application served by the `strand-serve` binary when no
/// `--app` file is given: replies with the doubled request payload.
/// Handlers that allocate no fresh body variables keep the resident
/// store perfectly bounded (see DESIGN.md §9 on session locality).
pub const DOUBLER_APP: &str = r#"
server([]).
server([halt|_]).
server([req(Q, R)|In]) :- R := Q * 2, server(In).
"#;

/// An echo application (head unification binds the reply to the request),
/// used by the conformance tier to round-trip arbitrary ground terms.
pub const ECHO_APP: &str = r#"
server([]).
server([halt|_]).
server([req(Q, R)|In]) :- R = Q, server(In).
"#;

/// Which engine keeps the program resident.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ServeBackend {
    /// The deterministic simulator: requests reduce synchronously under
    /// the service lock, one burst per request. The conformance reference.
    Sim,
    /// The sharded parallel backend with the given worker threads
    /// (0 = host parallelism): workers stay parked between bursts.
    Parallel(u32),
}

/// Service tuning. `Default` is a 4-server parallel network sized for the
/// host, with backpressure at 10k queued reductions' worth of work.
#[derive(Clone, Debug)]
pub struct ServeConfig {
    /// Server-motif nodes (the `make_tuple(N, DT)` directory size).
    pub servers: u32,
    pub backend: ServeBackend,
    /// Admission high-water mark on the engine's regular-work gauge;
    /// requests arriving above it are answered `BUSY`.
    pub max_pending: u64,
    /// The retry delay a backpressured client is told to wait. Under
    /// `supervise` this is an upper bound: the hint is derived from the
    /// timer wheel's next-due horizon when that is sooner (see
    /// [`MotifService::busy_hint`]).
    pub retry_ms: u64,
    /// How long a request waits for its reply before answering `ERR`.
    pub reply_timeout_ms: u64,
    /// Run the application under `Supervise ∘ Server` instead of plain
    /// `Server`: acked, retried delivery plus heartbeat monitors that
    /// restart a dead server's loop on a surviving node. Requires the
    /// parallel backend — supervision timers are wall-clock
    /// (`TimerSource::WallClock`), which the simulator cannot honour.
    pub supervise: bool,
    /// Wall-clock fault plan injected into the resident fleet (shard
    /// kills, batch drop/dup). Only meaningful with `supervise`: an
    /// unsupervised service black-holes every session routed to a killed
    /// shard.
    pub chaos: ChaosPlan,
}

impl Default for ServeConfig {
    fn default() -> ServeConfig {
        ServeConfig {
            servers: 4,
            backend: ServeBackend::Parallel(0),
            max_pending: 10_000,
            retry_ms: 25,
            reply_timeout_ms: 10_000,
            supervise: false,
            chaos: ChaosPlan::default(),
        }
    }
}

/// One reply per outstanding request, keyed by request id. The
/// `'$serve_reply'` foreign procedure delivers here from whichever worker
/// reduces it; connection threads block on [`ReplyBus::wait`].
#[derive(Default)]
struct ReplyBus {
    replies: Mutex<HashMap<u64, Term>>,
    arrived: Condvar,
}

impl ReplyBus {
    fn deliver(&self, rid: u64, reply: Term) {
        self.replies
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .insert(rid, reply);
        self.arrived.notify_all();
    }

    fn wait(&self, rid: u64, timeout: Duration) -> Option<Term> {
        let deadline = Instant::now() + timeout;
        let mut replies = self.replies.lock().unwrap_or_else(|e| e.into_inner());
        loop {
            if let Some(t) = replies.remove(&rid) {
                return Some(t);
            }
            let now = Instant::now();
            if now >= deadline {
                return None;
            }
            let (guard, _) = self
                .arrived
                .wait_timeout(replies, deadline - now)
                .unwrap_or_else(|e| e.into_inner());
            replies = guard;
        }
    }

    /// Non-blocking variant for the simulator path, where the reply is
    /// already delivered by the time the request burst has drained.
    fn take(&self, rid: u64) -> Option<Term> {
        self.replies
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .remove(&rid)
    }
}

/// An open session: one per TCP connection (or per synthetic client in
/// the bench). Dropping it without [`MotifService::close_session`] leaks
/// the region until shutdown — close explicitly.
#[derive(Clone, Copy, Debug)]
pub struct Session {
    /// Monotonic session number (diagnostics only).
    pub sid: u64,
    /// The store/suspension region everything this session allocates is
    /// tagged with; swept on close.
    pub region: u32,
}

/// One request's outcome, mirroring the wire protocol.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Response {
    /// The handler bound the reply: the resolved term, rendered.
    Ok(String),
    /// Parse error, non-ground request, reply timeout or shutdown.
    Err(String),
    /// Backpressured: retry after this many milliseconds.
    Busy(u64),
}

impl Response {
    /// The wire form, without the trailing newline.
    pub fn wire(&self) -> String {
        match self {
            Response::Ok(t) => format!("OK {t}"),
            Response::Err(m) => format!("ERR {}", m.replace('\n', " ")),
            Response::Busy(ms) => format!("BUSY {ms}"),
        }
    }
}

enum Engine {
    Sim(Mutex<Machine>),
    Parallel(ResidentHandle),
}

/// A resident Server-motif program plus the session plumbing around it.
/// `Sync`: share behind an `Arc` across connection threads.
pub struct MotifService {
    engine: Engine,
    bus: Arc<ReplyBus>,
    /// The port-tuple directory bound by the boot goal; every request
    /// distributes over it.
    dt: Term,
    cfg: ServeConfig,
    next_sid: AtomicU64,
    next_region: AtomicU32,
    next_rid: AtomicU64,
    round_robin: AtomicU64,
}

impl MotifService {
    /// Transform `app_src` with the Server motif, boot an N-server network
    /// with no initial traffic, and leave it resident (idle) awaiting
    /// requests.
    pub fn start(app_src: &str, cfg: ServeConfig) -> StrandResult<MotifService> {
        if matches!(cfg.backend, ServeBackend::Sim) && (cfg.supervise || !cfg.chaos.is_empty()) {
            return Err(StrandError::Other(
                "supervised / chaos serving needs the parallel backend: \
                 supervision heartbeats are wall-clock timers and the \
                 simulator's virtual clock only advances while a burst is \
                 reducing"
                    .to_string(),
            ));
        }
        let full_src = format!("{app_src}{SERVE_BOOT}");
        let motif = if cfg.supervise {
            motifs::supervised_server()
        } else {
            motifs::server()
        };
        let program = motif
            .apply_src(&full_src)
            .map_err(|e| StrandError::Other(e.to_string()))?;
        let bus = Arc::new(ReplyBus::default());
        let mut lib = ForeignLib::new();
        {
            let bus = Arc::clone(&bus);
            lib.register("$serve_reply", 3, move |args| {
                let rid = match &args[0] {
                    Term::Int(v) => *v as u64,
                    other => {
                        return Err(StrandError::Other(format!(
                            "'$serve_reply' wants an integer request id, got {other}"
                        )))
                    }
                };
                bus.deliver(rid, args[1].clone());
                Ok((Term::atom("ok"), 1))
            });
        }
        let mut mcfg = MachineConfig::with_nodes(cfg.servers);
        // A service has no natural reduction budget; give it half of
        // forever (the shared counter still guards runaway handlers in
        // that a stuck burst eventually truncates instead of spinning).
        mcfg.max_reductions = u64::MAX / 2;
        // A bad request must not tear the service down mid-session:
        // handler errors are collected, the client times out instead.
        mcfg.fail_fast = false;
        if cfg.supervise {
            // Supervision timing (heartbeats, watch windows, retransmit
            // backoff) must run on real time: a resident fleet parks at
            // quiescence, which under the lazy virtual rule is exactly
            // when deadlines would wait forever. 1 tick = 1 ms.
            mcfg = mcfg.wall_clock_timers();
        }
        mcfg.chaos = cfg.chaos.clone();
        let boot_goal = format!("serve_boot({}, DT)", cfg.servers);
        let engine = match cfg.backend {
            ServeBackend::Sim => {
                let compiled =
                    compile_program(&program).map_err(|e| StrandError::Other(e.to_string()))?;
                let mut m = Machine::new(compiled, mcfg);
                m.install_lib(&lib);
                let ast = parse_term(&boot_goal).map_err(|e| StrandError::Other(e.to_string()))?;
                let mut vars = BTreeMap::new();
                let goal = ast_to_term(&ast, &mut m, &mut vars);
                m.start(goal);
                m.run()?;
                let dt = vars.remove("DT").expect("boot goal names DT");
                return Ok(MotifService::assemble(
                    Engine::Sim(Mutex::new(m)),
                    bus,
                    dt,
                    cfg,
                ));
            }
            ServeBackend::Parallel(threads) => {
                let handle =
                    ResidentHandle::start(&program, &boot_goal, mcfg.parallel(threads), &lib)?;
                if !handle.wait_idle(Duration::from_secs(30)) {
                    return Err(StrandError::Other(
                        "resident boot did not reach idle within 30s".to_string(),
                    ));
                }
                Engine::Parallel(handle)
            }
        };
        let dt = match &engine {
            Engine::Parallel(h) => h.boot_var("DT").expect("boot goal names DT"),
            Engine::Sim(_) => unreachable!("sim path returned above"),
        };
        Ok(MotifService::assemble(engine, bus, dt, cfg))
    }

    fn assemble(engine: Engine, bus: Arc<ReplyBus>, dt: Term, cfg: ServeConfig) -> MotifService {
        MotifService {
            engine,
            bus,
            dt,
            cfg,
            next_sid: AtomicU64::new(0),
            next_region: AtomicU32::new(1),
            next_rid: AtomicU64::new(0),
            round_robin: AtomicU64::new(0),
        }
    }

    /// Open a session: allocate its region and count it.
    pub fn open_session(&self) -> Session {
        let sid = self.next_sid.fetch_add(1, Ordering::Relaxed) + 1;
        let region = self.next_region.fetch_add(1, Ordering::Relaxed);
        self.with_front(|m| m.metrics_mut().sessions_opened += 1);
        Session { sid, region }
    }

    /// Close a session: sweep every shard's suspensions and store slots
    /// tagged with its region.
    pub fn close_session(&self, session: Session) {
        match &self.engine {
            Engine::Sim(m) => {
                let mut m = m.lock().unwrap_or_else(|e| e.into_inner());
                m.reclaim_session(session.region);
                m.metrics_mut().sessions_closed += 1;
            }
            Engine::Parallel(h) => {
                h.reclaim(session.region);
                h.with_ingress(|m| m.metrics_mut().sessions_closed += 1);
            }
        }
    }

    /// Serve one request line: admission check, parse, inject
    /// `distribute(J, DT, req(Q, R))` plus the `'$serve_reply'` probe under
    /// the session's region, and wait for the reply.
    pub fn request(&self, session: Session, line: &str) -> Response {
        if self.is_stopping() {
            return Response::Err("service is shutting down".to_string());
        }
        // Backpressure: consult the engine's regular-work gauge before
        // adding to it. The simulator drains synchronously per request,
        // so its gauge only matters under concurrent sessions.
        if self.pending() > self.cfg.max_pending {
            self.with_front(|m| m.metrics_mut().requests_rejected += 1);
            return Response::Busy(self.busy_hint());
        }
        let ast = match parse_term(line) {
            Ok(a) => a,
            Err(e) => return Response::Err(format!("parse: {e}")),
        };
        let rid = self.next_rid.fetch_add(1, Ordering::Relaxed) + 1;
        let node = self.pick_node();
        let dt = self.dt.clone();
        let timeout = Duration::from_millis(self.cfg.reply_timeout_ms);
        match &self.engine {
            Engine::Parallel(h) if self.cfg.supervise => {
                self.supervised_request(h, session, &ast, rid, node, dt, timeout)
            }
            Engine::Parallel(h) => {
                let (_, ack) = match h
                    .with_ingress(|m| self.inject_request(m, session, &ast, rid, node, dt))
                {
                    Ok(pair) => pair,
                    Err(resp) => return resp,
                };
                let got = self.bus.wait(rid, timeout);
                // The '$serve_reply' closure delivers to the bus *before*
                // the engine binds its out-arg (the ack), so the bind can
                // still be in flight here. Returning without waiting for it
                // would let a prompt close_session sweep the unbound ack
                // slot; once recycled, the stale bind writes `ok` into the
                // next session's reply var. A reply without a ground ack is
                // therefore not done yet — wait it out (it lands within the
                // same reduction, microseconds behind the bus delivery).
                let grace = Instant::now()
                    + if got.is_some() {
                        timeout
                    } else {
                        // On a reply timeout the handler is stuck and the
                        // bind is unlikely to ever come; a short grace only
                        // narrows the same recycling window.
                        Duration::from_millis(250)
                    };
                while !h.with_ingress(|m| m.store().resolve(&ack).is_ground()) {
                    if Instant::now() >= grace || h.is_stopping() {
                        break;
                    }
                    std::thread::sleep(Duration::from_micros(50));
                }
                match got {
                    Some(t) => Response::Ok(t.to_string()),
                    None => {
                        Response::Err(format!("no reply within {}ms", self.cfg.reply_timeout_ms))
                    }
                }
            }
            Engine::Sim(m) => {
                let mut m = m.lock().unwrap_or_else(|e| e.into_inner());
                if let Err(resp) = self.inject_request(&mut m, session, &ast, rid, node, dt) {
                    return resp;
                }
                if let Err(e) = m.run() {
                    return Response::Err(format!("engine: {e}"));
                }
                match self.bus.take(rid) {
                    Some(t) => Response::Ok(t.to_string()),
                    None => Response::Err("handler did not answer the request".to_string()),
                }
            }
        }
    }

    /// Build and enqueue the two goals for one request on `m` (the ingress
    /// machine or the simulator). `Ok` carries the reply variable and the
    /// `'$serve_reply'` ack variable (bound by the engine once the reply
    /// has been delivered — the parallel path uses it to confirm the
    /// request's binds have all landed); `Err` carries the client-facing
    /// response. Supervised services route through `rsend` — the motif
    /// library's acked, retransmitted send — instead of the fire-and-forget
    /// `distribute`, so a killed shard's dropped envelope is retried
    /// against the restarted server.
    fn inject_request(
        &self,
        m: &mut Machine,
        session: Session,
        ast: &strand_parse::Ast,
        rid: u64,
        node: i64,
        dt: Term,
    ) -> Result<(Term, Term), Response> {
        m.set_session_region(session.region);
        let mut vars = BTreeMap::new();
        let q = ast_to_term(ast, m, &mut vars);
        if !vars.is_empty() || !m.store().resolve(&q).is_ground() {
            // The stray variables were allocated under the session region,
            // so the close-time sweep reclaims them.
            return Err(Response::Err("request must be a ground term".to_string()));
        }
        let reply = Term::Var(m.store_mut().new_var());
        let ack = Term::Var(m.store_mut().new_var());
        m.metrics_mut().requests_admitted += 1;
        let send = if self.cfg.supervise {
            "rsend"
        } else {
            "distribute"
        };
        m.inject(
            Term::tuple(
                send,
                vec![
                    Term::int(node),
                    dt,
                    Term::tuple("req", vec![q, reply.clone()]),
                ],
            ),
            node,
        );
        m.inject(
            Term::tuple(
                "$serve_reply",
                vec![Term::int(rid as i64), reply.clone(), ack.clone()],
            ),
            node,
        );
        Ok((reply, ack))
    }

    /// The entry node for the next request: round-robin over the server
    /// directory, skipping nodes whose owning worker a chaos plan has
    /// killed — a goal injected at a dead shard is silently discarded,
    /// which for an ingress request means a lost client.
    fn pick_node(&self) -> i64 {
        let servers = i64::from(self.cfg.servers);
        let start =
            (self.round_robin.fetch_add(1, Ordering::Relaxed) % u64::from(self.cfg.servers)) as i64;
        let Engine::Parallel(h) = &self.engine else {
            return start + 1;
        };
        let dead = h.dead_shards();
        if dead == 0 {
            return start + 1;
        }
        let threads = h.threads();
        for k in 0..servers {
            let node = (start + k) % servers + 1;
            let worker = (node - 1) as usize % threads;
            if worker >= 64 || dead & (1 << worker) == 0 {
                return node;
            }
        }
        // Every worker is dead; nothing can answer. Inject anywhere and
        // let the reply timeout surface the outage.
        start + 1
    }

    /// The delay a `BUSY` response advertises. Unsupervised services
    /// answer the configured `retry_ms` verbatim. A supervised service
    /// knows better: the timer wheel's next-due horizon is when the parked
    /// fleet will next wake (a retransmit or heartbeat beat) and drain the
    /// backlog the client is being bounced off — advertise the earlier of
    /// the two rather than a hint that is stale the moment the wheel
    /// fires.
    pub fn busy_hint(&self) -> u64 {
        match &self.engine {
            Engine::Parallel(h) if self.cfg.supervise => match h.timer_horizon_ms() {
                Some(horizon) => horizon.clamp(1, self.cfg.retry_ms),
                None => self.cfg.retry_ms,
            },
            _ => self.cfg.retry_ms,
        }
    }

    /// One supervised request. Beyond the plain path's inject-and-wait,
    /// this survives a shard kill mid-request: the reply is awaited in
    /// slices, and on each slice boundary (a) the reply variable itself is
    /// ground-checked through the ingress machine — the handler's bind is
    /// durable in the shared store even when the `'$serve_reply'` probe
    /// suspension died with its shard — and (b) if the dead-shard mask
    /// grew since the last send, or a quiet re-send period elapsed, the
    /// whole request (`rsend` plus a fresh reply probe, same reply
    /// variable) is re-injected at a live node. The re-send is the ingress
    /// mirror of the supervisor's own restart-and-replay: the original
    /// `rsend` goal itself can be lost — injected at a node whose worker
    /// died before reducing it, or its retransmits exhausted during the
    /// restart window — and no amount of probe re-registration recovers a
    /// request that no server ever saw. At-least-once delivery is exactly
    /// what `Supervise` demands of its handlers anyway (replay-tolerant,
    /// test-and-set binds), so a duplicate arrival is benign.
    #[allow(clippy::too_many_arguments)]
    fn supervised_request(
        &self,
        h: &ResidentHandle,
        session: Session,
        ast: &strand_parse::Ast,
        rid: u64,
        node: i64,
        dt: Term,
        timeout: Duration,
    ) -> Response {
        let mut dead_seen = h.dead_shards();
        let (reply, mut ack) =
            match h.with_ingress(|m| self.inject_request(m, session, ast, rid, node, dt.clone())) {
                Ok(pair) => pair,
                Err(resp) => return resp,
            };
        let deadline = Instant::now() + timeout;
        let slice = Duration::from_millis(250);
        let resend_every = Duration::from_secs(2);
        let mut last_send = Instant::now();
        let got = loop {
            let now = Instant::now();
            if now >= deadline {
                break None;
            }
            if let Some(t) = self.bus.wait(rid, slice.min(deadline - now)) {
                break Some(t);
            }
            if h.is_stopping() {
                break None;
            }
            // Fallback: the handler may have answered durably while the
            // probe died with its shard.
            let resolved = h.with_ingress(|m| m.store().resolve(&reply));
            if resolved.is_ground() {
                break Some(resolved);
            }
            let dead_now = h.dead_shards();
            if dead_now != dead_seen || last_send.elapsed() >= resend_every {
                // A shard died since the last send (or the request has sat
                // unanswered for a full re-send period). Re-send the whole
                // request — the acked send AND a fresh reply probe, bound
                // to the same reply variable — at a node a live worker
                // owns. `requests_admitted` is not bumped: this is a
                // retransmit of an admitted request, not a new one.
                dead_seen = dead_now;
                last_send = Instant::now();
                let resend_node = self.pick_node();
                ack = h.with_ingress(|m| {
                    m.set_session_region(session.region);
                    let mut vars = BTreeMap::new();
                    let q = ast_to_term(ast, m, &mut vars);
                    m.inject(
                        Term::tuple(
                            "rsend",
                            vec![
                                Term::int(resend_node),
                                dt.clone(),
                                Term::tuple("req", vec![q, reply.clone()]),
                            ],
                        ),
                        resend_node,
                    );
                    let fresh = Term::Var(m.store_mut().new_var());
                    m.inject(
                        Term::tuple(
                            "$serve_reply",
                            vec![Term::int(rid as i64), reply.clone(), fresh.clone()],
                        ),
                        resend_node,
                    );
                    fresh
                });
            }
        };
        // As on the plain path: don't hand the session back (and risk a
        // close-time sweep) while the probe's ack bind may still be in
        // flight. Bounded — under chaos the ack may have died for good.
        let grace = Instant::now()
            + if got.is_some() {
                Duration::from_millis(1_000)
            } else {
                Duration::from_millis(250)
            };
        while !h.with_ingress(|m| m.store().resolve(&ack).is_ground()) {
            if Instant::now() >= grace || h.is_stopping() {
                break;
            }
            std::thread::sleep(Duration::from_micros(50));
        }
        // A re-registered probe can deliver the same reply twice; drop the
        // leftover so the bus map stays bounded by in-flight requests.
        let _ = self.bus.take(rid);
        match got {
            Some(t) => Response::Ok(t.to_string()),
            None => Response::Err(format!("no reply within {}ms", self.cfg.reply_timeout_ms)),
        }
    }

    /// Regular work pending in the engine (the backpressure gauge).
    pub fn pending(&self) -> u64 {
        match &self.engine {
            Engine::Sim(_) => 0,
            Engine::Parallel(h) => h.pending(),
        }
    }

    /// True when the engine is globally quiescent — parked workers, no
    /// in-flight batches; the simulator is idle whenever unlocked.
    pub fn is_idle(&self) -> bool {
        match &self.engine {
            Engine::Sim(_) => true,
            Engine::Parallel(h) => h.is_idle(),
        }
    }

    /// Block (bounded) until the engine reads idle.
    pub fn wait_idle(&self, timeout: Duration) -> bool {
        match &self.engine {
            Engine::Sim(_) => true,
            Engine::Parallel(h) => h.wait_idle(timeout),
        }
    }

    /// A fatal engine error has begun winding the workers down.
    pub fn is_stopping(&self) -> bool {
        match &self.engine {
            Engine::Sim(_) => false,
            Engine::Parallel(h) => h.is_stopping(),
        }
    }

    /// Live store size (all stripes) — the soak tier's bounded-growth
    /// probe.
    pub fn store_len(&self) -> usize {
        self.with_front(|m| m.store_len())
    }

    /// Worker threads behind the service (1 for the simulator).
    pub fn threads(&self) -> usize {
        match &self.engine {
            Engine::Sim(_) => 1,
            Engine::Parallel(h) => h.threads(),
        }
    }

    /// Stop the engine and merge every shard's report (serve counters
    /// included).
    pub fn shutdown(self) -> StrandResult<RunReport> {
        match self.engine {
            Engine::Sim(m) => {
                let mut m = m.into_inner().unwrap_or_else(|e| e.into_inner());
                m.run()
            }
            Engine::Parallel(h) => h.shutdown(),
        }
    }

    /// Run `f` on the machine that fronts the service: the simulator
    /// itself, or the parallel ingress machine.
    fn with_front<R>(&self, f: impl FnOnce(&mut Machine) -> R) -> R {
        match &self.engine {
            Engine::Sim(m) => f(&mut m.lock().unwrap_or_else(|e| e.into_inner())),
            Engine::Parallel(h) => h.with_ingress(f),
        }
    }
}

/// What [`serve`] hands back after a graceful shutdown.
pub struct ServeSummary {
    /// The merged engine report: metrics carry the serve counters
    /// (`sessions_opened/closed`, `requests_admitted/rejected`,
    /// `vars_reclaimed`, `idle_parks`).
    pub report: RunReport,
}

/// Accept loop: one thread per connection, a session per connection, one
/// request per line. Returns after `shutdown` flips true (SIGINT in the
/// binary): stops accepting, lets in-flight sessions drain (bounded by
/// `drain`), then shuts the engine down and reports.
pub fn serve(
    listener: TcpListener,
    service: MotifService,
    shutdown: Arc<AtomicBool>,
    drain: Duration,
) -> StrandResult<ServeSummary> {
    listener
        .set_nonblocking(true)
        .map_err(|e| StrandError::Other(format!("listener: {e}")))?;
    let service = Arc::new(service);
    let active = Arc::new(AtomicUsize::new(0));
    let mut handles = Vec::new();
    while !shutdown.load(Ordering::Acquire) && !service.is_stopping() {
        match listener.accept() {
            Ok((stream, _peer)) => {
                let service = Arc::clone(&service);
                let active = Arc::clone(&active);
                let shutdown = Arc::clone(&shutdown);
                active.fetch_add(1, Ordering::AcqRel);
                let h = std::thread::Builder::new()
                    .name("strand-conn".to_string())
                    .spawn(move || {
                        handle_connection(stream, &service, &shutdown);
                        active.fetch_sub(1, Ordering::AcqRel);
                    })
                    .map_err(|e| StrandError::Other(format!("spawn: {e}")))?;
                handles.push(h);
            }
            Err(e) if e.kind() == ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(1));
            }
            Err(e) => return Err(StrandError::Other(format!("accept: {e}"))),
        }
    }
    drop(listener); // reject new connections while draining
    let deadline = Instant::now() + drain;
    while active.load(Ordering::Acquire) > 0 && Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(5));
    }
    for h in handles {
        let _ = h.join();
    }
    let service = Arc::try_unwrap(service)
        .map_err(|_| StrandError::Other("connection thread leaked the service".to_string()))?;
    let report = service.shutdown()?;
    Ok(ServeSummary { report })
}

/// One connection: a session whose requests are the incoming lines.
/// Reads poll every 500ms so a SIGINT drain isn't blocked on a silent
/// client; partial lines accumulate across polls.
fn handle_connection(stream: TcpStream, service: &MotifService, shutdown: &AtomicBool) {
    let _ = stream.set_read_timeout(Some(Duration::from_millis(500)));
    // One write per response, and no Nagle: a request/reply protocol of
    // tiny frames otherwise spends ~40ms per turn in delayed-ACK limbo.
    let _ = stream.set_nodelay(true);
    let mut writer = match stream.try_clone() {
        Ok(w) => w,
        Err(_) => return,
    };
    let mut reader = BufReader::new(stream);
    let session = service.open_session();
    let mut line = String::new();
    loop {
        if shutdown.load(Ordering::Acquire) || service.is_stopping() {
            break;
        }
        match reader.read_line(&mut line) {
            Ok(0) => break, // EOF: the client closed the session
            Ok(_) => {
                let request = line.trim();
                let response = if request.is_empty() {
                    Response::Err("empty request".to_string())
                } else {
                    service.request(session, request)
                };
                line.clear();
                let frame = format!("{}\n", response.wire());
                if writer.write_all(frame.as_bytes()).is_err() {
                    break;
                }
                let _ = writer.flush();
            }
            Err(e) if e.kind() == ErrorKind::WouldBlock || e.kind() == ErrorKind::TimedOut => {
                continue; // poll tick; any partial line stays buffered
            }
            Err(_) => break,
        }
    }
    service.close_session(session);
}

#[cfg(test)]
mod tests {
    use super::*;

    fn doubler(backend: ServeBackend) -> MotifService {
        if matches!(backend, ServeBackend::Parallel(_)) {
            strand_parallel::install();
        }
        let cfg = ServeConfig {
            servers: 4,
            backend,
            ..ServeConfig::default()
        };
        MotifService::start(DOUBLER_APP, cfg).unwrap()
    }

    #[test]
    fn sim_service_answers_requests_and_reclaims() {
        let svc = doubler(ServeBackend::Sim);
        let s = svc.open_session();
        assert_eq!(svc.request(s, "21"), Response::Ok("42".to_string()));
        assert_eq!(svc.request(s, "100"), Response::Ok("200".to_string()));
        let before = svc.store_len();
        svc.close_session(s);
        assert!(svc.store_len() <= before, "close grew the store");
        let report = svc.shutdown().unwrap();
        assert_eq!(report.metrics.sessions_opened, 1);
        assert_eq!(report.metrics.sessions_closed, 1);
        assert_eq!(report.metrics.requests_admitted, 2);
        assert!(report.metrics.vars_reclaimed >= 1, "{:?}", report.metrics);
    }

    #[test]
    fn parallel_service_answers_requests_and_parks_idle() {
        let svc = doubler(ServeBackend::Parallel(2));
        let s = svc.open_session();
        assert_eq!(svc.request(s, "21"), Response::Ok("42".to_string()));
        assert!(svc.wait_idle(Duration::from_secs(5)), "no return to idle");
        assert_eq!(svc.request(s, "-3"), Response::Ok("-6".to_string()));
        svc.close_session(s);
        assert!(svc.wait_idle(Duration::from_secs(5)));
        let report = svc.shutdown().unwrap();
        assert!(report.metrics.idle_parks >= 1, "{:?}", report.metrics);
        assert!(report.metrics.vars_reclaimed >= 1, "{:?}", report.metrics);
    }

    #[test]
    fn malformed_and_nonground_requests_are_rejected_politely() {
        let svc = doubler(ServeBackend::Sim);
        let s = svc.open_session();
        assert!(matches!(svc.request(s, "req(1,"), Response::Err(_)));
        assert!(matches!(svc.request(s, "f(X)"), Response::Err(_)));
        // The session still works afterwards.
        assert_eq!(svc.request(s, "5"), Response::Ok("10".to_string()));
        svc.close_session(s);
    }

    #[test]
    fn handler_error_does_not_tear_the_service_down() {
        // A type-error payload (the doubler multiplies it) must cost that
        // one client a timeout, never the fleet: `fail_fast` is off, so
        // the engine collects the error and the service stays resident.
        strand_parallel::install();
        let cfg = ServeConfig {
            servers: 2,
            backend: ServeBackend::Parallel(2),
            reply_timeout_ms: 300,
            ..ServeConfig::default()
        };
        let svc = MotifService::start(DOUBLER_APP, cfg).unwrap();
        let s = svc.open_session();
        assert!(matches!(svc.request(s, "oops(atom)"), Response::Err(_)));
        assert!(!svc.is_stopping(), "handler error killed the engine");
        assert_eq!(svc.request(s, "8"), Response::Ok("16".to_string()));
        svc.close_session(s);
        let report = svc.shutdown().unwrap();
        assert_eq!(report.errors.len(), 1, "{:?}", report.errors);
    }

    fn supervised_doubler(threads: u32, retry_ms: u64) -> MotifService {
        strand_parallel::install();
        let cfg = ServeConfig {
            servers: 4,
            backend: ServeBackend::Parallel(threads),
            supervise: true,
            retry_ms,
            ..ServeConfig::default()
        };
        MotifService::start(DOUBLER_APP, cfg).unwrap()
    }

    #[test]
    fn supervised_service_answers_requests_and_arms_wall_timers() {
        let svc = supervised_doubler(2, 25);
        let s = svc.open_session();
        assert_eq!(svc.request(s, "21"), Response::Ok("42".to_string()));
        assert_eq!(svc.request(s, "-3"), Response::Ok("-6".to_string()));
        svc.close_session(s);
        let report = svc.shutdown().unwrap();
        // Supervision runs on real deadlines: heartbeat beats and ack
        // retransmit windows all sit in the wheel.
        assert!(report.metrics.timers_armed > 0, "{:?}", report.metrics);
        assert_eq!(report.metrics.requests_admitted, 2);
    }

    #[test]
    fn supervision_refuses_the_simulator_backend() {
        let cfg = ServeConfig {
            supervise: true,
            backend: ServeBackend::Sim,
            ..ServeConfig::default()
        };
        match MotifService::start(DOUBLER_APP, cfg) {
            Err(err) => assert!(
                err.to_string().contains("parallel backend"),
                "unhelpful refusal: {err}"
            ),
            Ok(_) => panic!("simulator accepted a supervised config"),
        }
    }

    #[test]
    fn busy_hint_tracks_the_wheel_horizon_under_supervision() {
        // Regression: the BUSY hint used to parrot `retry_ms` verbatim,
        // so a client configured with a lazy 10s retry kept hammering a
        // service whose next wake (a heartbeat, a retransmit window) was
        // due within the second. Supervised services must derive the hint
        // from the wheel's next-due horizon instead.
        let svc = supervised_doubler(2, 10_000);
        // Heartbeats arm within the first watch window; give the fleet a
        // moment to get one into the wheel.
        let deadline = Instant::now() + Duration::from_secs(5);
        let hint = loop {
            let hint = svc.busy_hint();
            if hint < 10_000 || Instant::now() >= deadline {
                break hint;
            }
            std::thread::sleep(Duration::from_millis(10));
        };
        assert!(
            (1..10_000).contains(&hint),
            "hint {hint}ms was not derived from the wheel horizon"
        );
        svc.shutdown().unwrap();

        // Unsupervised services advertise the configured delay verbatim.
        let svc = doubler(ServeBackend::Parallel(2));
        assert_eq!(svc.busy_hint(), svc.cfg.retry_ms);
        svc.shutdown().unwrap();
    }

    #[test]
    fn echo_round_trips_compound_terms() {
        let svc = {
            let cfg = ServeConfig {
                servers: 2,
                backend: ServeBackend::Sim,
                ..ServeConfig::default()
            };
            MotifService::start(ECHO_APP, cfg).unwrap()
        };
        let s = svc.open_session();
        for t in ["point(1, 2)", "[a, b, [c, 4]]", "nested(f(g(h)), [1])"] {
            match svc.request(s, t) {
                Response::Ok(echoed) => {
                    let want = parse_term(t).unwrap();
                    let got = parse_term(&echoed).unwrap();
                    assert_eq!(format!("{want:?}"), format!("{got:?}"), "echo of {t}");
                }
                other => panic!("echo of {t} failed: {other:?}"),
            }
        }
        svc.close_session(s);
    }
}
