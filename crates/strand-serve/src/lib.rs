//! # strand-serve
//!
//! A **resident** motif service: the paper's Server motif (§3.2) describes
//! "a fully connected set of named servers, each capable of initiating
//! computations upon receipt of messages" — this crate keeps such a
//! network alive in a long-running process and feeds it *external* traffic
//! over TCP, instead of a single batch goal that runs to quiescence and
//! exits. See DESIGN.md §9 for the full model; the short version:
//!
//! * **Idle, not terminated.** The engine's quiescence detector normally
//!   ends the run; in resident mode (simulator: `Machine::run` is simply
//!   re-entered per burst; parallel: [`strand_parallel::ResidentHandle`])
//!   quiescence parks the workers and the suspended Server loops wait on
//!   their port streams for the next request.
//! * **Sessions are regions.** Every TCP connection gets a session region;
//!   variables allocated for its requests and the suspensions they leave
//!   behind are tagged with it and swept when the connection closes, so
//!   store growth is bounded by the *live* sessions, not the total ever
//!   served.
//! * **Backpressure, not queues.** Admission checks the engine's regular
//!   work gauge (the same shared gate the lazy-timer rule reads); past the
//!   configured high-water mark clients get `BUSY <retry-ms>` instead of
//!   unbounded queueing.
//!
//! ## Wire protocol
//!
//! Line-based, UTF-8. A request is one **ground** term per line (the
//! payload `Q` of the motif-level message `req(Q, R)`); the service binds
//! the handler's reply `R` and answers with exactly one line:
//!
//! ```text
//! OK <term>      — the resolved reply
//! ERR <message>  — parse error, non-ground request, timeout, shutdown
//! BUSY <millis>  — backpressured; retry after the given delay
//! ```
//!
//! A session is a connection: closing it (EOF) reclaims everything the
//! session allocated. The application supplies `server/1` handler rules
//! (the Server transformation threads the directory argument itself) that
//! answer `req(Q, R)` messages by binding `R` to a ground term, e.g.
//!
//! ```text
//! server([]).
//! server([halt|_]).
//! server([req(Q, R)|In]) :- R := Q * 2, server(In).
//! ```

use std::collections::{BTreeMap, HashMap};
use std::io::{BufRead, BufReader, ErrorKind, Write as IoWrite};
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

use strand_core::{StrandError, StrandResult, Term};
use strand_machine::{ast_to_term, ForeignLib, Machine, MachineConfig, RunReport};
use strand_parallel::ResidentHandle;
use strand_parse::{compile_program, parse_term};

/// Boot rule appended to the application before the Server transformation:
/// build the port-tuple directory and spawn one server per node, but —
/// unlike the library's `create/2` — deliver no initial message and never
/// halt: the network starts empty and waits for ingress.
const SERVE_BOOT: &str = "\nserve_boot(N, DT) :- make_tuple(N, DT), spawn_servers(N, DT).\n";

/// The demo application served by the `strand-serve` binary when no
/// `--app` file is given: replies with the doubled request payload.
/// Handlers that allocate no fresh body variables keep the resident
/// store perfectly bounded (see DESIGN.md §9 on session locality).
pub const DOUBLER_APP: &str = r#"
server([]).
server([halt|_]).
server([req(Q, R)|In]) :- R := Q * 2, server(In).
"#;

/// An echo application (head unification binds the reply to the request),
/// used by the conformance tier to round-trip arbitrary ground terms.
pub const ECHO_APP: &str = r#"
server([]).
server([halt|_]).
server([req(Q, R)|In]) :- R = Q, server(In).
"#;

/// Which engine keeps the program resident.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ServeBackend {
    /// The deterministic simulator: requests reduce synchronously under
    /// the service lock, one burst per request. The conformance reference.
    Sim,
    /// The sharded parallel backend with the given worker threads
    /// (0 = host parallelism): workers stay parked between bursts.
    Parallel(u32),
}

/// Service tuning. `Default` is a 4-server parallel network sized for the
/// host, with backpressure at 10k queued reductions' worth of work.
#[derive(Clone, Debug)]
pub struct ServeConfig {
    /// Server-motif nodes (the `make_tuple(N, DT)` directory size).
    pub servers: u32,
    pub backend: ServeBackend,
    /// Admission high-water mark on the engine's regular-work gauge;
    /// requests arriving above it are answered `BUSY`.
    pub max_pending: u64,
    /// The retry delay a backpressured client is told to wait.
    pub retry_ms: u64,
    /// How long a request waits for its reply before answering `ERR`.
    pub reply_timeout_ms: u64,
}

impl Default for ServeConfig {
    fn default() -> ServeConfig {
        ServeConfig {
            servers: 4,
            backend: ServeBackend::Parallel(0),
            max_pending: 10_000,
            retry_ms: 25,
            reply_timeout_ms: 10_000,
        }
    }
}

/// One reply per outstanding request, keyed by request id. The
/// `'$serve_reply'` foreign procedure delivers here from whichever worker
/// reduces it; connection threads block on [`ReplyBus::wait`].
#[derive(Default)]
struct ReplyBus {
    replies: Mutex<HashMap<u64, Term>>,
    arrived: Condvar,
}

impl ReplyBus {
    fn deliver(&self, rid: u64, reply: Term) {
        self.replies
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .insert(rid, reply);
        self.arrived.notify_all();
    }

    fn wait(&self, rid: u64, timeout: Duration) -> Option<Term> {
        let deadline = Instant::now() + timeout;
        let mut replies = self.replies.lock().unwrap_or_else(|e| e.into_inner());
        loop {
            if let Some(t) = replies.remove(&rid) {
                return Some(t);
            }
            let now = Instant::now();
            if now >= deadline {
                return None;
            }
            let (guard, _) = self
                .arrived
                .wait_timeout(replies, deadline - now)
                .unwrap_or_else(|e| e.into_inner());
            replies = guard;
        }
    }

    /// Non-blocking variant for the simulator path, where the reply is
    /// already delivered by the time the request burst has drained.
    fn take(&self, rid: u64) -> Option<Term> {
        self.replies
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .remove(&rid)
    }
}

/// An open session: one per TCP connection (or per synthetic client in
/// the bench). Dropping it without [`MotifService::close_session`] leaks
/// the region until shutdown — close explicitly.
#[derive(Clone, Copy, Debug)]
pub struct Session {
    /// Monotonic session number (diagnostics only).
    pub sid: u64,
    /// The store/suspension region everything this session allocates is
    /// tagged with; swept on close.
    pub region: u32,
}

/// One request's outcome, mirroring the wire protocol.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Response {
    /// The handler bound the reply: the resolved term, rendered.
    Ok(String),
    /// Parse error, non-ground request, reply timeout or shutdown.
    Err(String),
    /// Backpressured: retry after this many milliseconds.
    Busy(u64),
}

impl Response {
    /// The wire form, without the trailing newline.
    pub fn wire(&self) -> String {
        match self {
            Response::Ok(t) => format!("OK {t}"),
            Response::Err(m) => format!("ERR {}", m.replace('\n', " ")),
            Response::Busy(ms) => format!("BUSY {ms}"),
        }
    }
}

enum Engine {
    Sim(Mutex<Machine>),
    Parallel(ResidentHandle),
}

/// A resident Server-motif program plus the session plumbing around it.
/// `Sync`: share behind an `Arc` across connection threads.
pub struct MotifService {
    engine: Engine,
    bus: Arc<ReplyBus>,
    /// The port-tuple directory bound by the boot goal; every request
    /// distributes over it.
    dt: Term,
    cfg: ServeConfig,
    next_sid: AtomicU64,
    next_region: AtomicU32,
    next_rid: AtomicU64,
    round_robin: AtomicU64,
}

impl MotifService {
    /// Transform `app_src` with the Server motif, boot an N-server network
    /// with no initial traffic, and leave it resident (idle) awaiting
    /// requests.
    pub fn start(app_src: &str, cfg: ServeConfig) -> StrandResult<MotifService> {
        let full_src = format!("{app_src}{SERVE_BOOT}");
        let program = motifs::server()
            .apply_src(&full_src)
            .map_err(|e| StrandError::Other(e.to_string()))?;
        let bus = Arc::new(ReplyBus::default());
        let mut lib = ForeignLib::new();
        {
            let bus = Arc::clone(&bus);
            lib.register("$serve_reply", 3, move |args| {
                let rid = match &args[0] {
                    Term::Int(v) => *v as u64,
                    other => {
                        return Err(StrandError::Other(format!(
                            "'$serve_reply' wants an integer request id, got {other}"
                        )))
                    }
                };
                bus.deliver(rid, args[1].clone());
                Ok((Term::atom("ok"), 1))
            });
        }
        let mut mcfg = MachineConfig::with_nodes(cfg.servers);
        // A service has no natural reduction budget; give it half of
        // forever (the shared counter still guards runaway handlers in
        // that a stuck burst eventually truncates instead of spinning).
        mcfg.max_reductions = u64::MAX / 2;
        // A bad request must not tear the service down mid-session:
        // handler errors are collected, the client times out instead.
        mcfg.fail_fast = false;
        let boot_goal = format!("serve_boot({}, DT)", cfg.servers);
        let engine = match cfg.backend {
            ServeBackend::Sim => {
                let compiled =
                    compile_program(&program).map_err(|e| StrandError::Other(e.to_string()))?;
                let mut m = Machine::new(compiled, mcfg);
                m.install_lib(&lib);
                let ast = parse_term(&boot_goal).map_err(|e| StrandError::Other(e.to_string()))?;
                let mut vars = BTreeMap::new();
                let goal = ast_to_term(&ast, &mut m, &mut vars);
                m.start(goal);
                m.run()?;
                let dt = vars.remove("DT").expect("boot goal names DT");
                return Ok(MotifService::assemble(
                    Engine::Sim(Mutex::new(m)),
                    bus,
                    dt,
                    cfg,
                ));
            }
            ServeBackend::Parallel(threads) => {
                let handle =
                    ResidentHandle::start(&program, &boot_goal, mcfg.parallel(threads), &lib)?;
                if !handle.wait_idle(Duration::from_secs(30)) {
                    return Err(StrandError::Other(
                        "resident boot did not reach idle within 30s".to_string(),
                    ));
                }
                Engine::Parallel(handle)
            }
        };
        let dt = match &engine {
            Engine::Parallel(h) => h.boot_var("DT").expect("boot goal names DT"),
            Engine::Sim(_) => unreachable!("sim path returned above"),
        };
        Ok(MotifService::assemble(engine, bus, dt, cfg))
    }

    fn assemble(engine: Engine, bus: Arc<ReplyBus>, dt: Term, cfg: ServeConfig) -> MotifService {
        MotifService {
            engine,
            bus,
            dt,
            cfg,
            next_sid: AtomicU64::new(0),
            next_region: AtomicU32::new(1),
            next_rid: AtomicU64::new(0),
            round_robin: AtomicU64::new(0),
        }
    }

    /// Open a session: allocate its region and count it.
    pub fn open_session(&self) -> Session {
        let sid = self.next_sid.fetch_add(1, Ordering::Relaxed) + 1;
        let region = self.next_region.fetch_add(1, Ordering::Relaxed);
        self.with_front(|m| m.metrics_mut().sessions_opened += 1);
        Session { sid, region }
    }

    /// Close a session: sweep every shard's suspensions and store slots
    /// tagged with its region.
    pub fn close_session(&self, session: Session) {
        match &self.engine {
            Engine::Sim(m) => {
                let mut m = m.lock().unwrap_or_else(|e| e.into_inner());
                m.reclaim_session(session.region);
                m.metrics_mut().sessions_closed += 1;
            }
            Engine::Parallel(h) => {
                h.reclaim(session.region);
                h.with_ingress(|m| m.metrics_mut().sessions_closed += 1);
            }
        }
    }

    /// Serve one request line: admission check, parse, inject
    /// `distribute(J, DT, req(Q, R))` plus the `'$serve_reply'` probe under
    /// the session's region, and wait for the reply.
    pub fn request(&self, session: Session, line: &str) -> Response {
        if self.is_stopping() {
            return Response::Err("service is shutting down".to_string());
        }
        // Backpressure: consult the engine's regular-work gauge before
        // adding to it. The simulator drains synchronously per request,
        // so its gauge only matters under concurrent sessions.
        if self.pending() > self.cfg.max_pending {
            self.with_front(|m| m.metrics_mut().requests_rejected += 1);
            return Response::Busy(self.cfg.retry_ms);
        }
        let ast = match parse_term(line) {
            Ok(a) => a,
            Err(e) => return Response::Err(format!("parse: {e}")),
        };
        let rid = self.next_rid.fetch_add(1, Ordering::Relaxed) + 1;
        let node = (self.round_robin.fetch_add(1, Ordering::Relaxed) % u64::from(self.cfg.servers))
            as i64
            + 1;
        let dt = self.dt.clone();
        let timeout = Duration::from_millis(self.cfg.reply_timeout_ms);
        match &self.engine {
            Engine::Parallel(h) => {
                let ack = match h
                    .with_ingress(|m| Self::inject_request(m, session, &ast, rid, node, dt))
                {
                    Ok(ack) => ack,
                    Err(resp) => return resp,
                };
                let got = self.bus.wait(rid, timeout);
                // The '$serve_reply' closure delivers to the bus *before*
                // the engine binds its out-arg (the ack), so the bind can
                // still be in flight here. Returning without waiting for it
                // would let a prompt close_session sweep the unbound ack
                // slot; once recycled, the stale bind writes `ok` into the
                // next session's reply var. A reply without a ground ack is
                // therefore not done yet — wait it out (it lands within the
                // same reduction, microseconds behind the bus delivery).
                let grace = Instant::now()
                    + if got.is_some() {
                        timeout
                    } else {
                        // On a reply timeout the handler is stuck and the
                        // bind is unlikely to ever come; a short grace only
                        // narrows the same recycling window.
                        Duration::from_millis(250)
                    };
                while !h.with_ingress(|m| m.store().resolve(&ack).is_ground()) {
                    if Instant::now() >= grace || h.is_stopping() {
                        break;
                    }
                    std::thread::sleep(Duration::from_micros(50));
                }
                match got {
                    Some(t) => Response::Ok(t.to_string()),
                    None => {
                        Response::Err(format!("no reply within {}ms", self.cfg.reply_timeout_ms))
                    }
                }
            }
            Engine::Sim(m) => {
                let mut m = m.lock().unwrap_or_else(|e| e.into_inner());
                if let Err(resp) = Self::inject_request(&mut m, session, &ast, rid, node, dt) {
                    return resp;
                }
                if let Err(e) = m.run() {
                    return Response::Err(format!("engine: {e}"));
                }
                match self.bus.take(rid) {
                    Some(t) => Response::Ok(t.to_string()),
                    None => Response::Err("handler did not answer the request".to_string()),
                }
            }
        }
    }

    /// Build and enqueue the two goals for one request on `m` (the ingress
    /// machine or the simulator). `Ok` carries the `'$serve_reply'` ack
    /// variable (bound by the engine once the reply has been delivered —
    /// the parallel path uses it to confirm the request's binds have all
    /// landed); `Err` carries the client-facing response.
    fn inject_request(
        m: &mut Machine,
        session: Session,
        ast: &strand_parse::Ast,
        rid: u64,
        node: i64,
        dt: Term,
    ) -> Result<Term, Response> {
        m.set_session_region(session.region);
        let mut vars = BTreeMap::new();
        let q = ast_to_term(ast, m, &mut vars);
        if !vars.is_empty() || !m.store().resolve(&q).is_ground() {
            // The stray variables were allocated under the session region,
            // so the close-time sweep reclaims them.
            return Err(Response::Err("request must be a ground term".to_string()));
        }
        let reply = Term::Var(m.store_mut().new_var());
        let ack = Term::Var(m.store_mut().new_var());
        m.metrics_mut().requests_admitted += 1;
        m.inject(
            Term::tuple(
                "distribute",
                vec![
                    Term::int(node),
                    dt,
                    Term::tuple("req", vec![q, reply.clone()]),
                ],
            ),
            node,
        );
        m.inject(
            Term::tuple(
                "$serve_reply",
                vec![Term::int(rid as i64), reply, ack.clone()],
            ),
            node,
        );
        Ok(ack)
    }

    /// Regular work pending in the engine (the backpressure gauge).
    pub fn pending(&self) -> u64 {
        match &self.engine {
            Engine::Sim(_) => 0,
            Engine::Parallel(h) => h.pending(),
        }
    }

    /// True when the engine is globally quiescent — parked workers, no
    /// in-flight batches; the simulator is idle whenever unlocked.
    pub fn is_idle(&self) -> bool {
        match &self.engine {
            Engine::Sim(_) => true,
            Engine::Parallel(h) => h.is_idle(),
        }
    }

    /// Block (bounded) until the engine reads idle.
    pub fn wait_idle(&self, timeout: Duration) -> bool {
        match &self.engine {
            Engine::Sim(_) => true,
            Engine::Parallel(h) => h.wait_idle(timeout),
        }
    }

    /// A fatal engine error has begun winding the workers down.
    pub fn is_stopping(&self) -> bool {
        match &self.engine {
            Engine::Sim(_) => false,
            Engine::Parallel(h) => h.is_stopping(),
        }
    }

    /// Live store size (all stripes) — the soak tier's bounded-growth
    /// probe.
    pub fn store_len(&self) -> usize {
        self.with_front(|m| m.store_len())
    }

    /// Worker threads behind the service (1 for the simulator).
    pub fn threads(&self) -> usize {
        match &self.engine {
            Engine::Sim(_) => 1,
            Engine::Parallel(h) => h.threads(),
        }
    }

    /// Stop the engine and merge every shard's report (serve counters
    /// included).
    pub fn shutdown(self) -> StrandResult<RunReport> {
        match self.engine {
            Engine::Sim(m) => {
                let mut m = m.into_inner().unwrap_or_else(|e| e.into_inner());
                m.run()
            }
            Engine::Parallel(h) => h.shutdown(),
        }
    }

    /// Run `f` on the machine that fronts the service: the simulator
    /// itself, or the parallel ingress machine.
    fn with_front<R>(&self, f: impl FnOnce(&mut Machine) -> R) -> R {
        match &self.engine {
            Engine::Sim(m) => f(&mut m.lock().unwrap_or_else(|e| e.into_inner())),
            Engine::Parallel(h) => h.with_ingress(f),
        }
    }
}

/// What [`serve`] hands back after a graceful shutdown.
pub struct ServeSummary {
    /// The merged engine report: metrics carry the serve counters
    /// (`sessions_opened/closed`, `requests_admitted/rejected`,
    /// `vars_reclaimed`, `idle_parks`).
    pub report: RunReport,
}

/// Accept loop: one thread per connection, a session per connection, one
/// request per line. Returns after `shutdown` flips true (SIGINT in the
/// binary): stops accepting, lets in-flight sessions drain (bounded by
/// `drain`), then shuts the engine down and reports.
pub fn serve(
    listener: TcpListener,
    service: MotifService,
    shutdown: Arc<AtomicBool>,
    drain: Duration,
) -> StrandResult<ServeSummary> {
    listener
        .set_nonblocking(true)
        .map_err(|e| StrandError::Other(format!("listener: {e}")))?;
    let service = Arc::new(service);
    let active = Arc::new(AtomicUsize::new(0));
    let mut handles = Vec::new();
    while !shutdown.load(Ordering::Acquire) && !service.is_stopping() {
        match listener.accept() {
            Ok((stream, _peer)) => {
                let service = Arc::clone(&service);
                let active = Arc::clone(&active);
                let shutdown = Arc::clone(&shutdown);
                active.fetch_add(1, Ordering::AcqRel);
                let h = std::thread::Builder::new()
                    .name("strand-conn".to_string())
                    .spawn(move || {
                        handle_connection(stream, &service, &shutdown);
                        active.fetch_sub(1, Ordering::AcqRel);
                    })
                    .map_err(|e| StrandError::Other(format!("spawn: {e}")))?;
                handles.push(h);
            }
            Err(e) if e.kind() == ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(1));
            }
            Err(e) => return Err(StrandError::Other(format!("accept: {e}"))),
        }
    }
    drop(listener); // reject new connections while draining
    let deadline = Instant::now() + drain;
    while active.load(Ordering::Acquire) > 0 && Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(5));
    }
    for h in handles {
        let _ = h.join();
    }
    let service = Arc::try_unwrap(service)
        .map_err(|_| StrandError::Other("connection thread leaked the service".to_string()))?;
    let report = service.shutdown()?;
    Ok(ServeSummary { report })
}

/// One connection: a session whose requests are the incoming lines.
/// Reads poll every 500ms so a SIGINT drain isn't blocked on a silent
/// client; partial lines accumulate across polls.
fn handle_connection(stream: TcpStream, service: &MotifService, shutdown: &AtomicBool) {
    let _ = stream.set_read_timeout(Some(Duration::from_millis(500)));
    // One write per response, and no Nagle: a request/reply protocol of
    // tiny frames otherwise spends ~40ms per turn in delayed-ACK limbo.
    let _ = stream.set_nodelay(true);
    let mut writer = match stream.try_clone() {
        Ok(w) => w,
        Err(_) => return,
    };
    let mut reader = BufReader::new(stream);
    let session = service.open_session();
    let mut line = String::new();
    loop {
        if shutdown.load(Ordering::Acquire) || service.is_stopping() {
            break;
        }
        match reader.read_line(&mut line) {
            Ok(0) => break, // EOF: the client closed the session
            Ok(_) => {
                let request = line.trim();
                let response = if request.is_empty() {
                    Response::Err("empty request".to_string())
                } else {
                    service.request(session, request)
                };
                line.clear();
                let frame = format!("{}\n", response.wire());
                if writer.write_all(frame.as_bytes()).is_err() {
                    break;
                }
                let _ = writer.flush();
            }
            Err(e) if e.kind() == ErrorKind::WouldBlock || e.kind() == ErrorKind::TimedOut => {
                continue; // poll tick; any partial line stays buffered
            }
            Err(_) => break,
        }
    }
    service.close_session(session);
}

#[cfg(test)]
mod tests {
    use super::*;

    fn doubler(backend: ServeBackend) -> MotifService {
        if matches!(backend, ServeBackend::Parallel(_)) {
            strand_parallel::install();
        }
        let cfg = ServeConfig {
            servers: 4,
            backend,
            ..ServeConfig::default()
        };
        MotifService::start(DOUBLER_APP, cfg).unwrap()
    }

    #[test]
    fn sim_service_answers_requests_and_reclaims() {
        let svc = doubler(ServeBackend::Sim);
        let s = svc.open_session();
        assert_eq!(svc.request(s, "21"), Response::Ok("42".to_string()));
        assert_eq!(svc.request(s, "100"), Response::Ok("200".to_string()));
        let before = svc.store_len();
        svc.close_session(s);
        assert!(svc.store_len() <= before, "close grew the store");
        let report = svc.shutdown().unwrap();
        assert_eq!(report.metrics.sessions_opened, 1);
        assert_eq!(report.metrics.sessions_closed, 1);
        assert_eq!(report.metrics.requests_admitted, 2);
        assert!(report.metrics.vars_reclaimed >= 1, "{:?}", report.metrics);
    }

    #[test]
    fn parallel_service_answers_requests_and_parks_idle() {
        let svc = doubler(ServeBackend::Parallel(2));
        let s = svc.open_session();
        assert_eq!(svc.request(s, "21"), Response::Ok("42".to_string()));
        assert!(svc.wait_idle(Duration::from_secs(5)), "no return to idle");
        assert_eq!(svc.request(s, "-3"), Response::Ok("-6".to_string()));
        svc.close_session(s);
        assert!(svc.wait_idle(Duration::from_secs(5)));
        let report = svc.shutdown().unwrap();
        assert!(report.metrics.idle_parks >= 1, "{:?}", report.metrics);
        assert!(report.metrics.vars_reclaimed >= 1, "{:?}", report.metrics);
    }

    #[test]
    fn malformed_and_nonground_requests_are_rejected_politely() {
        let svc = doubler(ServeBackend::Sim);
        let s = svc.open_session();
        assert!(matches!(svc.request(s, "req(1,"), Response::Err(_)));
        assert!(matches!(svc.request(s, "f(X)"), Response::Err(_)));
        // The session still works afterwards.
        assert_eq!(svc.request(s, "5"), Response::Ok("10".to_string()));
        svc.close_session(s);
    }

    #[test]
    fn handler_error_does_not_tear_the_service_down() {
        // A type-error payload (the doubler multiplies it) must cost that
        // one client a timeout, never the fleet: `fail_fast` is off, so
        // the engine collects the error and the service stays resident.
        strand_parallel::install();
        let cfg = ServeConfig {
            servers: 2,
            backend: ServeBackend::Parallel(2),
            reply_timeout_ms: 300,
            ..ServeConfig::default()
        };
        let svc = MotifService::start(DOUBLER_APP, cfg).unwrap();
        let s = svc.open_session();
        assert!(matches!(svc.request(s, "oops(atom)"), Response::Err(_)));
        assert!(!svc.is_stopping(), "handler error killed the engine");
        assert_eq!(svc.request(s, "8"), Response::Ok("16".to_string()));
        svc.close_session(s);
        let report = svc.shutdown().unwrap();
        assert_eq!(report.errors.len(), 1, "{:?}", report.errors);
    }

    #[test]
    fn echo_round_trips_compound_terms() {
        let svc = {
            let cfg = ServeConfig {
                servers: 2,
                backend: ServeBackend::Sim,
                ..ServeConfig::default()
            };
            MotifService::start(ECHO_APP, cfg).unwrap()
        };
        let s = svc.open_session();
        for t in ["point(1, 2)", "[a, b, [c, 4]]", "nested(f(g(h)), [1])"] {
            match svc.request(s, t) {
                Response::Ok(echoed) => {
                    let want = parse_term(t).unwrap();
                    let got = parse_term(&echoed).unwrap();
                    assert_eq!(format!("{want:?}"), format!("{got:?}"), "echo of {t}");
                }
                other => panic!("echo of {t} failed: {other:?}"),
            }
        }
        svc.close_session(s);
    }
}
