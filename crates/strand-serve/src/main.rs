//! `strand-serve` — keep a Server-motif program resident and answer TCP
//! clients. See the library docs (and DESIGN.md §9) for the model.
//!
//! ```text
//! strand-serve [--addr HOST:PORT] [--app FILE] [--servers N]
//!              [--threads T | --sim] [--supervise] [--max-pending P]
//!              [--stats]
//!
//!   --addr HOST:PORT   listen address            (default 127.0.0.1:7464)
//!   --app FILE         server/1 application file (default: built-in doubler)
//!   --servers N        server-motif nodes        (default 4)
//!   --threads T        parallel worker threads; 0 = host parallelism
//!   --sim              deterministic simulator instead of worker threads
//!   --supervise        compose Supervise over the servers: heartbeats,
//!                      acked sends and restart run on wall-clock timers
//!   --max-pending P    backpressure high-water mark (default 10000)
//!   --stats            full metrics table in the shutdown summary
//! ```
//!
//! Ctrl-C (SIGINT) shuts down gracefully: new connections are rejected,
//! in-flight sessions drain, and a summary of the run is printed.

use std::net::TcpListener;
use std::process::ExitCode;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use strand_serve::{serve, MotifService, ServeBackend, ServeConfig, DOUBLER_APP};

/// Set on SIGINT; the accept loop polls it. Installed over `signal(2)`
/// directly against libc so no crate dependency is needed — the handler
/// body is a lone atomic store, which is async-signal-safe.
static SHUTDOWN: AtomicBool = AtomicBool::new(false);

extern "C" fn on_sigint(_sig: i32) {
    SHUTDOWN.store(true, Ordering::SeqCst);
}

fn install_sigint() {
    const SIGINT: i32 = 2;
    extern "C" {
        fn signal(signum: i32, handler: usize) -> usize;
    }
    let handler = on_sigint as extern "C" fn(i32) as usize;
    unsafe {
        signal(SIGINT, handler);
    }
}

fn take_flag_value(args: &mut Vec<String>, flag: &str) -> Option<String> {
    let i = args.iter().position(|a| a == flag)?;
    if i + 1 >= args.len() {
        eprintln!("{flag} needs a value");
        std::process::exit(2);
    }
    args.remove(i);
    Some(args.remove(i))
}

fn take_flag(args: &mut Vec<String>, flag: &str) -> bool {
    if let Some(i) = args.iter().position(|a| a == flag) {
        args.remove(i);
        true
    } else {
        false
    }
}

fn main() -> ExitCode {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    if take_flag(&mut args, "--help") || take_flag(&mut args, "-h") {
        print!("{}", usage());
        return ExitCode::SUCCESS;
    }
    let addr = take_flag_value(&mut args, "--addr").unwrap_or_else(|| "127.0.0.1:7464".into());
    let app = match take_flag_value(&mut args, "--app") {
        Some(path) => match std::fs::read_to_string(&path) {
            Ok(src) => src,
            Err(e) => {
                eprintln!("strand-serve: cannot read {path}: {e}");
                return ExitCode::from(2);
            }
        },
        None => DOUBLER_APP.to_string(),
    };
    let servers: u32 = take_flag_value(&mut args, "--servers")
        .map(|v| v.parse().expect("--servers wants a number"))
        .unwrap_or(4);
    let sim = take_flag(&mut args, "--sim");
    let supervise = take_flag(&mut args, "--supervise");
    let threads: u32 = take_flag_value(&mut args, "--threads")
        .map(|v| v.parse().expect("--threads wants a number"))
        .unwrap_or(0);
    let max_pending: u64 = take_flag_value(&mut args, "--max-pending")
        .map(|v| v.parse().expect("--max-pending wants a number"))
        .unwrap_or(10_000);
    let stats = take_flag(&mut args, "--stats");
    if !args.is_empty() {
        eprintln!("strand-serve: unknown arguments: {args:?}\n\n{}", usage());
        return ExitCode::from(2);
    }

    let backend = if sim {
        ServeBackend::Sim
    } else {
        strand_parallel::install();
        ServeBackend::Parallel(threads)
    };
    let cfg = ServeConfig {
        servers,
        backend,
        supervise,
        max_pending,
        ..ServeConfig::default()
    };
    let service = match MotifService::start(&app, cfg) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("strand-serve: boot failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    let listener = match TcpListener::bind(&addr) {
        Ok(l) => l,
        Err(e) => {
            eprintln!("strand-serve: cannot bind {addr}: {e}");
            return ExitCode::FAILURE;
        }
    };
    install_sigint();
    eprintln!(
        "strand-serve: {} servers{} on {} worker thread(s), listening on {addr} (ctrl-c to stop)",
        servers,
        if supervise { " (supervised)" } else { "" },
        service.threads(),
    );
    let shutdown: Arc<AtomicBool> = Arc::new(AtomicBool::new(false));
    {
        // Bridge the signal flag to the loop's shutdown flag so tests can
        // drive `serve` with their own flag too.
        let shutdown = Arc::clone(&shutdown);
        std::thread::Builder::new()
            .name("strand-sigint".to_string())
            .spawn(move || loop {
                if SHUTDOWN.load(Ordering::SeqCst) {
                    shutdown.store(true, Ordering::Release);
                    return;
                }
                std::thread::sleep(Duration::from_millis(50));
            })
            .expect("spawn signal bridge");
    }
    match serve(listener, service, shutdown, Duration::from_secs(10)) {
        Ok(summary) => {
            let m = &summary.report.metrics;
            eprintln!(
                "strand-serve: drained. sessions {}/{} (opened/closed), requests {} admitted / {} \
                 rejected, {} vars reclaimed, {} idle parks, {} reductions",
                m.sessions_opened,
                m.sessions_closed,
                m.requests_admitted,
                m.requests_rejected,
                m.vars_reclaimed,
                m.idle_parks,
                m.total_reductions,
            );
            if supervise {
                eprintln!(
                    "strand-serve: supervision: {} timers armed / {} fired / {} cancelled, \
                     {} deadline wakes, {} supervisor restarts",
                    m.timers_armed,
                    m.timers_fired,
                    m.timers_cancelled,
                    m.wakes_for_deadline,
                    m.supervisor_restarts,
                );
            }
            if stats {
                eprintln!("{m:#?}");
            }
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("strand-serve: {e}");
            ExitCode::FAILURE
        }
    }
}

fn usage() -> String {
    "strand-serve — resident motif service over TCP

USAGE:
  strand-serve [--addr HOST:PORT] [--app FILE] [--servers N]
               [--threads T | --sim] [--supervise] [--max-pending P]
               [--stats]

OPTIONS:
  --addr HOST:PORT   listen address            (default 127.0.0.1:7464)
  --app FILE         server/1 application file (default: built-in doubler)
  --servers N        server-motif nodes        (default 4)
  --threads T        parallel worker threads; 0 = host parallelism
  --sim              deterministic simulator instead of worker threads
  --supervise        compose Supervise over the servers: heartbeats, acked
                     sends and restart run on wall-clock timers (parallel
                     backend only)
  --max-pending P    backpressure high-water mark (default 10000)
  --stats            full metrics table in the shutdown summary

PROTOCOL (line-based):
  -> <ground term>     one request per line
  <- OK <term>         the handler's reply
  <- ERR <message>     parse error, non-ground request, timeout
  <- BUSY <millis>     backpressured; retry after the delay
"
    .to_string()
}
