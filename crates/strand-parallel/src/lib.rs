//! # strand-parallel
//!
//! A real multi-threaded execution backend for the motif language. The
//! paper's programs describe *genuinely parallel* computations; the
//! deterministic simulator in `strand-machine` schedules them on one OS
//! thread under virtual clocks, while this crate runs the same compiled
//! programs on real worker threads with **sharded state** — there is no
//! global machine lock:
//!
//! * each virtual node is assigned to one worker (node `i` → worker
//!   `i % threads`); the worker *owns* its nodes' run queues, suspension
//!   table and metrics outright and touches them without synchronisation;
//! * logic variables live in a striped
//!   [`strand_core::SharedStore`] — every `VarId` carries the stripe of
//!   the worker that created it, so a worker binding its own variables
//!   takes only its own stripe's lock (cross-stripe binds lock the two
//!   stripes in index order);
//! * cross-worker events — remote spawns, port sends, binding wakeups —
//!   are buffered per destination and shipped as *batches* over crossbeam
//!   channels (a batch flushes at [`BATCH_MAX`] events or when the worker
//!   runs out of local work), amortising channel traffic;
//! * *pure* foreign procedures ([`strand_machine::ForeignLib`]) run inline
//!   on the owning worker — there is no lock to hold, so native
//!   computation on one worker genuinely overlaps everything else;
//! * idle workers park inside a blocking `recv`; termination is detected
//!   by a single token counter over busy workers and in-flight batches
//!   (incremented *before* every send), model-checked in [`quiesce`] —
//!   reaching zero proves global quiescence and the worker that observes
//!   it broadcasts stop.
//!
//! ## Determinism contract
//!
//! The simulator stays the deterministic reference. On **one** worker
//! thread this backend is an exact replica of it for fault-free programs
//! without `merge/2` or `after_unless/4`: worker 0 allocates the same
//! process ids, draws the same `rand_num` sequence, selects runnable work
//! from the same heaps in the same order and allocates variables in the
//! same order, so status, bindings *and* print order coincide. On more
//! threads it promises *confluence*: final bindings equal the simulator's,
//! and `print/1` output and `merge/2` results agree as multisets.
//! Virtual-time metrics (makespan, busy) are still collected but depend on
//! the interleaving. Fault injection is rejected. There is no global
//! virtual clock, so `after_unless/4` deadlines are approximated *lazily*:
//! a worker defers timer processes while any regular work is pending
//! anywhere (a shared gate counts it) and fires them only when the system
//! is otherwise idle — a timeout can only be observed once the value it
//! guards has had every chance to arrive, which is exactly the simulator's
//! behaviour for fault-free runs. See DESIGN.md §Execution backends. The
//! conformance harness in the workspace root (`tests/conformance.rs`)
//! checks the contract on every inventory motif program at 1, 2, 4 and 8
//! threads.
//!
//! ## Usage
//!
//! ```
//! use strand_machine::{run_goal, MachineConfig};
//! strand_parallel::install();
//! let r = run_goal(
//!     "double(X, Y) :- Y := X * 2.",
//!     "double(21, V)",
//!     MachineConfig::default().parallel(2),
//! )
//! .unwrap();
//! assert_eq!(r.bindings["V"].to_string(), "42");
//! ```

mod quiesce;

use crossbeam::channel::{bounded, Receiver, Sender, TryRecvError};
use parking_lot::Mutex;
use quiesce::Tokens;
use skeletons::WorkerSet;
use std::collections::BTreeMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};
use strand_core::{StrandError, StrandResult};
use strand_machine::{
    ast_to_term, merge_shard_reports, Backend, DrainState, ExecBackend, ForeignLib, GoalResult,
    Machine, MachineConfig, Routed, SharedWorld,
};
use strand_parse::{compile_program, parse_term, Program};

/// Per-worker channel capacity (in batches). The vendored crossbeam stub
/// has no unbounded channels; a deep bound keeps `send` from blocking in
/// practice (a full channel would only deadlock if two workers blocked
/// sending to each other — at this depth that means ~10⁶ undelivered
/// batches per worker, far beyond any workload in the repo).
const CHANNEL_CAP: usize = 1 << 20;

/// Cross-worker events buffered per destination before a batch ships.
/// Batches also flush whenever the sending worker runs out of local work,
/// so a small value only costs throughput, never liveness.
const BATCH_MAX: usize = 32;

/// Reductions a worker performs per scheduling turn before it services its
/// channel and flushes outbound batches. Bounds the latency between a peer
/// sending us work and us seeing it.
const DRAIN_STEPS: u32 = 64;

enum Msg {
    /// Cross-worker events for the receiving worker's shard. Carries one
    /// quiescence token, minted by the sender before the send.
    Batch(Vec<Routed>),
    Stop,
}

struct Shared {
    /// Busy workers + in-flight batches; zero ⇒ global quiescence.
    tokens: Tokens,
    senders: Vec<Sender<Msg>>,
    /// Set on fatal error, budget exhaustion or quiescence: workers discard
    /// local work and exit.
    stopping: AtomicBool,
    truncated: AtomicBool,
    fatal: Mutex<Option<StrandError>>,
    world: SharedWorld,
    threads: usize,
}

/// The multi-threaded engine. Select it with
/// [`MachineConfig::parallel`](strand_machine::MachineConfig::parallel)
/// after calling [`install`].
pub struct ParallelBackend;

impl ExecBackend for ParallelBackend {
    fn name(&self) -> &'static str {
        "parallel"
    }

    fn run_program(
        &self,
        program: &Program,
        goal_src: &str,
        config: MachineConfig,
        lib: &ForeignLib,
    ) -> StrandResult<GoalResult> {
        run_parallel(program, goal_src, config, lib)
    }
}

/// Register this engine for [`Backend::Parallel`] configs. Idempotent; call
/// once anywhere before running a goal with a parallel config.
pub fn install() {
    strand_machine::register_parallel_backend(Box::new(ParallelBackend));
}

/// Worker threads a config resolves to: explicit request, or the host's
/// available parallelism, both capped by the node count (a worker without a
/// node would never receive work).
pub fn resolve_threads(config: &MachineConfig) -> usize {
    let nodes = config.nodes.max(1) as usize;
    let requested = match config.backend {
        Backend::Parallel { threads } => threads as usize,
        Backend::Deterministic => 1,
    };
    let threads = if requested == 0 {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    } else {
        requested
    };
    threads.clamp(1, nodes)
}

fn run_parallel(
    program: &Program,
    goal_src: &str,
    config: MachineConfig,
    lib: &ForeignLib,
) -> StrandResult<GoalResult> {
    if !config.faults.is_empty() {
        return Err(StrandError::Other(
            "the parallel backend does not support fault injection; \
             run fault plans on the deterministic simulator"
                .to_string(),
        ));
    }
    let threads = resolve_threads(&config);
    let goal_ast = parse_term(goal_src).map_err(|e| StrandError::Other(e.to_string()))?;
    let compiled =
        Arc::new(compile_program(program).map_err(|e| StrandError::Other(e.to_string()))?);
    let world = SharedWorld::new(threads);
    let mut machines: Vec<Machine> = (0..threads)
        .map(|idx| {
            let mut m =
                Machine::new_worker(Arc::clone(&compiled), config.clone(), &world, idx, threads);
            m.install_lib(lib);
            m
        })
        .collect();
    let mut vars = BTreeMap::new();
    let goal = ast_to_term(&goal_ast, &mut machines[0], &mut vars);
    machines[0].start(goal);
    // Node 0 belongs to worker 0, so the seed goal lands in its own heap;
    // anything the goal term routed elsewhere is delivered directly while
    // the machines are still on this thread.
    for r in machines[0].take_outbox() {
        let w = r.dest_worker(threads);
        machines[w].absorb(vec![r]);
    }

    let mut senders = Vec::with_capacity(threads);
    let mut receivers: Vec<Option<Receiver<Msg>>> = Vec::with_capacity(threads);
    for _ in 0..threads {
        let (tx, rx) = bounded::<Msg>(CHANNEL_CAP);
        senders.push(tx);
        receivers.push(Some(rx));
    }
    let shared = Arc::new(Shared {
        tokens: Tokens::new(threads as u64),
        senders,
        stopping: AtomicBool::new(false),
        truncated: AtomicBool::new(false),
        fatal: Mutex::new(None),
        world,
        threads,
    });
    // Each worker takes its machine out of a slot and puts it back on exit
    // so the shard reports can be merged after the join.
    let slots: Arc<Vec<Mutex<Option<Machine>>>> =
        Arc::new(machines.into_iter().map(|m| Mutex::new(Some(m))).collect());

    let t0 = Instant::now();
    let workers = WorkerSet::spawn(threads, "strand-node", |idx| {
        let shared = Arc::clone(&shared);
        let slots = Arc::clone(&slots);
        let rx = receivers[idx].take().expect("one receiver per worker");
        Box::new(move || {
            let mut m = slots[idx].lock().take().expect("one machine per worker");
            // A panic anywhere in the shard (engine bug, foreign closure)
            // must not leave peers parked forever: surface it and stop.
            let outcome = catch_unwind(AssertUnwindSafe(|| worker_loop(&shared, idx, &rx, &mut m)));
            if outcome.is_err() {
                fatal(
                    &shared,
                    StrandError::Other("worker panicked during reduction".to_string()),
                );
            }
            *slots[idx].lock() = Some(m);
        })
    });
    workers.join();
    let wall_ns = t0.elapsed().as_nanos() as u64;

    if let Some(e) = shared.fatal.lock().take() {
        return Err(e);
    }
    let truncated = shared.truncated.load(Ordering::Acquire);
    let mut machines: Vec<Machine> = slots
        .iter()
        .map(|s| s.lock().take().expect("worker returned its machine"))
        .collect();
    let parts: Vec<_> = machines.iter_mut().map(|m| m.finalize_shard()).collect();
    let worker_jobs: Vec<u64> = parts.iter().map(|p| p.metrics.total_reductions).collect();
    let mut report = merge_shard_reports(parts, truncated);
    report.metrics.wall_ns = wall_ns;
    report.metrics.threads_used = threads as u32;
    report.metrics.worker_jobs = worker_jobs;
    let bindings = vars
        .into_iter()
        .map(|(name, term)| (name, machines[0].store().resolve(&term)))
        .collect();
    Ok(GoalResult { report, bindings })
}

/// One worker's scheduling loop over its own shard. Alternates bounded
/// reduction bursts with channel service; see the module docs for the
/// batching and quiescence rules.
fn worker_loop(shared: &Shared, me: usize, rx: &Receiver<Msg>, m: &mut Machine) {
    let mut buffers: Vec<Vec<Routed>> = (0..shared.threads).map(|_| Vec::new()).collect();
    loop {
        if shared.stopping.load(Ordering::Acquire) {
            // Fatal error, budget exhaustion or quiescence: settle the
            // shared gate for everything still queued locally and exit.
            m.discard_local();
            for buf in &mut buffers {
                m.discard_routed(std::mem::take(buf));
            }
            return;
        }
        // 1. Reduce a bounded burst of the shard's own work.
        let state = match m.drain_local(DRAIN_STEPS) {
            Ok(s) => s,
            Err(e) => {
                fatal(shared, e);
                continue; // stopping is set; the next iteration discards
            }
        };
        // 2. Route the burst's cross-worker events; ship full batches.
        for r in m.take_outbox() {
            let w = r.dest_worker(shared.threads);
            debug_assert_ne!(w, me, "own-shard events never reach the outbox");
            buffers[w].push(r);
            if buffers[w].len() >= BATCH_MAX {
                send_batch(shared, w, std::mem::take(&mut buffers[w]));
            }
        }
        // 3. Absorb whatever peers sent meanwhile (non-blocking).
        let mut received = false;
        loop {
            match rx.try_recv() {
                Ok(Msg::Batch(batch)) => {
                    // Busy: the batch's token dissolves into our own.
                    shared.tokens.absorb();
                    m.absorb(batch);
                    received = true;
                }
                Ok(Msg::Stop) => received = true, // loop top sees `stopping`
                Err(TryRecvError::Empty) | Err(TryRecvError::Disconnected) => break,
            }
        }
        match state {
            DrainState::More => {}
            DrainState::Budget => {
                // Budget exhausted without fail-fast: truncate the run.
                if !shared.truncated.swap(true, Ordering::AcqRel) {
                    m.note_truncated();
                }
                stop(shared);
            }
            DrainState::TimersOnly => {
                if received {
                    continue;
                }
                // Deferred deadlines only fire once no regular work is
                // pending anywhere — including in our own unsent buffers,
                // so flush before consulting the shared gate.
                flush_all(shared, &mut buffers);
                if shared.world.regular_pending() == 0 {
                    m.release_timers();
                } else {
                    // Regular work is pending on a peer; don't burn the
                    // core while it drains. Staying busy keeps our token.
                    std::thread::sleep(Duration::from_micros(50));
                }
            }
            DrainState::Idle => {
                if received {
                    continue;
                }
                flush_all(shared, &mut buffers);
                // Last non-blocking look before surrendering the token.
                match rx.try_recv() {
                    Ok(Msg::Batch(batch)) => {
                        shared.tokens.absorb();
                        m.absorb(batch);
                        continue;
                    }
                    Ok(Msg::Stop) => continue,
                    Err(_) => {}
                }
                if shared.tokens.release() {
                    // Ours was the last token: no busy worker, no batch in
                    // flight anywhere (see quiesce.rs). Tell everyone.
                    stop(shared);
                    return;
                }
                // Park. A batch arriving now wakes us and its token
                // becomes our busy token — no counter update.
                match rx.recv() {
                    Ok(Msg::Batch(batch)) => m.absorb(batch),
                    Ok(Msg::Stop) | Err(_) => return,
                }
            }
        }
    }
}

/// Mint the batch's quiescence token and ship it. The increment MUST
/// precede the send: see `quiesce.rs` for the model-checked argument.
fn send_batch(shared: &Shared, w: usize, batch: Vec<Routed>) {
    shared.tokens.add();
    if shared.senders[w].send(Msg::Batch(batch)).is_err() {
        // Receivers only disappear once the run is over; keep the counter
        // honest regardless.
        shared.tokens.retract();
    }
}

fn flush_all(shared: &Shared, buffers: &mut [Vec<Routed>]) {
    for (w, buf) in buffers.iter_mut().enumerate() {
        if !buf.is_empty() {
            send_batch(shared, w, std::mem::take(buf));
        }
    }
}

/// Ask every worker — parked or busy — to wind down.
fn stop(shared: &Shared) {
    shared.stopping.store(true, Ordering::Release);
    for s in &shared.senders {
        // Sends may fail once peers have already exited; that's fine.
        let _ = s.send(Msg::Stop);
    }
}

fn fatal(shared: &Shared, e: StrandError) {
    let mut slot = shared.fatal.lock();
    if slot.is_none() {
        *slot = Some(e);
    }
    drop(slot);
    stop(shared);
}

#[cfg(test)]
mod tests {
    use super::*;
    use strand_machine::{run_goal, RunStatus};

    fn par(threads: u32) -> MachineConfig {
        install();
        MachineConfig::with_nodes(4).parallel(threads)
    }

    #[test]
    fn thread_resolution_caps_at_nodes() {
        let c = MachineConfig::with_nodes(4).parallel(16);
        assert_eq!(resolve_threads(&c), 4);
        let c = MachineConfig::with_nodes(8).parallel(3);
        assert_eq!(resolve_threads(&c), 3);
        let c = MachineConfig::with_nodes(8).parallel(0);
        assert!(resolve_threads(&c) >= 1);
    }

    #[test]
    fn simple_goal_completes() {
        let r = run_goal("double(X, Y) :- Y := X * 2.", "double(21, V)", par(2)).unwrap();
        assert!(matches!(r.report.status, RunStatus::Completed));
        assert_eq!(r.bindings["V"].to_string(), "42");
        assert_eq!(r.report.metrics.threads_used, 2);
        assert!(r.report.metrics.wall_ns > 0);
    }

    #[test]
    fn fault_plans_are_rejected() {
        let cfg = par(2).faults(strand_machine::FaultPlan::default().crash(1, 100));
        let err = run_goal("go.", "go", cfg).unwrap_err();
        assert!(err.to_string().contains("fault"), "{err}");
    }

    #[test]
    fn runtime_errors_surface_with_fail_fast() {
        let err = run_goal("boom(X) :- X := 1, X := 2.", "boom(X)", par(2)).unwrap_err();
        assert!(matches!(err, StrandError::DoubleAssign { .. }), "{err}");
    }

    #[test]
    fn budget_exhaustion_is_fatal_with_fail_fast() {
        let mut cfg = par(2);
        cfg.max_reductions = 500;
        let err = run_goal("spin :- spin. spin :- spin.", "spin", cfg).unwrap_err();
        assert!(matches!(err, StrandError::BudgetExhausted { .. }), "{err}");
    }

    #[test]
    fn budget_exhaustion_truncates_without_fail_fast() {
        let mut cfg = par(2);
        cfg.max_reductions = 500;
        cfg.fail_fast = false;
        let r = run_goal("spin :- spin.", "spin", cfg).unwrap();
        assert!(
            matches!(r.report.status, RunStatus::Truncated { .. }),
            "{:?}",
            r.report.status
        );
        assert!(!r.report.errors.is_empty());
    }

    #[test]
    fn cross_worker_spawns_complete() {
        // Fan work across all four nodes (two per worker at 2 threads) and
        // join the results through shared variables.
        let src = r#"
            fan(A, B, C, D) :-
                leaf(10, A)@1, leaf(20, B)@2, leaf(30, C)@3, leaf(40, D)@0.
            leaf(X, Y) :- Y := X + 1.
        "#;
        let r = run_goal(src, "fan(A, B, C, D)", par(2)).unwrap();
        assert!(matches!(r.report.status, RunStatus::Completed));
        assert_eq!(r.bindings["A"].to_string(), "11");
        assert_eq!(r.bindings["B"].to_string(), "21");
        assert_eq!(r.bindings["C"].to_string(), "31");
        assert_eq!(r.bindings["D"].to_string(), "41");
    }

    #[test]
    fn one_thread_matches_simulator_exactly() {
        let src = r#"
            tree(0, Acc, Out) :- Out := Acc.
            tree(N, Acc, Out) :- N > 0 |
                M := N - 1, A := Acc + N, tree(M, A, Out).
        "#;
        let sim = run_goal(src, "tree(40, 0, S)", MachineConfig::with_nodes(4)).unwrap();
        let par1 = run_goal(src, "tree(40, 0, S)", par(1)).unwrap();
        assert_eq!(sim.bindings["S"], par1.bindings["S"]);
        assert_eq!(sim.report.output, par1.report.output);
        assert_eq!(
            sim.report.metrics.total_reductions,
            par1.report.metrics.total_reductions
        );
    }
}
