//! # strand-parallel
//!
//! A real multi-threaded execution backend for the motif language. The
//! paper's programs describe *genuinely parallel* computations; the
//! deterministic simulator in `strand-machine` schedules them on one OS
//! thread under virtual clocks, while this crate runs the same compiled
//! programs on real worker threads with **sharded state** — there is no
//! global machine lock:
//!
//! * each virtual node is assigned to one worker (node `i` → worker
//!   `i % threads`); the worker *owns* its nodes' run queues, suspension
//!   table and metrics outright and touches them without synchronisation;
//! * logic variables live in a striped
//!   [`strand_core::SharedStore`] — every `VarId` carries the stripe of
//!   the worker that created it, so a worker binding its own variables
//!   takes only its own stripe's lock (cross-stripe binds lock the two
//!   stripes in index order);
//! * cross-worker events — remote spawns, port sends, binding wakeups —
//!   are buffered per destination and shipped as *batches* over crossbeam
//!   channels (a batch flushes at [`BATCH_MAX`] events or when the worker
//!   runs out of local work), amortising channel traffic;
//! * *pure* foreign procedures ([`strand_machine::ForeignLib`]) run inline
//!   on the owning worker — there is no lock to hold, so native
//!   computation on one worker genuinely overlaps everything else;
//! * idle workers park inside a blocking `recv`; termination is detected
//!   by a single token counter over busy workers and in-flight batches
//!   (incremented *before* every send), model-checked in [`quiesce`] —
//!   reaching zero proves global quiescence and the worker that observes
//!   it broadcasts stop.
//!
//! ## Determinism contract
//!
//! The simulator stays the deterministic reference. On **one** worker
//! thread this backend is an exact replica of it for fault-free programs
//! without `merge/2` or `after_unless/4`: worker 0 allocates the same
//! process ids, draws the same `rand_num` sequence, selects runnable work
//! from the same heaps in the same order and allocates variables in the
//! same order, so status, bindings *and* print order coincide. On more
//! threads it promises *confluence*: final bindings equal the simulator's,
//! and `print/1` output and `merge/2` results agree as multisets.
//! Virtual-time metrics (makespan, busy) are still collected but depend on
//! the interleaving. Virtual-time fault plans are rejected; wall-clock
//! fault injection is available instead through
//! [`strand_machine::ChaosPlan`] — shard kills, outbox batch drop/dup and
//! drain-loop throttling, all driven by a per-worker seeded RNG (see the
//! `chaos` items below and DESIGN.md §8). There is no global
//! virtual clock, so `after_unless/4` deadlines are approximated *lazily*:
//! a worker defers timer processes while any regular work is pending
//! anywhere (a shared gate counts it) and fires them only when the system
//! is otherwise idle — a timeout can only be observed once the value it
//! guards has had every chance to arrive, which is exactly the simulator's
//! behaviour for fault-free runs. Under
//! [`TimerSource::WallClock`](strand_machine::TimerSource) the lazy rule is
//! replaced outright: `after_unless` deadlines register into a hashed timer
//! wheel (1 tick = 1 ms, see `timers.rs`) that the idle-park arm consults
//! before parking, so a fully parked fleet wakes when the earliest deadline
//! falls due — the mode a *resident* machine needs, where "the system is
//! idle" is precisely when timeouts must fire. Determinism is deliberately
//! traded away there; keep the default `Virtual` source for reproducible
//! runs. See DESIGN.md §Execution backends. The
//! conformance harness in the workspace root (`tests/conformance.rs`)
//! checks the contract on every inventory motif program at 1, 2, 4 and 8
//! threads.
//!
//! ## Usage
//!
//! ```
//! use strand_machine::{run_goal, MachineConfig};
//! strand_parallel::install();
//! let r = run_goal(
//!     "double(X, Y) :- Y := X * 2.",
//!     "double(21, V)",
//!     MachineConfig::default().parallel(2),
//! )
//! .unwrap();
//! assert_eq!(r.bindings["V"].to_string(), "42");
//! ```

mod quiesce;
mod resident;
mod timers;

pub use resident::ResidentHandle;

use crossbeam::channel::{bounded, Receiver, RecvTimeoutError, Sender, TryRecvError};
use parking_lot::Mutex;
use quiesce::Tokens;
use skeletons::WorkerSet;
use std::collections::BTreeMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};
use strand_core::{SplitMix64, StrandError, StrandResult};
use strand_machine::{
    ast_to_term, merge_shard_reports, Backend, ChaosPlan, DrainState, ExecBackend, ForeignLib,
    GoalResult, Machine, MachineConfig, Routed, SharedWorld,
};
use strand_parse::{compile_program, parse_term, Program};

/// Per-worker channel capacity (in batches). The vendored crossbeam stub
/// has no unbounded channels; a deep bound keeps `send` from blocking in
/// practice (a full channel would only deadlock if two workers blocked
/// sending to each other — at this depth that means ~10⁶ undelivered
/// batches per worker, far beyond any workload in the repo).
const CHANNEL_CAP: usize = 1 << 20;

/// Cross-worker events buffered per destination before a batch ships.
/// Batches also flush whenever the sending worker runs out of local work,
/// so a small value only costs throughput, never liveness.
const BATCH_MAX: usize = 32;

/// Reductions a worker performs per scheduling turn before it services its
/// channel and flushes outbound batches. Bounds the latency between a peer
/// sending us work and us seeing it.
const DRAIN_STEPS: u32 = 64;

enum Msg {
    /// Cross-worker events for the receiving worker's shard. Carries one
    /// quiescence token, minted by the sender before the send.
    Batch(Vec<Routed>),
    Stop,
}

struct Shared {
    /// Busy workers + in-flight batches; zero ⇒ global quiescence.
    tokens: Tokens,
    senders: Vec<Sender<Msg>>,
    /// Set on fatal error, budget exhaustion or quiescence: workers discard
    /// local work and exit.
    stopping: AtomicBool,
    truncated: AtomicBool,
    fatal: Mutex<Option<StrandError>>,
    world: SharedWorld,
    threads: usize,
    /// Wall-clock fault plan; workers derive their own seeded view of it.
    chaos: ChaosPlan,
    /// Resident (service) mode: global quiescence means *idle*, not
    /// terminated — the last worker to surrender its token parks instead of
    /// broadcasting stop, and the machine stays live for the next ingress
    /// batch. See DESIGN.md §9.
    resident: bool,
    /// Wall-clock deadlines under [`TimerSource::WallClock`]: `after_unless`
    /// arms into this wheel instead of the virtual-time queue, and the
    /// idle-park arm consults it before parking so the fleet wakes when the
    /// earliest deadline falls due. Empty for `TimerSource::Virtual` runs.
    ///
    /// [`TimerSource::WallClock`]: strand_machine::TimerSource::WallClock
    wheel: timers::TimerWheel,
    /// Bit `i` set ⇔ worker `i` has chaos-killed its shard and entered the
    /// dead-shard loop. Ingress-side callers consult this to route external
    /// injections at nodes that will actually reduce them.
    dead: AtomicU64,
}

/// One worker's view of the run's [`ChaosPlan`]: its own kill deadline and
/// stall budget, plus a decorrelated RNG stream for batch drop/dup rolls
/// (`plan.seed` + a golden-ratio stride per worker, so every worker draws
/// an independent sequence from one user-facing seed).
struct WorkerChaos {
    rng: SplitMix64,
    kill_at: Option<u64>,
    stall_us: u64,
    drop_prob: f64,
    dup_prob: f64,
}

impl WorkerChaos {
    fn new(plan: &ChaosPlan, me: usize) -> WorkerChaos {
        WorkerChaos {
            rng: SplitMix64::new(
                plan.seed
                    .wrapping_add((me as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)),
            ),
            kill_at: plan.kill_at(me as u32),
            stall_us: plan.stall_us(me as u32),
            drop_prob: plan.drop_prob,
            dup_prob: plan.dup_prob,
        }
    }

    fn injects_batch_faults(&self) -> bool {
        self.drop_prob > 0.0 || self.dup_prob > 0.0
    }
}

/// The multi-threaded engine. Select it with
/// [`MachineConfig::parallel`](strand_machine::MachineConfig::parallel)
/// after calling [`install`].
pub struct ParallelBackend;

impl ExecBackend for ParallelBackend {
    fn name(&self) -> &'static str {
        "parallel"
    }

    fn run_program(
        &self,
        program: &Program,
        goal_src: &str,
        config: MachineConfig,
        lib: &ForeignLib,
    ) -> StrandResult<GoalResult> {
        run_parallel(program, goal_src, config, lib)
    }
}

/// Register this engine for [`Backend::Parallel`] configs. Idempotent; call
/// once anywhere before running a goal with a parallel config.
pub fn install() {
    strand_machine::register_parallel_backend(Box::new(ParallelBackend));
}

/// Worker threads a config resolves to: explicit request, or the host's
/// available parallelism, both capped by the node count (a worker without a
/// node would never receive work).
pub fn resolve_threads(config: &MachineConfig) -> usize {
    let nodes = config.nodes.max(1) as usize;
    let requested = match config.backend {
        Backend::Parallel { threads } => threads as usize,
        Backend::Deterministic => 1,
    };
    let threads = if requested == 0 {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    } else {
        requested
    };
    threads.clamp(1, nodes)
}

fn run_parallel(
    program: &Program,
    goal_src: &str,
    config: MachineConfig,
    lib: &ForeignLib,
) -> StrandResult<GoalResult> {
    if !config.faults.is_empty() {
        return Err(StrandError::UnsupportedFaultPlan {
            backend: "parallel".to_string(),
            plan: "virtual-time (FaultPlan)".to_string(),
            hint: "virtual-time fault plans need the deterministic simulator's \
                   clock; for wall-clock fault injection on this backend use \
                   MachineConfig::chaos (ChaosPlan)"
                .to_string(),
        });
    }
    let threads = resolve_threads(&config);
    let goal_ast = parse_term(goal_src).map_err(|e| StrandError::Other(e.to_string()))?;
    let compiled =
        Arc::new(compile_program(program).map_err(|e| StrandError::Other(e.to_string()))?);
    let world = SharedWorld::new(threads);
    let mut machines: Vec<Machine> = (0..threads)
        .map(|idx| {
            let mut m =
                Machine::new_worker(Arc::clone(&compiled), config.clone(), &world, idx, threads);
            m.install_lib(lib);
            m
        })
        .collect();
    let mut vars = BTreeMap::new();
    let goal = ast_to_term(&goal_ast, &mut machines[0], &mut vars);
    machines[0].start(goal);
    // Node 0 belongs to worker 0, so the seed goal lands in its own heap;
    // anything the goal term routed elsewhere is delivered directly while
    // the machines are still on this thread.
    for r in machines[0].take_outbox() {
        let w = r.dest_worker(threads);
        machines[w].absorb(vec![r]);
    }

    let mut senders = Vec::with_capacity(threads);
    let mut receivers: Vec<Option<Receiver<Msg>>> = Vec::with_capacity(threads);
    for _ in 0..threads {
        let (tx, rx) = bounded::<Msg>(CHANNEL_CAP);
        senders.push(tx);
        receivers.push(Some(rx));
    }
    let shared = Arc::new(Shared {
        tokens: Tokens::new(threads as u64),
        senders,
        stopping: AtomicBool::new(false),
        truncated: AtomicBool::new(false),
        fatal: Mutex::new(None),
        world,
        threads,
        chaos: config.chaos.clone(),
        resident: false,
        wheel: timers::TimerWheel::new(),
        dead: AtomicU64::new(0),
    });
    // Each worker takes its machine out of a slot and puts it back on exit
    // so the shard reports can be merged after the join.
    let slots: Arc<Vec<Mutex<Option<Machine>>>> =
        Arc::new(machines.into_iter().map(|m| Mutex::new(Some(m))).collect());

    let t0 = Instant::now();
    let workers = WorkerSet::spawn(threads, "strand-node", |idx| {
        let shared = Arc::clone(&shared);
        let slots = Arc::clone(&slots);
        let rx = receivers[idx].take().expect("one receiver per worker");
        Box::new(move || {
            let mut m = slots[idx].lock().take().expect("one machine per worker");
            // A panic anywhere in the shard (engine bug, foreign closure)
            // must not leave peers parked forever: surface it and stop.
            let outcome = catch_unwind(AssertUnwindSafe(|| worker_loop(&shared, idx, &rx, &mut m)));
            if outcome.is_err() {
                fatal(
                    &shared,
                    StrandError::Other("worker panicked during reduction".to_string()),
                );
            }
            *slots[idx].lock() = Some(m);
        })
    });
    workers.join();
    let wall_ns = t0.elapsed().as_nanos() as u64;

    if let Some(e) = shared.fatal.lock().take() {
        return Err(e);
    }
    let truncated = shared.truncated.load(Ordering::Acquire);
    let mut machines: Vec<Machine> = slots
        .iter()
        .map(|s| s.lock().take().expect("worker returned its machine"))
        .collect();
    let parts: Vec<_> = machines.iter_mut().map(|m| m.finalize_shard()).collect();
    let worker_jobs: Vec<u64> = parts.iter().map(|p| p.metrics.total_reductions).collect();
    let mut report = merge_shard_reports(parts, truncated);
    report.metrics.wall_ns = wall_ns;
    report.metrics.threads_used = threads as u32;
    report.metrics.worker_jobs = worker_jobs;
    let bindings = vars
        .into_iter()
        .map(|(name, term)| (name, machines[0].store().resolve(&term)))
        .collect();
    Ok(GoalResult { report, bindings })
}

/// One worker's scheduling loop over its own shard. Alternates bounded
/// reduction bursts with channel service; see the module docs for the
/// batching and quiescence rules.
fn worker_loop(shared: &Shared, me: usize, rx: &Receiver<Msg>, m: &mut Machine) {
    let mut buffers: Vec<Vec<Routed>> = (0..shared.threads).map(|_| Vec::new()).collect();
    let mut chaos = WorkerChaos::new(&shared.chaos, me);
    loop {
        if shared.stopping.load(Ordering::Acquire) {
            // Fatal error, budget exhaustion or quiescence: settle the
            // shared gate for everything still queued locally and exit.
            m.discard_local();
            for buf in &mut buffers {
                m.discard_routed(std::mem::take(buf));
            }
            return;
        }
        // Chaos: kill this shard once the global reduction count passes the
        // plan's deadline. Events already emitted are "in the network" —
        // flush them faithfully (a wake buffered here may be the only
        // notification for a binding already durable in the shared store) —
        // then tear the shard down and switch to the dead-shard protocol.
        if chaos
            .kill_at
            .is_some_and(|at| shared.world.reductions() >= at)
        {
            for r in m.take_outbox() {
                buffers[r.dest_worker(shared.threads)].push(r);
            }
            flush_all(shared, &mut chaos, m, &mut buffers);
            m.chaos_kill();
            if me < 64 {
                shared.dead.fetch_or(1 << me, Ordering::Release);
            }
            dead_loop(shared, rx, m);
            return;
        }
        // Chaos: a throttled shard stalls before every scheduling turn,
        // modelling a straggler core. Liveness is untouched — the worker
        // still holds its quiescence token while stalled.
        if chaos.stall_us > 0 {
            std::thread::sleep(Duration::from_micros(chaos.stall_us));
            m.note_throttle(chaos.stall_us.saturating_mul(1_000));
        }
        // 1. Reduce a bounded burst of the shard's own work.
        let state = match m.drain_local(DRAIN_STEPS) {
            Ok(s) => s,
            Err(e) => {
                fatal(shared, e);
                continue; // stopping is set; the next iteration discards
            }
        };
        // 1b. Publish the burst's wall-clock deadlines. Arming is a local
        // harvest — no token, no channel traffic: the entry sits in the
        // shared wheel until a parked worker's deadline wait pops it (the
        // pop mints the busy token; see `park`).
        for wt in m.take_wall_timers() {
            shared.wheel.arm(wt);
        }
        // 2. Route the burst's cross-worker events; ship full batches.
        for r in m.take_outbox() {
            let w = r.dest_worker(shared.threads);
            debug_assert_ne!(w, me, "own-shard events never reach the outbox");
            buffers[w].push(r);
            if buffers[w].len() >= BATCH_MAX {
                let batch = std::mem::take(&mut buffers[w]);
                ship_batch(shared, &mut chaos, m, w, batch);
            }
        }
        // 3. Absorb whatever peers sent meanwhile (non-blocking).
        let mut received = false;
        loop {
            match rx.try_recv() {
                Ok(Msg::Batch(batch)) => {
                    // Busy: the batch's token dissolves into our own.
                    shared.tokens.absorb();
                    m.absorb(batch);
                    received = true;
                }
                Ok(Msg::Stop) => received = true, // loop top sees `stopping`
                Err(TryRecvError::Empty) | Err(TryRecvError::Disconnected) => break,
            }
        }
        match state {
            DrainState::More => {
                // A shard that stays busy (a supervision beat loop, say)
                // never reports `TimersOnly`, so deadlines parked while a
                // wake was in flight would starve forever. Release them the
                // moment the gate reads zero — each is re-checked against
                // the gate when popped, so an early release is harmless.
                if m.has_deferred_timers() && shared.world.regular_pending() == 0 {
                    m.release_timers();
                }
            }
            DrainState::Budget => {
                // Budget exhausted without fail-fast: truncate the run.
                if !shared.truncated.swap(true, Ordering::AcqRel) {
                    m.note_truncated();
                }
                stop(shared);
            }
            DrainState::TimersOnly => {
                if received {
                    continue;
                }
                // Deferred deadlines only fire once no regular work is
                // pending anywhere — including in our own unsent buffers,
                // so flush before consulting the shared gate.
                flush_all(shared, &mut chaos, m, &mut buffers);
                if shared.world.regular_pending() == 0 {
                    m.release_timers();
                } else {
                    // Regular work is pending on a peer; don't burn the
                    // core while it drains. Staying busy keeps our token.
                    std::thread::sleep(Duration::from_micros(50));
                }
            }
            DrainState::Idle => {
                if received {
                    continue;
                }
                flush_all(shared, &mut chaos, m, &mut buffers);
                // Last non-blocking look before surrendering the token.
                match rx.try_recv() {
                    Ok(Msg::Batch(batch)) => {
                        shared.tokens.absorb();
                        m.absorb(batch);
                        continue;
                    }
                    Ok(Msg::Stop) => continue,
                    Err(_) => {}
                }
                if shared.tokens.release() {
                    if !shared.resident && shared.wheel.is_empty() {
                        // Ours was the last token: no busy worker, no batch
                        // in flight anywhere (see quiesce.rs) and no wall
                        // deadline that could still make work. Tell everyone.
                        stop(shared);
                        return;
                    }
                    if shared.resident {
                        // Resident mode: global quiescence is *idle*, not
                        // termination. Count the burst-to-idle transition
                        // (only the last releaser ticks it, so one park per
                        // burst) and fall through to the park below — the
                        // next ingress batch re-busies us with its token.
                        m.note_idle_park();
                    }
                    // Non-resident with a non-empty wheel: quiescent *now*,
                    // but a pending deadline may still fire — park on it.
                }
                // Park. A batch arriving now wakes us and its token becomes
                // our busy token — no counter update. A wall deadline
                // falling due wakes us too; firing it mints a fresh token
                // (see `park`), so quiescence accounting stays exact.
                match park(shared, rx, m) {
                    Parked::Batch(batch) => m.absorb(batch),
                    Parked::Fired => {}
                    Parked::Stop => return,
                }
            }
        }
    }
}

/// How a deadline-aware park ended.
enum Parked {
    /// A peer's batch arrived; its token became ours.
    Batch(Vec<Routed>),
    /// A wall deadline fell due and we fired it; we hold a freshly minted
    /// busy token and (possibly) new local work.
    Fired,
    /// Stop was broadcast, the channel died, or we observed terminal
    /// quiescence ourselves.
    Stop,
}

/// Park until work arrives, a wall-clock deadline falls due, or the run is
/// over. This is the idle-park arm's replacement for a plain `recv`: before
/// blocking it consults the shared timer wheel and bounds the wait by the
/// earliest live deadline, so a fully parked fleet still wakes to fire
/// `after_unless` timeouts.
///
/// Token discipline (model-checked in `quiesce::check_timers`): the worker
/// holds **no** token while parked. When a deadline fires, the busy token is
/// minted **before** the wheel entry is popped — a peer scanning the counter
/// can never observe "zero tokens, yet work is about to materialise".
/// Racing parked workers are safe: `pop_due` removes entries under the slot
/// lock, so every deadline fires exactly once; the losers re-release the
/// token they minted.
fn park(shared: &Shared, rx: &Receiver<Msg>, m: &mut Machine) -> Parked {
    loop {
        let (next, pruned) = shared.wheel.next_due(|c| m.cancel_is_bound(c));
        if pruned > 0 {
            m.metrics_mut().timers_cancelled += pruned;
        }
        let Some(due) = next else {
            // No live deadline. In a finite run whose every token has been
            // surrendered nothing can ever wake us again — an all-cancelled
            // wheel must stop the fleet, not hang it.
            if !shared.resident && shared.tokens.is_zero() {
                stop(shared);
                return Parked::Stop;
            }
            return match rx.recv() {
                Ok(Msg::Batch(batch)) => Parked::Batch(batch),
                Ok(Msg::Stop) | Err(_) => Parked::Stop,
            };
        };
        let now = shared.wheel.now_ms();
        if due > now {
            match rx.recv_timeout(Duration::from_millis(due - now)) {
                Ok(Msg::Batch(batch)) => return Parked::Batch(batch),
                Ok(Msg::Stop) | Err(RecvTimeoutError::Disconnected) => return Parked::Stop,
                Err(RecvTimeoutError::Timeout) => {}
            }
        }
        // The deadline fell due. Mint our busy token BEFORE touching the
        // wheel — the mirror of mint-before-send for batches.
        shared.tokens.add();
        let (fired, pruned) = shared
            .wheel
            .pop_due(shared.wheel.now_ms(), |c| m.cancel_is_bound(c));
        if pruned > 0 {
            m.metrics_mut().timers_cancelled += pruned;
        }
        if fired.is_empty() {
            // A racing parked peer popped every due entry (or the cancels
            // bound meanwhile). Give the token back; if ours was the last,
            // quiescence has genuinely been reached.
            if shared.tokens.release() && !shared.resident && shared.wheel.is_empty() {
                stop(shared);
                return Parked::Stop;
            }
            continue;
        }
        m.metrics_mut().wakes_for_deadline += 1;
        for wt in fired {
            m.fire_wall_timer(wt);
        }
        // Route cross-shard fires directly: each batch mints its own token
        // and bypasses the chaos drop/dup filter, like ingress injections —
        // a fired deadline is scheduler work, not a network message.
        let mut bufs: Vec<Vec<Routed>> = (0..shared.threads).map(|_| Vec::new()).collect();
        for r in m.take_outbox() {
            bufs[r.dest_worker(shared.threads)].push(r);
        }
        for (w, buf) in bufs.into_iter().enumerate() {
            if !buf.is_empty() {
                send_batch(shared, w, buf);
            }
        }
        return Parked::Fired;
    }
}

/// A dead shard must keep the quiescence protocol honest even though it
/// will never reduce again: batches still in flight towards it carry
/// tokens, and discarding their contents without absorbing those tokens
/// (or without settling the timer gate for the jobs inside) would either
/// stall termination forever or fire peers' timers early. The loop mirrors
/// the `Idle` arm of [`worker_loop`]: absorb-and-discard, then try to
/// release our own token, then park.
fn dead_loop(shared: &Shared, rx: &Receiver<Msg>, m: &mut Machine) {
    loop {
        if shared.stopping.load(Ordering::Acquire) {
            return;
        }
        loop {
            match rx.try_recv() {
                Ok(Msg::Batch(batch)) => {
                    shared.tokens.absorb();
                    m.chaos_absorb_dead(batch);
                }
                Ok(Msg::Stop) => return,
                Err(TryRecvError::Empty) | Err(TryRecvError::Disconnected) => break,
            }
        }
        if shared.tokens.release() {
            // Resident machines outlive quiescence even when a shard is
            // dead — the supervisor on the surviving shards is about to
            // make more work. Terminal quiescence also can't be announced
            // while a live worker still parks on a wall deadline; once
            // every worker is dead, pending deadlines can never produce
            // observable work and must not hold the run open.
            let all_dead =
                shared.dead.load(Ordering::Acquire).count_ones() as usize >= shared.threads.min(64);
            if !shared.resident && (shared.wheel.is_empty() || all_dead) {
                stop(shared);
                return;
            }
        }
        match rx.recv() {
            // The batch's token became ours on arrival; the loop top
            // releases it again after discarding the contents.
            Ok(Msg::Batch(batch)) => m.chaos_absorb_dead(batch),
            Ok(Msg::Stop) | Err(_) => return,
        }
    }
}

/// Ship one batch through the worker's chaos filter: with probability
/// `drop_prob` its jobs are discarded at the outbox (wakes always ship —
/// a lost wake is unrecoverable for the motif, mirroring the virtual-time
/// contract), with probability `dup_prob` its jobs ship twice. One roll
/// per batch; the copies get fresh pids on absorption (see
/// `Machine::absorb`), so a duplicate is a genuinely distinct delivery.
fn ship_batch(
    shared: &Shared,
    chaos: &mut WorkerChaos,
    m: &mut Machine,
    w: usize,
    batch: Vec<Routed>,
) {
    let mut batch = batch;
    if chaos.injects_batch_faults() {
        let roll = chaos.rng.next_f64();
        if roll < chaos.drop_prob {
            m.chaos_drop_jobs(&mut batch);
            if batch.is_empty() {
                return; // nothing left to ship; no token minted
            }
        } else if roll < chaos.drop_prob + chaos.dup_prob {
            let dup = m.chaos_duplicate_jobs(&batch);
            if !dup.is_empty() {
                send_batch(shared, w, dup);
            }
        }
    }
    send_batch(shared, w, batch);
}

/// Mint the batch's quiescence token and ship it. The increment MUST
/// precede the send: see `quiesce.rs` for the model-checked argument.
fn send_batch(shared: &Shared, w: usize, batch: Vec<Routed>) {
    shared.tokens.add();
    if shared.senders[w].send(Msg::Batch(batch)).is_err() {
        // Receivers only disappear once the run is over; keep the counter
        // honest regardless.
        shared.tokens.retract();
    }
}

fn flush_all(
    shared: &Shared,
    chaos: &mut WorkerChaos,
    m: &mut Machine,
    buffers: &mut [Vec<Routed>],
) {
    for (w, buf) in buffers.iter_mut().enumerate() {
        if !buf.is_empty() {
            let batch = std::mem::take(buf);
            ship_batch(shared, chaos, m, w, batch);
        }
    }
}

/// Ask every worker — parked or busy — to wind down.
fn stop(shared: &Shared) {
    shared.stopping.store(true, Ordering::Release);
    for s in &shared.senders {
        // Sends may fail once peers have already exited; that's fine.
        let _ = s.send(Msg::Stop);
    }
}

fn fatal(shared: &Shared, e: StrandError) {
    let mut slot = shared.fatal.lock();
    if slot.is_none() {
        *slot = Some(e);
    }
    drop(slot);
    stop(shared);
}

#[cfg(test)]
mod tests {
    use super::*;
    use strand_machine::{run_goal, RunStatus};

    fn par(threads: u32) -> MachineConfig {
        install();
        MachineConfig::with_nodes(4).parallel(threads)
    }

    #[test]
    fn thread_resolution_caps_at_nodes() {
        let c = MachineConfig::with_nodes(4).parallel(16);
        assert_eq!(resolve_threads(&c), 4);
        let c = MachineConfig::with_nodes(8).parallel(3);
        assert_eq!(resolve_threads(&c), 3);
        let c = MachineConfig::with_nodes(8).parallel(0);
        assert!(resolve_threads(&c) >= 1);
    }

    #[test]
    fn simple_goal_completes() {
        let r = run_goal("double(X, Y) :- Y := X * 2.", "double(21, V)", par(2)).unwrap();
        assert!(matches!(r.report.status, RunStatus::Completed));
        assert_eq!(r.bindings["V"].to_string(), "42");
        assert_eq!(r.report.metrics.threads_used, 2);
        assert!(r.report.metrics.wall_ns > 0);
    }

    #[test]
    fn fault_plans_are_rejected() {
        let cfg = par(2).faults(strand_machine::FaultPlan::default().crash(1, 100));
        let err = run_goal("go.", "go", cfg).unwrap_err();
        assert!(
            matches!(err, StrandError::UnsupportedFaultPlan { .. }),
            "{err}"
        );
        let msg = err.to_string();
        assert!(msg.contains("fault"), "{msg}");
        // The hint must steer the user to the wall-clock analogue.
        assert!(msg.contains("ChaosPlan"), "{msg}");
    }

    #[test]
    fn routed_suspension_wakes_across_workers() {
        // A job routed to another worker that suspends THERE must be woken
        // by a later binding from the sending worker. Suspensions are keyed
        // by pid, and pids carry their minting worker in the top bits — so
        // `Machine::absorb` re-mints them on arrival; without that the wake
        // would route back to the *sender* and be dropped, stranding the
        // process. The fan(40) padding overflows BATCH_MAX so p(X) ships
        // early, while slow/2 keeps X unbound long enough for p(X) to
        // suspend on worker 1 first.
        let src = r#"
            go :- fan(40), p(X)@2, bind(X).
            fan(0).
            fan(N) :- N > 0 | noop@2, M := N - 1, fan(M).
            noop.
            p(a) :- print(got).
            bind(X) :- slow(5000, X).
            slow(0, X) :- X := a.
            slow(N, X) :- N > 0 | M := N - 1, slow(M, X).
        "#;
        let mut cfg = par(2);
        cfg.max_reductions = 1_000_000;
        let r = run_goal(src, "go", cfg).unwrap();
        assert!(
            matches!(r.report.status, RunStatus::Completed),
            "{:?}",
            r.report.status
        );
        assert_eq!(r.report.output, vec!["got".to_string()]);
    }

    #[test]
    fn chaos_kill_partitions_the_run() {
        // Shard 1 dies before it ever reduces; the spawn routed to node 2
        // is discarded by the dead-shard loop, V stays unbound, and the
        // waiter on shard 0 suspends forever. The merged status must say
        // *why*: crashed nodes alongside the live suspension.
        let src = r#"
            go(V) :- set(V)@2, wait(V).
            set(V) :- V := ok.
            wait(V) :- V == ok | true.
        "#;
        let mut cfg = par(2).chaos(strand_machine::ChaosPlan::default().kill(1, 0));
        cfg.fail_fast = false;
        let r = run_goal(src, "go(V)", cfg).unwrap();
        match r.report.status {
            RunStatus::Partitioned {
                suspended,
                crashed_nodes,
                ..
            } => {
                assert!(suspended >= 1);
                // Worker 1 owns nodes 2 and 4 (1-based) at 2 threads.
                assert_eq!(crashed_nodes, vec![2, 4]);
            }
            ref s => panic!("expected Partitioned, got {s:?}"),
        }
        assert_eq!(r.report.metrics.shards_killed, 1);
        assert!(r.report.metrics.msgs_dropped >= 1);
    }

    #[test]
    fn chaos_drop_discards_jobs_but_terminates() {
        // Every batch is dropped: the leaves routed to worker 1 never run,
        // but nobody waits on their results, so the run still quiesces —
        // proof that dropped jobs settle both the timer gate and the
        // quiescence tokens.
        let src = r#"
            fan(A, B) :- leaf(10, A)@2, leaf(20, B)@4.
            leaf(X, Y) :- Y := X + 1.
        "#;
        let cfg = par(2).chaos(strand_machine::ChaosPlan::default().drop_prob(1.0).seed(7));
        let r = run_goal(src, "fan(A, B)", cfg).unwrap();
        assert!(
            matches!(r.report.status, RunStatus::Completed),
            "{:?}",
            r.report.status
        );
        assert_eq!(r.report.metrics.msgs_dropped, 2);
        assert!(r.report.metrics.batches_dropped >= 1);
        // The dropped leaves never bound their outputs.
        assert_ne!(r.bindings["A"].to_string(), "11");
    }

    #[test]
    fn chaos_duplicate_delivers_twice_with_distinct_pids() {
        // Every batch ships twice. ack/2-style idempotent bind: both copies
        // run `set(V)`, the first binds, the second's bind must not crash
        // the run — ack/1 tolerates the rebind.
        let src = r#"
            go(V) :- set(V)@2.
            set(V) :- ack(V).
            ack(V) :- unknown(V) | V := ok.
            ack(ok).
        "#;
        let cfg = par(2).chaos(strand_machine::ChaosPlan::default().dup_prob(1.0).seed(11));
        let r = run_goal(src, "go(V)", cfg).unwrap();
        assert!(
            matches!(r.report.status, RunStatus::Completed),
            "{:?}",
            r.report.status
        );
        assert_eq!(r.bindings["V"].to_string(), "ok");
        assert!(r.report.metrics.msgs_duplicated >= 1);
        assert!(r.report.metrics.batches_duplicated >= 1);
    }

    #[test]
    fn chaos_throttle_is_recorded_and_harmless() {
        let src = r#"
            fan(A, B, C, D) :-
                leaf(10, A)@1, leaf(20, B)@2, leaf(30, C)@3, leaf(40, D)@0.
            leaf(X, Y) :- Y := X + 1.
        "#;
        let cfg = par(2).chaos(strand_machine::ChaosPlan::default().throttle(1, 100));
        let r = run_goal(src, "fan(A, B, C, D)", cfg).unwrap();
        assert!(matches!(r.report.status, RunStatus::Completed));
        assert_eq!(r.bindings["B"].to_string(), "21");
        assert!(r.report.metrics.throttle_ns > 0);
    }

    #[test]
    fn runtime_errors_surface_with_fail_fast() {
        let err = run_goal("boom(X) :- X := 1, X := 2.", "boom(X)", par(2)).unwrap_err();
        assert!(matches!(err, StrandError::DoubleAssign { .. }), "{err}");
    }

    #[test]
    fn budget_exhaustion_is_fatal_with_fail_fast() {
        let mut cfg = par(2);
        cfg.max_reductions = 500;
        let err = run_goal("spin :- spin. spin :- spin.", "spin", cfg).unwrap_err();
        assert!(matches!(err, StrandError::BudgetExhausted { .. }), "{err}");
    }

    #[test]
    fn budget_exhaustion_truncates_without_fail_fast() {
        let mut cfg = par(2);
        cfg.max_reductions = 500;
        cfg.fail_fast = false;
        let r = run_goal("spin :- spin.", "spin", cfg).unwrap();
        assert!(
            matches!(r.report.status, RunStatus::Truncated { .. }),
            "{:?}",
            r.report.status
        );
        assert!(!r.report.errors.is_empty());
    }

    #[test]
    fn cross_worker_spawns_complete() {
        // Fan work across all four nodes (two per worker at 2 threads) and
        // join the results through shared variables.
        let src = r#"
            fan(A, B, C, D) :-
                leaf(10, A)@1, leaf(20, B)@2, leaf(30, C)@3, leaf(40, D)@0.
            leaf(X, Y) :- Y := X + 1.
        "#;
        let r = run_goal(src, "fan(A, B, C, D)", par(2)).unwrap();
        assert!(matches!(r.report.status, RunStatus::Completed));
        assert_eq!(r.bindings["A"].to_string(), "11");
        assert_eq!(r.bindings["B"].to_string(), "21");
        assert_eq!(r.bindings["C"].to_string(), "31");
        assert_eq!(r.bindings["D"].to_string(), "41");
    }

    #[test]
    fn wall_clock_timer_fires_while_fleet_is_parked() {
        // Under TimerSource::WallClock the deadline lands in the shared
        // wheel; every worker goes idle, surrenders its token and parks —
        // and the fleet must wake ~30ms later to fire the timeout. Under
        // the default Virtual source this same program fires the timer
        // lazily at quiescence; here quiescence alone must NOT end the run.
        let src = "go(V) :- after_unless(C, 30, V).";
        let r = run_goal(src, "go(V)", par(2).wall_clock_timers()).unwrap();
        assert!(
            matches!(r.report.status, RunStatus::Completed),
            "{:?}",
            r.report.status
        );
        assert_eq!(r.bindings["V"].to_string(), "timeout");
        assert_eq!(r.report.metrics.timers_armed, 1, "{:?}", r.report.metrics);
        assert_eq!(r.report.metrics.timers_fired, 1, "{:?}", r.report.metrics);
        assert!(r.report.metrics.wakes_for_deadline >= 1);
    }

    #[test]
    fn cancelled_wall_timer_neither_fires_nor_hangs_the_run() {
        // The cancel binds immediately; the hour-long deadline must be
        // pruned at the park boundary and the run must stop at quiescence
        // instead of sleeping on a dead wheel entry.
        let src = "go(V) :- after_unless(C, 3600000, V), C := done.";
        let t0 = Instant::now();
        let r = run_goal(src, "go(V)", par(2).wall_clock_timers()).unwrap();
        assert!(
            t0.elapsed() < Duration::from_secs(60),
            "run hung on a cancelled deadline"
        );
        assert!(matches!(r.report.status, RunStatus::Completed));
        assert_ne!(r.bindings["V"].to_string(), "timeout");
        assert_eq!(r.report.metrics.timers_armed, 1);
        assert_eq!(r.report.metrics.timers_fired, 0);
        assert_eq!(
            r.report.metrics.timers_cancelled, 1,
            "{:?}",
            r.report.metrics
        );
    }

    #[test]
    fn one_thread_matches_simulator_exactly() {
        let src = r#"
            tree(0, Acc, Out) :- Out := Acc.
            tree(N, Acc, Out) :- N > 0 |
                M := N - 1, A := Acc + N, tree(M, A, Out).
        "#;
        let sim = run_goal(src, "tree(40, 0, S)", MachineConfig::with_nodes(4)).unwrap();
        let par1 = run_goal(src, "tree(40, 0, S)", par(1)).unwrap();
        assert_eq!(sim.bindings["S"], par1.bindings["S"]);
        assert_eq!(sim.report.output, par1.report.output);
        assert_eq!(
            sim.report.metrics.total_reductions,
            par1.report.metrics.total_reductions
        );
    }
}
