//! # strand-parallel
//!
//! A real multi-threaded execution backend for the motif language. The
//! paper's programs describe *genuinely parallel* computations; the
//! deterministic simulator in `strand-machine` schedules them on one OS
//! thread under virtual clocks, while this crate runs the same compiled
//! programs on real worker threads:
//!
//! * each virtual node is assigned to one worker (node `i` → worker
//!   `i % threads`, one worker per node up to the machine's parallelism);
//! * runnable processes travel between workers over crossbeam channels —
//!   an inter-node send in the program is a channel send here;
//! * idle workers park inside a blocking `recv` and are woken by the
//!   channel when work arrives;
//! * termination is detected by a shared atomic in-flight counter: it is
//!   incremented *before* every send and decremented only after a job has
//!   been fully processed (including routing its spawns), so reaching zero
//!   proves global quiescence — the worker that observes it broadcasts a
//!   stop message;
//! * the machine state (store, suspension table, ports, metrics) lives
//!   behind one `parking_lot::Mutex`; *pure* foreign procedures
//!   ([`strand_machine::ForeignLib`]) execute outside that lock, so native
//!   computation genuinely overlaps coordination and other native calls.
//!
//! ## Determinism contract
//!
//! The simulator stays the deterministic reference. This backend promises
//! only *confluence*: for fault-free programs whose observable values do
//! not depend on `rand_num` draw order, the final bindings are the same as
//! the simulator's, and `print/1` output and `merge/2` results agree as
//! multisets. Virtual-time metrics (makespan, busy) are still collected but
//! depend on the interleaving. Fault injection is rejected. There is no
//! global virtual clock, so `after_unless/4` deadlines are approximated
//! *lazily*: a timer process is requeued while any regular work is
//! runnable and fires only when the system is otherwise idle — a timeout
//! can only be observed once the value it guards has had every chance to
//! arrive, which is exactly the simulator's behaviour for fault-free runs.
//! See DESIGN.md §Execution backends. The conformance harness in the
//! workspace root (`tests/conformance.rs`) checks the contract on every
//! inventory motif program.
//!
//! ## Usage
//!
//! ```
//! use strand_machine::{run_goal, MachineConfig};
//! strand_parallel::install();
//! let r = run_goal(
//!     "double(X, Y) :- Y := X * 2.",
//!     "double(21, V)",
//!     MachineConfig::default().parallel(2),
//! )
//! .unwrap();
//! assert_eq!(r.bindings["V"].to_string(), "42");
//! ```

use crossbeam::channel::{bounded, Receiver, Sender};
use parking_lot::Mutex;
use skeletons::WorkerSet;
use std::collections::BTreeMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;
use strand_core::{StrandError, StrandResult};
use strand_machine::{
    ast_to_term, Backend, ExecBackend, ForeignLib, GoalResult, Job, Machine, MachineConfig,
    StepOutcome,
};
use strand_parse::{compile_program, parse_term, Program};

/// Per-worker channel capacity. The vendored crossbeam stub has no
/// unbounded channels; a deep bound keeps `send` from blocking in practice
/// (a full channel would only deadlock if two workers blocked sending to
/// each other — at this depth that means ~10⁶ undelivered processes per
/// worker, far beyond any workload in the repo).
const CHANNEL_CAP: usize = 1 << 20;

enum Msg {
    Job(Job),
    Stop,
}

struct Shared {
    machine: Mutex<Machine>,
    /// Jobs sent but not yet fully processed (incremented before the send,
    /// decremented after the receiving worker finishes routing the job's
    /// spawns). Zero ⇒ global quiescence.
    in_flight: AtomicU64,
    senders: Vec<Sender<Msg>>,
    /// Set on fatal error or budget exhaustion: remaining jobs drain
    /// unprocessed so `in_flight` still reaches zero.
    stopping: AtomicBool,
    /// In-flight jobs that are `'$timer'/2` deadline processes. While
    /// `in_flight > timer_jobs` there is regular work runnable somewhere,
    /// and workers requeue timers instead of firing them (lazy deadlines;
    /// see the module docs).
    timer_jobs: AtomicU64,
    truncated: AtomicBool,
    fatal: Mutex<Option<StrandError>>,
    worker_jobs: Vec<AtomicU64>,
    threads: usize,
}

/// The multi-threaded engine. Select it with
/// [`MachineConfig::parallel`](strand_machine::MachineConfig::parallel)
/// after calling [`install`].
pub struct ParallelBackend;

impl ExecBackend for ParallelBackend {
    fn name(&self) -> &'static str {
        "parallel"
    }

    fn run_program(
        &self,
        program: &Program,
        goal_src: &str,
        config: MachineConfig,
        lib: &ForeignLib,
    ) -> StrandResult<GoalResult> {
        run_parallel(program, goal_src, config, lib)
    }
}

/// Register this engine for [`Backend::Parallel`] configs. Idempotent; call
/// once anywhere before running a goal with a parallel config.
pub fn install() {
    strand_machine::register_parallel_backend(Box::new(ParallelBackend));
}

/// Worker threads a config resolves to: explicit request, or the host's
/// available parallelism, both capped by the node count (a worker without a
/// node would never receive work).
pub fn resolve_threads(config: &MachineConfig) -> usize {
    let nodes = config.nodes.max(1) as usize;
    let requested = match config.backend {
        Backend::Parallel { threads } => threads as usize,
        Backend::Deterministic => 1,
    };
    let threads = if requested == 0 {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    } else {
        requested
    };
    threads.clamp(1, nodes)
}

fn run_parallel(
    program: &Program,
    goal_src: &str,
    config: MachineConfig,
    lib: &ForeignLib,
) -> StrandResult<GoalResult> {
    if !config.faults.is_empty() {
        return Err(StrandError::Other(
            "the parallel backend does not support fault injection; \
             run fault plans on the deterministic simulator"
                .to_string(),
        ));
    }
    let threads = resolve_threads(&config);
    let goal_ast = parse_term(goal_src).map_err(|e| StrandError::Other(e.to_string()))?;
    let compiled = compile_program(program).map_err(|e| StrandError::Other(e.to_string()))?;
    let mut machine = Machine::new(compiled, config);
    machine.install_lib(lib);
    machine.set_defer_pure(true);
    machine.capture_spawns(true);
    let mut vars = BTreeMap::new();
    let goal = ast_to_term(&goal_ast, &mut machine, &mut vars);
    machine.start(goal);
    let initial = machine.take_outbox();

    let mut senders = Vec::with_capacity(threads);
    let mut receivers: Vec<Option<Receiver<Msg>>> = Vec::with_capacity(threads);
    for _ in 0..threads {
        let (tx, rx) = bounded::<Msg>(CHANNEL_CAP);
        senders.push(tx);
        receivers.push(Some(rx));
    }
    let shared = Arc::new(Shared {
        machine: Mutex::new(machine),
        in_flight: AtomicU64::new(0),
        senders,
        stopping: AtomicBool::new(false),
        timer_jobs: AtomicU64::new(0),
        truncated: AtomicBool::new(false),
        fatal: Mutex::new(None),
        worker_jobs: (0..threads).map(|_| AtomicU64::new(0)).collect(),
        threads,
    });

    let t0 = Instant::now();
    route(&shared, initial);
    if shared.in_flight.load(Ordering::Acquire) == 0 {
        // Defensive: an empty seed would leave workers parked forever.
        for s in &shared.senders {
            let _ = s.send(Msg::Stop);
        }
    }
    let workers = WorkerSet::spawn(threads, "strand-node", |idx| {
        let shared = Arc::clone(&shared);
        let rx = receivers[idx].take().expect("one receiver per worker");
        Box::new(move || worker_loop(&shared, idx, rx))
    });
    workers.join();
    let wall_ns = t0.elapsed().as_nanos() as u64;

    if let Some(e) = shared.fatal.lock().take() {
        return Err(e);
    }
    let truncated = shared.truncated.load(Ordering::Acquire);
    let mut m = shared.machine.lock();
    m.capture_spawns(false);
    let mut report = m.build_report(truncated);
    report.metrics.wall_ns = wall_ns;
    report.metrics.threads_used = threads as u32;
    report.metrics.worker_jobs = shared
        .worker_jobs
        .iter()
        .map(|a| a.load(Ordering::Relaxed))
        .collect();
    let bindings = vars
        .into_iter()
        .map(|(name, term)| (name, m.store().resolve(&term)))
        .collect();
    Ok(GoalResult { report, bindings })
}

fn worker_loop(shared: &Shared, me: usize, rx: Receiver<Msg>) {
    for msg in rx.iter() {
        match msg {
            Msg::Stop => break,
            Msg::Job(job) => {
                let job = match defer_timer(shared, me, job) {
                    Some(job) => job,
                    None => continue, // requeued for later
                };
                let is_timer = job.is_timer();
                process_job(shared, me, job);
                if is_timer {
                    shared.timer_jobs.fetch_sub(1, Ordering::AcqRel);
                }
                // Last in-flight job gone ⇒ global quiescence. The counter
                // can only reach zero when no job exists anywhere (every
                // sender increments before sending, and a processing worker
                // holds its own job's count until its spawns are routed),
                // so exactly one worker observes the 1→0 edge and tells
                // everyone — including itself — to stop.
                if shared.in_flight.fetch_sub(1, Ordering::AcqRel) == 1 {
                    for s in &shared.senders {
                        let _ = s.send(Msg::Stop);
                    }
                }
            }
        }
    }
}

/// Lazy deadlines: while regular (non-timer) work is in flight anywhere,
/// push a timer job to the back of this worker's own queue instead of
/// firing it, so a timeout is only observed once the value it guards has
/// had every chance to arrive. Returns the job when it should be processed
/// now. The counter comparison is approximate — a transiently stale read
/// at worst requeues once more or fires a timer early, both of which the
/// semantics allow (a timer may legally fire at any time).
fn defer_timer(shared: &Shared, me: usize, job: Job) -> Option<Job> {
    if !job.is_timer() || shared.stopping.load(Ordering::Acquire) {
        return Some(job);
    }
    if shared.in_flight.load(Ordering::Acquire) <= shared.timer_jobs.load(Ordering::Acquire) {
        return Some(job); // only deadlines remain: time is up
    }
    match shared.senders[me].send(Msg::Job(job)) {
        Ok(()) => {
            // Don't spin on an otherwise-empty queue while another worker
            // finishes the outstanding work.
            std::thread::sleep(std::time::Duration::from_micros(50));
            None
        }
        // Unreachable (this worker holds the receiver), but never drop a
        // job: the in-flight counter depends on it being processed.
        Err(crossbeam::channel::SendError(Msg::Job(job))) => Some(job),
        Err(_) => None,
    }
}

fn process_job(shared: &Shared, me: usize, job: Job) {
    if shared.stopping.load(Ordering::Acquire) {
        return; // draining after a fatal error or budget exhaustion
    }
    // A panic (in the engine or a foreign closure) must not strand the
    // in-flight counter: convert it to a fatal error and keep draining.
    let outcome = catch_unwind(AssertUnwindSafe(|| run_job(shared, me, job)));
    match outcome {
        Ok(Ok(())) => {}
        Ok(Err(e)) => fatal(shared, e),
        Err(_) => fatal(
            shared,
            StrandError::Other("worker panicked during reduction".to_string()),
        ),
    }
}

fn run_job(shared: &Shared, me: usize, job: Job) -> StrandResult<()> {
    shared.worker_jobs[me].fetch_add(1, Ordering::Relaxed);
    let mut m = shared.machine.lock();
    let outcome = m.step(job)?;
    let spawned = m.take_outbox();
    drop(m);
    route(shared, spawned);
    match outcome {
        StepOutcome::Reduced => {}
        StepOutcome::Foreign(pf) => {
            // The native computation runs without the machine lock — this
            // is where foreign work genuinely overlaps everything else.
            let result = catch_unwind(AssertUnwindSafe(|| pf.compute())).unwrap_or_else(|_| {
                Err(StrandError::Other("foreign procedure panicked".to_string()))
            });
            let mut m = shared.machine.lock();
            m.complete_foreign(pf, result)?;
            let woken = m.take_outbox();
            drop(m);
            route(shared, woken);
        }
        StepOutcome::BudgetExhausted => {
            if !shared.truncated.swap(true, Ordering::AcqRel) {
                shared.machine.lock().note_truncated();
            }
            shared.stopping.store(true, Ordering::Release);
        }
    }
    Ok(())
}

/// Send newly runnable processes to their nodes' workers, incrementing the
/// in-flight count *before* each send (the quiescence invariant).
fn route(shared: &Shared, jobs: Vec<Job>) {
    for job in jobs {
        let w = job.node().0 as usize % shared.threads;
        let is_timer = job.is_timer();
        shared.in_flight.fetch_add(1, Ordering::AcqRel);
        if is_timer {
            shared.timer_jobs.fetch_add(1, Ordering::AcqRel);
        }
        if shared.senders[w].send(Msg::Job(job)).is_err() {
            // Unreachable before quiescence (receivers outlive the run),
            // but keep the counters honest.
            if is_timer {
                shared.timer_jobs.fetch_sub(1, Ordering::AcqRel);
            }
            shared.in_flight.fetch_sub(1, Ordering::AcqRel);
        }
    }
}

fn fatal(shared: &Shared, e: StrandError) {
    let mut slot = shared.fatal.lock();
    if slot.is_none() {
        *slot = Some(e);
    }
    drop(slot);
    shared.stopping.store(true, Ordering::Release);
}

#[cfg(test)]
mod tests {
    use super::*;
    use strand_machine::{run_goal, RunStatus};

    fn par(threads: u32) -> MachineConfig {
        install();
        MachineConfig::with_nodes(4).parallel(threads)
    }

    #[test]
    fn thread_resolution_caps_at_nodes() {
        let c = MachineConfig::with_nodes(4).parallel(16);
        assert_eq!(resolve_threads(&c), 4);
        let c = MachineConfig::with_nodes(8).parallel(3);
        assert_eq!(resolve_threads(&c), 3);
        let c = MachineConfig::with_nodes(8).parallel(0);
        assert!(resolve_threads(&c) >= 1);
    }

    #[test]
    fn simple_goal_completes() {
        let r = run_goal("double(X, Y) :- Y := X * 2.", "double(21, V)", par(2)).unwrap();
        assert!(matches!(r.report.status, RunStatus::Completed));
        assert_eq!(r.bindings["V"].to_string(), "42");
        assert_eq!(r.report.metrics.threads_used, 2);
        assert!(r.report.metrics.wall_ns > 0);
    }

    #[test]
    fn fault_plans_are_rejected() {
        let cfg = par(2).faults(strand_machine::FaultPlan::default().crash(1, 100));
        let err = run_goal("go.", "go", cfg).unwrap_err();
        assert!(err.to_string().contains("fault"), "{err}");
    }

    #[test]
    fn runtime_errors_surface_with_fail_fast() {
        let err = run_goal("boom(X) :- X := 1, X := 2.", "boom(X)", par(2)).unwrap_err();
        assert!(matches!(err, StrandError::DoubleAssign { .. }), "{err}");
    }

    #[test]
    fn budget_exhaustion_is_fatal_with_fail_fast() {
        let mut cfg = par(2);
        cfg.max_reductions = 500;
        let err = run_goal("spin :- spin. spin :- spin.", "spin", cfg).unwrap_err();
        assert!(matches!(err, StrandError::BudgetExhausted { .. }), "{err}");
    }

    #[test]
    fn budget_exhaustion_truncates_without_fail_fast() {
        let mut cfg = par(2);
        cfg.max_reductions = 500;
        cfg.fail_fast = false;
        let r = run_goal("spin :- spin.", "spin", cfg).unwrap();
        assert!(
            matches!(r.report.status, RunStatus::Truncated { .. }),
            "{:?}",
            r.report.status
        );
        assert!(!r.report.errors.is_empty());
    }
}
