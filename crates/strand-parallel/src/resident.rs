//! Resident execution: keep a parallel machine alive between bursts.
//!
//! The batch entry point ([`run_parallel`](crate::ParallelBackend)) treats
//! global quiescence as termination: the last worker to surrender its token
//! broadcasts stop and everyone exits. A *service* wants the opposite — the
//! program (a Server motif, typically) drains to quiescence and then waits,
//! suspended on its port streams, for the next external request. This
//! module provides that mode:
//!
//! * workers run the unmodified [`worker_loop`](crate::worker_loop); the
//!   only behavioural difference is the `resident` flag on the shared
//!   state, which turns the stop-broadcast on last-token-release into an
//!   ordinary park (counted as `idle_parks` in the metrics). Quiescence
//!   becomes re-entrant: the counter climbs off zero as soon as an ingress
//!   batch is minted and the parked workers wake exactly as they would for
//!   a peer's batch.
//! * an extra **ingress** [`Machine`] ([`Machine::new_ingress`]) lives on
//!   the caller's side of the channels. It owns no nodes, never reduces,
//!   and exists so external threads can build terms against the shared
//!   store and enqueue goals; everything it enqueues lands in its outbox
//!   and is shipped to the owning workers under the same token protocol as
//!   worker-to-worker traffic.
//! * session cleanup rides the same channels: [`ResidentHandle::reclaim`]
//!   sends each worker a [`Routed::Reclaim`] event, which sweeps that
//!   shard's suspensions and store stripe for the region inline with its
//!   normal scheduling — no stop-the-world.
//!
//! Virtual-time fault plans are rejected (they need the simulator's clock),
//! but wall-clock [`ChaosPlan`](strand_machine::ChaosPlan)s are accepted:
//! a supervised resident
//! program (the `Supervise ∘ Server` composition) is exactly the thing that
//! is *supposed* to survive a killed shard, and the chaos-on-serve
//! conformance tier drives it through this path. Callers routing external
//! injections should consult [`ResidentHandle::dead_shards`] so new
//! sessions land on shards that will actually reduce them.

use crate::quiesce::Tokens;
use crate::{resolve_threads, send_batch, stop, worker_loop, Msg, Shared, CHANNEL_CAP};
use crossbeam::channel::{bounded, Receiver};
use parking_lot::Mutex;
use skeletons::WorkerSet;
use std::collections::BTreeMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::sync::Mutex as StdMutex;
use std::time::{Duration, Instant};
use strand_core::{StrandError, StrandResult, Term};
use strand_machine::{
    ast_to_term, merge_shard_reports, ForeignLib, Machine, MachineConfig, Routed, RunReport,
};
use strand_parse::{compile_program, parse_term, Program};

/// A running resident machine: worker threads parked-or-reducing behind
/// channels, plus the ingress machine external threads inject through.
///
/// The handle is `Sync`; clone it behind an `Arc` and inject from as many
/// connection threads as you like — injection serialises on the ingress
/// lock, reduction stays parallel across the workers.
pub struct ResidentHandle {
    shared: Arc<Shared>,
    /// The ingress machine. Term construction, goal injection and the
    /// serve-side metrics counters all happen under this lock.
    ingress: StdMutex<Machine>,
    workers: Option<WorkerSet>,
    slots: Arc<Vec<Mutex<Option<Machine>>>>,
    threads: usize,
    boot_vars: BTreeMap<String, Term>,
    t0: Instant,
}

impl ResidentHandle {
    /// Compile `program`, seed `boot_goal` and spawn resident workers.
    /// Returns as soon as the workers are running; call
    /// [`wait_idle`](ResidentHandle::wait_idle) to block until the boot
    /// burst has drained (the Server motif's loops are then suspended on
    /// their streams, waiting for [`inject`](ResidentHandle::with_ingress)).
    pub fn start(
        program: &Program,
        boot_goal: &str,
        config: MachineConfig,
        lib: &ForeignLib,
    ) -> StrandResult<ResidentHandle> {
        if !config.faults.is_empty() {
            return Err(StrandError::UnsupportedFaultPlan {
                backend: "resident".to_string(),
                plan: "virtual-time (FaultPlan)".to_string(),
                hint: "virtual-time fault plans need the deterministic \
                       simulator's clock; for wall-clock fault injection on \
                       a resident machine use MachineConfig::chaos \
                       (ChaosPlan) — a supervised program recovers from the \
                       injected shard kills"
                    .to_string(),
            });
        }
        let threads = resolve_threads(&config);
        let goal_ast = parse_term(boot_goal).map_err(|e| StrandError::Other(e.to_string()))?;
        let compiled =
            Arc::new(compile_program(program).map_err(|e| StrandError::Other(e.to_string()))?);
        let world = strand_machine::SharedWorld::new(threads);
        let mut machines: Vec<Machine> = (0..threads)
            .map(|idx| {
                let mut m = Machine::new_worker(
                    Arc::clone(&compiled),
                    config.clone(),
                    &world,
                    idx,
                    threads,
                );
                m.install_lib(lib);
                m
            })
            .collect();
        let mut ingress =
            Machine::new_ingress(Arc::clone(&compiled), config.clone(), &world, threads);
        ingress.install_lib(lib);
        let mut boot_vars = BTreeMap::new();
        let goal = ast_to_term(&goal_ast, &mut machines[0], &mut boot_vars);
        machines[0].start(goal);
        for r in machines[0].take_outbox() {
            let w = r.dest_worker(threads);
            machines[w].absorb(vec![r]);
        }

        let mut senders = Vec::with_capacity(threads);
        let mut receivers: Vec<Option<Receiver<Msg>>> = Vec::with_capacity(threads);
        for _ in 0..threads {
            let (tx, rx) = bounded::<Msg>(CHANNEL_CAP);
            senders.push(tx);
            receivers.push(Some(rx));
        }
        let shared = Arc::new(Shared {
            tokens: Tokens::new(threads as u64),
            senders,
            stopping: AtomicBool::new(false),
            truncated: AtomicBool::new(false),
            fatal: Mutex::new(None),
            world,
            threads,
            chaos: config.chaos.clone(),
            resident: true,
            wheel: crate::timers::TimerWheel::new(),
            dead: AtomicU64::new(0),
        });
        let slots: Arc<Vec<Mutex<Option<Machine>>>> =
            Arc::new(machines.into_iter().map(|m| Mutex::new(Some(m))).collect());

        let t0 = Instant::now();
        let workers = {
            let shared = Arc::clone(&shared);
            let slots = Arc::clone(&slots);
            WorkerSet::spawn(threads, "strand-serve", move |idx| {
                let shared = Arc::clone(&shared);
                let slots = Arc::clone(&slots);
                let rx = receivers[idx].take().expect("one receiver per worker");
                Box::new(move || {
                    let mut m = slots[idx].lock().take().expect("one machine per worker");
                    let outcome =
                        catch_unwind(AssertUnwindSafe(|| worker_loop(&shared, idx, &rx, &mut m)));
                    if outcome.is_err() {
                        crate::fatal(
                            &shared,
                            StrandError::Other("worker panicked during reduction".to_string()),
                        );
                    }
                    *slots[idx].lock() = Some(m);
                })
            })
        };

        Ok(ResidentHandle {
            shared,
            ingress: StdMutex::new(ingress),
            workers: Some(workers),
            slots,
            threads,
            boot_vars,
            t0,
        })
    }

    /// Worker threads behind this handle.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// A named variable from the boot goal (e.g. the server directory tuple
    /// that request goals distribute over).
    pub fn boot_var(&self, name: &str) -> Option<Term> {
        self.boot_vars.get(name).cloned()
    }

    /// Run `f` against the ingress machine — build terms, set the session
    /// region, [`inject`](Machine::inject) goals, bump serve counters —
    /// then flush everything it enqueued to the owning workers (minting
    /// quiescence tokens per batch, so a parked fleet wakes).
    pub fn with_ingress<R>(&self, f: impl FnOnce(&mut Machine) -> R) -> R {
        let mut m = self.ingress.lock().unwrap_or_else(|e| e.into_inner());
        let out = f(&mut m);
        let mut bufs: Vec<Vec<Routed>> = (0..self.threads).map(|_| Vec::new()).collect();
        for r in m.take_outbox() {
            bufs[r.dest_worker(self.threads)].push(r);
        }
        // Ingress never reduces, so it should never *arm* — but if a caller
        // ever drives a reduction through it, losing the deadline silently
        // would be worse than arming it here.
        for wt in m.take_wall_timers() {
            self.shared.wheel.arm(wt);
        }
        drop(m);
        for (w, batch) in bufs.into_iter().enumerate() {
            if !batch.is_empty() {
                send_batch(&self.shared, w, batch);
            }
        }
        out
    }

    /// Close a session: every worker sweeps its suspensions and store
    /// stripe for `region`, inline with its normal scheduling. The sweep
    /// events carry quiescence tokens like any batch, so reclamation is
    /// complete once the machine next reads idle.
    pub fn reclaim(&self, region: u32) {
        // Purge the session's wall deadlines first: a wheel entry that
        // outlived its region could fire into a *recycled* store slot and
        // bind some other session's variable.
        self.shared.wheel.purge_region(region);
        for w in 0..self.threads {
            send_batch(&self.shared, w, vec![Routed::Reclaim { region, worker: w }]);
        }
    }

    /// Milliseconds until the earliest wall-clock deadline in the wheel
    /// (minimum 1), or `None` when no deadline is pending. The serve layer
    /// derives its BUSY retry hint from this: "come back when the scheduler
    /// next plans to wake" beats a fixed hint when the fleet is parked on a
    /// supervision beat.
    pub fn timer_horizon_ms(&self) -> Option<u64> {
        let due = self.shared.wheel.next_due_raw()?;
        Some(due.saturating_sub(self.shared.wheel.now_ms()).max(1))
    }

    /// Bitmask of workers whose shards a
    /// [`ChaosPlan`](strand_machine::ChaosPlan) has killed (bit `i`
    /// ⇔ worker `i` is dead). Route external injections at nodes owned by
    /// live workers — a goal delivered to a dead shard is discarded.
    pub fn dead_shards(&self) -> u64 {
        self.shared.dead.load(Ordering::Acquire)
    }

    /// Regular (non-timer) work pending anywhere — the backpressure gauge
    /// admission checks against its budget.
    pub fn pending(&self) -> u64 {
        self.shared.world.regular_pending()
    }

    /// Reductions performed so far, all workers combined.
    pub fn reductions(&self) -> u64 {
        self.shared.world.reductions()
    }

    /// True when the machine is globally quiescent: every worker parked,
    /// no batch in flight. New injections flip this false immediately.
    pub fn is_idle(&self) -> bool {
        self.shared.tokens.is_zero()
    }

    /// True once a fatal error (or shutdown) has told the workers to wind
    /// down; the service should stop admitting.
    pub fn is_stopping(&self) -> bool {
        self.shared.stopping.load(Ordering::Acquire)
    }

    /// Block until the machine reads idle, polling the token counter.
    /// Returns `false` on timeout. (Idle is a steady state until the next
    /// injection, so a poll is race-free where a woken-too-early condvar
    /// would not be.)
    pub fn wait_idle(&self, timeout: Duration) -> bool {
        let deadline = Instant::now() + timeout;
        loop {
            if self.shared.tokens.is_zero() || self.is_stopping() {
                return true;
            }
            if Instant::now() >= deadline {
                return self.shared.tokens.is_zero();
            }
            std::thread::sleep(Duration::from_micros(200));
        }
    }

    /// Wind the service down: wait (bounded) for in-flight work to drain,
    /// stop and join the workers, and merge every shard's report — the
    /// ingress machine's included, so serve counters and reclamation
    /// totals survive into the summary.
    pub fn shutdown(mut self) -> StrandResult<RunReport> {
        let _ = self.wait_idle(Duration::from_secs(10));
        stop(&self.shared);
        if let Some(ws) = self.workers.take() {
            ws.join();
        }
        if let Some(e) = self.shared.fatal.lock().take() {
            return Err(e);
        }
        let truncated = self.shared.truncated.load(Ordering::Acquire);
        let mut machines: Vec<Machine> = self
            .slots
            .iter()
            .map(|s| s.lock().take().expect("worker returned its machine"))
            .collect();
        machines.push(self.ingress.into_inner().unwrap_or_else(|e| e.into_inner()));
        let parts: Vec<_> = machines.iter_mut().map(|m| m.finalize_shard()).collect();
        let worker_jobs: Vec<u64> = parts
            .iter()
            .take(self.threads)
            .map(|p| p.metrics.total_reductions)
            .collect();
        let mut report = merge_shard_reports(parts, truncated);
        report.metrics.wall_ns = self.t0.elapsed().as_nanos() as u64;
        report.metrics.threads_used = self.threads as u32;
        report.metrics.worker_jobs = worker_jobs;
        Ok(report)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use strand_machine::ChaosPlan;
    use strand_parse::parse_program;

    fn handle(threads: u32) -> ResidentHandle {
        let program = parse_program("boot. double(X, Y) :- Y := X * 2.").unwrap();
        let cfg = MachineConfig::with_nodes(4).parallel(threads);
        ResidentHandle::start(&program, "boot", cfg, &ForeignLib::default()).unwrap()
    }

    fn inject_goal(h: &ResidentHandle, region: u32, src: &str) -> BTreeMap<String, Term> {
        h.with_ingress(|m| {
            m.set_session_region(region);
            let ast = parse_term(src).unwrap();
            let mut vars = BTreeMap::new();
            let goal = ast_to_term(&ast, m, &mut vars);
            m.inject(goal, 1);
            vars
        })
    }

    #[test]
    fn answers_bursts_and_returns_to_idle_between_them() {
        let h = handle(2);
        assert!(h.wait_idle(Duration::from_secs(5)), "boot never drained");
        for (session, x) in [(1u32, 21i64), (2, 100)] {
            let vars = inject_goal(&h, session, &format!("double({x}, V)"));
            assert!(h.wait_idle(Duration::from_secs(5)), "burst never drained");
            let v = h.with_ingress(|m| m.store().resolve(&vars["V"]));
            assert_eq!(v.to_string(), (x * 2).to_string());
            h.reclaim(session);
        }
        assert!(h.wait_idle(Duration::from_secs(5)));
        let report = h.shutdown().unwrap();
        // Each drained burst parks the fleet exactly once (boot + two
        // requests + reclaim wakes ⇒ at least one, typically several).
        assert!(report.metrics.idle_parks >= 1, "{:?}", report.metrics);
        // Session-tagged request variables were swept on reclaim.
        assert!(report.metrics.vars_reclaimed >= 2, "{:?}", report.metrics);
    }

    #[test]
    fn fault_plans_are_rejected_in_resident_mode() {
        let program = parse_program("boot.").unwrap();
        let cfg = MachineConfig::with_nodes(2)
            .parallel(2)
            .faults(strand_machine::FaultPlan::default().crash(1, 100));
        let err = match ResidentHandle::start(&program, "boot", cfg, &ForeignLib::default()) {
            Err(e) => e,
            Ok(_) => panic!("virtual-time fault plan accepted in resident mode"),
        };
        assert!(
            matches!(err, StrandError::UnsupportedFaultPlan { .. }),
            "{err}"
        );
        // The hint must steer the user to the wall-clock analogue.
        assert!(err.to_string().contains("ChaosPlan"), "{err}");
    }

    #[test]
    fn chaos_plans_are_accepted_and_kills_surface_in_dead_shards() {
        // Kill worker 1 immediately. The resident machine must (a) start,
        // (b) keep answering on the surviving shard, and (c) report the
        // dead worker through `dead_shards` so callers can route around it.
        let program = parse_program("boot. double(X, Y) :- Y := X * 2.").unwrap();
        let cfg = MachineConfig::with_nodes(4)
            .parallel(2)
            .chaos(ChaosPlan::default().kill(1, 0));
        let h = ResidentHandle::start(&program, "boot", cfg, &ForeignLib::default()).unwrap();
        assert!(h.wait_idle(Duration::from_secs(5)), "boot never drained");
        // Worker 1's kill deadline is reduction 0; it dies at its first
        // loop top. Wait for the bit to show up.
        let deadline = Instant::now() + Duration::from_secs(5);
        while h.dead_shards() & 0b10 == 0 {
            assert!(Instant::now() < deadline, "worker 1 never died");
            std::thread::sleep(Duration::from_millis(2));
        }
        // The surviving shard still answers: node 1 belongs to worker 0.
        let vars = h.with_ingress(|m| {
            m.set_session_region(8);
            let ast = parse_term("double(21, V)").unwrap();
            let mut vars = BTreeMap::new();
            let goal = ast_to_term(&ast, m, &mut vars);
            m.inject(goal, 1);
            vars
        });
        assert!(h.wait_idle(Duration::from_secs(5)), "request never drained");
        let v = h.with_ingress(|m| m.store().resolve(&vars["V"]));
        assert_eq!(v.to_string(), "42");
        let report = h.shutdown().unwrap();
        assert_eq!(report.metrics.shards_killed, 1, "{:?}", report.metrics);
    }
}
