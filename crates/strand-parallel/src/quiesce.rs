//! Quiescence detection for the sharded backend: the single-token counter.
//!
//! Every *busy worker* and every *in-flight batch* holds one abstract
//! token; the [`Tokens`] counter tracks how many tokens exist. All workers
//! are born busy (counter starts at `threads`), a sender mints a token
//! **before** the channel send (`add`), a busy worker that absorbs a batch
//! dissolves its token (`absorb`), a parked worker that receives a batch
//! adopts its token as the worker's own busy token (no counter change), and
//! a worker going idle surrenders its busy token (`release`). The counter
//! reaching zero therefore proves *global quiescence*: no worker is busy
//! and no batch is unreceived, so no future work can appear.
//!
//! The inc-before-send order is the whole proof. If a sender enqueued the
//! batch first and incremented after, another worker could drain to idle,
//! release the last visible token, observe zero, and announce quiescence
//! while the batch sits unreceived in a channel. The model checker below
//! explores every interleaving of the protocol for small worker counts and
//! confirms (a) the correct order never announces early and (b) the broken
//! order does — i.e. the checker has the power to catch the bug.
//!
//! # Why an in-repo checker and not loom?
//!
//! `loom` is not vendored in this offline workspace, so the permutation
//! search runs over an *abstract model* of the protocol (worker states ×
//! queue contents × counter value) rather than over real atomics. That is
//! sound here because the protocol's correctness depends only on the
//! *order* of counter updates relative to channel operations — both
//! `SeqCst`-equivalent in the model — not on weak-memory effects. A
//! `#[cfg(loom)]` harness covering the same invariant against real
//! `loom::sync::atomic` types is kept below for when loom is vendored;
//! build it with `RUSTFLAGS="--cfg loom" cargo test -p strand-parallel`.

use std::sync::atomic::{AtomicU64, Ordering};

/// Shared token counter: busy workers + in-flight batches.
pub(crate) struct Tokens(AtomicU64);

impl Tokens {
    /// Every worker is born busy and holds one token.
    pub fn new(busy_workers: u64) -> Tokens {
        Tokens(AtomicU64::new(busy_workers))
    }

    /// Mint a token for a batch about to be sent. MUST be called before the
    /// channel send — see the module docs for why the order matters.
    pub fn add(&self) {
        self.0.fetch_add(1, Ordering::AcqRel);
    }

    /// Undo [`Tokens::add`] after a failed send (the receiver is only gone
    /// once the run is over, but the counter stays honest regardless).
    pub fn retract(&self) {
        self.0.fetch_sub(1, Ordering::AcqRel);
    }

    /// A *busy* worker absorbed a batch: the batch's token dissolves into
    /// the worker's own busy token. A *parked* worker receiving a batch
    /// calls nothing — the batch's token simply becomes its busy token.
    pub fn absorb(&self) {
        self.0.fetch_sub(1, Ordering::AcqRel);
    }

    /// A busy worker goes idle, surrendering its token. Returns `true` when
    /// it surrendered the last token — global quiescence; the caller must
    /// broadcast stop (including to itself), or in resident mode park and
    /// leave the machine alive for the next ingress batch.
    #[must_use]
    pub fn release(&self) -> bool {
        self.0.fetch_sub(1, Ordering::AcqRel) == 1
    }

    /// Observe global quiescence: no busy workers and no in-flight batches.
    /// Only a meaningful *steady* signal in resident mode, where quiescence
    /// is revisited rather than terminal; a `false` may be stale by the time
    /// the caller acts on it, but `true` stays true until new work is minted
    /// through [`Tokens::add`].
    pub fn is_zero(&self) -> bool {
        self.0.load(Ordering::Acquire) == 0
    }
}

/// Exhaustive interleaving exploration of the token protocol on an abstract
/// state machine (see module docs). Not compiled into the library.
#[cfg(test)]
mod model {
    use std::collections::HashSet;

    #[derive(Clone, PartialEq, Eq, Hash)]
    enum W {
        /// Holds a token. `mid_send: Some(to)` means the two-step send to
        /// `to` is half done (the interleaving point under test).
        Busy {
            sends_left: u8,
            mid_send: Option<u8>,
        },
        /// Holds no token; wakes by adopting a received batch's token.
        Parked,
        /// Saw the stop broadcast.
        Done,
    }

    #[derive(Clone, PartialEq, Eq, Hash)]
    struct State {
        tokens: u64,
        /// Unreceived batches per destination worker.
        queues: Vec<u8>,
        workers: Vec<W>,
    }

    /// Depth-first search over every interleaving. `inc_before_send` picks
    /// the protocol variant: `true` is the shipped order (counter increment
    /// then enqueue), `false` the broken order (enqueue then increment).
    /// Returns the number of distinct states on success, or a description
    /// of the first reachable state that announces quiescence while a batch
    /// is unreceived or a peer is still busy.
    fn check(threads: usize, sends_each: u8, inc_before_send: bool) -> Result<usize, String> {
        let init = State {
            tokens: threads as u64,
            queues: vec![0; threads],
            workers: vec![
                W::Busy {
                    sends_left: sends_each,
                    mid_send: None
                };
                threads
            ],
        };
        let mut seen = HashSet::new();
        let mut stack = vec![init];
        while let Some(s) = stack.pop() {
            if !seen.insert(s.clone()) {
                continue;
            }
            for i in 0..threads {
                match s.workers[i].clone() {
                    W::Done => {}
                    W::Busy {
                        sends_left,
                        mid_send: Some(to),
                    } => {
                        // Second half of the two-step send.
                        let mut n = s.clone();
                        if inc_before_send {
                            n.queues[to as usize] += 1;
                        } else {
                            n.tokens += 1;
                        }
                        n.workers[i] = W::Busy {
                            sends_left,
                            mid_send: None,
                        };
                        stack.push(n);
                    }
                    W::Busy {
                        sends_left,
                        mid_send: None,
                    } => {
                        // (a) Start a send to any peer.
                        if sends_left > 0 {
                            for to in (0..threads).filter(|&to| to != i) {
                                let mut n = s.clone();
                                if inc_before_send {
                                    n.tokens += 1;
                                } else {
                                    n.queues[to] += 1;
                                }
                                n.workers[i] = W::Busy {
                                    sends_left: sends_left - 1,
                                    mid_send: Some(to as u8),
                                };
                                stack.push(n);
                            }
                        }
                        // (b) Absorb a batch from the own queue while busy.
                        if s.queues[i] > 0 {
                            let mut n = s.clone();
                            n.queues[i] -= 1;
                            n.tokens -= 1;
                            stack.push(n);
                        }
                        // (c) Go idle: surrender the busy token.
                        let mut n = s.clone();
                        n.tokens -= 1;
                        if n.tokens == 0 {
                            // Announce quiescence. The invariant under
                            // test: nothing can still be in flight and no
                            // peer can still be busy.
                            let unreceived: u8 = n.queues.iter().sum();
                            let busy_peer = (0..threads)
                                .any(|j| j != i && matches!(n.workers[j], W::Busy { .. }));
                            if unreceived > 0 || busy_peer {
                                return Err(format!(
                                    "worker {i} announced quiescence with \
                                     {unreceived} unreceived batch(es), busy peer: {busy_peer}"
                                ));
                            }
                            for w in &mut n.workers {
                                *w = W::Done;
                            }
                        } else {
                            n.workers[i] = W::Parked;
                        }
                        stack.push(n);
                    }
                    W::Parked => {
                        // Wake on a received batch, adopting its token
                        // (no counter change). A resumed worker may send
                        // again — model one follow-up send.
                        if s.queues[i] > 0 {
                            let mut n = s.clone();
                            n.queues[i] -= 1;
                            n.workers[i] = W::Busy {
                                sends_left: 1,
                                mid_send: None,
                            };
                            stack.push(n);
                        }
                    }
                }
            }
        }
        Ok(seen.len())
    }

    /// Worker states for the *crash-point* variant of the model: any worker
    /// may be killed at a safe point (never mid-send — the implementation
    /// checks the kill deadline only at the loop top, after every
    /// `tokens.add()`/send pair has completed), after which it follows the
    /// dead-shard protocol of `dead_loop`: discard arriving batches while
    /// absorbing their tokens, surrender its own token, park, adopt tokens
    /// of later arrivals and surrender those too.
    #[derive(Clone, PartialEq, Eq, Hash)]
    enum C {
        Busy {
            sends_left: u8,
            mid_send: Option<u8>,
        },
        Parked,
        /// Killed shard. `holds_token` is true while it still owes the
        /// counter a `release` for a token it holds.
        Dead {
            holds_token: bool,
        },
        Done,
    }

    #[derive(Clone, PartialEq, Eq, Hash)]
    struct ChaosState {
        tokens: u64,
        queues: Vec<u8>,
        workers: Vec<C>,
        /// At most one shard dies per run — bounds the state space and
        /// matches the conformance tier's single-kill plans.
        crashed: bool,
    }

    /// Crash-point exploration: like [`check`] but any worker may die at
    /// any safe point. Two invariants:
    ///
    /// 1. *No early announce* — quiescence is never declared while a batch
    ///    is unreceived or a peer is busy (same as [`check`]).
    /// 2. *No stuck state* — every terminal state (no transitions) has all
    ///    workers `Done`, i.e. the quiescence token is not lost with the
    ///    dead shard and termination is still announced.
    ///
    /// `dead_absorbs` picks the protocol variant: `true` is the shipped
    /// dead-shard loop (discarding a batch still absorbs its token);
    /// `false` seeds the bug where a dead worker drops batches without
    /// absorbing tokens — the orphaned token must then be caught as a
    /// stuck state, proving the checker can see that failure mode.
    fn check_chaos(threads: usize, sends_each: u8, dead_absorbs: bool) -> Result<usize, String> {
        let init = ChaosState {
            tokens: threads as u64,
            queues: vec![0; threads],
            workers: vec![
                C::Busy {
                    sends_left: sends_each,
                    mid_send: None
                };
                threads
            ],
            crashed: false,
        };
        let mut seen = HashSet::new();
        let mut stack = vec![init];
        while let Some(s) = stack.pop() {
            if !seen.insert(s.clone()) {
                continue;
            }
            let before = stack.len();
            for i in 0..threads {
                match s.workers[i].clone() {
                    C::Done => {}
                    C::Busy {
                        sends_left,
                        mid_send: Some(to),
                    } => {
                        let mut n = s.clone();
                        n.queues[to as usize] += 1;
                        n.workers[i] = C::Busy {
                            sends_left,
                            mid_send: None,
                        };
                        stack.push(n);
                    }
                    C::Busy {
                        sends_left,
                        mid_send: None,
                    } => {
                        // Crash point: the kill check at the loop top. The
                        // shard's remaining sends die with it (chaos_kill
                        // drops the run queues); its busy token survives
                        // and must still be surrendered through release.
                        if !s.crashed {
                            let mut n = s.clone();
                            n.crashed = true;
                            n.workers[i] = C::Dead { holds_token: true };
                            stack.push(n);
                        }
                        if sends_left > 0 {
                            for to in (0..threads).filter(|&to| to != i) {
                                let mut n = s.clone();
                                n.tokens += 1; // inc BEFORE send
                                n.workers[i] = C::Busy {
                                    sends_left: sends_left - 1,
                                    mid_send: Some(to as u8),
                                };
                                stack.push(n);
                            }
                        }
                        if s.queues[i] > 0 {
                            let mut n = s.clone();
                            n.queues[i] -= 1;
                            n.tokens -= 1;
                            stack.push(n);
                        }
                        let mut n = s.clone();
                        n.tokens -= 1;
                        if n.tokens == 0 {
                            let unreceived: u8 = n.queues.iter().sum();
                            let busy_peer = (0..threads)
                                .any(|j| j != i && matches!(n.workers[j], C::Busy { .. }));
                            if unreceived > 0 || busy_peer {
                                return Err(format!(
                                    "worker {i} announced quiescence with \
                                     {unreceived} unreceived batch(es), busy peer: {busy_peer}"
                                ));
                            }
                            for w in &mut n.workers {
                                *w = C::Done;
                            }
                        } else {
                            n.workers[i] = C::Parked;
                        }
                        stack.push(n);
                    }
                    C::Parked => {
                        if s.queues[i] > 0 {
                            let mut n = s.clone();
                            n.queues[i] -= 1;
                            n.workers[i] = C::Busy {
                                sends_left: 1,
                                mid_send: None,
                            };
                            stack.push(n);
                        }
                    }
                    C::Dead { holds_token: true } => {
                        // Drain-and-discard an arriving batch.
                        if s.queues[i] > 0 {
                            let mut n = s.clone();
                            n.queues[i] -= 1;
                            if dead_absorbs {
                                n.tokens -= 1;
                            }
                            stack.push(n);
                        }
                        // Surrender the held token; the dead worker may be
                        // the one to observe and announce quiescence.
                        let mut n = s.clone();
                        n.tokens -= 1;
                        if n.tokens == 0 {
                            let unreceived: u8 = n.queues.iter().sum();
                            let busy_peer = (0..threads)
                                .any(|j| j != i && matches!(n.workers[j], C::Busy { .. }));
                            if unreceived > 0 || busy_peer {
                                return Err(format!(
                                    "dead worker {i} announced quiescence with \
                                     {unreceived} unreceived batch(es), busy peer: {busy_peer}"
                                ));
                            }
                            for w in &mut n.workers {
                                *w = C::Done;
                            }
                        } else {
                            n.workers[i] = C::Dead { holds_token: false };
                        }
                        stack.push(n);
                    }
                    C::Dead { holds_token: false } => {
                        // Parked-dead: adopt an arriving batch's token (no
                        // counter change), discard its contents; the loop
                        // top will release the adopted token.
                        if s.queues[i] > 0 {
                            let mut n = s.clone();
                            n.queues[i] -= 1;
                            n.workers[i] = C::Dead { holds_token: true };
                            stack.push(n);
                        }
                    }
                }
            }
            // Terminal-state check: nothing pushed ⇒ no transitions.
            if stack.len() == before && !s.workers.iter().all(|w| matches!(w, C::Done)) {
                return Err(format!(
                    "stuck state: tokens={}, {} unreceived batch(es), run never terminates",
                    s.tokens,
                    s.queues.iter().map(|&q| q as u64).sum::<u64>(),
                ));
            }
        }
        Ok(seen.len())
    }

    /// Worker states for the *timer* variant of the model: busy workers may
    /// arm wall-clock deadlines into a shared wheel, and a **parked** worker
    /// may wake for a due deadline — the new transition PR 10's park loop
    /// adds. Firing is a two-step critical section, mirroring `park` in
    /// `lib.rs`: mint the busy token, then pop the wheel entry into
    /// runnable work.
    #[derive(Clone, PartialEq, Eq, Hash)]
    enum T {
        Busy {
            sends_left: u8,
            arms_left: u8,
            mid_send: Option<u8>,
        },
        /// Halfway through firing a due deadline. In the shipped order the
        /// token is already minted and the wheel entry still in place; in
        /// the broken order the entry is already popped (work exists!) and
        /// the token not yet minted.
        MidFire,
        Parked,
        Done,
    }

    #[derive(Clone, PartialEq, Eq, Hash)]
    struct TimerState {
        tokens: u64,
        /// Armed, not-yet-fired wheel entries. Wall time is abstracted
        /// away: a deadline may fall due at any moment, so a parked worker
        /// with `wheel > 0` can always attempt a fire.
        wheel: u8,
        queues: Vec<u8>,
        workers: Vec<T>,
    }

    /// Park/wake/fire exploration: like [`check`] but busy workers may arm
    /// deadlines (`arms_each` per worker) and parked workers race to fire
    /// them. Invariants:
    ///
    /// 1. *No early announce* — quiescence is never declared while a batch
    ///    is unreceived, a peer is busy, **or a peer is mid-fire** (a
    ///    popped deadline is work that will run).
    /// 2. *No stuck state* — a pending deadline never strands the run: the
    ///    fleet parks on it instead of announcing, fires it, and announces
    ///    once the wheel is dry.
    ///
    /// `mint_before_fire` picks the protocol variant: `true` is the shipped
    /// order (token minted before the wheel entry is popped); `false` seeds
    /// the bug where a parked worker takes the entry first and mints after
    /// — a peer can then release the "last" token and announce while the
    /// fired work is about to run. The negative test below proves the
    /// checker catches exactly that — the timer-wheel mirror of the
    /// enqueue-before-inc bug of [`check`].
    fn check_timers(
        threads: usize,
        sends_each: u8,
        arms_each: u8,
        mint_before_fire: bool,
    ) -> Result<usize, String> {
        let init = TimerState {
            tokens: threads as u64,
            wheel: 0,
            queues: vec![0; threads],
            workers: vec![
                T::Busy {
                    sends_left: sends_each,
                    arms_left: arms_each,
                    mid_send: None
                };
                threads
            ],
        };
        let mut seen = HashSet::new();
        let mut stack = vec![init];
        while let Some(s) = stack.pop() {
            if !seen.insert(s.clone()) {
                continue;
            }
            let before = stack.len();
            for i in 0..threads {
                match s.workers[i].clone() {
                    T::Done => {}
                    T::Busy {
                        sends_left,
                        arms_left,
                        mid_send: Some(to),
                    } => {
                        let mut n = s.clone();
                        n.queues[to as usize] += 1;
                        n.workers[i] = T::Busy {
                            sends_left,
                            arms_left,
                            mid_send: None,
                        };
                        stack.push(n);
                    }
                    T::Busy {
                        sends_left,
                        arms_left,
                        mid_send: None,
                    } => {
                        if sends_left > 0 {
                            for to in (0..threads).filter(|&to| to != i) {
                                let mut n = s.clone();
                                n.tokens += 1; // inc BEFORE send
                                n.workers[i] = T::Busy {
                                    sends_left: sends_left - 1,
                                    arms_left,
                                    mid_send: Some(to as u8),
                                };
                                stack.push(n);
                            }
                        }
                        // Arm a deadline: a local harvest into the shared
                        // wheel — no token, no channel traffic (the fire
                        // mints, not the arm).
                        if arms_left > 0 {
                            let mut n = s.clone();
                            n.wheel += 1;
                            n.workers[i] = T::Busy {
                                sends_left,
                                arms_left: arms_left - 1,
                                mid_send: None,
                            };
                            stack.push(n);
                        }
                        if s.queues[i] > 0 {
                            let mut n = s.clone();
                            n.queues[i] -= 1;
                            n.tokens -= 1;
                            stack.push(n);
                        }
                        // Go idle. With deadlines still armed, surrendering
                        // the last token is NOT terminal quiescence — the
                        // worker parks on the wheel instead of announcing.
                        let mut n = s.clone();
                        n.tokens -= 1;
                        if n.tokens == 0 && n.wheel == 0 {
                            let unreceived: u8 = n.queues.iter().sum();
                            let live_peer = (0..threads).any(|j| {
                                j != i && matches!(n.workers[j], T::Busy { .. } | T::MidFire)
                            });
                            if unreceived > 0 || live_peer {
                                return Err(format!(
                                    "worker {i} announced quiescence with \
                                     {unreceived} unreceived batch(es), live peer: {live_peer}"
                                ));
                            }
                            for w in &mut n.workers {
                                *w = T::Done;
                            }
                        } else {
                            n.workers[i] = T::Parked;
                        }
                        stack.push(n);
                    }
                    T::MidFire => {
                        // Second half of the fire critical section; the
                        // worker comes up busy with the fired timer as
                        // local work (which may send once).
                        let mut n = s.clone();
                        if mint_before_fire && n.wheel == 0 {
                            // Lost the pop race: peers minted for the same
                            // entry and one of them took it. Re-release the
                            // token we minted — the `fired.is_empty()` path
                            // of `park` — which may complete quiescence.
                            n.tokens -= 1;
                            if n.tokens == 0 {
                                let unreceived: u8 = n.queues.iter().sum();
                                let live_peer = (0..threads).any(|j| {
                                    j != i && matches!(n.workers[j], T::Busy { .. } | T::MidFire)
                                });
                                if unreceived > 0 || live_peer {
                                    return Err(format!(
                                        "worker {i} announced quiescence with \
                                         {unreceived} unreceived batch(es), live peer: {live_peer}"
                                    ));
                                }
                                for w in &mut n.workers {
                                    *w = T::Done;
                                }
                            } else {
                                n.workers[i] = T::Parked;
                            }
                            stack.push(n);
                        } else {
                            if mint_before_fire {
                                n.wheel -= 1;
                            } else {
                                n.tokens += 1;
                            }
                            n.workers[i] = T::Busy {
                                sends_left: 1,
                                arms_left: 0,
                                mid_send: None,
                            };
                            stack.push(n);
                        }
                    }
                    T::Parked => {
                        if s.queues[i] > 0 {
                            let mut n = s.clone();
                            n.queues[i] -= 1;
                            n.workers[i] = T::Busy {
                                sends_left: 1,
                                arms_left: 0,
                                mid_send: None,
                            };
                            stack.push(n);
                        }
                        // A deadline fell due: begin the two-step fire.
                        if s.wheel > 0 {
                            let mut n = s.clone();
                            if mint_before_fire {
                                n.tokens += 1;
                            } else {
                                n.wheel -= 1;
                            }
                            n.workers[i] = T::MidFire;
                            stack.push(n);
                        }
                    }
                }
            }
            // Terminal-state check: nothing pushed ⇒ no transitions.
            if stack.len() == before && !s.workers.iter().all(|w| matches!(w, T::Done)) {
                return Err(format!(
                    "stuck state: tokens={}, wheel={}, {} unreceived batch(es), \
                     run never terminates",
                    s.tokens,
                    s.wheel,
                    s.queues.iter().map(|&q| q as u64).sum::<u64>(),
                ));
            }
        }
        Ok(seen.len())
    }

    #[test]
    fn inc_before_send_never_announces_early_2_workers() {
        let states = check(2, 3, true).expect("protocol invariant");
        assert!(states > 50, "trivial state space: {states}");
    }

    #[test]
    fn inc_before_send_never_announces_early_3_workers() {
        let states = check(3, 2, true).expect("protocol invariant");
        assert!(states > 500, "trivial state space: {states}");
    }

    #[test]
    fn checker_catches_the_send_before_inc_bug() {
        // The broken order must be caught — otherwise the two passing
        // tests above prove nothing about the checker's power.
        let err = check(2, 2, false).expect_err("broken variant must announce early");
        assert!(err.contains("announced quiescence"), "{err}");
    }

    #[test]
    fn crash_points_preserve_quiescence_2_workers() {
        let states = check_chaos(2, 3, true).expect("dead-shard protocol invariant");
        assert!(states > 100, "trivial state space: {states}");
    }

    #[test]
    fn crash_points_preserve_quiescence_3_workers() {
        let states = check_chaos(3, 2, true).expect("dead-shard protocol invariant");
        assert!(states > 1000, "trivial state space: {states}");
    }

    #[test]
    fn checker_catches_dead_shard_dropping_tokens() {
        // A dead worker that discards batches WITHOUT absorbing their
        // tokens orphans a token forever: the counter can never reach
        // zero and the run never terminates. The checker must see that
        // as a stuck state — otherwise the two passing tests above prove
        // nothing about its power over the dead-shard protocol.
        let err = check_chaos(2, 2, false).expect_err("token-dropping bug must be caught");
        assert!(err.contains("stuck state"), "{err}");
    }

    #[test]
    fn timer_wakes_preserve_quiescence_2_workers() {
        let states = check_timers(2, 2, 2, true).expect("timer protocol invariant");
        assert!(states > 100, "trivial state space: {states}");
    }

    #[test]
    fn timer_wakes_preserve_quiescence_3_workers() {
        let states = check_timers(3, 1, 1, true).expect("timer protocol invariant");
        assert!(states > 500, "trivial state space: {states}");
    }

    #[test]
    fn checker_catches_wake_after_park_without_minting() {
        // The broken order: a parked worker pops the due wheel entry FIRST
        // and mints its busy token after. In the window between, a peer can
        // surrender the "last" token over an empty wheel and announce
        // quiescence while the fired deadline's work is about to run. The
        // checker must catch it — the timer mirror of the send-before-inc
        // bug — otherwise the two passing tests above prove nothing.
        let err = check_timers(2, 1, 1, false).expect_err("pop-before-mint bug must be caught");
        assert!(err.contains("announced quiescence"), "{err}");
    }

    #[test]
    fn busy_absorb_dissolves_exactly_one_token() {
        let t = super::Tokens::new(2);
        t.add(); // batch minted before send
        t.absorb(); // busy receiver dissolves it
        assert!(!t.release()); // first worker idles: one token left
        assert!(t.release()); // last worker idles: quiescence
    }
}

/// The same invariant against real atomics under loom's model checker.
/// Compiled only with `RUSTFLAGS="--cfg loom"`; requires vendoring the
/// `loom` crate (not present in this offline workspace) and listing it as a
/// dev-dependency of `strand-parallel`.
#[cfg(loom)]
mod loom_check {
    use loom::sync::atomic::{AtomicU64, Ordering};
    use loom::sync::Arc;
    use loom::thread;

    #[test]
    fn tokens_never_announce_with_batch_in_flight() {
        loom::model(|| {
            // Two busy workers; worker 0 sends one batch to worker 1 and
            // idles, worker 1 absorbs whatever arrived and idles.
            let tokens = Arc::new(AtomicU64::new(2));
            let queued = Arc::new(AtomicU64::new(0));

            let t0 = {
                let tokens = Arc::clone(&tokens);
                let queued = Arc::clone(&queued);
                thread::spawn(move || {
                    tokens.fetch_add(1, Ordering::AcqRel); // inc BEFORE send
                    queued.fetch_add(1, Ordering::AcqRel); // the send
                    let announce = tokens.fetch_sub(1, Ordering::AcqRel) == 1;
                    if announce {
                        assert_eq!(queued.load(Ordering::Acquire), 0);
                    }
                })
            };
            let t1 = {
                let tokens = Arc::clone(&tokens);
                let queued = Arc::clone(&queued);
                thread::spawn(move || {
                    if queued
                        .compare_exchange(1, 0, Ordering::AcqRel, Ordering::Acquire)
                        .is_ok()
                    {
                        tokens.fetch_sub(1, Ordering::AcqRel); // busy absorb
                    }
                    let announce = tokens.fetch_sub(1, Ordering::AcqRel) == 1;
                    if announce {
                        assert_eq!(queued.load(Ordering::Acquire), 0);
                    }
                })
            };
            t0.join().unwrap();
            t1.join().unwrap();
        });
    }
}
