//! Wall-clock timer wheel for resident fleets.
//!
//! Under `TimerSource::Virtual` an `after_unless` deadline is lazy: it fires
//! at quiescence, which is exactly the state a *resident* fleet parks in —
//! the deadline would wait forever for a wake that never comes. This module
//! gives the parallel backend a real clock: workers harvest
//! [`WallTimer`]s from their machines after every drain and register them
//! here; the idle-park arm consults [`TimerWheel::next_due`] before
//! blocking, parks with `recv_timeout` instead of `recv` when a deadline is
//! pending, and on timeout pops the due entries and fires them back into
//! the shard layer as regular gate-counted events (see
//! `Machine::fire_wall_timer`).
//!
//! Shape: a hashed wheel — entries land in `slot = (due / granularity) %
//! slots`, each slot behind its own mutex, so concurrent arming from many
//! workers rarely collides on a lock. The wheel is consulted only at park
//! boundaries (never per reduction), so reads scan every slot for the
//! minimum rather than maintaining a global order; with the tens of live
//! timers a supervised service holds, the scan is noise next to a park.
//!
//! Contracts the proptest below pins down:
//! - **never early**: `pop_due(now)` returns only entries with `due <= now`;
//! - **exactly once**: an entry is removed under its slot lock, so racing
//!   wakers never fire the same deadline twice;
//! - **cancellation**: entries whose unless-var is bound are pruned, not
//!   fired, whether the bind lands before `next_due` or between it and
//!   `pop_due`;
//! - **earliest wake**: `next_due` after pruning is exactly the minimum due
//!   time over live entries — what a fully parked fleet sleeps until.
//!
//! Granularity caveat: deadlines are millisecond-resolution (1 virtual tick
//! = [`TICK_MS`] ms) and the wheel promises *not early, possibly late* — a
//! fire can slip by scheduler latency plus the time a woken worker takes to
//! reach its park boundary. Equal deadlines fire in arm order (`seq`
//! breaks ties), which keeps replays stable but is an ordering between
//! *timers* only; no ordering is promised against regular work.

use parking_lot::Mutex;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::time::Instant;
use strand_core::Term;
use strand_machine::WallTimer;

/// Wall milliseconds per virtual tick: `after_unless(C, 500, T)` under
/// `TimerSource::WallClock` is a 500 ms deadline.
pub(crate) const TICK_MS: u64 = 1;

/// Slot count; a power of two so the hash is a mask-friendly modulo.
const SLOTS: usize = 64;

/// Slot width in milliseconds. Only placement hashes through this —
/// every entry keeps its exact due time, so granularity affects lock
/// spread, not firing precision.
const GRANULARITY_MS: u64 = 16;

struct Entry {
    /// Absolute due time, in ms since the wheel's epoch.
    due_ms: u64,
    /// Arm-order tiebreak for equal deadlines.
    seq: u64,
    timer: WallTimer,
}

/// The shared wheel; one per parallel run, hanging off `Shared`.
pub(crate) struct TimerWheel {
    slots: Vec<Mutex<Vec<Entry>>>,
    /// Live entry count (including not-yet-pruned cancelled entries); lets
    /// the park arm skip all locks on the common empty wheel.
    len: AtomicUsize,
    seq: AtomicU64,
    epoch: Instant,
}

impl TimerWheel {
    pub fn new() -> TimerWheel {
        TimerWheel {
            slots: (0..SLOTS).map(|_| Mutex::new(Vec::new())).collect(),
            len: AtomicUsize::new(0),
            seq: AtomicU64::new(0),
            epoch: Instant::now(),
        }
    }

    /// Milliseconds since the wheel's epoch — the `now` every method below
    /// speaks in.
    pub fn now_ms(&self) -> u64 {
        self.epoch.elapsed().as_millis() as u64
    }

    /// True when no entries (live or cancelled-but-unpruned) exist.
    pub fn is_empty(&self) -> bool {
        self.len.load(Ordering::SeqCst) == 0
    }

    /// Register a harvested deadline: due `wait` ticks from now.
    pub fn arm(&self, timer: WallTimer) {
        let due = self.now_ms() + timer.wait * TICK_MS;
        self.arm_at(due, timer);
    }

    /// Register a deadline at an absolute due time (tests drive virtual
    /// clocks through this).
    pub fn arm_at(&self, due_ms: u64, timer: WallTimer) {
        let seq = self.seq.fetch_add(1, Ordering::Relaxed);
        let slot = ((due_ms / GRANULARITY_MS) as usize) % SLOTS;
        self.slots[slot].lock().push(Entry { due_ms, seq, timer });
        self.len.fetch_add(1, Ordering::SeqCst);
    }

    /// Earliest live deadline, pruning cancelled entries on the way.
    /// Returns `(next_due_ms, cancelled_pruned)`; `None` means the wheel
    /// holds nothing worth waking for and the caller may park unbounded.
    pub fn next_due(&self, is_cancelled: impl Fn(&Term) -> bool) -> (Option<u64>, u64) {
        if self.is_empty() {
            return (None, 0);
        }
        let mut min: Option<u64> = None;
        let mut pruned = 0u64;
        for slot in &self.slots {
            let mut entries = slot.lock();
            entries.retain(|e| {
                if is_cancelled(&e.timer.cancel) {
                    pruned += 1;
                    false
                } else {
                    if min.is_none_or(|m| e.due_ms < m) {
                        min = Some(e.due_ms);
                    }
                    true
                }
            });
        }
        if pruned > 0 {
            self.len.fetch_sub(pruned as usize, Ordering::SeqCst);
        }
        (min, pruned)
    }

    /// Earliest deadline without pruning or cancellation checks — an upper
    /// bound used for the BUSY retry hint, where a slightly stale answer is
    /// fine and no store access is available.
    pub fn next_due_raw(&self) -> Option<u64> {
        if self.is_empty() {
            return None;
        }
        let mut min: Option<u64> = None;
        for slot in &self.slots {
            for e in slot.lock().iter() {
                if min.is_none_or(|m| e.due_ms < m) {
                    min = Some(e.due_ms);
                }
            }
        }
        min
    }

    /// Remove and return every live entry due at or before `now_ms`, in
    /// (due, arm-order) order; cancelled entries encountered on the way are
    /// pruned. Removal happens under the slot lock, so when several parked
    /// workers wake for the same deadline, exactly one pops each entry.
    /// Returns `(due_timers, cancelled_pruned)`.
    pub fn pop_due(
        &self,
        now_ms: u64,
        is_cancelled: impl Fn(&Term) -> bool,
    ) -> (Vec<WallTimer>, u64) {
        if self.is_empty() {
            return (Vec::new(), 0);
        }
        let mut fired: Vec<(u64, u64, WallTimer)> = Vec::new();
        let mut pruned = 0u64;
        for slot in &self.slots {
            let mut entries = slot.lock();
            entries.retain_mut(|e| {
                if is_cancelled(&e.timer.cancel) {
                    pruned += 1;
                    false
                } else if e.due_ms <= now_ms {
                    fired.push((e.due_ms, e.seq, e.timer.clone()));
                    false
                } else {
                    true
                }
            });
        }
        let removed = fired.len() + pruned as usize;
        if removed > 0 {
            self.len.fetch_sub(removed, Ordering::SeqCst);
        }
        fired.sort_by_key(|(due, seq, _)| (*due, *seq));
        (fired.into_iter().map(|(_, _, t)| t).collect(), pruned)
    }

    /// Drop every entry armed under `region` (its session closed; firing
    /// would touch reclaimed — possibly recycled — store slots). Returns
    /// how many entries were purged.
    pub fn purge_region(&self, region: u32) -> usize {
        if region == 0 || self.is_empty() {
            return 0;
        }
        let mut purged = 0usize;
        for slot in &self.slots {
            let mut entries = slot.lock();
            let before = entries.len();
            entries.retain(|e| e.timer.region != region);
            purged += before - entries.len();
        }
        if purged > 0 {
            self.len.fetch_sub(purged, Ordering::SeqCst);
        }
        purged
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use std::collections::HashSet;
    use strand_core::NodeId;

    /// Test entries key their cancel flag with an integer term, so a plain
    /// set stands in for "the unless-var is bound" without a store.
    fn entry(key: i64, region: u32) -> WallTimer {
        WallTimer {
            node: NodeId(0),
            wait: 0,
            cancel: Term::int(key),
            timeout: Term::atom("t"),
            region,
        }
    }

    fn key_of(t: &Term) -> i64 {
        match t {
            Term::Int(k) => *k,
            _ => panic!("test entries key cancels by integer"),
        }
    }

    fn never(_: &Term) -> bool {
        false
    }

    #[test]
    fn empty_wheel_answers_without_locking() {
        let w = TimerWheel::new();
        assert!(w.is_empty());
        assert_eq!(w.next_due(never), (None, 0));
        assert_eq!(w.next_due_raw(), None);
        assert!(w.pop_due(u64::MAX, never).0.is_empty());
    }

    #[test]
    fn next_due_is_the_minimum_across_slots() {
        let w = TimerWheel::new();
        // Spread across distinct slots (and one same-slot collision).
        for (i, due) in [500u64, 40, 41, 1_000_000, 80].into_iter().enumerate() {
            w.arm_at(due, entry(i as i64, 0));
        }
        assert_eq!(w.next_due(never).0, Some(40));
        assert_eq!(w.next_due_raw(), Some(40));
    }

    #[test]
    fn pop_due_fires_in_deadline_then_arm_order_and_never_early() {
        let w = TimerWheel::new();
        w.arm_at(30, entry(0, 0));
        w.arm_at(10, entry(1, 0));
        w.arm_at(10, entry(2, 0));
        w.arm_at(50, entry(3, 0));
        let (fired, _) = w.pop_due(29, never);
        let keys: Vec<i64> = fired.iter().map(|t| key_of(&t.cancel)).collect();
        assert_eq!(
            keys,
            vec![1, 2],
            "due<=29 only, equal deadlines in arm order"
        );
        let (fired, _) = w.pop_due(100, never);
        let keys: Vec<i64> = fired.iter().map(|t| key_of(&t.cancel)).collect();
        assert_eq!(keys, vec![0, 3]);
        assert!(w.is_empty());
    }

    #[test]
    fn cancelled_entries_prune_instead_of_firing() {
        let w = TimerWheel::new();
        w.arm_at(10, entry(0, 0));
        w.arm_at(20, entry(1, 0));
        let cancelled = |t: &Term| key_of(t) == 0;
        let (next, pruned) = w.next_due(cancelled);
        assert_eq!((next, pruned), (Some(20), 1));
        let (fired, pruned) = w.pop_due(100, cancelled);
        assert_eq!(pruned, 0, "already pruned by next_due");
        assert_eq!(fired.len(), 1);
        assert_eq!(key_of(&fired[0].cancel), 1);
        assert!(w.is_empty());
    }

    #[test]
    fn purge_region_drops_a_sessions_entries_only() {
        let w = TimerWheel::new();
        w.arm_at(10, entry(0, 7));
        w.arm_at(20, entry(1, 0));
        w.arm_at(30, entry(2, 7));
        assert_eq!(w.purge_region(7), 2);
        assert_eq!(w.purge_region(0), 0, "region 0 is never purged");
        let (fired, _) = w.pop_due(100, never);
        assert_eq!(fired.len(), 1);
        assert_eq!(key_of(&fired[0].cancel), 1);
    }

    proptest! {
        /// The tentpole contract, pinned by name in the nightly TSan job:
        /// deadlines never fire early, fire exactly once under cancellation
        /// races, and the earliest live deadline is exactly what a parked
        /// fleet would sleep until.
        #[test]
        fn timer_wheel_fires_exactly_once_never_early(
            dues in proptest::collection::vec(0u64..200, 1..40),
            cancel_mask in proptest::collection::vec(0u8..4, 1..40),
            step in 1u64..37,
        ) {
            let w = TimerWheel::new();
            let mut cancelled: HashSet<i64> = HashSet::new();
            for (i, due) in dues.iter().enumerate() {
                w.arm_at(*due, entry(i as i64, 0));
                // ~25% of entries get cancelled before any clock advance.
                if cancel_mask.get(i).copied().unwrap_or(0) == 0 {
                    cancelled.insert(i as i64);
                }
            }
            let is_cancelled = |t: &Term| cancelled.contains(&key_of(t));
            let mut fired_keys: Vec<i64> = Vec::new();
            let mut round = 0u64;
            loop {
                // Clamp the sweep so the final pop lands exactly on the
                // horizon — every due < 200 must have had its chance.
                let now = (round * step).min(220);
                // The park arm's contract: next_due is the min due over
                // entries that are uncancelled and not yet fired.
                let (next, _) = w.next_due(is_cancelled);
                let expect_min = dues.iter().enumerate()
                    .filter(|(i, _)| {
                        !cancelled.contains(&(*i as i64))
                            && !fired_keys.contains(&(*i as i64))
                    })
                    .map(|(_, due)| *due)
                    .min();
                prop_assert_eq!(next, expect_min);
                let (fired, _) = w.pop_due(now, is_cancelled);
                for t in &fired {
                    let k = key_of(&t.cancel);
                    // Never early.
                    prop_assert!(dues[k as usize] <= now,
                        "entry {} due {} fired at {}", k, dues[k as usize], now);
                    // Never cancelled.
                    prop_assert!(!cancelled.contains(&k));
                    // Exactly once.
                    prop_assert!(!fired_keys.contains(&k), "entry {} fired twice", k);
                    fired_keys.push(k);
                }
                if now >= 220 {
                    break;
                }
                round += 1;
            }
            // Everything uncancelled fired by the horizon.
            let expected: HashSet<i64> = (0..dues.len() as i64)
                .filter(|k| !cancelled.contains(k))
                .collect();
            let got: HashSet<i64> = fired_keys.iter().copied().collect();
            prop_assert_eq!(got, expected);
            prop_assert!(w.is_empty());
        }
    }
}
