//! Property tests: pretty-printing round-trips through the parser for
//! arbitrarily generated programs, and the compiler accepts everything the
//! parser produces (minus unresolved pragmas).

use proptest::prelude::*;
use strand_parse::{compile_program, parse_program, pretty, Annotation, Ast, Call, Program, Rule};

/// Strategy: plausible identifier atoms.
fn atom_name() -> impl Strategy<Value = String> {
    "[a-z][a-z0-9_]{0,5}"
}

fn var_name() -> impl Strategy<Value = String> {
    "[A-Z][a-z0-9]{0,4}"
}

/// Strategy: arbitrary surface terms (no operators — those are covered by
/// targeted unit tests; operator round-tripping is checked via parse).
fn ast() -> impl Strategy<Value = Ast> {
    let leaf = prop_oneof![
        var_name().prop_map(Ast::var),
        atom_name().prop_map(Ast::atom),
        any::<i16>().prop_map(|i| Ast::Int(i as i64)),
        Just(Ast::Wild),
        Just(Ast::Nil),
        "[ -~&&[^\"\\\\']]{0,6}".prop_map(Ast::Str),
    ];
    leaf.prop_recursive(3, 16, 3, |inner| {
        prop_oneof![
            (atom_name(), proptest::collection::vec(inner.clone(), 1..4))
                .prop_map(|(n, args)| Ast::tuple(n, args)),
            proptest::collection::vec(inner, 0..3).prop_map(Ast::list),
        ]
    })
}

fn call() -> impl Strategy<Value = Call> {
    (
        atom_name(),
        proptest::collection::vec(ast(), 0..3),
        prop_oneof![
            Just(None),
            Just(Some(Annotation::Random)),
            Just(Some(Annotation::Task)),
            ast()
                .prop_filter("placement must be var/int/atom", |a| matches!(
                    a,
                    Ast::Var(_) | Ast::Int(_)
                ))
                .prop_map(|a| Some(Annotation::Node(a))),
        ],
    )
        .prop_map(|(name, args, annotation)| Call {
            goal: Ast::tuple(name, args),
            annotation,
        })
}

fn rule() -> impl Strategy<Value = Rule> {
    (
        atom_name(),
        proptest::collection::vec(ast(), 0..3),
        proptest::collection::vec(call(), 0..4),
    )
        .prop_map(|(name, head_args, body)| Rule {
            head: Ast::tuple(name, head_args),
            guards: vec![],
            body,
        })
}

fn program() -> impl Strategy<Value = Program> {
    proptest::collection::vec(rule(), 1..8).prop_map(|rules| {
        let mut p = Program::new();
        for r in rules {
            p.push_rule(r);
        }
        p
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// pretty ∘ parse = identity on generated programs.
    #[test]
    fn pretty_then_parse_roundtrips(p in program()) {
        let printed = pretty(&p);
        let reparsed = parse_program(&printed)
            .unwrap_or_else(|e| panic!("printed program failed to reparse: {e}\n{printed}"));
        prop_assert_eq!(p, reparsed);
    }

    /// The compiler accepts any pragma-free parsed program.
    #[test]
    fn compiler_accepts_pragma_free_programs(p in program()) {
        let has_pragma = p.rules().any(|r| {
            r.body.iter().any(|c| matches!(
                c.annotation,
                Some(Annotation::Random) | Some(Annotation::Task)
            ))
        });
        let result = compile_program(&p);
        if has_pragma {
            prop_assert!(result.is_err(), "pragmas must be rejected");
        } else {
            prop_assert!(result.is_ok(), "{:?}", result.err());
        }
    }

    /// Guard expressions round-trip with operators at every precedence.
    #[test]
    fn guarded_rules_roundtrip(a in -99i64..99, b in -99i64..99, c in 1i64..9) {
        let src = format!(
            "f(N) :- N > {a} | X := N * {b} + {c}, Y := (N + {a}) * {c}, g(X, Y).\n"
        );
        let p = parse_program(&src).unwrap();
        let printed = pretty(&p);
        prop_assert_eq!(parse_program(&printed).unwrap(), p);
    }
}

#[test]
fn union_is_associative_on_disjoint_programs() {
    let a = parse_program("a(1).").unwrap();
    let b = parse_program("b(2).").unwrap();
    let c = parse_program("c(3).").unwrap();
    assert_eq!(a.union(&b).union(&c), a.union(&b.union(&c)));
}
