//! Tokenizer for the motif language.

use std::fmt;

/// A lexical token.
#[derive(Clone, Debug, PartialEq)]
pub enum Tok {
    Var(String),
    Wild,
    Int(i64),
    Float(f64),
    Atom(String),
    Str(String),
    LParen,
    RParen,
    LBracket,
    RBracket,
    Comma,
    Bar,
    Dot,
    Implies, // :-
    Assign,  // :=
    Eq,      // =
    EqEq,    // ==
    Neq,     // =\=
    Lt,
    Gt,
    Le, // =< (also accepts <=)
    Ge, // >=
    Plus,
    Minus,
    Star,
    Slash,
    At,
    Eof,
}

impl fmt::Display for Tok {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Tok::Var(v) => write!(f, "{v}"),
            Tok::Wild => write!(f, "_"),
            Tok::Int(i) => write!(f, "{i}"),
            Tok::Float(x) => write!(f, "{x}"),
            Tok::Atom(a) => write!(f, "{a}"),
            Tok::Str(s) => write!(f, "{s:?}"),
            Tok::LParen => write!(f, "("),
            Tok::RParen => write!(f, ")"),
            Tok::LBracket => write!(f, "["),
            Tok::RBracket => write!(f, "]"),
            Tok::Comma => write!(f, ","),
            Tok::Bar => write!(f, "|"),
            Tok::Dot => write!(f, "."),
            Tok::Implies => write!(f, ":-"),
            Tok::Assign => write!(f, ":="),
            Tok::Eq => write!(f, "="),
            Tok::EqEq => write!(f, "=="),
            Tok::Neq => write!(f, "=\\="),
            Tok::Lt => write!(f, "<"),
            Tok::Gt => write!(f, ">"),
            Tok::Le => write!(f, "=<"),
            Tok::Ge => write!(f, ">="),
            Tok::Plus => write!(f, "+"),
            Tok::Minus => write!(f, "-"),
            Tok::Star => write!(f, "*"),
            Tok::Slash => write!(f, "/"),
            Tok::At => write!(f, "@"),
            Tok::Eof => write!(f, "<eof>"),
        }
    }
}

/// A token with its source position (1-based line and column).
#[derive(Clone, Debug, PartialEq)]
pub struct Spanned {
    pub tok: Tok,
    pub line: u32,
    pub col: u32,
}

/// Lexical error with position.
#[derive(Clone, Debug, PartialEq)]
pub struct LexError {
    pub message: String,
    pub line: u32,
    pub col: u32,
}

impl fmt::Display for LexError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "lex error at {}:{}: {}",
            self.line, self.col, self.message
        )
    }
}

impl std::error::Error for LexError {}

struct Lexer<'a> {
    src: &'a [u8],
    pos: usize,
    line: u32,
    col: u32,
}

/// Tokenize a full source text.
pub fn lex(src: &str) -> Result<Vec<Spanned>, LexError> {
    let mut lx = Lexer {
        src: src.as_bytes(),
        pos: 0,
        line: 1,
        col: 1,
    };
    let mut out = Vec::new();
    loop {
        let t = lx.next_token()?;
        let eof = t.tok == Tok::Eof;
        out.push(t);
        if eof {
            return Ok(out);
        }
    }
}

impl<'a> Lexer<'a> {
    fn peek(&self) -> Option<u8> {
        self.src.get(self.pos).copied()
    }

    fn peek2(&self) -> Option<u8> {
        self.src.get(self.pos + 1).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let c = self.peek()?;
        self.pos += 1;
        if c == b'\n' {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
        Some(c)
    }

    fn err(&self, message: impl Into<String>) -> LexError {
        LexError {
            message: message.into(),
            line: self.line,
            col: self.col,
        }
    }

    fn skip_trivia(&mut self) {
        loop {
            match self.peek() {
                Some(c) if c.is_ascii_whitespace() => {
                    self.bump();
                }
                Some(b'%') => {
                    while let Some(c) = self.peek() {
                        if c == b'\n' {
                            break;
                        }
                        self.bump();
                    }
                }
                _ => return,
            }
        }
    }

    fn next_token(&mut self) -> Result<Spanned, LexError> {
        self.skip_trivia();
        let (line, col) = (self.line, self.col);
        let mk = |tok| Spanned { tok, line, col };
        let c = match self.peek() {
            None => return Ok(mk(Tok::Eof)),
            Some(c) => c,
        };
        let tok = match c {
            b'(' => {
                self.bump();
                Tok::LParen
            }
            b')' => {
                self.bump();
                Tok::RParen
            }
            b'[' => {
                self.bump();
                Tok::LBracket
            }
            b']' => {
                self.bump();
                Tok::RBracket
            }
            b',' => {
                self.bump();
                Tok::Comma
            }
            b'|' => {
                self.bump();
                Tok::Bar
            }
            b'@' => {
                self.bump();
                Tok::At
            }
            b'+' => {
                self.bump();
                Tok::Plus
            }
            b'-' => {
                self.bump();
                Tok::Minus
            }
            b'*' => {
                self.bump();
                Tok::Star
            }
            b'/' => {
                self.bump();
                Tok::Slash
            }
            b'>' => {
                self.bump();
                if self.peek() == Some(b'=') {
                    self.bump();
                    Tok::Ge
                } else {
                    Tok::Gt
                }
            }
            b'<' => {
                self.bump();
                if self.peek() == Some(b'=') {
                    self.bump();
                    Tok::Le
                } else {
                    Tok::Lt
                }
            }
            b'=' => {
                self.bump();
                match self.peek() {
                    Some(b'=') => {
                        self.bump();
                        Tok::EqEq
                    }
                    Some(b'<') => {
                        self.bump();
                        Tok::Le
                    }
                    Some(b'\\') => {
                        self.bump();
                        if self.peek() == Some(b'=') {
                            self.bump();
                            Tok::Neq
                        } else {
                            return Err(self.err("expected `=` after `=\\`"));
                        }
                    }
                    _ => Tok::Eq,
                }
            }
            b':' => {
                self.bump();
                match self.peek() {
                    Some(b'-') => {
                        self.bump();
                        Tok::Implies
                    }
                    Some(b'=') => {
                        self.bump();
                        Tok::Assign
                    }
                    _ => return Err(self.err("expected `:-` or `:=`")),
                }
            }
            b'.' => {
                // End-of-clause dot. (Floats are lexed starting from a digit.)
                self.bump();
                Tok::Dot
            }
            b'"' => self.lex_string()?,
            b'\'' => self.lex_quoted_atom()?,
            b'_' => {
                // `_` alone is the wildcard; `_Foo` is a named variable.
                let word = self.lex_word();
                if word == "_" {
                    Tok::Wild
                } else {
                    Tok::Var(word)
                }
            }
            c if c.is_ascii_uppercase() => Tok::Var(self.lex_word()),
            c if c.is_ascii_lowercase() => Tok::Atom(self.lex_word()),
            c if c.is_ascii_digit() => self.lex_number()?,
            other => {
                return Err(self.err(format!("unexpected character {:?}", other as char)));
            }
        };
        Ok(mk(tok))
    }

    fn lex_word(&mut self) -> String {
        let start = self.pos;
        while let Some(c) = self.peek() {
            if c.is_ascii_alphanumeric() || c == b'_' {
                self.bump();
            } else {
                break;
            }
        }
        String::from_utf8_lossy(&self.src[start..self.pos]).into_owned()
    }

    fn lex_number(&mut self) -> Result<Tok, LexError> {
        let start = self.pos;
        while self.peek().is_some_and(|c| c.is_ascii_digit()) {
            self.bump();
        }
        // A float only if `.` is followed by a digit — otherwise the dot
        // terminates the clause (`f(3).`).
        let mut is_float = false;
        if self.peek() == Some(b'.') && self.peek2().is_some_and(|c| c.is_ascii_digit()) {
            is_float = true;
            self.bump();
            while self.peek().is_some_and(|c| c.is_ascii_digit()) {
                self.bump();
            }
        }
        if matches!(self.peek(), Some(b'e') | Some(b'E'))
            && (self.peek2().is_some_and(|c| c.is_ascii_digit())
                || (matches!(self.peek2(), Some(b'+') | Some(b'-'))
                    && self
                        .src
                        .get(self.pos + 2)
                        .is_some_and(|c| c.is_ascii_digit())))
        {
            is_float = true;
            self.bump();
            if matches!(self.peek(), Some(b'+') | Some(b'-')) {
                self.bump();
            }
            while self.peek().is_some_and(|c| c.is_ascii_digit()) {
                self.bump();
            }
        }
        let text = String::from_utf8_lossy(&self.src[start..self.pos]).into_owned();
        if is_float {
            text.parse::<f64>()
                .map(Tok::Float)
                .map_err(|e| self.err(format!("bad float literal {text}: {e}")))
        } else {
            text.parse::<i64>()
                .map(Tok::Int)
                .map_err(|e| self.err(format!("bad integer literal {text}: {e}")))
        }
    }

    fn lex_string(&mut self) -> Result<Tok, LexError> {
        self.lex_delimited(b'"').map(Tok::Str)
    }

    fn lex_quoted_atom(&mut self) -> Result<Tok, LexError> {
        self.lex_delimited(b'\'').map(Tok::Atom)
    }

    fn lex_delimited(&mut self, delim: u8) -> Result<String, LexError> {
        self.bump(); // opening delimiter
        let mut out = String::new();
        loop {
            match self.bump() {
                None => return Err(self.err("unterminated literal")),
                Some(c) if c == delim => return Ok(out),
                Some(b'\\') => match self.bump() {
                    Some(b'n') => out.push('\n'),
                    Some(b't') => out.push('\t'),
                    Some(b'\\') => out.push('\\'),
                    Some(c) if c == delim => out.push(c as char),
                    Some(c) => {
                        return Err(self.err(format!("unknown escape \\{}", c as char)));
                    }
                    None => return Err(self.err("unterminated escape")),
                },
                Some(c) => out.push(c as char),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toks(src: &str) -> Vec<Tok> {
        lex(src).unwrap().into_iter().map(|s| s.tok).collect()
    }

    #[test]
    fn lexes_rule_skeleton() {
        let t = toks("producer(N,Xs) :- N > 0 | Xs := [X|Xs1].");
        assert_eq!(
            t,
            vec![
                Tok::Atom("producer".into()),
                Tok::LParen,
                Tok::Var("N".into()),
                Tok::Comma,
                Tok::Var("Xs".into()),
                Tok::RParen,
                Tok::Implies,
                Tok::Var("N".into()),
                Tok::Gt,
                Tok::Int(0),
                Tok::Bar,
                Tok::Var("Xs".into()),
                Tok::Assign,
                Tok::LBracket,
                Tok::Var("X".into()),
                Tok::Bar,
                Tok::Var("Xs1".into()),
                Tok::RBracket,
                Tok::Dot,
                Tok::Eof,
            ]
        );
    }

    #[test]
    fn comments_are_skipped() {
        let t = toks("% a comment\nhalt. % trailing\n");
        assert_eq!(t, vec![Tok::Atom("halt".into()), Tok::Dot, Tok::Eof]);
    }

    #[test]
    fn numbers_and_end_dot() {
        assert_eq!(
            toks("f(3)."),
            vec![
                Tok::Atom("f".into()),
                Tok::LParen,
                Tok::Int(3),
                Tok::RParen,
                Tok::Dot,
                Tok::Eof
            ]
        );
        assert_eq!(toks("3.25")[0], Tok::Float(3.25));
        assert_eq!(toks("1e3")[0], Tok::Float(1000.0));
        assert_eq!(toks("2.5e-1")[0], Tok::Float(0.25));
        // `3.` is the integer 3 followed by the clause terminator.
        assert_eq!(toks("3."), vec![Tok::Int(3), Tok::Dot, Tok::Eof]);
    }

    #[test]
    fn comparison_operators() {
        assert_eq!(
            toks("=< >= == =\\= < > = := :-"),
            vec![
                Tok::Le,
                Tok::Ge,
                Tok::EqEq,
                Tok::Neq,
                Tok::Lt,
                Tok::Gt,
                Tok::Eq,
                Tok::Assign,
                Tok::Implies,
                Tok::Eof
            ]
        );
        // `<=` is accepted as =<.
        assert_eq!(toks("<=")[0], Tok::Le);
    }

    #[test]
    fn strings_and_quoted_atoms() {
        assert_eq!(toks(r#""+a\n""#)[0], Tok::Str("+a\n".into()));
        assert_eq!(toks("'weird atom'")[0], Tok::Atom("weird atom".into()));
        assert_eq!(toks("'+'")[0], Tok::Atom("+".into()));
    }

    #[test]
    fn wildcard_vs_named_underscore() {
        assert_eq!(toks("_")[0], Tok::Wild);
        assert_eq!(toks("_Tmp")[0], Tok::Var("_Tmp".into()));
    }

    #[test]
    fn error_positions() {
        let e = lex("f(\n  #)").unwrap_err();
        assert_eq!(e.line, 2);
        assert!(e.message.contains('#'));
    }

    #[test]
    fn unterminated_string_errors() {
        assert!(lex("\"abc").is_err());
    }
}
