//! Compiler from the surface AST to the executable pattern form.
//!
//! Each rule's named variables are mapped to dense local slots
//! ([`strand_core::Pat::Local`]); guards and body goals become pattern
//! templates instantiated per reduction. Compilation also performs the
//! sanity checks the machine relies on:
//!
//! * `otherwise` must be a rule's only guard;
//! * the `@random` pragma must have been transformed away (applying the
//!   `Rand` motif) — it is a *pragma*, not an executable construct (§3.3);
//! * singleton variables are reported as warnings (the classic
//!   concurrent-logic lint: a variable used once is usually a typo).

use crate::ast::{Annotation, Ast, Program, Rule};
use std::collections::HashMap;
use std::fmt;
use strand_core::{Atom, FxHashMap, Pat};

/// Compilation error.
#[derive(Clone, Debug, PartialEq)]
pub enum CompileError {
    /// `Goal@random` survived to compilation.
    UnresolvedRandomPragma { procedure: String },
    /// `Goal@task` survived to compilation.
    UnresolvedTaskPragma { procedure: String },
    /// `otherwise` mixed with other guards.
    MalformedOtherwise { procedure: String },
    /// More rule-local variables than the slot width allows (u16).
    TooManyLocals { procedure: String },
}

impl fmt::Display for CompileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CompileError::UnresolvedRandomPragma { procedure } => write!(
                f,
                "procedure {procedure}: `@random` is a pragma, not an executable construct; \
                 apply the Rand motif transformation before running"
            ),
            CompileError::UnresolvedTaskPragma { procedure } => write!(
                f,
                "procedure {procedure}: `@task` is a pragma, not an executable construct; \
                 apply the Sched motif transformation before running"
            ),
            CompileError::MalformedOtherwise { procedure } => write!(
                f,
                "procedure {procedure}: `otherwise` must be a rule's only guard"
            ),
            CompileError::TooManyLocals { procedure } => {
                write!(f, "procedure {procedure}: too many rule-local variables")
            }
        }
    }
}

impl std::error::Error for CompileError {}

/// A compiled body call: a goal template plus optional placement template.
#[derive(Clone, Debug, PartialEq)]
pub struct CompiledCall {
    pub goal: Pat,
    /// `Some(expr)` for `Goal@expr`; the machine evaluates the expression to
    /// a node number at reduction time.
    pub placement: Option<Pat>,
}

/// A compiled rule.
#[derive(Clone, Debug, PartialEq)]
pub struct CompiledRule {
    pub head: Vec<Pat>,
    pub guards: Vec<Pat>,
    pub body: Vec<CompiledCall>,
    pub n_locals: u16,
    /// True for `H :- otherwise | B` rules: applies only when every other
    /// rule has definitively failed (not suspended).
    pub otherwise: bool,
}

/// A compiled procedure.
#[derive(Clone, Debug, PartialEq)]
pub struct CompiledProc {
    pub name: String,
    pub arity: usize,
    pub rules: Vec<CompiledRule>,
}

/// A compiled program, indexed by name/arity.
///
/// Procedures are keyed by [`Atom`] name with a small per-name vector of
/// arities. `Atom` hashes and compares as its string content and implements
/// `Borrow<str>`, so [`CompiledProgram::get`] is allocation-free, and the
/// table uses [`strand_core::fxhash`] — this lookup sits on the machine's
/// per-reduction hot path.
#[derive(Clone, Debug, Default)]
pub struct CompiledProgram {
    procs: FxHashMap<Atom, Vec<CompiledProc>>,
    /// Singleton-variable warnings, as `procedure: VarName` strings.
    pub warnings: Vec<String>,
}

impl CompiledProgram {
    /// Look up a procedure by name and arity.
    pub fn get(&self, name: &str, arity: usize) -> Option<&CompiledProc> {
        self.procs.get(name)?.iter().find(|p| p.arity == arity)
    }

    /// Iterate over all procedures, in unspecified order.
    pub fn procs(&self) -> impl Iterator<Item = &CompiledProc> {
        self.procs.values().flatten()
    }

    /// Number of procedures.
    pub fn len(&self) -> usize {
        self.procs.values().map(Vec::len).sum()
    }

    /// True if no procedures were compiled.
    pub fn is_empty(&self) -> bool {
        self.procs.is_empty()
    }
}

/// Compile a program.
pub fn compile_program(p: &Program) -> Result<CompiledProgram, CompileError> {
    let mut out = CompiledProgram::default();
    for proc in p.procedures() {
        let mut rules = Vec::with_capacity(proc.rules.len());
        for rule in &proc.rules {
            rules.push(compile_rule(rule, &proc.name, &mut out.warnings)?);
        }
        let slot = out.procs.entry(Atom::new(proc.name.as_str())).or_default();
        slot.retain(|p| p.arity != proc.arity);
        slot.push(CompiledProc {
            name: proc.name.clone(),
            arity: proc.arity,
            rules,
        });
    }
    Ok(out)
}

struct Slots {
    map: HashMap<String, u16>,
    uses: HashMap<String, u32>,
}

impl Slots {
    fn slot(&mut self, name: &str) -> u16 {
        *self.uses.entry(name.to_string()).or_insert(0) += 1;
        if let Some(i) = self.map.get(name) {
            return *i;
        }
        let i = self.map.len() as u16;
        self.map.insert(name.to_string(), i);
        i
    }
}

fn compile_rule(
    rule: &Rule,
    proc_name: &str,
    warnings: &mut Vec<String>,
) -> Result<CompiledRule, CompileError> {
    let mut slots = Slots {
        map: HashMap::new(),
        uses: HashMap::new(),
    };

    // Pre-count: u16 slots bound the variable count per rule.
    if rule
        .head
        .vars()
        .len()
        .saturating_add(rule.body.iter().map(|c| c.goal.vars().len()).sum())
        > u16::MAX as usize
    {
        return Err(CompileError::TooManyLocals {
            procedure: proc_name.to_string(),
        });
    }

    let head: Vec<Pat> = rule
        .head
        .args()
        .iter()
        .map(|a| ast_to_pat(a, &mut slots))
        .collect();

    let otherwise = rule.is_otherwise();
    if !otherwise
        && rule
            .guards
            .iter()
            .any(|g| matches!(g, Ast::Atom(a) if a == "otherwise"))
    {
        return Err(CompileError::MalformedOtherwise {
            procedure: proc_name.to_string(),
        });
    }
    let guards: Vec<Pat> = if otherwise {
        Vec::new()
    } else {
        rule.guards
            .iter()
            .map(|g| ast_to_pat(g, &mut slots))
            .collect()
    };

    let mut body = Vec::with_capacity(rule.body.len());
    for call in &rule.body {
        let placement = match &call.annotation {
            None => None,
            Some(Annotation::Node(e)) => Some(ast_to_pat(e, &mut slots)),
            Some(Annotation::Random) => {
                return Err(CompileError::UnresolvedRandomPragma {
                    procedure: proc_name.to_string(),
                })
            }
            Some(Annotation::Task) => {
                return Err(CompileError::UnresolvedTaskPragma {
                    procedure: proc_name.to_string(),
                })
            }
        };
        body.push(CompiledCall {
            goal: ast_to_pat(&call.goal, &mut slots),
            placement,
        });
    }

    for (name, uses) in &slots.uses {
        if *uses == 1 && !name.starts_with('_') {
            warnings.push(format!("{proc_name}: singleton variable {name}"));
        }
    }

    Ok(CompiledRule {
        head,
        guards,
        body,
        n_locals: slots.map.len() as u16,
        otherwise,
    })
}

fn ast_to_pat(a: &Ast, slots: &mut Slots) -> Pat {
    match a {
        Ast::Var(v) => Pat::Local(slots.slot(v)),
        Ast::Wild => Pat::Wild,
        Ast::Int(i) => Pat::Int(*i),
        Ast::Float(x) => Pat::Float(*x),
        Ast::Atom(s) => Pat::Atom(Atom::new(s.as_str())),
        Ast::Str(s) => Pat::Str(s.as_str().into()),
        Ast::Nil => Pat::Nil,
        Ast::Tuple(name, args) => Pat::tuple(
            Atom::new(name.as_str()),
            args.iter().map(|x| ast_to_pat(x, slots)).collect(),
        ),
        Ast::List(h, t) => Pat::cons(ast_to_pat(h, slots), ast_to_pat(t, slots)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_program;

    #[test]
    fn compiles_producer_consumer() {
        let p = parse_program(
            "producer(N, Xs, _) :- N > 0 | Xs := [X|Xs1], N1 := N - 1, producer(N1, Xs1, X).",
        )
        .unwrap();
        let c = compile_program(&p).unwrap();
        let proc = c.get("producer", 3).unwrap();
        let r = &proc.rules[0];
        assert_eq!(r.head.len(), 3);
        assert_eq!(r.guards.len(), 1);
        assert_eq!(r.body.len(), 3);
        // N, Xs, X, Xs1, N1 = five named locals.
        assert_eq!(r.n_locals, 5);
        assert!(!r.otherwise);
    }

    #[test]
    fn shared_variables_share_slots() {
        let p = parse_program("f(X, X).").unwrap();
        let c = compile_program(&p).unwrap();
        let r = &c.get("f", 2).unwrap().rules[0];
        assert_eq!(r.head, vec![Pat::Local(0), Pat::Local(0)]);
        assert_eq!(r.n_locals, 1);
    }

    #[test]
    fn random_pragma_is_rejected() {
        let p = parse_program("r(T) :- reduce(T, V)@random, use(V).").unwrap();
        let e = compile_program(&p).unwrap_err();
        assert!(matches!(e, CompileError::UnresolvedRandomPragma { .. }));
        assert!(e.to_string().contains("Rand motif"));
    }

    #[test]
    fn placement_expression_compiles() {
        let p = parse_program("r(T, J) :- go(T)@J.").unwrap();
        let c = compile_program(&p).unwrap();
        let r = &c.get("r", 2).unwrap().rules[0];
        assert!(r.body[0].placement.is_some());
        // The placement shares the rule's local slots: J is one variable.
        assert_eq!(r.n_locals, 2);
    }

    #[test]
    fn otherwise_compiles_to_flag() {
        let p = parse_program("f(X) :- otherwise | g(X).").unwrap();
        let c = compile_program(&p).unwrap();
        let r = &c.get("f", 1).unwrap().rules[0];
        assert!(r.otherwise);
        assert!(r.guards.is_empty());

        let bad = parse_program("f(X) :- otherwise, X > 0 | g(X).").unwrap();
        assert!(matches!(
            compile_program(&bad),
            Err(CompileError::MalformedOtherwise { .. })
        ));
    }

    #[test]
    fn singleton_warning_reported() {
        let p = parse_program("f(X, Y) :- g(X).").unwrap();
        let c = compile_program(&p).unwrap();
        assert!(c
            .warnings
            .iter()
            .any(|w| w.contains("singleton variable Y")));
        // Underscore-prefixed names are exempt.
        let p = parse_program("f(X, _Unused) :- g(X).").unwrap();
        let c = compile_program(&p).unwrap();
        assert!(c.warnings.is_empty());
    }
}
