//! # strand-parse
//!
//! Surface syntax for the motif language: lexer, parser, pretty-printer and
//! the compiler from the *surface AST* (named variables, the form that
//! source-to-source transformations manipulate) down to the `strand-core`
//! pattern form executed by the abstract machine.
//!
//! The syntax follows the paper (§2.1):
//!
//! ```text
//! % a guarded rule
//! producer(N, Xs, Sync) :- N > 0 |
//!     Xs := [X|Xs1], N1 := N - 1, producer(N1, Xs1, X).
//! producer(0, Xs, _) :- Xs := [].
//! ```
//!
//! * `Head :- Guards | Body.` — guards optional (`Head :- Body.`), body
//!   optional (`Head.`).
//! * Variables start with an uppercase letter or `_`; `_` alone is the
//!   anonymous wildcard.
//! * `X := E` is assignment: arithmetic when `E` is an arithmetic
//!   expression, data otherwise (the paper uses it for both). `X = T` is
//!   always data assignment.
//! * A body call may carry a placement annotation `Goal@Expr` (the paper's
//!   low-level placement feature) or the pragma `Goal@random`, which only
//!   becomes executable after the `Rand` motif transformation.
//! * `%` starts a comment.
//!
//! Programs are ordinary data ([`Program`]), so transformations are plain
//! Rust functions over them — the programs-as-terms architecture of §2.2.

pub mod ast;
pub mod compile;
pub mod lexer;
pub mod lint;
pub mod parser;
pub mod printer;

pub use ast::{Annotation, Ast, Call, Procedure, Program, Rule};
pub use compile::{compile_program, CompiledCall, CompiledProc, CompiledProgram, CompiledRule};
pub use lint::{lint, Lint, LintKind, MACHINE_BUILTINS, MOTIF_PRIMITIVES};
pub use parser::{parse_program, parse_term, ParseError};
pub use printer::pretty;
