//! Pretty-printer.
//!
//! Motif libraries are meant to be read (*"archives of expertise that can be
//! consulted, modified, and extended"*, §1), and the composition experiments
//! (Figure 5) are golden-tested against printed output, so printing is
//! deterministic: one clause per rule, guards before `|`, bodies indented,
//! operators infix with minimal parentheses.

use crate::ast::{Annotation, Ast, Call, Program, Rule};
use std::fmt;

/// Binding strength used to decide parenthesization.
fn op_prec(name: &str, arity: usize) -> Option<u8> {
    match (name, arity) {
        (":=" | "=" | "==" | "=\\=" | "<" | ">" | "=<" | ">=", 2) => Some(1),
        ("+" | "-", 2) => Some(2),
        ("*" | "/" | "mod", 2) => Some(3),
        ("-", 1) => Some(4),
        _ => None,
    }
}

/// Format a term at a given minimum precedence.
fn fmt_at(t: &Ast, min: u8, f: &mut fmt::Formatter<'_>) -> fmt::Result {
    match t {
        Ast::Tuple(name, args) => {
            if let Some(prec) = op_prec(name, args.len()) {
                let need_parens = prec < min;
                if need_parens {
                    write!(f, "(")?;
                }
                if args.len() == 2 {
                    // Left-associative: left child may be same precedence,
                    // right child must bind tighter.
                    fmt_at(&args[0], prec, f)?;
                    write!(f, " {name} ")?;
                    fmt_at(&args[1], prec + 1, f)?;
                } else {
                    write!(f, "-")?;
                    fmt_at(&args[0], 5, f)?;
                }
                if need_parens {
                    write!(f, ")")?;
                }
                Ok(())
            } else {
                write!(f, "{}(", atom_text(name))?;
                for (i, a) in args.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    fmt_at(a, 0, f)?;
                }
                write!(f, ")")
            }
        }
        Ast::Var(v) => write!(f, "{v}"),
        Ast::Wild => write!(f, "_"),
        Ast::Int(i) => write!(f, "{i}"),
        Ast::Float(x) => write!(f, "{x:?}"),
        Ast::Atom(a) => write!(f, "{}", atom_text(a)),
        Ast::Str(s) => write!(f, "{s:?}"),
        Ast::Nil => write!(f, "[]"),
        Ast::List(_, _) => {
            write!(f, "[")?;
            let mut cur = t;
            let mut first = true;
            loop {
                match cur {
                    Ast::Nil => break,
                    Ast::List(h, tail) => {
                        if !first {
                            write!(f, ", ")?;
                        }
                        first = false;
                        fmt_at(h, 0, f)?;
                        cur = tail;
                    }
                    other => {
                        write!(f, "|")?;
                        fmt_at(other, 0, f)?;
                        break;
                    }
                }
            }
            write!(f, "]")
        }
    }
}

/// Quote an atom if it is not a plain lowercase identifier.
fn atom_text(name: &str) -> String {
    let plain = name.chars().next().is_some_and(|c| c.is_ascii_lowercase())
        && name.chars().all(|c| c.is_ascii_alphanumeric() || c == '_');
    if plain {
        name.to_string()
    } else {
        format!("'{}'", name.replace('\\', "\\\\").replace('\'', "\\'"))
    }
}

/// `Display` hook used by `Ast`.
pub(crate) fn fmt_ast(t: &Ast, f: &mut fmt::Formatter<'_>) -> fmt::Result {
    fmt_at(t, 0, f)
}

fn call_text(c: &Call) -> String {
    let mut s = c.goal.to_string();
    match &c.annotation {
        Some(Annotation::Random) => s.push_str("@random"),
        Some(Annotation::Task) => s.push_str("@task"),
        Some(Annotation::Node(n)) => {
            s.push('@');
            s.push_str(&n.to_string());
        }
        None => {}
    }
    s
}

fn rule_text(r: &Rule) -> String {
    let mut s = r.head.to_string();
    if r.guards.is_empty() && r.body.is_empty() {
        s.push('.');
        return s;
    }
    s.push_str(" :-");
    if !r.guards.is_empty() {
        s.push(' ');
        s.push_str(
            &r.guards
                .iter()
                .map(|g| g.to_string())
                .collect::<Vec<_>>()
                .join(", "),
        );
        s.push_str(" |");
    }
    if r.body.is_empty() {
        s.push_str(" true.");
        return s;
    }
    s.push_str("\n    ");
    s.push_str(
        &r.body
            .iter()
            .map(call_text)
            .collect::<Vec<_>>()
            .join(",\n    "),
    );
    s.push('.');
    s
}

/// Pretty-print a whole program.
///
/// Procedures are separated by blank lines, in source order.
pub fn pretty(p: &Program) -> String {
    let mut out = String::new();
    for (i, proc) in p.procedures().iter().enumerate() {
        if i > 0 {
            out.push('\n');
        }
        for r in &proc.rules {
            out.push_str(&rule_text(r));
            out.push('\n');
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::{parse_program, parse_term};

    #[test]
    fn roundtrip_terms() {
        for src in [
            "f(X, [1, 2|T], \"s\")",
            "X := N - 1",
            "V := (1 + 2) * 3",
            "eval('+', L, R, V)",
            "N mod 2",
            "[a, f(B), []]",
        ] {
            let t = parse_term(src).unwrap();
            assert_eq!(t.to_string(), src, "term printing should round-trip");
        }
    }

    #[test]
    fn reparse_preserves_structure() {
        let src = r#"
            reduce(tree(V, L, R), Value) :-
                reduce(R, RV)@random,
                reduce(L, LV),
                eval(V, LV, RV, Value).
            reduce(leaf(L), Value) :- Value := L.
        "#;
        let p1 = parse_program(src).unwrap();
        let printed = pretty(&p1);
        let p2 = parse_program(&printed).unwrap();
        assert_eq!(p1, p2, "pretty output must reparse to the same program");
    }

    #[test]
    fn facts_print_compactly() {
        let p = parse_program("server([]).").unwrap();
        assert_eq!(pretty(&p).trim(), "server([]).");
    }

    #[test]
    fn guards_and_annotations_render() {
        let p = parse_program("p(N) :- N > 0 | q(N)@random, r(N)@3.").unwrap();
        let s = pretty(&p);
        assert!(s.contains("N > 0 |"));
        assert!(s.contains("q(N)@random"));
        assert!(s.contains("r(N)@3"));
    }

    #[test]
    fn weird_atoms_get_quoted() {
        let p = parse_program("f('odd atom', '+').").unwrap();
        let s = pretty(&p);
        assert!(s.contains("'odd atom'"));
        assert!(s.contains("'+'"));
        // And the quoted output reparses identically.
        assert_eq!(parse_program(&s).unwrap(), p);
    }

    #[test]
    fn unary_minus_prints() {
        let t = parse_term("-N").unwrap();
        assert_eq!(t.to_string(), "-N");
        let t = parse_term("0 - -N").unwrap();
        assert_eq!(parse_term(&t.to_string()).unwrap(), t);
    }
}
