//! Static checks for motif-language programs.
//!
//! The paper's vision is a *programming system* (§4: "a comprehensive
//! parallel programming system"); a usable system diagnoses the classic
//! concurrent-logic mistakes before they become runtime deadlocks:
//!
//! * calls to procedures that are defined nowhere (typos in the rule name
//!   or arity — these surface as `UndefinedProcedure` only when reached at
//!   runtime);
//! * singleton variables (a variable used exactly once is usually a typo —
//!   and in a single-assignment language it silently never binds);
//! * exact duplicate rules (dead weight from a botched merge);
//! * assignments whose left side can never be a variable (`5 := X`).

use crate::ast::{Ast, Program, Rule};
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

/// One diagnostic.
#[derive(Clone, Debug, PartialEq)]
pub struct Lint {
    pub kind: LintKind,
    /// `name/arity` of the procedure the finding is in (or about).
    pub procedure: String,
    pub detail: String,
}

/// Categories of finding.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum LintKind {
    UndefinedCall,
    SingletonVariable,
    DuplicateRule,
    UnassignableTarget,
}

impl fmt::Display for Lint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let kind = match self.kind {
            LintKind::UndefinedCall => "undefined call",
            LintKind::SingletonVariable => "singleton variable",
            LintKind::DuplicateRule => "duplicate rule",
            LintKind::UnassignableTarget => "unassignable target",
        };
        write!(f, "{kind} in {}: {}", self.procedure, self.detail)
    }
}

/// Builtins and primitives the abstract machine provides — never flagged
/// as undefined.
pub const MACHINE_BUILTINS: &[(&str, usize)] = &[
    (":=", 2),
    ("=", 2),
    ("true", 0),
    ("length", 2),
    ("rand_num", 2),
    ("distribute", 3),
    ("distribute", 4),
    ("make_tuple", 2),
    ("put_arg", 3),
    ("open_port", 2),
    ("send_port", 2),
    ("merge", 2),
    ("work", 1),
    ("print", 1),
    ("current_node", 1),
    ("arg", 3),
    ("gauge", 2),
    ("after_unless", 3),
    ("ack", 1),
    ("unique_id", 1),
];

/// Motif-level operations resolved by transformations (Server/Rand/Sched),
/// legitimate in pre-transformation sources.
pub const MOTIF_PRIMITIVES: &[(&str, usize)] =
    &[("send", 2), ("send", 3), ("nodes", 1), ("halt", 0)];

/// Lint a program. `assume_defined` lists extra name/arity pairs the
/// caller knows will be provided elsewhere (e.g. the user's `eval/4` when
/// linting a motif library on its own).
pub fn lint(program: &Program, assume_defined: &[(&str, usize)]) -> Vec<Lint> {
    let mut findings = Vec::new();
    let defined: BTreeSet<(String, usize)> = program.defined_keys().into_iter().collect();
    let known: BTreeSet<(String, usize)> = MACHINE_BUILTINS
        .iter()
        .chain(MOTIF_PRIMITIVES.iter())
        .chain(assume_defined.iter())
        .map(|(n, a)| (n.to_string(), *a))
        .collect();

    for proc in program.procedures() {
        let key = format!("{}/{}", proc.name, proc.arity);
        // Duplicate rules.
        let mut seen: Vec<&Rule> = Vec::new();
        for rule in &proc.rules {
            if seen.iter().any(|r| **r == *rule) {
                findings.push(Lint {
                    kind: LintKind::DuplicateRule,
                    procedure: key.clone(),
                    detail: format!("rule `{}` appears more than once", rule.head),
                });
            }
            seen.push(rule);
        }
        for rule in &proc.rules {
            // Undefined calls.
            for call in &rule.body {
                if let Some((name, arity)) = call.goal.functor() {
                    let k = (name.to_string(), arity);
                    if !defined.contains(&k) && !known.contains(&k) {
                        findings.push(Lint {
                            kind: LintKind::UndefinedCall,
                            procedure: key.clone(),
                            detail: format!("call to undefined {name}/{arity}"),
                        });
                    }
                    // Unassignable := / = target.
                    if (name == ":=" || name == "=")
                        && !matches!(call.goal.args()[0], Ast::Var(_) | Ast::Wild)
                    {
                        findings.push(Lint {
                            kind: LintKind::UnassignableTarget,
                            procedure: key.clone(),
                            detail: format!("`{}` assigns to a non-variable", call.goal),
                        });
                    }
                }
            }
            // Singleton variables (underscore-prefixed names are exempt).
            let mut uses: BTreeMap<String, u32> = BTreeMap::new();
            let mut count = |t: &Ast| {
                for v in t.vars() {
                    *uses.entry(v).or_insert(0) += 1;
                }
            };
            count(&rule.head);
            for g in &rule.guards {
                count(g);
            }
            for c in &rule.body {
                count(&c.goal);
                if let Some(crate::ast::Annotation::Node(n)) = &c.annotation {
                    count(n);
                }
            }
            for (name, n) in uses {
                if n == 1 && !name.starts_with('_') {
                    findings.push(Lint {
                        kind: LintKind::SingletonVariable,
                        procedure: key.clone(),
                        detail: format!("variable {name} occurs once in `{}`", rule.head),
                    });
                }
            }
        }
    }
    findings
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_program;

    fn kinds(src: &str) -> Vec<LintKind> {
        lint(&parse_program(src).unwrap(), &[])
            .into_iter()
            .map(|l| l.kind)
            .collect()
    }

    #[test]
    fn clean_program_is_clean() {
        let src = r#"
            go(N) :- producer(N, Xs, sync), consumer(Xs).
            producer(N, Xs, sync) :- N > 0 |
                Xs := [X|Xs1], N1 := N - 1, producer(N1, Xs1, X).
            producer(0, Xs, _) :- Xs := [].
            consumer([X|Xs]) :- X := sync, consumer(Xs).
            consumer([]).
        "#;
        assert!(
            kinds(src).is_empty(),
            "{:?}",
            lint(&parse_program(src).unwrap(), &[])
        );
    }

    #[test]
    fn undefined_call_detected() {
        let src = "go(X) :- helpr(X). helper(_)."; // typo'd call
        let ks = kinds(src);
        assert!(ks.contains(&LintKind::UndefinedCall), "{ks:?}");
    }

    #[test]
    fn arity_mismatch_is_undefined() {
        let src = "go(X) :- helper(X, X). helper(_).";
        let ls = lint(&parse_program(src).unwrap(), &[]);
        assert!(
            ls.iter()
                .any(|l| l.kind == LintKind::UndefinedCall && l.detail.contains("helper/2")),
            "{ls:?}"
        );
    }

    #[test]
    fn motif_primitives_allowed() {
        let src = "f(X) :- nodes(N), send(N, X), halt.";
        let ls = lint(&parse_program(src).unwrap(), &[]);
        assert!(
            !ls.iter().any(|l| l.kind == LintKind::UndefinedCall),
            "{ls:?}"
        );
    }

    #[test]
    fn assume_defined_suppresses() {
        let src = "r(T, V) :- eval(T, V).";
        let ls = lint(&parse_program(src).unwrap(), &[("eval", 2)]);
        assert!(
            !ls.iter().any(|l| l.kind == LintKind::UndefinedCall),
            "{ls:?}"
        );
    }

    #[test]
    fn singleton_detected_and_underscore_exempt() {
        let ls = lint(&parse_program("f(X, Y) :- g(X). g(_).").unwrap(), &[]);
        assert!(
            ls.iter()
                .any(|l| l.kind == LintKind::SingletonVariable && l.detail.contains("variable Y")),
            "{ls:?}"
        );
        let ls = lint(&parse_program("f(X, _Y) :- g(X). g(_).").unwrap(), &[]);
        assert!(
            !ls.iter().any(|l| l.kind == LintKind::SingletonVariable),
            "{ls:?}"
        );
    }

    #[test]
    fn duplicate_rule_detected() {
        let src = "f(1). f(2). f(1).";
        let ls = lint(&parse_program(src).unwrap(), &[]);
        assert_eq!(
            ls.iter()
                .filter(|l| l.kind == LintKind::DuplicateRule)
                .count(),
            1,
            "{ls:?}"
        );
    }

    #[test]
    fn unassignable_target_detected() {
        let src = "f(X) :- 5 := X.";
        let ls = lint(&parse_program(src).unwrap(), &[]);
        assert!(
            ls.iter().any(|l| l.kind == LintKind::UnassignableTarget),
            "{ls:?}"
        );
    }
}
