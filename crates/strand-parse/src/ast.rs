//! The surface AST manipulated by source-to-source transformations.
//!
//! Unlike the runtime [`strand_core::Term`], surface terms use *named*
//! variables — transformations introduce arguments with meaningful names
//! (the Server motif's `DT` stream tuple, for instance), and the
//! pretty-printed output must stay readable because motif libraries are
//! "archives of expertise" (paper §1).

use std::collections::BTreeMap;
use std::fmt;

/// A surface term.
#[derive(Clone, Debug, PartialEq)]
pub enum Ast {
    /// Named variable (`Xs`, `N1`, …).
    Var(String),
    /// Anonymous variable `_`.
    Wild,
    Int(i64),
    Float(f64),
    /// Atom (`sync`, `halt`, quoted `'+'`, …).
    Atom(String),
    /// String literal.
    Str(String),
    /// Compound term `f(T1,…,Tn)`, n ≥ 1.
    Tuple(String, Vec<Ast>),
    /// List cell `[H|T]`.
    List(Box<Ast>, Box<Ast>),
    /// Empty list `[]`.
    Nil,
}

impl Ast {
    /// Variable constructor.
    pub fn var(name: impl Into<String>) -> Ast {
        Ast::Var(name.into())
    }

    /// Atom constructor.
    pub fn atom(name: impl Into<String>) -> Ast {
        Ast::Atom(name.into())
    }

    /// Compound constructor; degenerates to an atom with no args.
    pub fn tuple(name: impl Into<String>, args: Vec<Ast>) -> Ast {
        let name = name.into();
        if args.is_empty() {
            Ast::Atom(name)
        } else {
            Ast::Tuple(name, args)
        }
    }

    /// Cons cell.
    pub fn cons(head: Ast, tail: Ast) -> Ast {
        Ast::List(Box::new(head), Box::new(tail))
    }

    /// Proper list.
    pub fn list(items: impl IntoIterator<Item = Ast>) -> Ast {
        let items: Vec<Ast> = items.into_iter().collect();
        items
            .into_iter()
            .rev()
            .fold(Ast::Nil, |t, h| Ast::cons(h, t))
    }

    /// Functor name and arity if the term can be a goal.
    pub fn functor(&self) -> Option<(&str, usize)> {
        match self {
            Ast::Atom(a) => Some((a, 0)),
            Ast::Tuple(f, args) => Some((f, args.len())),
            _ => None,
        }
    }

    /// Goal arguments (empty for atoms).
    pub fn args(&self) -> &[Ast] {
        match self {
            Ast::Tuple(_, args) => args,
            _ => &[],
        }
    }

    /// All named variables, in first-occurrence order, deduplicated.
    pub fn vars(&self) -> Vec<String> {
        let mut out = Vec::new();
        self.collect_vars(&mut out);
        out
    }

    fn collect_vars(&self, out: &mut Vec<String>) {
        match self {
            Ast::Var(v) if !out.iter().any(|o| o == v) => {
                out.push(v.clone());
            }
            Ast::Tuple(_, args) => args.iter().for_each(|a| a.collect_vars(out)),
            Ast::List(h, t) => {
                h.collect_vars(out);
                t.collect_vars(out);
            }
            _ => {}
        }
    }

    /// Structurally replace subterms: apply `f` bottom-up everywhere.
    pub fn map(&self, f: &impl Fn(Ast) -> Ast) -> Ast {
        let rebuilt = match self {
            Ast::Tuple(name, args) => {
                Ast::Tuple(name.clone(), args.iter().map(|a| a.map(f)).collect())
            }
            Ast::List(h, t) => Ast::cons(h.map(f), t.map(f)),
            other => other.clone(),
        };
        f(rebuilt)
    }
}

/// Placement annotation on a body call.
#[derive(Clone, Debug, PartialEq)]
pub enum Annotation {
    /// `Goal@Expr` — execute on the node `Expr` evaluates to (the low-level
    /// Strand placement feature used by the server library, Figure 3).
    Node(Ast),
    /// `Goal@random` — the pragma resolved by the `Rand` motif (§3.3).
    Random,
    /// `Goal@task` — the pragma resolved by the `Sched` motif (§2.2): the
    /// process becomes a task dispatched to an idle processor.
    Task,
}

/// A body call: a goal plus an optional placement annotation.
#[derive(Clone, Debug, PartialEq)]
pub struct Call {
    pub goal: Ast,
    pub annotation: Option<Annotation>,
}

impl Call {
    /// Unannotated call.
    pub fn new(goal: Ast) -> Call {
        Call {
            goal,
            annotation: None,
        }
    }

    /// Call with `@random` pragma.
    pub fn random(goal: Ast) -> Call {
        Call {
            goal,
            annotation: Some(Annotation::Random),
        }
    }

    /// Call with `@task` pragma.
    pub fn task(goal: Ast) -> Call {
        Call {
            goal,
            annotation: Some(Annotation::Task),
        }
    }

    /// Call with `@node` placement.
    pub fn at(goal: Ast, node: Ast) -> Call {
        Call {
            goal,
            annotation: Some(Annotation::Node(node)),
        }
    }
}

/// One guarded rule `head :- guards | body.`
#[derive(Clone, Debug, PartialEq)]
pub struct Rule {
    pub head: Ast,
    pub guards: Vec<Ast>,
    pub body: Vec<Call>,
}

impl Rule {
    /// The rule's procedure key.
    pub fn key(&self) -> (String, usize) {
        let (name, arity) = self
            .head
            .functor()
            .expect("rule head must be an atom or tuple");
        (name.to_string(), arity)
    }

    /// Is this an `otherwise` rule (guard list exactly `[otherwise]`)?
    pub fn is_otherwise(&self) -> bool {
        matches!(self.guards.as_slice(), [Ast::Atom(a)] if a == "otherwise")
    }
}

/// A procedure: all rules sharing one name/arity, in source order.
#[derive(Clone, Debug, PartialEq)]
pub struct Procedure {
    pub name: String,
    pub arity: usize,
    pub rules: Vec<Rule>,
}

/// A program: an ordered collection of procedures.
///
/// Ordered so pretty-printing round-trips stably; indexed so
/// transformations can look procedures up by name/arity.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Program {
    procedures: Vec<Procedure>,
}

impl Program {
    /// Empty program.
    pub fn new() -> Program {
        Program::default()
    }

    /// All procedures in source order.
    pub fn procedures(&self) -> &[Procedure] {
        &self.procedures
    }

    /// Mutable access for transformations.
    pub fn procedures_mut(&mut self) -> &mut Vec<Procedure> {
        &mut self.procedures
    }

    /// Look up a procedure.
    pub fn get(&self, name: &str, arity: usize) -> Option<&Procedure> {
        self.procedures
            .iter()
            .find(|p| p.name == name && p.arity == arity)
    }

    /// Mutable lookup.
    pub fn get_mut(&mut self, name: &str, arity: usize) -> Option<&mut Procedure> {
        self.procedures
            .iter_mut()
            .find(|p| p.name == name && p.arity == arity)
    }

    /// Add a rule, creating or extending its procedure.
    pub fn push_rule(&mut self, rule: Rule) {
        let (name, arity) = rule.key();
        match self.get_mut(&name, arity) {
            Some(p) => p.rules.push(rule),
            None => self.procedures.push(Procedure {
                name,
                arity,
                rules: vec![rule],
            }),
        }
    }

    /// Remove a procedure, returning it if present.
    pub fn remove(&mut self, name: &str, arity: usize) -> Option<Procedure> {
        let idx = self
            .procedures
            .iter()
            .position(|p| p.name == name && p.arity == arity)?;
        Some(self.procedures.remove(idx))
    }

    /// Program union — the paper's `T(A) ∪ L` linking step. Procedures from
    /// `other` with a name/arity already present have their rules appended
    /// (later definitions extend earlier ones); new procedures are added at
    /// the end.
    pub fn union(&self, other: &Program) -> Program {
        let mut out = self.clone();
        for p in &other.procedures {
            for r in &p.rules {
                out.push_rule(r.clone());
            }
        }
        out
    }

    /// Every rule in the program, with its procedure key.
    pub fn rules(&self) -> impl Iterator<Item = &Rule> {
        self.procedures.iter().flat_map(|p| p.rules.iter())
    }

    /// Mutable iteration over every rule.
    pub fn rules_mut(&mut self) -> impl Iterator<Item = &mut Rule> {
        self.procedures.iter_mut().flat_map(|p| p.rules.iter_mut())
    }

    /// Total number of rules (the paper's informal "lines of code" measure
    /// for motif libraries, experiment E5).
    pub fn rule_count(&self) -> usize {
        self.procedures.iter().map(|p| p.rules.len()).sum()
    }

    /// The set of procedure keys defined here.
    pub fn defined_keys(&self) -> Vec<(String, usize)> {
        self.procedures
            .iter()
            .map(|p| (p.name.clone(), p.arity))
            .collect()
    }

    /// The set of procedure keys *called* in rule bodies, with multiplicity
    /// collapsed. Guard calls are excluded (guards are tests, not spawns).
    pub fn called_keys(&self) -> Vec<(String, usize)> {
        let mut set = BTreeMap::new();
        for rule in self.rules() {
            for call in &rule.body {
                if let Some((name, arity)) = call.goal.functor() {
                    set.insert((name.to_string(), arity), ());
                }
            }
        }
        set.into_keys().collect()
    }
}

impl fmt::Display for Ast {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        crate::printer::fmt_ast(self, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn call_goal(name: &str, args: Vec<Ast>) -> Call {
        Call::new(Ast::tuple(name, args))
    }

    #[test]
    fn push_rule_groups_by_key() {
        let mut p = Program::new();
        p.push_rule(Rule {
            head: Ast::tuple("f", vec![Ast::Int(0)]),
            guards: vec![],
            body: vec![],
        });
        p.push_rule(Rule {
            head: Ast::tuple("f", vec![Ast::var("N")]),
            guards: vec![],
            body: vec![],
        });
        p.push_rule(Rule {
            head: Ast::tuple("g", vec![Ast::var("X")]),
            guards: vec![],
            body: vec![],
        });
        assert_eq!(p.procedures().len(), 2);
        assert_eq!(p.get("f", 1).unwrap().rules.len(), 2);
        assert_eq!(p.rule_count(), 3);
    }

    #[test]
    fn union_appends_rules() {
        let mut a = Program::new();
        a.push_rule(Rule {
            head: Ast::tuple("f", vec![Ast::Int(0)]),
            guards: vec![],
            body: vec![],
        });
        let mut b = Program::new();
        b.push_rule(Rule {
            head: Ast::tuple("f", vec![Ast::Int(1)]),
            guards: vec![],
            body: vec![],
        });
        b.push_rule(Rule {
            head: Ast::atom("go"),
            guards: vec![],
            body: vec![call_goal("f", vec![Ast::Int(0)])],
        });
        let u = a.union(&b);
        assert_eq!(u.get("f", 1).unwrap().rules.len(), 2);
        assert!(u.get("go", 0).is_some());
        // Union does not mutate operands.
        assert_eq!(a.get("f", 1).unwrap().rules.len(), 1);
    }

    #[test]
    fn called_keys_are_collected() {
        let mut p = Program::new();
        p.push_rule(Rule {
            head: Ast::atom("go"),
            guards: vec![Ast::tuple(">", vec![Ast::var("N"), Ast::Int(0)])],
            body: vec![
                call_goal("producer", vec![Ast::var("N")]),
                call_goal("consumer", vec![Ast::var("Xs")]),
                Call::new(Ast::atom("halt")),
            ],
        });
        let keys = p.called_keys();
        assert!(keys.contains(&("producer".into(), 1)));
        assert!(keys.contains(&("halt".into(), 0)));
        // Guard calls are not body calls.
        assert!(!keys.iter().any(|(n, _)| n == ">"));
    }

    #[test]
    fn ast_vars_and_map() {
        let t = Ast::tuple(
            "f",
            vec![Ast::var("X"), Ast::cons(Ast::var("Y"), Ast::var("X"))],
        );
        assert_eq!(t.vars(), vec!["X".to_string(), "Y".to_string()]);
        let renamed = t.map(&|a| match a {
            Ast::Var(v) if v == "X" => Ast::var("Z"),
            other => other,
        });
        assert_eq!(renamed.vars(), vec!["Z".to_string(), "Y".to_string()]);
    }

    #[test]
    fn otherwise_detection() {
        let r = Rule {
            head: Ast::tuple("f", vec![Ast::Wild]),
            guards: vec![Ast::atom("otherwise")],
            body: vec![],
        };
        assert!(r.is_otherwise());
    }
}
