//! Recursive-descent parser for the motif language.
//!
//! Grammar (see crate docs for examples):
//!
//! ```text
//! program  := { clause }
//! clause   := head [ ":-" goals [ "|" goals ] ] "."
//! goals    := call { "," call }
//! call     := expr [ "@" primary ]
//! expr     := additive [ relop additive ]          (relop non-associative)
//! additive := multiplicative { ("+"|"-") multiplicative }
//! multiplicative := unary { ("*"|"/"|"mod") unary }
//! unary    := "-" unary | primary
//! primary  := int | float | var | "_" | string | list
//!           | atom [ "(" expr { "," expr } ")" ] | "(" expr ")"
//! ```
//!
//! Relational/assignment operators (`:= = == =\= < > =< >=`) and arithmetic
//! operators build ordinary [`Ast::Tuple`] terms, so transformations can
//! treat them uniformly as structured data (programs-as-terms, §2.2).

use crate::ast::{Annotation, Ast, Call, Program, Rule};
use crate::lexer::{lex, LexError, Spanned, Tok};
use std::fmt;

/// Parse error with source position.
#[derive(Clone, Debug, PartialEq)]
pub struct ParseError {
    pub message: String,
    pub line: u32,
    pub col: u32,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "parse error at {}:{}: {}",
            self.line, self.col, self.message
        )
    }
}

impl std::error::Error for ParseError {}

impl From<LexError> for ParseError {
    fn from(e: LexError) -> Self {
        ParseError {
            message: e.message,
            line: e.line,
            col: e.col,
        }
    }
}

struct Parser {
    toks: Vec<Spanned>,
    pos: usize,
}

/// Parse a complete program.
pub fn parse_program(src: &str) -> Result<Program, ParseError> {
    let mut p = Parser {
        toks: lex(src)?,
        pos: 0,
    };
    let mut program = Program::new();
    while p.peek() != &Tok::Eof {
        program.push_rule(p.clause()?);
    }
    Ok(program)
}

/// Parse a single term (used by tests and the machine's goal entry point).
pub fn parse_term(src: &str) -> Result<Ast, ParseError> {
    let mut p = Parser {
        toks: lex(src)?,
        pos: 0,
    };
    let t = p.expr()?;
    p.expect(Tok::Eof, "end of input")?;
    Ok(t)
}

impl Parser {
    fn peek(&self) -> &Tok {
        &self.toks[self.pos].tok
    }

    fn here(&self) -> (u32, u32) {
        let s = &self.toks[self.pos];
        (s.line, s.col)
    }

    fn bump(&mut self) -> Tok {
        let t = self.toks[self.pos].tok.clone();
        if t != Tok::Eof {
            self.pos += 1;
        }
        t
    }

    fn err(&self, message: impl Into<String>) -> ParseError {
        let (line, col) = self.here();
        ParseError {
            message: message.into(),
            line,
            col,
        }
    }

    fn expect(&mut self, tok: Tok, what: &str) -> Result<(), ParseError> {
        if self.peek() == &tok {
            self.bump();
            Ok(())
        } else {
            Err(self.err(format!("expected {what}, found `{}`", self.peek())))
        }
    }

    fn eat(&mut self, tok: &Tok) -> bool {
        if self.peek() == tok {
            self.bump();
            true
        } else {
            false
        }
    }

    fn clause(&mut self) -> Result<Rule, ParseError> {
        let head = self.primary()?;
        if head.functor().is_none() {
            return Err(self.err("rule head must be an atom or compound term"));
        }
        let mut guards = Vec::new();
        let mut body = Vec::new();
        if self.eat(&Tok::Implies) {
            let first = self.goals()?;
            if self.eat(&Tok::Bar) {
                guards = first.into_iter().map(|c| c.goal).collect();
                body = self.goals()?;
            } else {
                body = first;
            }
        }
        self.expect(Tok::Dot, "`.` at end of clause")?;
        Ok(Rule { head, guards, body })
    }

    fn goals(&mut self) -> Result<Vec<Call>, ParseError> {
        let mut out = vec![self.call()?];
        while self.eat(&Tok::Comma) {
            out.push(self.call()?);
        }
        Ok(out)
    }

    fn call(&mut self) -> Result<Call, ParseError> {
        let goal = self.expr()?;
        let annotation = if self.eat(&Tok::At) {
            let place = self.unary()?;
            Some(match place {
                Ast::Atom(a) if a == "random" => Annotation::Random,
                Ast::Atom(a) if a == "task" => Annotation::Task,
                other => Annotation::Node(other),
            })
        } else {
            None
        };
        Ok(Call { goal, annotation })
    }

    fn expr(&mut self) -> Result<Ast, ParseError> {
        let lhs = self.additive()?;
        let op = match self.peek() {
            Tok::Assign => ":=",
            Tok::Eq => "=",
            Tok::EqEq => "==",
            Tok::Neq => "=\\=",
            Tok::Lt => "<",
            Tok::Gt => ">",
            Tok::Le => "=<",
            Tok::Ge => ">=",
            _ => return Ok(lhs),
        };
        self.bump();
        let rhs = self.additive()?;
        Ok(Ast::Tuple(op.to_string(), vec![lhs, rhs]))
    }

    fn additive(&mut self) -> Result<Ast, ParseError> {
        let mut lhs = self.multiplicative()?;
        loop {
            let op = match self.peek() {
                Tok::Plus => "+",
                Tok::Minus => "-",
                _ => return Ok(lhs),
            };
            self.bump();
            let rhs = self.multiplicative()?;
            lhs = Ast::Tuple(op.to_string(), vec![lhs, rhs]);
        }
    }

    fn multiplicative(&mut self) -> Result<Ast, ParseError> {
        let mut lhs = self.unary()?;
        loop {
            let op = match self.peek() {
                Tok::Star => "*",
                Tok::Slash => "/",
                // `mod` is an atom in operator position: `X mod 2`.
                Tok::Atom(a) if a == "mod" => "mod",
                _ => return Ok(lhs),
            };
            self.bump();
            let rhs = self.unary()?;
            lhs = Ast::Tuple(op.to_string(), vec![lhs, rhs]);
        }
    }

    fn unary(&mut self) -> Result<Ast, ParseError> {
        if self.eat(&Tok::Minus) {
            // Fold negative literals; keep `-(X)` for variables/expressions.
            return Ok(match self.unary()? {
                Ast::Int(i) => Ast::Int(-i),
                Ast::Float(x) => Ast::Float(-x),
                other => Ast::Tuple("-".into(), vec![other]),
            });
        }
        self.primary()
    }

    fn primary(&mut self) -> Result<Ast, ParseError> {
        match self.bump() {
            Tok::Int(i) => Ok(Ast::Int(i)),
            Tok::Float(x) => Ok(Ast::Float(x)),
            Tok::Var(v) => Ok(Ast::Var(v)),
            Tok::Wild => Ok(Ast::Wild),
            Tok::Str(s) => Ok(Ast::Str(s)),
            Tok::LParen => {
                let inner = self.expr()?;
                self.expect(Tok::RParen, "`)`")?;
                Ok(inner)
            }
            Tok::LBracket => self.list_tail(),
            Tok::Atom(name) => {
                if self.peek() == &Tok::LParen {
                    self.bump();
                    let mut args = vec![self.expr()?];
                    while self.eat(&Tok::Comma) {
                        args.push(self.expr()?);
                    }
                    self.expect(Tok::RParen, "`)`")?;
                    Ok(Ast::Tuple(name, args))
                } else {
                    Ok(Ast::Atom(name))
                }
            }
            other => Err(ParseError {
                message: format!("expected a term, found `{other}`"),
                line: self.toks[self.pos.saturating_sub(1)].line,
                col: self.toks[self.pos.saturating_sub(1)].col,
            }),
        }
    }

    /// Parse the rest of a list after `[`.
    fn list_tail(&mut self) -> Result<Ast, ParseError> {
        if self.eat(&Tok::RBracket) {
            return Ok(Ast::Nil);
        }
        let mut items = vec![self.expr()?];
        while self.eat(&Tok::Comma) {
            items.push(self.expr()?);
        }
        let tail = if self.eat(&Tok::Bar) {
            self.expr()?
        } else {
            Ast::Nil
        };
        self.expect(Tok::RBracket, "`]`")?;
        Ok(items.into_iter().rev().fold(tail, |t, h| Ast::cons(h, t)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_figure1_program() {
        // The paper's Figure 1, modulo OCR noise in the original text.
        let src = r#"
            go(N) :- producer(N, Xs, sync), consumer(Xs).
            producer(N, Xs, _) :- N > 0 |
                Xs := [X|Xs1], N1 := N - 1, producer(N1, Xs1, X).
            producer(0, Xs, _) :- Xs := [].
            consumer([X|Xs]) :- X := sync, consumer(Xs).
            consumer([]).
        "#;
        let p = parse_program(src).unwrap();
        assert_eq!(p.procedures().len(), 3);
        assert_eq!(p.get("producer", 3).unwrap().rules.len(), 2);
        let r = &p.get("producer", 3).unwrap().rules[0];
        assert_eq!(r.guards.len(), 1);
        assert_eq!(r.body.len(), 3);
        assert_eq!(
            r.guards[0],
            Ast::Tuple(">".into(), vec![Ast::var("N"), Ast::Int(0)])
        );
        // consumer([]) has an empty body.
        assert!(p.get("consumer", 1).unwrap().rules[1].body.is_empty());
    }

    #[test]
    fn parses_placement_annotations() {
        let src = "r(T) :- reduce(T, V)@random, eval(V)@3, log(V)@J.";
        let p = parse_program(src).unwrap();
        let r = &p.get("r", 1).unwrap().rules[0];
        assert_eq!(r.body[0].annotation, Some(Annotation::Random));
        assert_eq!(r.body[1].annotation, Some(Annotation::Node(Ast::Int(3))));
        assert_eq!(r.body[2].annotation, Some(Annotation::Node(Ast::var("J"))));
    }

    #[test]
    fn operator_precedence() {
        let t = parse_term("V := 1 + 2 * 3 - 4").unwrap();
        assert_eq!(
            t.to_string(),
            "V := 1 + 2 * 3 - 4" // printer round-trips with minimal parens
        );
        // Structure check: := ( + is left-assoc so (1 + (2*3)) - 4 ).
        if let Ast::Tuple(op, args) = &t {
            assert_eq!(op, ":=");
            if let Ast::Tuple(minus, margs) = &args[1] {
                assert_eq!(minus, "-");
                assert_eq!(margs[1], Ast::Int(4));
            } else {
                panic!("expected subtraction at top");
            }
        } else {
            panic!("expected :=");
        }
    }

    #[test]
    fn mod_is_infix() {
        let t = parse_term("X := N mod 2").unwrap();
        assert_eq!(
            t,
            Ast::Tuple(
                ":=".into(),
                vec![
                    Ast::var("X"),
                    Ast::Tuple("mod".into(), vec![Ast::var("N"), Ast::Int(2)])
                ]
            )
        );
    }

    #[test]
    fn lists_with_tails() {
        let t = parse_term("[1, 2|T]").unwrap();
        assert_eq!(
            t,
            Ast::cons(Ast::Int(1), Ast::cons(Ast::Int(2), Ast::var("T")))
        );
        assert_eq!(parse_term("[]").unwrap(), Ast::Nil);
        assert_eq!(
            parse_term("[a]").unwrap(),
            Ast::cons(Ast::atom("a"), Ast::Nil)
        );
    }

    #[test]
    fn negative_literals_fold() {
        assert_eq!(parse_term("-1").unwrap(), Ast::Int(-1));
        assert_eq!(
            parse_term("-N").unwrap(),
            Ast::Tuple("-".into(), vec![Ast::var("N")])
        );
    }

    #[test]
    fn quoted_operator_atoms_as_functors() {
        let t = parse_term("eval('+', L, R, V)").unwrap();
        assert_eq!(
            t,
            Ast::Tuple(
                "eval".into(),
                vec![Ast::atom("+"), Ast::var("L"), Ast::var("R"), Ast::var("V")]
            )
        );
    }

    #[test]
    fn missing_dot_is_an_error() {
        let e = parse_program("f(X) :- g(X)").unwrap_err();
        assert!(e.message.contains('.'), "got: {}", e.message);
    }

    #[test]
    fn head_must_be_callable() {
        assert!(parse_program("3 :- g(X).").is_err());
        assert!(parse_program("[a] :- g(X).").is_err());
    }

    #[test]
    fn otherwise_guard_parses() {
        let p = parse_program("f(X) :- otherwise | g(X).").unwrap();
        assert!(p.get("f", 1).unwrap().rules[0].is_otherwise());
    }

    #[test]
    fn empty_body_with_guard() {
        // Degenerate but legal in the paper's style: a guard-only rule.
        let p = parse_program("f(X) :- X > 0 | true.").unwrap();
        assert_eq!(p.get("f", 1).unwrap().rules[0].body.len(), 1);
    }
}
