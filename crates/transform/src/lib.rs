//! # transform
//!
//! The source-to-source transformation framework of the paper (§2.2):
//! *"Programs are represented as structured terms and transformations as
//! programs that manipulate these terms."* Here programs are
//! [`strand_parse::Program`] values and transformations are Rust values
//! implementing [`Transformation`]; composition is literally function
//! composition ([`Transformation::then`]), which is what makes motif
//! composition (`M = M2 ∘ M1`) work.
//!
//! The crate also provides the analyses and rewrites that real motif
//! transformations are made of:
//!
//! * [`callgraph`] — who calls whom, and which procedures can reach a given
//!   primitive (needed by the Server transformation's step 1: thread the
//!   stream tuple `DT` through *"the process definitions of these
//!   processes' ancestors in the call graph"*);
//! * [`rewrite`] — argument threading, call replacement, fresh-variable
//!   generation, and rule synthesis.

pub mod callgraph;
pub mod rewrite;

use std::fmt;
use std::sync::Arc;
use strand_parse::Program;

/// Error raised by a transformation.
#[derive(Clone, Debug, PartialEq)]
pub struct TransformError {
    pub transformation: String,
    pub message: String,
}

impl TransformError {
    pub fn new(transformation: impl Into<String>, message: impl Into<String>) -> Self {
        TransformError {
            transformation: transformation.into(),
            message: message.into(),
        }
    }
}

impl fmt::Display for TransformError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "transformation {}: {}",
            self.transformation, self.message
        )
    }
}

impl std::error::Error for TransformError {}

/// A source-to-source transformation over motif-language programs.
pub trait Transformation: Send + Sync {
    /// Human-readable name (used in errors and the experiment inventory).
    fn name(&self) -> &str;

    /// Apply the transformation, producing a new program.
    fn apply(&self, program: &Program) -> Result<Program, TransformError>;

    /// `self.then(t)` applies `self` first, then `t` — i.e. `t ∘ self`.
    fn then(self, t: impl Transformation + 'static) -> Composed
    where
        Self: Sized + 'static,
    {
        Composed {
            name: format!("{} ; {}", self.name(), t.name()),
            stages: vec![Arc::new(self), Arc::new(t)],
        }
    }
}

/// The identity transformation (used by library-only motifs such as the
/// paper's `Tree1`, §3.4).
#[derive(Clone, Copy, Debug, Default)]
pub struct Identity;

impl Transformation for Identity {
    fn name(&self) -> &str {
        "identity"
    }

    fn apply(&self, program: &Program) -> Result<Program, TransformError> {
        Ok(program.clone())
    }
}

/// The boxed function type behind [`FnTransform`].
pub type TransformFn = Box<dyn Fn(&Program) -> Result<Program, TransformError> + Send + Sync>;

/// A transformation built from a plain function.
pub struct FnTransform {
    name: String,
    f: TransformFn,
}

impl FnTransform {
    pub fn new(
        name: impl Into<String>,
        f: impl Fn(&Program) -> Result<Program, TransformError> + Send + Sync + 'static,
    ) -> Self {
        FnTransform {
            name: name.into(),
            f: Box::new(f),
        }
    }
}

impl Transformation for FnTransform {
    fn name(&self) -> &str {
        &self.name
    }

    fn apply(&self, program: &Program) -> Result<Program, TransformError> {
        (self.f)(program)
    }
}

/// A pipeline of transformations applied left to right.
#[derive(Clone)]
pub struct Composed {
    name: String,
    stages: Vec<Arc<dyn Transformation>>,
}

impl Composed {
    /// Empty pipeline (identity).
    pub fn empty() -> Composed {
        Composed {
            name: "identity".into(),
            stages: Vec::new(),
        }
    }

    /// Append another stage.
    pub fn push(mut self, t: impl Transformation + 'static) -> Composed {
        self.name = if self.stages.is_empty() {
            t.name().to_string()
        } else {
            format!("{} ; {}", self.name, t.name())
        };
        self.stages.push(Arc::new(t));
        self
    }
}

impl Transformation for Composed {
    fn name(&self) -> &str {
        &self.name
    }

    fn apply(&self, program: &Program) -> Result<Program, TransformError> {
        let mut p = program.clone();
        for stage in &self.stages {
            p = stage.apply(&p)?;
        }
        Ok(p)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use strand_parse::parse_program;

    fn rename_to(name: &'static str) -> FnTransform {
        FnTransform::new(format!("rename-{name}"), move |p| {
            let mut out = Program::new();
            for rule in p.rules() {
                let mut r = rule.clone();
                if let strand_parse::Ast::Tuple(n, _) = &mut r.head {
                    *n = name.to_string();
                }
                out.push_rule(r);
            }
            Ok(out)
        })
    }

    #[test]
    fn identity_round_trips() {
        let p = parse_program("f(X) :- g(X). g(1).").unwrap();
        assert_eq!(Identity.apply(&p).unwrap(), p);
    }

    #[test]
    fn composition_applies_in_order() {
        let p = parse_program("f(X).").unwrap();
        let t = rename_to("a").then(rename_to("b"));
        let out = t.apply(&p).unwrap();
        assert!(out.get("b", 1).is_some());
        assert!(out.get("a", 1).is_none());
        assert_eq!(t.name(), "rename-a ; rename-b");
    }

    #[test]
    fn composed_pipeline_builder() {
        let p = parse_program("f(X).").unwrap();
        let t = Composed::empty().push(rename_to("a")).push(rename_to("c"));
        let out = t.apply(&p).unwrap();
        assert!(out.get("c", 1).is_some());
    }

    #[test]
    fn errors_carry_transformation_name() {
        let t = FnTransform::new("failing", |_| Err(TransformError::new("failing", "nope")));
        let p = Program::new();
        let e = t.apply(&p).unwrap_err();
        assert_eq!(e.to_string(), "transformation failing: nope");
    }
}
