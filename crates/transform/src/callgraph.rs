//! Call-graph analysis.
//!
//! The Server transformation must add the stream-tuple argument `DT` to
//! every process definition that calls `send`, `nodes`, or `halt` *"and the
//! process definitions of these processes' ancestors in the call graph"*
//! (§3.2, step 1). This module builds that graph and computes the
//! backward-reachable set.

use std::collections::{BTreeMap, BTreeSet};
use strand_parse::Program;

/// A procedure key: name and arity.
pub type Key = (String, usize);

/// The static call graph of a program.
///
/// Nodes are procedure keys; an edge `a → b` means some rule of `a` calls
/// `b` in its body. Callees that have no definition in the program (e.g.
/// motif primitives like `send/2`) still appear as graph nodes, so
/// reachability questions about them are answerable.
#[derive(Clone, Debug, Default)]
pub struct CallGraph {
    /// caller → set of callees.
    pub calls: BTreeMap<Key, BTreeSet<Key>>,
    /// callee → set of callers (the transpose).
    pub callers: BTreeMap<Key, BTreeSet<Key>>,
}

impl CallGraph {
    /// Build the call graph of a program.
    pub fn build(p: &Program) -> CallGraph {
        let mut g = CallGraph::default();
        for proc in p.procedures() {
            let caller: Key = (proc.name.clone(), proc.arity);
            g.calls.entry(caller.clone()).or_default();
            for rule in &proc.rules {
                for call in &rule.body {
                    if let Some((name, arity)) = call.goal.functor() {
                        let callee: Key = (name.to_string(), arity);
                        g.calls
                            .entry(caller.clone())
                            .or_default()
                            .insert(callee.clone());
                        g.callers.entry(callee).or_default().insert(caller.clone());
                    }
                }
            }
        }
        g
    }

    /// All procedures from which any of `targets` is reachable by a chain
    /// of calls — the targets' transitive *ancestors*. The targets
    /// themselves are not included unless they also call a target.
    pub fn ancestors_of(&self, targets: &[Key]) -> BTreeSet<Key> {
        let mut out = BTreeSet::new();
        let mut frontier: Vec<Key> = targets.to_vec();
        while let Some(t) = frontier.pop() {
            if let Some(callers) = self.callers.get(&t) {
                for c in callers {
                    if out.insert(c.clone()) {
                        frontier.push(c.clone());
                    }
                }
            }
        }
        out
    }

    /// Direct callees of a procedure.
    pub fn callees(&self, key: &Key) -> BTreeSet<Key> {
        self.calls.get(key).cloned().unwrap_or_default()
    }

    /// Does `caller` (transitively) reach `target`?
    pub fn reaches(&self, caller: &Key, target: &Key) -> bool {
        self.ancestors_of(std::slice::from_ref(target))
            .contains(caller)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use strand_parse::parse_program;

    fn key(name: &str, arity: usize) -> Key {
        (name.to_string(), arity)
    }

    #[test]
    fn builds_edges_including_undefined_callees() {
        let p = parse_program(
            r#"
            a(X) :- b(X), send(1, X).
            b(X) :- c(X).
            c(_).
        "#,
        )
        .unwrap();
        let g = CallGraph::build(&p);
        assert!(g.calls[&key("a", 1)].contains(&key("send", 2)));
        assert!(g.calls[&key("a", 1)].contains(&key("b", 1)));
        assert!(g.callers[&key("c", 1)].contains(&key("b", 1)));
        // send/2 is undefined but still a graph node on the callee side.
        assert!(g.callers.contains_key(&key("send", 2)));
    }

    #[test]
    fn ancestors_is_transitive() {
        let p = parse_program(
            r#"
            main :- middle(X), other(X).
            middle(X) :- leafy(X).
            leafy(X) :- send(1, X).
            other(_).
        "#,
        )
        .unwrap();
        let g = CallGraph::build(&p);
        let anc = g.ancestors_of(&[key("send", 2)]);
        assert!(anc.contains(&key("leafy", 1)));
        assert!(anc.contains(&key("middle", 1)));
        assert!(anc.contains(&key("main", 0)));
        assert!(!anc.contains(&key("other", 1)));
    }

    #[test]
    fn recursion_terminates() {
        let p = parse_program("loop(X) :- loop(X), send(1, X).").unwrap();
        let g = CallGraph::build(&p);
        let anc = g.ancestors_of(&[key("send", 2)]);
        assert_eq!(anc.len(), 1);
        assert!(anc.contains(&key("loop", 1)));
    }

    #[test]
    fn reaches_answers_reachability() {
        let p = parse_program("a :- b. b :- halt. c :- a.").unwrap();
        let g = CallGraph::build(&p);
        assert!(g.reaches(&key("a", 0), &key("halt", 0)));
        assert!(g.reaches(&key("c", 0), &key("halt", 0)));
        assert!(!g.reaches(&key("b", 0), &key("c", 0)));
    }

    #[test]
    fn arity_distinguishes_procedures() {
        let p = parse_program(
            r#"
            f(X) :- send(1, X).
            f(X, Y) :- g(X, Y).
            g(_, _).
        "#,
        )
        .unwrap();
        let g = CallGraph::build(&p);
        let anc = g.ancestors_of(&[key("send", 2)]);
        assert!(anc.contains(&key("f", 1)));
        assert!(!anc.contains(&key("f", 2)));
    }
}
