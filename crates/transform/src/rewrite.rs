//! Rewrite utilities: fresh variables, call replacement, argument
//! threading, circuit threading and rule synthesis.
//!
//! These are the building blocks the paper's transformations decompose
//! into: the Server transformation is "thread an argument + rewrite
//! primitive calls" (§3.2), the Rand transformation is "replace annotated
//! calls + synthesize dispatch rules" (§3.3), and the termination-detection
//! extension is "thread a short circuit" (§3.3, last paragraph).

use crate::callgraph::Key;
use std::collections::BTreeSet;
use strand_parse::{Ast, Call, Program, Rule};

/// Pick a variable name based on `base` that does not collide with `taken`.
pub fn fresh_var(taken: &BTreeSet<String>, base: &str) -> String {
    if !taken.contains(base) {
        return base.to_string();
    }
    for i in 1.. {
        let cand = format!("{base}{i}");
        if !taken.contains(&cand) {
            return cand;
        }
    }
    unreachable!()
}

/// All variable names appearing anywhere in a rule.
pub fn rule_vars(rule: &Rule) -> BTreeSet<String> {
    let mut out: BTreeSet<String> = rule.head.vars().into_iter().collect();
    for g in &rule.guards {
        out.extend(g.vars());
    }
    for c in &rule.body {
        out.extend(c.goal.vars());
        if let Some(strand_parse::Annotation::Node(n)) = &c.annotation {
            out.extend(n.vars());
        }
    }
    out
}

/// A supply of fresh variable names scoped to one rule.
pub struct FreshVars {
    taken: BTreeSet<String>,
}

impl FreshVars {
    /// Seeded with a rule's existing variables.
    pub fn for_rule(rule: &Rule) -> FreshVars {
        FreshVars {
            taken: rule_vars(rule),
        }
    }

    /// Allocate a fresh name built from `base`.
    pub fn fresh(&mut self, base: &str) -> String {
        let name = fresh_var(&self.taken, base);
        self.taken.insert(name.clone());
        name
    }
}

/// A primitive rewriter for [`thread_argument`]: given the call and the
/// threaded variable, optionally produce a replacement call sequence.
pub type PrimRewriter<'a> = &'a dyn Fn(&Call, &Ast, &mut FreshVars) -> Option<Vec<Call>>;

/// Replace body calls throughout a program. For each call, `f` may return a
/// replacement sequence (`Some`) or leave it unchanged (`None`). `f` gets a
/// per-rule [`FreshVars`] supply for introducing new variables.
pub fn replace_calls(
    program: &Program,
    f: &dyn Fn(&Call, &mut FreshVars) -> Option<Vec<Call>>,
) -> Program {
    let mut out = Program::new();
    for rule in program.rules() {
        let mut fresh = FreshVars::for_rule(rule);
        let mut body = Vec::with_capacity(rule.body.len());
        for call in &rule.body {
            match f(call, &mut fresh) {
                Some(repl) => body.extend(repl),
                None => body.push(call.clone()),
            }
        }
        out.push_rule(Rule {
            head: rule.head.clone(),
            guards: rule.guards.clone(),
            body,
        });
    }
    out
}

/// Thread an extra argument through a set of procedures (the Server
/// transformation's step 1) while rewriting primitive calls that need the
/// threaded variable (steps 2–4).
///
/// For every rule of a procedure in `targets`:
///
/// * each body call is passed to `rewrite_prim(call, dt_term, fresh)`; if it
///   returns a replacement, the call is considered to *use* the threaded
///   variable;
/// * each remaining call to a procedure in `targets` gets the threaded
///   variable appended as a final argument;
/// * the rule head gets the threaded variable appended — or a wildcard when
///   nothing in the rule used it (matching the paper's Figure 5, where the
///   leaf rule becomes `reduce(leaf(L),Value,_)`).
///
/// Calls *into* `targets` from procedures outside `targets` are an error in
/// the caller's construction (they could not supply the argument), so this
/// function returns them for the motif to report.
pub fn thread_argument(
    program: &Program,
    targets: &BTreeSet<Key>,
    var_base: &str,
    rewrite_prim: PrimRewriter<'_>,
) -> (Program, Vec<Key>) {
    let mut out = Program::new();
    let mut violations: Vec<Key> = Vec::new();
    for proc in program.procedures() {
        let key: Key = (proc.name.clone(), proc.arity);
        let in_targets = targets.contains(&key);
        for rule in &proc.rules {
            if !in_targets {
                // Outside the threaded set: verify it does not call into it.
                for call in &rule.body {
                    if let Some((n, a)) = call.goal.functor() {
                        let k = (n.to_string(), a);
                        if targets.contains(&k) && !violations.contains(&k) {
                            violations.push(k);
                        }
                    }
                }
                out.push_rule(rule.clone());
                continue;
            }
            let mut fresh = FreshVars::for_rule(rule);
            let dt_name = fresh.fresh(var_base);
            let dt = Ast::var(dt_name.clone());
            let mut used = false;
            let mut body = Vec::with_capacity(rule.body.len());
            for call in &rule.body {
                if let Some(repl) = rewrite_prim(call, &dt, &mut fresh) {
                    used = true;
                    body.extend(repl);
                    continue;
                }
                if let Some((n, a)) = call.goal.functor() {
                    if targets.contains(&(n.to_string(), a)) {
                        let mut args: Vec<Ast> = call.goal.args().to_vec();
                        args.push(dt.clone());
                        body.push(Call {
                            goal: Ast::tuple(n.to_string(), args),
                            annotation: call.annotation.clone(),
                        });
                        used = true;
                        continue;
                    }
                }
                body.push(call.clone());
            }
            let mut head_args: Vec<Ast> = rule.head.args().to_vec();
            head_args.push(if used { dt } else { Ast::Wild });
            let head_name = rule
                .head
                .functor()
                .expect("rule heads are callable")
                .0
                .to_string();
            out.push_rule(Rule {
                head: Ast::tuple(head_name, head_args),
                guards: rule.guards.clone(),
                body,
            });
        }
    }
    (out, violations)
}

/// Thread a *short circuit* through a set of procedures: each gets two
/// extra arguments `(L, R)`; body calls to threaded procedures are chained
/// `L → M1 → … → R`; rules with no threaded body call close the circuit
/// with `L = R`. When every process has terminated, the whole circuit has
/// collapsed and the root's `L = R` connection is observable — the paper's
/// termination-detection technique (§3.3).
pub fn thread_circuit(program: &Program, targets: &BTreeSet<Key>) -> Program {
    let mut out = Program::new();
    for proc in program.procedures() {
        let key: Key = (proc.name.clone(), proc.arity);
        if !targets.contains(&key) {
            for rule in &proc.rules {
                out.push_rule(rule.clone());
            }
            continue;
        }
        for rule in &proc.rules {
            let mut fresh = FreshVars::for_rule(rule);
            let left = Ast::var(fresh.fresh("Lc"));
            let right = Ast::var(fresh.fresh("Rc"));
            // Partition: which body calls participate in the circuit?
            let threaded_idx: Vec<usize> = rule
                .body
                .iter()
                .enumerate()
                .filter(|(_, c)| {
                    c.goal
                        .functor()
                        .is_some_and(|(n, a)| targets.contains(&(n.to_string(), a)))
                })
                .map(|(i, _)| i)
                .collect();
            let mut body: Vec<Call> = Vec::with_capacity(rule.body.len() + 1);
            if threaded_idx.is_empty() {
                // Leaf rule: close the circuit.
                body.push(Call::new(Ast::tuple(
                    "=",
                    vec![left.clone(), right.clone()],
                )));
                body.extend(rule.body.iter().cloned());
            } else {
                let mut cursor = left.clone();
                let last = *threaded_idx.last().expect("nonempty");
                for (i, call) in rule.body.iter().enumerate() {
                    if !threaded_idx.contains(&i) {
                        body.push(call.clone());
                        continue;
                    }
                    let next = if i == last {
                        right.clone()
                    } else {
                        Ast::var(fresh.fresh("Mc"))
                    };
                    let mut args: Vec<Ast> = call.goal.args().to_vec();
                    args.push(cursor.clone());
                    args.push(next.clone());
                    let (name, _) = call.goal.functor().expect("threaded call is callable");
                    body.push(Call {
                        goal: Ast::tuple(name.to_string(), args),
                        annotation: call.annotation.clone(),
                    });
                    cursor = next;
                }
            }
            let mut head_args: Vec<Ast> = rule.head.args().to_vec();
            head_args.push(left);
            head_args.push(right);
            let head_name = rule.head.functor().expect("callable").0.to_string();
            out.push_rule(Rule {
                head: Ast::tuple(head_name, head_args),
                guards: rule.guards.clone(),
                body,
            });
        }
    }
    out
}

/// Synthesize the `server/1` dispatch rules of the Rand transformation
/// (§3.3, step 2): one rule per dispatched process type
///
/// ```text
/// server([p(V1,…,Vn)|In]) :- p(V1,…,Vn), server(In).
/// ```
///
/// plus the halt rule `server([halt|_])`.
pub fn synthesize_dispatch_rules(types: &[Key]) -> Vec<Rule> {
    let mut rules = Vec::with_capacity(types.len() + 1);
    for (name, arity) in types {
        let vars: Vec<Ast> = (1..=*arity).map(|i| Ast::var(format!("V{i}"))).collect();
        let msg = Ast::tuple(name.clone(), vars.clone());
        let head = Ast::tuple(
            "server",
            vec![Ast::cons(msg.clone(), Ast::var("In".to_string()))],
        );
        rules.push(Rule {
            head,
            guards: vec![],
            body: vec![
                Call::new(Ast::tuple(name.clone(), vars)),
                Call::new(Ast::tuple("server", vec![Ast::var("In")])),
            ],
        });
    }
    rules.push(Rule {
        head: Ast::tuple("server", vec![Ast::cons(Ast::atom("halt"), Ast::Wild)]),
        guards: vec![],
        body: vec![],
    });
    rules
}

#[cfg(test)]
mod tests {
    use super::*;
    use strand_parse::{parse_program, pretty};

    fn key(n: &str, a: usize) -> Key {
        (n.to_string(), a)
    }

    #[test]
    fn fresh_var_avoids_collisions() {
        let taken: BTreeSet<String> = ["DT".to_string(), "DT1".to_string()].into_iter().collect();
        assert_eq!(fresh_var(&taken, "DT"), "DT2");
        assert_eq!(fresh_var(&taken, "X"), "X");
    }

    #[test]
    fn replace_calls_expands_sequences() {
        let p = parse_program("f(X) :- ping(X), g(X).").unwrap();
        let out = replace_calls(&p, &|call, fresh| {
            if call.goal.functor() == Some(("ping", 1)) {
                let t = Ast::var(fresh.fresh("T"));
                Some(vec![
                    Call::new(Ast::tuple("pre", vec![t.clone()])),
                    Call::new(Ast::tuple("post", vec![t])),
                ])
            } else {
                None
            }
        });
        let r = &out.get("f", 1).unwrap().rules[0];
        assert_eq!(r.body.len(), 3);
        assert_eq!(r.body[0].goal.functor(), Some(("pre", 1)));
        assert_eq!(r.body[1].goal.functor(), Some(("post", 1)));
        assert_eq!(r.body[2].goal.functor(), Some(("g", 1)));
        // The fresh variable is shared between pre and post.
        assert_eq!(r.body[0].goal.args()[0], r.body[1].goal.args()[0]);
    }

    #[test]
    fn thread_argument_server_example() {
        // The paper's Figure 5 third→fourth stage, reduced to essentials.
        let p = parse_program(
            r#"
            reduce(tree(V, L, R), Value) :-
                nodes(N), rand_num(N, O), send(O, reduce(R, RV)),
                reduce(L, LV), eval(V, LV, RV, Value).
            reduce(leaf(L), Value) :- Value := L.
            server([reduce(T, V)|In]) :- reduce(T, V), server(In).
            server([halt|_]).
        "#,
        )
        .unwrap();
        let targets: BTreeSet<Key> = [key("reduce", 2), key("server", 1)].into_iter().collect();
        let (out, violations) = thread_argument(&p, &targets, "DT", &|call, dt, _fresh| match call
            .goal
            .functor()
        {
            Some(("send", 2)) => {
                let args = call.goal.args();
                Some(vec![Call::new(Ast::tuple(
                    "distribute",
                    vec![args[0].clone(), dt.clone(), args[1].clone()],
                ))])
            }
            Some(("nodes", 1)) => Some(vec![Call::new(Ast::tuple(
                "length",
                vec![dt.clone(), call.goal.args()[0].clone()],
            ))]),
            _ => None,
        });
        assert!(violations.is_empty());
        let s = pretty(&out);
        // Heads gained the DT argument; the leaf rule uses a wildcard.
        assert!(s.contains("reduce(tree(V, L, R), Value, DT)"), "{s}");
        assert!(s.contains("reduce(leaf(L), Value, _)"), "{s}");
        assert!(s.contains("server([reduce(T, V)|In], DT)"), "{s}");
        assert!(s.contains("server([halt|_], _)"), "{s}");
        // Primitive calls were rewritten to use DT.
        assert!(s.contains("length(DT, N)"), "{s}");
        assert!(s.contains("distribute(O, DT, reduce(R, RV))"), "{s}");
        // Recursive calls pass DT along.
        assert!(s.contains("reduce(L, LV, DT)"), "{s}");
        assert!(s.contains("server(In, DT)"), "{s}");
        // eval/4 is untouched.
        assert!(s.contains("eval(V, LV, RV, Value)"), "{s}");
    }

    #[test]
    fn thread_argument_reports_outside_callers() {
        let p = parse_program(
            r#"
            outside(X) :- inside(X).
            inside(X) :- send(1, X).
        "#,
        )
        .unwrap();
        let targets: BTreeSet<Key> = [key("inside", 1)].into_iter().collect();
        let (_, violations) = thread_argument(&p, &targets, "DT", &|_, _, _| None);
        assert_eq!(violations, vec![key("inside", 1)]);
    }

    #[test]
    fn thread_argument_picks_nonclashing_name() {
        let p = parse_program("f(DT) :- send(1, DT), f(DT).").unwrap();
        let targets: BTreeSet<Key> = [key("f", 1)].into_iter().collect();
        let (out, _) = thread_argument(&p, &targets, "DT", &|call, dt, _| {
            (call.goal.functor() == Some(("send", 2))).then(|| {
                vec![Call::new(Ast::tuple(
                    "distribute",
                    vec![
                        call.goal.args()[0].clone(),
                        dt.clone(),
                        call.goal.args()[1].clone(),
                    ],
                ))]
            })
        });
        let s = pretty(&out);
        assert!(s.contains("f(DT, DT1)"), "{s}");
        assert!(s.contains("distribute(1, DT1, DT)"), "{s}");
    }

    #[test]
    fn circuit_threads_and_closes() {
        let p = parse_program(
            r#"
            walk(tree(L, R)) :- walk(L), note(x), walk(R).
            walk(leaf).
        "#,
        )
        .unwrap();
        let targets: BTreeSet<Key> = [key("walk", 1)].into_iter().collect();
        let out = thread_circuit(&p, &targets);
        let s = pretty(&out);
        // Interior rule: circuit chains through the two walk calls only.
        assert!(s.contains("walk(tree(L, R), Lc, Rc)"), "{s}");
        assert!(s.contains("walk(L, Lc, Mc)"), "{s}");
        assert!(s.contains("walk(R, Mc, Rc)"), "{s}");
        assert!(s.contains("note(x)"), "{s}");
        // Leaf rule closes the circuit.
        assert!(s.contains("walk(leaf, Lc, Rc)"), "{s}");
        assert!(s.contains("Lc = Rc"), "{s}");
    }

    #[test]
    fn circuit_runs_and_detects_termination() {
        // End-to-end: when the walk finishes, Done gets bound.
        let p = parse_program(
            r#"
            walk(tree(L, R)) :- walk(L), walk(R).
            walk(leaf).
            go(T, Done) :- walk(T, Done, done).
        "#,
        )
        .unwrap();
        // go/2 supplies the circuit ends (left = the observed variable,
        // right = the `done` sentinel; closures bind left ends to right
        // ends, so completion propagates right-to-left); thread only walk/1.
        let targets: BTreeSet<Key> = [key("walk", 1)].into_iter().collect();
        let out = thread_circuit(&p, &targets);
        let r = strand_machine::run_parsed_goal(
            &out,
            "go(tree(tree(leaf, leaf), leaf), Done)",
            strand_machine::MachineConfig::default(),
        )
        .unwrap();
        assert!(r.completed());
        assert_eq!(r.bindings["Done"].to_string(), "done");
    }

    #[test]
    fn threading_preserves_annotations() {
        // Both argument threading and circuit threading must carry call
        // annotations through — motif composition depends on it (pragmas
        // are resolved by LATER stages).
        let p = parse_program(
            r#"
            f(X) :- g(X)@random, f(X)@3, send(1, X).
            g(_).
        "#,
        )
        .unwrap();
        let targets: BTreeSet<Key> = [key("f", 1)].into_iter().collect();
        let (out, _) = thread_argument(&p, &targets, "DT", &|call, dt, _| {
            (call.goal.functor() == Some(("send", 2))).then(|| {
                vec![Call::new(Ast::tuple(
                    "distribute",
                    vec![
                        call.goal.args()[0].clone(),
                        dt.clone(),
                        call.goal.args()[1].clone(),
                    ],
                ))]
            })
        });
        let s = pretty(&out);
        assert!(s.contains("g(X)@random"), "{s}");
        assert!(s.contains("f(X, DT)@3"), "{s}");

        let targets: BTreeSet<Key> = [key("f", 1)].into_iter().collect();
        let out = thread_circuit(&p, &targets);
        let s = pretty(&out);
        assert!(s.contains("g(X)@random"), "{s}");
        assert!(s.contains("f(X, Lc, Rc)@3"), "{s}");
    }

    #[test]
    fn circuit_threads_guarded_rules() {
        let p = parse_program(
            r#"
            count(N) :- N > 0 | N1 := N - 1, count(N1).
            count(0).
        "#,
        )
        .unwrap();
        let targets: BTreeSet<Key> = [key("count", 1)].into_iter().collect();
        let out = thread_circuit(&p, &targets);
        let s = pretty(&out);
        // Guards stay put; circuit chains through the recursive call only.
        assert!(s.contains("count(N, Lc, Rc) :- N > 0 |"), "{s}");
        assert!(s.contains("count(N1, Lc, Rc)"), "{s}");
        assert!(s.contains("count(0, Lc, Rc)"), "{s}");
        assert!(s.contains("Lc = Rc"), "{s}");
    }

    #[test]
    fn fresh_vars_scoped_per_rule() {
        // Two rules may both receive the base name: freshness is per rule.
        let p = parse_program("f(A) :- send(1, A). f(B) :- send(2, B).").unwrap();
        let targets: BTreeSet<Key> = [key("f", 1)].into_iter().collect();
        let (out, _) = thread_argument(&p, &targets, "DT", &|call, dt, _| {
            (call.goal.functor() == Some(("send", 2))).then(|| {
                vec![Call::new(Ast::tuple(
                    "noted",
                    vec![dt.clone(), call.goal.args()[1].clone()],
                ))]
            })
        });
        let s = pretty(&out);
        assert_eq!(
            s.matches("f(A, DT)").count() + s.matches("f(B, DT)").count(),
            2,
            "{s}"
        );
    }

    #[test]
    fn dispatch_rules_match_paper_shape() {
        let rules = synthesize_dispatch_rules(&[key("reduce", 2)]);
        let mut p = Program::new();
        for r in rules {
            p.push_rule(r);
        }
        let s = pretty(&p);
        assert!(s.contains("server([reduce(V1, V2)|In]) :-"), "{s}");
        assert!(s.contains("reduce(V1, V2)"), "{s}");
        assert!(s.contains("server(In)"), "{s}");
        assert!(s.contains("server([halt|_])."), "{s}");
    }
}
