//! The **Divide-and-Conquer** motif (§4 names "divide and conquer" as a
//! future-work motif area; this is the generic skeleton the tree-reduction
//! motifs are instances of).
//!
//! The user supplies two procedures:
//!
//! * `dc_case(P, C)` — classify a problem: `C := base(S)` solves it
//!   directly, `C := split(P1, P2)` divides it;
//! * `dc_merge(S1, S2, S)` — combine sub-solutions.
//!
//! The library recursively solves problems, shipping one branch of every
//! split to a random server. Entry goal: `create(P, dc(Problem, Solution))`.

use crate::motif::Motif;
use crate::rand_map::rand_map_with_entries;
use crate::server::server;

/// The divide-and-conquer library: four lines, like `Tree1`.
pub const DC_LIBRARY: &str = r#"
dc(P, S) :- dc_case(P, C), dc_branch(C, S).
dc_branch(base(S0), S) :- S = S0.
dc_branch(split(P1, P2), S) :-
    dc(P1, S1)@random,
    dc(P2, S2),
    dc_merge(S1, S2, S).
"#;

/// `DivideAndConquer = Server ∘ Rand ∘ DCCore`.
pub fn divide_and_conquer() -> Motif {
    let core = Motif::library_only("DCCore", DC_LIBRARY);
    server()
        .compose(&rand_map_with_entries(&[("dc", 2)]))
        .compose(&core)
}

/// A mergesort instance of the motif: sorts a list of integers.
///
/// `dc_case`: lists of length ≤ 1 are base cases; longer lists split in
/// half. `dc_merge`: standard sorted merge.
pub const MERGESORT_APP: &str = r#"
dc_case([], C) :- C := base([]).
dc_case([X], C) :- C := base([X]).
dc_case([X, Y|Zs], C) :-
    halves([X, Y|Zs], [X, Y|Zs], As, Bs),
    C := split(As, Bs).

% Tortoise-and-hare split: advance two cells on the first list per one
% element moved to the front half.
halves([], Rest, As, Bs) :- As := [], Bs := Rest.
halves([_], Rest, As, Bs) :- As := [], Bs := Rest.
halves([_, _|T], [X|Xs], As, Bs) :-
    As := [X|As1],
    halves(T, Xs, As1, Bs).

dc_merge([], Ys, Zs) :- Zs := Ys.
dc_merge([X|Xs], [], Zs) :- Zs := [X|Xs].
dc_merge([X|Xs], [Y|Ys], Zs) :- X =< Y |
    Zs := [X|Z1], dc_merge(Xs, [Y|Ys], Z1).
dc_merge([X|Xs], [Y|Ys], Zs) :- X > Y |
    Zs := [Y|Z1], dc_merge([X|Xs], Ys, Z1).
"#;

/// List-of-integers source text.
pub fn int_list_src(xs: &[i64]) -> String {
    let items: Vec<String> = xs.iter().map(|x| x.to_string()).collect();
    format!("[{}]", items.join(", "))
}

#[cfg(test)]
mod tests {
    use super::*;
    use strand_core::SplitMix64;
    use strand_machine::{run_parsed_goal, MachineConfig};

    fn sort_via_motif(xs: &[i64], nodes: u32, seed: u64) -> Vec<i64> {
        let p = divide_and_conquer().apply_src(MERGESORT_APP).unwrap();
        let goal = format!("create({nodes}, dc({}, S))", int_list_src(xs));
        let r = run_parsed_goal(&p, &goal, MachineConfig::with_nodes(nodes).seed(seed)).unwrap();
        r.bindings["S"]
            .as_proper_list()
            .expect("sorted output is a proper list")
            .iter()
            .map(|t| match t {
                strand_core::Term::Int(i) => *i,
                other => panic!("non-int {other}"),
            })
            .collect()
    }

    #[test]
    fn mergesort_sorts() {
        let xs = [5i64, 3, 9, 1, 4, 1, 8, 0, -2, 7];
        let mut expected = xs.to_vec();
        expected.sort_unstable();
        assert_eq!(sort_via_motif(&xs, 4, 1), expected);
    }

    #[test]
    fn mergesort_edge_cases() {
        assert_eq!(sort_via_motif(&[], 2, 1), Vec::<i64>::new());
        assert_eq!(sort_via_motif(&[42], 2, 1), vec![42]);
        assert_eq!(sort_via_motif(&[2, 1], 2, 1), vec![1, 2]);
        assert_eq!(sort_via_motif(&[1, 1, 1], 2, 1), vec![1, 1, 1]);
    }

    #[test]
    fn mergesort_random_lists_many_seeds() {
        for seed in 0..5u64 {
            let mut rng = SplitMix64::new(seed);
            let xs: Vec<i64> = (0..60).map(|_| rng.next_below(1000) as i64 - 500).collect();
            let mut expected = xs.clone();
            expected.sort_unstable();
            assert_eq!(sort_via_motif(&xs, 5, seed), expected, "seed {seed}");
        }
    }

    #[test]
    fn dc_work_spreads_across_nodes() {
        let mut rng = SplitMix64::new(3);
        let xs: Vec<i64> = (0..200).map(|_| rng.next_below(10_000) as i64).collect();
        let p = divide_and_conquer().apply_src(MERGESORT_APP).unwrap();
        let goal = format!("create(6, dc({}, S))", int_list_src(&xs));
        let r = run_parsed_goal(&p, &goal, MachineConfig::with_nodes(6).seed(3)).unwrap();
        let busy = r
            .report
            .metrics
            .reductions
            .iter()
            .filter(|&&x| x > 100)
            .count();
        assert!(busy >= 4, "reductions {:?}", r.report.metrics.reductions);
    }
}
