//! The **Grid** motif (§4 future work: "grid problems"; §1 cites DIME's
//! mesh support as a motif-style system).
//!
//! A one-dimensional grid relaxation: `N` cells, each holding a value,
//! iterate `T` steps of a three-point stencil
//! `v'_i = (v_{i-1} + v_i + v_{i+1}) / 3` with fixed zero boundaries. The
//! cells are concurrent processes connected by shared streams — this motif
//! needs *no* server network, demonstrating that motifs are independent
//! building blocks (streams are the language's native medium, §2.1).
//!
//! The stream between neighbor cells A (left) and B (right) carries one
//! `x(VA, VB)` pair per iteration; whichever cell arrives first creates
//! the pair with its own half filled, the other fills the remaining slot —
//! pure single-assignment synchronization, no extra protocol.
//!
//! The user supplies `cell_init(I, V)` giving the initial value of cell
//! `I`. Entry goal: `grid(N, T, Final)`; `Final` lists the final cell
//! values in order. Cell `I` is placed on machine node `I` (wrapping).

use crate::motif::Motif;

/// The grid library.
pub const GRID_LIBRARY: &str = r#"
% grid(N, T, Final): N cells, T iterations, Final = final values in order.
grid(N, T, Final) :-
    make_cells(1, N, T, boundary, Final).

make_cells(I, N, T, Left, Final) :- I < N |
    cell_init(I, V0),
    Final := [F|F1],
    cell(T, V0, Left, Right, F)@I,
    I1 := I + 1,
    make_cells(I1, N, T, Right, F1).
make_cells(N, N, T, Left, Final) :-
    cell_init(N, V0),
    Final := [F],
    cell(T, V0, Left, boundary, F)@N.

% cell(T, V, Left, Right, F): F is bound to the final value after T steps.
cell(0, V, Left, Right, F) :- close_left(Left), close_right(Right), F = V.
cell(T, V, Left, Right, F) :- T > 0 |
    exchange(Left, left, V, VL, Left1),
    exchange(Right, right, V, VR, Right1),
    step(V, VL, VR, V1),
    T1 := T - 1,
    cell(T1, V1, Left1, Right1, F).

% exchange(Stream, Side, MyV, TheirV, Rest): publish MyV, obtain TheirV.
% The protocol is asymmetric to stay race-free under single assignment:
% each shared stream is *produced* by its left cell — one x(VA, VB) pair
% per iteration with VA filled — and the right cell fills the VB slot when
% the pair arrives (dataflow suspension provides the synchronization).
exchange(boundary, _, _, TheirV, Rest) :- TheirV := 0, Rest := boundary.
exchange(S, right, MyV, TheirV, Rest) :-      % I am the producer (left cell)
    S = [x(MyV, TheirV0)|Rest0],
    TheirV = TheirV0, Rest = Rest0.
exchange(S, left, MyV, TheirV, Rest) :-       % I am the consumer (right cell)
    fill(S, MyV, TheirV, Rest).

fill([x(TheirV0, MySlot)|Rest0], MyV, TheirV, Rest) :-
    MySlot = MyV, TheirV = TheirV0, Rest = Rest0.

step(V, VL, VR, V1) :- V1 := (VL + V + VR) / 3.

% Closing an edge follows the same asymmetry: the producer terminates its
% stream; the consumer waits to observe the terminated stream.
close_left(boundary).
close_left([]).
close_right(boundary).
% The producer is the only writer of its stream, so testing unknown(S) is
% race-free here: an unbound right edge can only be closed by this cell.
close_right(S) :- unknown(S) | S = [].
"#;

/// The Grid motif: library-only (no server network involved).
pub fn grid() -> Motif {
    Motif::library_only("Grid", GRID_LIBRARY)
}

/// Reference sequential stencil for tests: same boundary convention.
pub fn sequential_stencil(init: &[f64], steps: u32) -> Vec<f64> {
    let mut cur = init.to_vec();
    for _ in 0..steps {
        let mut next = cur.clone();
        for i in 0..cur.len() {
            let left = if i == 0 { 0.0 } else { cur[i - 1] };
            let right = if i + 1 == cur.len() { 0.0 } else { cur[i + 1] };
            next[i] = (left + cur[i] + right) / 3.0;
        }
        cur = next;
    }
    cur
}

#[cfg(test)]
mod tests {
    use super::*;
    use strand_machine::{run_parsed_goal, MachineConfig, RunStatus};

    fn run_grid(n: u32, t: u32, nodes: u32) -> Vec<f64> {
        // cell_init(I, V): V = I (floats so division stays exact enough).
        let app = "cell_init(I, V) :- V := I * 1.0.";
        let p = grid().apply_src(app).unwrap();
        let goal = format!("grid({n}, {t}, Final)");
        let r = run_parsed_goal(&p, &goal, MachineConfig::with_nodes(nodes)).unwrap();
        assert_eq!(
            r.report.status,
            RunStatus::Completed,
            "{:?}",
            r.report.suspended_goals
        );
        r.bindings["Final"]
            .as_proper_list()
            .expect("final values list")
            .iter()
            .map(|v| match v {
                strand_core::Term::Float(x) => *x,
                strand_core::Term::Int(i) => *i as f64,
                other => panic!("non-number {other}"),
            })
            .collect()
    }

    #[test]
    fn grid_matches_sequential_stencil() {
        for (n, t) in [(1u32, 1u32), (2, 3), (5, 4), (8, 10)] {
            let init: Vec<f64> = (1..=n).map(|i| i as f64).collect();
            let expected = sequential_stencil(&init, t);
            let got = run_grid(n, t, 4);
            assert_eq!(got.len(), expected.len());
            for (g, e) in got.iter().zip(expected.iter()) {
                assert!((g - e).abs() < 1e-9, "n={n} t={t}: {got:?} vs {expected:?}");
            }
        }
    }

    #[test]
    fn grid_zero_iterations_returns_initial() {
        let got = run_grid(4, 0, 2);
        assert_eq!(got, vec![1.0, 2.0, 3.0, 4.0]);
    }

    #[test]
    fn grid_distributes_cells() {
        let app = "cell_init(I, V) :- V := I * 1.0.";
        let p = grid().apply_src(app).unwrap();
        let r = run_parsed_goal(&p, "grid(8, 6, Final)", MachineConfig::with_nodes(4)).unwrap();
        let active = r
            .report
            .metrics
            .reductions
            .iter()
            .filter(|&&x| x > 10)
            .count();
        assert!(active >= 3, "reductions {:?}", r.report.metrics.reductions);
    }
}
