//! The **Pipeline** motif: a chain of stream-processing stages, each on its
//! own machine node (stream programming is the language's native idiom,
//! §2.1; pipelines are the simplest composition of it).
//!
//! The user supplies `stage(K, X, Y)`: stage number `K` maps one input
//! element `X` to one output element `Y`. Entry goal:
//! `pipe(Stages, Inputs, Outputs)` — `Inputs` is a list; `Outputs` is the
//! list after every element passed through stages `1..Stages`.

use crate::motif::Motif;

/// The pipeline library.
pub const PIPELINE_LIBRARY: &str = r#"
pipe(Stages, Inputs, Outputs) :-
    wire(1, Stages, Inputs, Outputs).

% wire(K, Stages, In, Out): spawn stage K on node K, feeding stage K+1.
wire(K, Stages, In, Out) :- K < Stages |
    runner(K, In, Mid)@K,
    K1 := K + 1,
    wire(K1, Stages, Mid, Out).
wire(K, K, In, Out) :-
    runner(K, In, Out)@K.

% A runner applies the user's stage to each stream element.
runner(_, [], Out) :- Out := [].
runner(K, [X|Xs], Out) :-
    stage(K, X, Y),
    Out := [Y|Out1],
    runner(K, Xs, Out1).
"#;

/// The Pipeline motif (library-only).
pub fn pipeline() -> Motif {
    Motif::library_only("Pipeline", PIPELINE_LIBRARY)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dc::int_list_src;
    use strand_machine::{run_parsed_goal, MachineConfig, RunStatus};

    #[test]
    fn three_stage_arithmetic_pipeline() {
        // stage k adds k to each element: total shift = 1+2+3 = 6.
        let app = "stage(K, X, Y) :- Y := X + K.";
        let p = pipeline().apply_src(app).unwrap();
        let goal = format!("pipe(3, {}, Out)", int_list_src(&[0, 10, 20]));
        let r = run_parsed_goal(&p, &goal, MachineConfig::with_nodes(3)).unwrap();
        assert_eq!(r.report.status, RunStatus::Completed);
        assert_eq!(r.bindings["Out"].to_string(), "[6,16,26]");
    }

    #[test]
    fn single_stage_pipeline() {
        let app = "stage(K, X, Y) :- Y := X * K.";
        let p = pipeline().apply_src(app).unwrap();
        let r = run_parsed_goal(&p, "pipe(1, [3, 4], Out)", MachineConfig::default()).unwrap();
        assert_eq!(r.bindings["Out"].to_string(), "[3,4]");
    }

    #[test]
    fn empty_input_flows_through() {
        let app = "stage(K, X, Y) :- Y := X + K.";
        let p = pipeline().apply_src(app).unwrap();
        let r = run_parsed_goal(&p, "pipe(4, [], Out)", MachineConfig::with_nodes(4)).unwrap();
        assert_eq!(r.bindings["Out"].to_string(), "[]");
    }

    #[test]
    fn stages_overlap_in_time() {
        // With per-element work, a pipeline of S stages over N elements
        // takes ~ (N + S) units, far below the serial N*S.
        let app = "stage(_, X, Y) :- work(100), Y := X.";
        let p = pipeline().apply_src(app).unwrap();
        let goal = format!(
            "pipe(4, {}, Out)",
            int_list_src(&(0..16).collect::<Vec<_>>())
        );
        let r = run_parsed_goal(&p, &goal, MachineConfig::with_nodes(4)).unwrap();
        assert_eq!(r.report.status, RunStatus::Completed);
        let serial = 16 * 4 * 100;
        assert!(
            r.report.metrics.makespan < serial / 2,
            "makespan {} not overlapped (serial {serial})",
            r.report.metrics.makespan
        );
    }
}
