//! The **Server** motif (§3.2).
//!
//! Provides *"a fully connected set of named servers, each capable of
//! initiating computations upon receipt of messages from other servers"*.
//! The application supplies a one-argument `server/1` definition (a stream
//! of incoming messages) and may call three operations:
//!
//! * `send(Node, Msg)` — deliver `Msg` to server `Node`;
//! * `send(Node, Msg, Ack)` — same, binding `Ack := ok` after the append
//!   (an extension used when explicit sequencing is needed);
//! * `nodes(N)` — bind `N` to the number of servers;
//! * `halt` — broadcast the `halt` message to every server.
//!
//! The **transformation** implements the paper's four steps: thread the
//! stream-tuple argument `DT` through every procedure that (transitively)
//! uses the operations — and through `server/1` itself — then translate
//! `send/nodes/halt` into the low-level `distribute/length/broadcast`
//! primitives. The **library** (the analogue of Figure 3) creates the
//! network: one server per machine node, each reading a merged input
//! stream, with the tuple of write ports shared by all.

use crate::motif::Motif;
use std::collections::BTreeSet;
use transform::callgraph::{CallGraph, Key};
use transform::rewrite::{thread_argument, FreshVars};
use transform::{TransformError, Transformation};

use strand_parse::{Ast, Call, Program};

/// The server library. `create(N, Msg)` builds an N-server network and
/// delivers the initial message `Msg` to server 1. Each server runs on its
/// own machine node; its input stream is the read end of a port, which
/// realizes Figure 3's `merge` of all incoming streams; `DT` is the tuple
/// of all write ports, filled in by each server as it starts (callers of
/// `distribute` synchronize on the slots by dataflow).
pub const SERVER_LIBRARY: &str = r#"
% Server motif library (the analogue of the paper's Figure 3).
create(N, Msg) :-
    make_tuple(N, DT),
    spawn_servers(N, DT),
    distribute(1, DT, Msg).

spawn_servers(0, _).
spawn_servers(J, DT) :- J > 0 |
    server_init(J, DT)@J,
    J1 := J - 1,
    spawn_servers(J1, DT).

server_init(J, DT) :-
    open_port(P, In),
    put_arg(J, DT, P),
    server(In, DT).

broadcast_halt(DT) :-
    length(DT, N),
    bcast(N, DT).

bcast(0, _).
bcast(J, DT) :- J > 0 |
    distribute(J, DT, halt),
    J1 := J - 1,
    bcast(J1, DT).
"#;

/// The Server transformation (§3.2, steps 1–4).
pub struct ServerTransform;

const NAME: &str = "Server";

fn prim_keys() -> Vec<Key> {
    vec![
        ("send".to_string(), 2),
        ("send".to_string(), 3),
        ("nodes".to_string(), 1),
        ("halt".to_string(), 0),
    ]
}

impl Transformation for ServerTransform {
    fn name(&self) -> &str {
        NAME
    }

    fn apply(&self, program: &Program) -> Result<Program, TransformError> {
        if program.get("server", 1).is_none() {
            return Err(TransformError::new(
                NAME,
                "application must define server/1 (a rule per message type \
                 handled, plus a rule for the halt message)",
            ));
        }
        // Step 1: the procedures needing the DT argument are those that can
        // reach a server operation, plus server/1 itself.
        let graph = CallGraph::build(program);
        let mut targets: BTreeSet<Key> = graph.ancestors_of(&prim_keys());
        targets.insert(("server".to_string(), 1));
        // Steps 2-4: rewrite operations while threading DT.
        let (out, violations) = thread_argument(program, &targets, "DT", &rewrite_op);
        if !violations.is_empty() {
            let names: Vec<String> = violations.iter().map(|(n, a)| format!("{n}/{a}")).collect();
            return Err(TransformError::new(
                NAME,
                format!(
                    "procedures {} use server operations but are called from \
                     outside the threaded call graph",
                    names.join(", ")
                ),
            ));
        }
        Ok(out)
    }
}

/// Rewrite one server-operation call against the threaded `DT` variable.
fn rewrite_op(call: &Call, dt: &Ast, _fresh: &mut FreshVars) -> Option<Vec<Call>> {
    let (name, arity) = call.goal.functor()?;
    let args = call.goal.args();
    match (name, arity) {
        // Step 2: send(Node, Msg) → distribute(Node, DT, Msg).
        ("send", 2) => Some(vec![Call::new(Ast::tuple(
            "distribute",
            vec![args[0].clone(), dt.clone(), args[1].clone()],
        ))]),
        ("send", 3) => Some(vec![Call::new(Ast::tuple(
            "distribute",
            vec![
                args[0].clone(),
                dt.clone(),
                args[1].clone(),
                args[2].clone(),
            ],
        ))]),
        // Step 3: nodes(N) → length(DT, N).
        ("nodes", 1) => Some(vec![Call::new(Ast::tuple(
            "length",
            vec![dt.clone(), args[0].clone()],
        ))]),
        // Step 4: halt → broadcast to every server stream.
        ("halt", 0) => Some(vec![Call::new(Ast::tuple(
            "broadcast_halt",
            vec![dt.clone()],
        ))]),
        _ => None,
    }
}

/// The Server motif: `{ServerTransform, SERVER_LIBRARY}`.
pub fn server() -> Motif {
    let library = strand_parse::parse_program(SERVER_LIBRARY).expect("server library parses");
    Motif::new(NAME, ServerTransform, library)
}

#[cfg(test)]
mod tests {
    use super::*;
    use strand_machine::{run_parsed_goal, MachineConfig, RunStatus};
    use strand_parse::pretty;

    /// A tiny application: a ring of greetings. Server 1 starts a token
    /// that visits every server once and then halts the network.
    const RING: &str = r#"
        server([token(K)|In]) :- pass(K), server(In).
        server([halt|_]).
        pass(K) :- nodes(N), next(K, N).
        next(K, N) :- K < N | K1 := K + 1, send(K1, token(K1)).
        next(N, N) :- halt.
    "#;

    #[test]
    fn transformation_threads_dt_and_rewrites_ops() {
        let out = ServerTransform
            .apply(&strand_parse::parse_program(RING).unwrap())
            .unwrap();
        let s = pretty(&out);
        assert!(s.contains("server([token(K)|In], DT)"), "{s}");
        assert!(s.contains("server(In, DT)"), "{s}");
        assert!(s.contains("length(DT, N)"), "{s}");
        assert!(s.contains("distribute(K1, DT, token(K1))"), "{s}");
        assert!(s.contains("broadcast_halt(DT)"), "{s}");
        // The halt rule does not use DT: wildcard.
        assert!(s.contains("server([halt|_], _)"), "{s}");
    }

    #[test]
    fn missing_server_definition_is_an_error() {
        let e = server().apply_src("go :- send(1, hi).").unwrap_err();
        assert!(e.message.contains("server/1"), "{e}");
    }

    #[test]
    fn ring_token_visits_every_server() {
        let p = server().apply_src(RING).unwrap();
        for n in [1u32, 2, 4, 8] {
            let r =
                run_parsed_goal(&p, "create(4, token(1))", MachineConfig::with_nodes(n)).unwrap();
            assert_eq!(
                r.report.status,
                RunStatus::Completed,
                "network must halt cleanly on {n} machine nodes"
            );
        }
    }

    #[test]
    fn figure4_connectivity_every_pair_can_communicate() {
        // Experiment F4: an all-pairs flood. Server J, on receiving
        // probe(From), records the pair and probes every server with a
        // larger number. Every ordered pair (i, j>i) must be exercised.
        let flood = r#"
            server([probe(K)|In]) :- fan(K), server(In).
            server([done|In]) :- server(In).
            server([halt|_]).
            fan(K) :- nodes(N), fan1(K, N).
            fan1(K, N) :- K < N | K1 := K + 1, send(K1, probe(K1)), fan1(K1, N).
            fan1(N, N) :- halt.
        "#;
        let p = server().apply_src(flood).unwrap();
        let n = 5u32;
        let r = run_parsed_goal(&p, "create(5, probe(1))", MachineConfig::with_nodes(n)).unwrap();
        assert_eq!(r.report.status, RunStatus::Completed);
        // probes 1→2..5, 2→3..5, ... = C(5,2) cross-node messages at least.
        assert!(r.report.metrics.port_msgs_cross >= 10);
    }

    #[test]
    fn send_with_ack_sequences() {
        let app = r#"
            server([ping(Ack)|In]) :- Ack := got, server(In).
            server([halt|_]).
            go(Out) :- send(2, ping(A)), wait(A, Out).
            wait(got, Out) :- Out := ok, halt.
        "#;
        // go/1 is not reachable from server/1 but calls send — it is the
        // entry; wrap it as a message handler instead.
        let app = format!(
            "server([go(Out)|In]) :- begin(Out), server(In). {}",
            app.replace("go(Out) :-", "begin(Out) :-")
        );
        let p = server().apply_src(&app).unwrap();
        let r = run_parsed_goal(&p, "create(2, go(Out))", MachineConfig::with_nodes(2)).unwrap();
        assert_eq!(r.report.status, RunStatus::Completed);
        assert_eq!(r.bindings["Out"].to_string(), "ok");
    }

    #[test]
    fn library_is_small_like_the_paper_says() {
        // §3.6: complex coordination in a page of high-level code.
        assert!(server().library_rules() <= 12);
    }
}
