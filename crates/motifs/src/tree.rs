//! The tree-reduction motifs of the case study (§3.4, §3.5).
//!
//! * [`tree1`] — the 5-line divide-and-conquer library of §3.4
//!   (identity transformation), exactly the paper's listing;
//! * [`tree_reduce_1`] — `Server ∘ Rand ∘ Tree1`, the paper's
//!   `Tree-Reduce-1`;
//! * [`tree_reduce_1_halting`] — the §3.3 extension: a short circuit is
//!   threaded through `reduce/2`, and the network halts when the circuit
//!   closes;
//! * [`tree_reduce_2`] — the queue-based `Tree-Reduce-2` of §3.5: every
//!   node is labeled (sibling leaves share a label, a parent takes its left
//!   child's label), values queue per processor, and evaluation is
//!   sequenced so one node evaluation runs at a time per processor — the
//!   labeling guarantees *at most one of each node's offspring values
//!   crosses processors*.
//!
//! The user supplies `eval(Op, Left, Right, Value)`; both motifs provide
//! the same interface (§3.6: *"These provide the same interface to the
//! user"*). Trees are terms `tree(Op, L, R)` / `leaf(Value)`.

use crate::motif::Motif;
use crate::rand_map::rand_map_with_entries;
use crate::server::server;
use std::collections::BTreeSet;
use strand_parse::{parse_program, Program};
use transform::callgraph::Key;
use transform::rewrite::thread_circuit;
use transform::{FnTransform, Identity};

/// The paper's Tree1 library, verbatim (§3.4): five lines of code.
pub const TREE1_LIBRARY: &str = r#"
reduce(tree(V, L, R), Value) :-
    reduce(R, RV)@random,
    reduce(L, LV),
    eval(V, LV, RV, Value).
reduce(leaf(L), Value) :- Value := L.
"#;

/// `Tree1`: identity transformation + the 5-line library.
pub fn tree1() -> Motif {
    Motif::library_only("Tree1", TREE1_LIBRARY)
}

/// `Tree-Reduce-1 = Server ∘ Rand ∘ Tree1` (§3.4).
///
/// Entry goal: `create(P, reduce(Tree, Value))`. The network stays
/// quiescent after delivering `Value` (no termination detection — the
/// paper notes this and sketches the short-circuit fix; see
/// [`tree_reduce_1_halting`]).
pub fn tree_reduce_1() -> Motif {
    // reduce/2 is both the @random-shipped type and the initial message.
    server()
        .compose(&rand_map_with_entries(&[]))
        .compose(&tree1())
}

/// `Tree-Reduce-1` extended with short-circuit termination detection
/// (§3.3, last paragraph): `Server ∘ Rand ∘ Circuit ∘ Tree1'`.
///
/// Entry goal: `create(P, begin_reduce(Tree, Value))`.
pub fn tree_reduce_1_halting() -> Motif {
    let entry = r#"
begin_reduce(Tree, Value) :-
    reduce(Tree, Value, Done, done),
    watch(Done).
watch(done) :- halt.
"#;
    let entry_prog = parse_program(entry).expect("entry parses");
    let circuit = FnTransform::new("Circuit(reduce/2)", move |p: &Program| {
        let targets: BTreeSet<Key> = [("reduce".to_string(), 2)].into_iter().collect();
        Ok(thread_circuit(p, &targets).union(&entry_prog))
    });
    let circuit_motif = Motif::transform_only("Circuit", circuit);
    server()
        .compose(&rand_map_with_entries(&[("begin_reduce", 2)]))
        .compose(&circuit_motif)
        .compose(&tree1())
}

/// The Tree-Reduce-2 library (the algorithm of §3.5 / Figure 7).
///
/// The tree is preprocessed into a table: entry `i` holds
/// `info(Data, ParentId, ParentLabel, Side)` for the node with preorder id
/// `i`. Labels: a leaf picks a random processor (sharing with its sibling
/// when both are leaves); an interior node takes its left child's label.
/// Leaf values are sent to their parent's label; each server queues values
/// (`pending` gauge) and evaluates one node at a time, forwarding results
/// to the grandparent's label. The root value binds `Result` and halts the
/// network.
pub const TREE2_LIBRARY: &str = r#"
% Tree-Reduce-2 library (the analogue of the paper's Figure 7).
server(In) :- serve(In, st(Table, Result, [])).

serve([tr2(Tree, Result)|In], St) :-
    setup(Tree, Result),
    serve(In, St).
serve([tree(T, R)|In], st(TV, RV, Pend)) :-
    TV = T, RV = R,
    serve(In, st(TV, RV, Pend)).
serve([value(P, Side, V)|In], st(T, R, Pend)) :-
    take(P, Pend, Found, Pend1),
    handle(Found, P, Side, V, In, st(T, R, Pend1)).
% Initial leaf values arrive as lvalue messages — same handling, but kept
% a distinct message type so experiment E3 can separate the one-time data
% distribution from the offspring-value communication the paper's bound is
% about.
serve([lvalue(P, Side, V)|In], st(T, R, Pend)) :-
    take(P, Pend, Found, Pend1),
    handle(Found, P, Side, V, In, st(T, R, Pend1)).
serve([halt|_], _).

% --- preprocessing: ids, labels, table, initial dispatch ---

setup(leaf(V), Result) :- Result = V, halt.
setup(tree(Op, A, B), Result) :-
    count_nodes(tree(Op, A, B), 0, N),
    make_tuple(N, Table),
    build(tree(Op, A, B), Table, 1, _, -1, 0, none, fresh, _RootLbl, Ls, []),
    bcast_tree(Table, Result, Ok),
    dispatch(Ok, Ls).

count_nodes(leaf(_), Acc, N) :- N := Acc + 1.
count_nodes(tree(_, A, B), Acc, N) :-
    Acc1 := Acc + 1,
    count_nodes(A, Acc1, N1),
    count_nodes(B, N1, N).

% build(Node, Table, Id, NextId, ParentId, ParentLabel, Side, Hint, MyLabel, Ls, Ls0)
build(leaf(V), Table, Id, Next, PId, PLbl, Side, Hint, MyLbl, Ls, Ls0) :-
    Next := Id + 1,
    pick_label(Hint, MyLbl),
    put_arg(Id, Table, info(leafval(V), PId, PLbl, Side)),
    Ls := [lv(PId, Side, V, PLbl)|Ls0].
build(tree(Op, A, B), Table, Id, Next, PId, PLbl, Side, _, MyLbl, Ls, Ls0) :-
    MyLbl = LA,
    hints(A, B, LA, HA, HB),
    IdA := Id + 1,
    build(A, Table, IdA, NA, Id, MyLbl, l, HA, LA, Ls, Ls1),
    build(B, Table, NA, Next, Id, MyLbl, r, HB, LB, Ls1, Ls0),
    use_label(LB),
    put_arg(Id, Table, info(op(Op), PId, PLbl, Side)).

use_label(_).

% Sibling leaves share one label (the paper's restriction); otherwise both
% children label themselves independently.
hints(leaf(_), leaf(_), LA, HA, HB) :- HA := fresh, HB := use(LA).
hints(_, _, _, HA, HB) :- otherwise | HA := fresh, HB := fresh.

pick_label(fresh, M) :- nodes(P), rand_num(P, M).
pick_label(use(L), M) :- M = L.

% The broadcast is *acknowledged* (send/3): each server's tree message is
% known to be in its stream before any leaf value is dispatched, so every
% server sees the tree first — otherwise a server could block inside an
% evaluation that needs the table while the table message sits unread.
bcast_tree(Table, Result, Ok) :- nodes(P), bt(P, Table, Result, Ok).
bt(0, _, _, Ok) :- Ok := ok.
bt(J, Table, Result, Ok) :- J > 0 |
    send(J, tree(Table, Result), Ack),
    bt_next(Ack, J, Table, Result, Ok).
bt_next(ok, J, Table, Result, Ok) :-
    J1 := J - 1,
    bt(J1, Table, Result, Ok).

dispatch(ok, []).
dispatch(ok, [lv(PId, Side, V, PLbl)|Ls]) :-
    send(PLbl, lvalue(PId, Side, V)),
    dispatch(ok, Ls).

% --- per-server value queue and sequenced evaluation ---

take(_, [], Found, Pend1) :- Found := none, Pend1 := [].
take(P, [pv(P, S, V)|T], Found, Pend1) :- Found := found(S, V), Pend1 := T.
take(P, [pv(Q, S, V)|T], Found, Pend1) :- P =\= Q |
    Pend1 := [pv(Q, S, V)|T1],
    take(P, T, Found, T1).

handle(none, P, S, V, In, st(T, R, Pend)) :-
    llen(Pend, L0), L := L0 + 1, gauge(pending, L),
    serve(In, st(T, R, [pv(P, S, V)|Pend])).
handle(found(S1, V1), P, _, V2, In, St) :-
    orient(S1, V1, V2, VL, VR),
    evalstep(P, VL, VR, In, St).

orient(l, V1, V2, VL, VR) :- VL := V1, VR := V2.
orient(r, V1, V2, VL, VR) :- VL := V2, VR := V1.

evalstep(P, VL, VR, In, st(T, R, Pend)) :-
    arg(P, T, Info),
    evalgo(Info, VL, VR, In, st(T, R, Pend)).

evalgo(info(op(Op), GP, GL, Side), VL, VR, In, st(T, R, Pend)) :-
    eval(Op, VL, VR, PV),
    forward(PV, GP, GL, Side, R, Done),
    resume(Done, In, st(T, R, Pend)).

resume(done, In, St) :- serve(In, St).

% Sequencing: forward waits for the evaluated value before releasing the
% server loop, so a single node evaluation is active per processor (§3.5).
forward(PV, -1, _, _, R, Done) :- data(PV) |
    R = PV, Done := done, halt.
forward(PV, GP, GL, Side, _, Done) :- GP >= 0, data(PV) |
    send(GL, value(GP, Side, PV)),
    Done := done.

llen([], N) :- N := 0.
llen([_|T], N) :- llen(T, N1), N := N1 + 1.
"#;

/// `Tree-Reduce-2 = Server ∘ TreeReduce2Core` (§3.5).
///
/// Entry goal: `create(P, tr2(Tree, Value))`. Halts the network when the
/// root value is delivered.
pub fn tree_reduce_2() -> Motif {
    let core = Motif::new(
        "TreeReduce2Core",
        Identity,
        parse_program(TREE2_LIBRARY).expect("tree2 library parses"),
    );
    server().compose(&core)
}

/// Generate the source text of a tree term for goals: a balanced tree of
/// the given depth whose leaves are `1` and operators alternate `'+'`/`'*'`
/// — depth 0 is a single leaf.
pub fn balanced_tree_src(depth: u32) -> String {
    fn go(depth: u32, level: u32) -> String {
        if depth == 0 {
            "leaf(1)".to_string()
        } else {
            let op = if level.is_multiple_of(2) {
                "'+'"
            } else {
                "'*'"
            };
            format!(
                "tree({op}, {}, {})",
                go(depth - 1, level + 1),
                go(depth - 1, level + 1)
            )
        }
    }
    go(depth, 0)
}

/// Generate a random binary tree with `leaves` leaves (each labeled with
/// its index modulo 10 plus 1) using a seeded generator; shape is a random
/// binary split, operators alternate by parity.
pub fn random_tree_src(leaves: u32, seed: u64) -> String {
    let mut rng = strand_core::SplitMix64::new(seed);
    let mut counter = 0u32;
    fn go(leaves: u32, rng: &mut strand_core::SplitMix64, counter: &mut u32) -> String {
        if leaves <= 1 {
            *counter += 1;
            format!("leaf({})", (*counter % 10) + 1)
        } else {
            let left = 1 + rng.next_below((leaves - 1) as u64) as u32;
            let op = if rng.next_below(2) == 0 {
                "'+'"
            } else {
                "'max'"
            };
            format!(
                "tree({op}, {}, {})",
                go(left, rng, counter),
                go(leaves - left, rng, counter)
            )
        }
    }
    go(leaves, &mut rng, &mut counter)
}

/// The standard arithmetic `eval/4` used by the examples: `'+'`, `'*'`,
/// `'max'`, with an optional per-node cost knob `eval_cost/1` the caller
/// can override by concatenation (`work(C)` advances the virtual clock).
pub const ARITH_EVAL: &str = r#"
% The data guards make eval wait until both operand values exist, so its
% cost is charged when the node evaluation actually runs — and so a pending
% evaluation shows up as a live suspended `eval` process (experiment E2).
eval(Op, L, R, Value) :- data(L), data(R) |
    eval_cost(C), work(C), apply_op(Op, L, R, Value).
apply_op('+', L, R, Value) :- Value := L + R.
apply_op('*', L, R, Value) :- Value := L * R.
apply_op('max', L, R, Value) :- Value := max(L, R).
eval_cost(C) :- C := 1.
"#;

/// Sequentially reduce a tree source string (reference result for tests).
pub fn sequential_reduce(tree_src: &str) -> i64 {
    fn eval(t: &strand_parse::Ast) -> i64 {
        match t {
            strand_parse::Ast::Tuple(name, args) if name == "leaf" => match &args[0] {
                strand_parse::Ast::Int(v) => *v,
                other => panic!("bad leaf {other}"),
            },
            strand_parse::Ast::Tuple(name, args) if name == "tree" => {
                let l = eval(&args[1]);
                let r = eval(&args[2]);
                match &args[0] {
                    strand_parse::Ast::Atom(op) if op == "+" => l + r,
                    strand_parse::Ast::Atom(op) if op == "*" => l * r,
                    strand_parse::Ast::Atom(op) if op == "max" => l.max(r),
                    other => panic!("bad op {other}"),
                }
            }
            other => panic!("bad tree node {other}"),
        }
    }
    eval(&strand_parse::parse_term(tree_src).expect("tree parses"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use strand_machine::{run_parsed_goal, MachineConfig, RunStatus};
    use strand_parse::pretty;

    #[test]
    fn tree1_library_is_five_lines() {
        // §3.6: "The first is implemented with five lines of code".
        let lines: Vec<&str> = TREE1_LIBRARY
            .lines()
            .map(str::trim)
            .filter(|l| !l.is_empty() && !l.starts_with('%'))
            .collect();
        assert_eq!(lines.len(), 5, "{lines:?}");
        assert_eq!(tree1().library_rules(), 2);
    }

    #[test]
    fn tree_reduce_1_evaluates_paper_example() {
        // The paper's §3.1 example evaluates (3*2)*((2+1)+1) = 24.
        let motif = tree_reduce_1();
        let program = motif.apply_src(ARITH_EVAL).unwrap();
        let tree = "tree('*', tree('*', leaf(3), leaf(2)), \
                    tree('+', tree('+', leaf(2), leaf(1)), leaf(1)))";
        let goal = format!("create(4, reduce({tree}, Value))");
        let r = run_parsed_goal(&program, &goal, MachineConfig::with_nodes(4).seed(5)).unwrap();
        assert_eq!(r.bindings["Value"].to_string(), "24");
        assert!(matches!(r.report.status, RunStatus::Quiescent { .. }));
    }

    #[test]
    fn tree_reduce_1_halting_terminates_network() {
        let motif = tree_reduce_1_halting();
        let program = motif.apply_src(ARITH_EVAL).unwrap();
        let tree = balanced_tree_src(4);
        let goal = format!("create(4, begin_reduce({tree}, Value))");
        let r = run_parsed_goal(&program, &goal, MachineConfig::with_nodes(4).seed(7)).unwrap();
        assert_eq!(r.report.status, RunStatus::Completed);
        assert_eq!(
            r.bindings["Value"].to_string(),
            sequential_reduce(&tree).to_string()
        );
    }

    #[test]
    fn tree_reduce_2_evaluates_and_halts() {
        let motif = tree_reduce_2();
        let program = motif.apply_src(ARITH_EVAL).unwrap();
        let tree = "tree('*', tree('*', leaf(3), leaf(2)), \
                    tree('+', tree('+', leaf(2), leaf(1)), leaf(1)))";
        let goal = format!("create(4, tr2({tree}, Value))");
        let r = run_parsed_goal(&program, &goal, MachineConfig::with_nodes(4).seed(5)).unwrap();
        assert_eq!(
            r.report.status,
            RunStatus::Completed,
            "{:?}",
            r.report.suspended_goals
        );
        assert_eq!(r.bindings["Value"].to_string(), "24");
    }

    #[test]
    fn tree_reduce_2_single_leaf() {
        let program = tree_reduce_2().apply_src(ARITH_EVAL).unwrap();
        let r = run_parsed_goal(
            &program,
            "create(2, tr2(leaf(9), Value))",
            MachineConfig::with_nodes(2),
        )
        .unwrap();
        assert_eq!(r.report.status, RunStatus::Completed);
        assert_eq!(r.bindings["Value"].to_string(), "9");
    }

    #[test]
    fn both_motifs_agree_on_random_trees() {
        // §3.6: same interface, same results, different algorithms.
        for seed in [1u64, 2, 3] {
            let tree = random_tree_src(12, seed);
            let expected = sequential_reduce(&tree).to_string();
            let p1 = tree_reduce_1().apply_src(ARITH_EVAL).unwrap();
            let r1 = run_parsed_goal(
                &p1,
                &format!("create(3, reduce({tree}, Value))"),
                MachineConfig::with_nodes(3).seed(seed),
            )
            .unwrap();
            assert_eq!(
                r1.bindings["Value"].to_string(),
                expected,
                "TR1 seed {seed}"
            );
            let p2 = tree_reduce_2().apply_src(ARITH_EVAL).unwrap();
            let r2 = run_parsed_goal(
                &p2,
                &format!("create(3, tr2({tree}, Value))"),
                MachineConfig::with_nodes(3).seed(seed),
            )
            .unwrap();
            assert_eq!(
                r2.bindings["Value"].to_string(),
                expected,
                "TR2 seed {seed}"
            );
        }
    }

    #[test]
    fn tr2_sequences_one_eval_per_node() {
        // E2: peak live eval processes per node is 1 under TR2...
        let p2 = tree_reduce_2().apply_src(ARITH_EVAL).unwrap();
        let tree = random_tree_src(40, 9);
        let cfg = MachineConfig::with_nodes(4).seed(9).track("eval");
        let r2 = run_parsed_goal(&p2, &format!("create(4, tr2({tree}, Value))"), cfg).unwrap();
        assert!(r2.report.metrics.max_peak_tracked() <= 1);
        // ...while TR1 stacks many concurrent evals.
        let p1 = tree_reduce_1().apply_src(ARITH_EVAL).unwrap();
        let cfg = MachineConfig::with_nodes(4).seed(9).track("eval");
        let r1 = run_parsed_goal(&p1, &format!("create(4, reduce({tree}, Value))"), cfg).unwrap();
        assert!(
            r1.report.metrics.max_peak_tracked() > 2,
            "TR1 peak {}",
            r1.report.metrics.max_peak_tracked()
        );
    }

    #[test]
    fn tr2_cross_value_messages_bounded_by_internal_nodes() {
        // E3: at most one of each node's offspring values crosses nodes.
        for seed in [4u64, 5, 6] {
            let leaves = 24u32;
            let internal = leaves - 1; // binary tree
            let tree = random_tree_src(leaves, seed);
            let p2 = tree_reduce_2().apply_src(ARITH_EVAL).unwrap();
            let cfg = MachineConfig::with_nodes(6).seed(seed);
            let r = run_parsed_goal(&p2, &format!("create(6, tr2({tree}, Value))"), cfg).unwrap();
            let crossings = r
                .report
                .metrics
                .port_msgs_by_functor
                .get("value")
                .copied()
                .unwrap_or(0);
            assert!(
                crossings <= internal as u64,
                "seed {seed}: {crossings} value crossings > {internal} internal nodes"
            );
        }
    }

    #[test]
    fn staged_composition_prints_figure5_stages() {
        // F5/F6: the three program stages of Tree-Reduce-1.
        let a = parse_eval();
        let (stage1, _) = tree1().apply_staged(&a).unwrap();
        let stage1 = stage1.union(tree1().library());
        let s1 = pretty(&stage1);
        assert!(s1.contains("reduce(R, RV)@random"), "{s1}");

        let (stage2, _) = rand_map_with_entries(&[]).apply_staged(&stage1).unwrap();
        let s2 = pretty(&stage2);
        assert!(s2.contains("send("), "{s2}");
        assert!(s2.contains("server(["), "{s2}");

        let stage3 = server().apply(&stage2).unwrap();
        let s3 = pretty(&stage3);
        assert!(s3.contains("distribute("), "{s3}");
        assert!(s3.contains("create(N, Msg)"), "{s3}");
        fn parse_eval() -> Program {
            strand_parse::parse_program(ARITH_EVAL).unwrap()
        }
    }

    #[test]
    fn tree_sources_are_deterministic() {
        assert_eq!(random_tree_src(8, 3), random_tree_src(8, 3));
        assert_ne!(random_tree_src(8, 3), random_tree_src(8, 4));
        assert_eq!(balanced_tree_src(0), "leaf(1)");
        assert!(balanced_tree_src(2).starts_with("tree('+', tree('*',"));
    }

    #[test]
    fn sequential_reduce_reference() {
        assert_eq!(sequential_reduce("leaf(7)"), 7);
        assert_eq!(
            sequential_reduce("tree('*', leaf(3), tree('+', leaf(2), leaf(2)))"),
            12
        );
    }
}
