//! The `Motif` abstraction: `M = {T, L}` with `M(A) = T(A) ∪ L` (§2.2).

use std::sync::Arc;
use strand_parse::{parse_program, Program};
use transform::{FnTransform, Identity, TransformError, Transformation};

/// An algorithmic motif: a source-to-source transformation paired with a
/// library program.
///
/// Application is the paper's two-stage process: *"First, the
/// transformation is applied, yielding a modified application program.
/// Second, the library code is linked with the modified application"* —
/// `M(A) = T(A) ∪ L`.
///
/// Motifs compose: `M2.compose(M1)` is `M2 ∘ M1` with
/// `M(A) = T2(T1(A) ∪ L1) ∪ L2`.
#[derive(Clone)]
pub struct Motif {
    name: String,
    transformation: Arc<dyn Transformation>,
    library: Program,
}

impl Motif {
    /// Build a motif from a transformation and a library program.
    pub fn new(
        name: impl Into<String>,
        transformation: impl Transformation + 'static,
        library: Program,
    ) -> Motif {
        Motif {
            name: name.into(),
            transformation: Arc::new(transformation),
            library,
        }
    }

    /// A library-only motif (identity transformation), like the paper's
    /// `Tree1` (§3.4).
    pub fn library_only(name: impl Into<String>, library_src: &str) -> Motif {
        let library = parse_program(library_src)
            .unwrap_or_else(|e| panic!("motif library source does not parse: {e}"));
        Motif::new(name, Identity, library)
    }

    /// A transformation-only motif (empty library), like the paper's
    /// `Rand` (§3.3).
    pub fn transform_only(
        name: impl Into<String>,
        transformation: impl Transformation + 'static,
    ) -> Motif {
        Motif::new(name, transformation, Program::new())
    }

    /// The motif's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The motif's library program.
    pub fn library(&self) -> &Program {
        &self.library
    }

    /// Number of rules in the library (the paper's informal code-size
    /// measure, experiment E5).
    pub fn library_rules(&self) -> usize {
        self.library.rule_count()
    }

    /// Apply the motif to an application program: `T(A) ∪ L`.
    pub fn apply(&self, application: &Program) -> Result<Program, TransformError> {
        let transformed = self.transformation.apply(application)?;
        Ok(transformed.union(&self.library))
    }

    /// Apply to application source text.
    pub fn apply_src(&self, application_src: &str) -> Result<Program, TransformError> {
        let app = parse_program(application_src)
            .map_err(|e| TransformError::new(self.name.clone(), e.to_string()))?;
        self.apply(&app)
    }

    /// Compose: `self ∘ inner`, i.e. apply `inner` first.
    ///
    /// The result is again a motif `{T, L}` with `T = A ↦ T_self(inner(A))`
    /// and `L = L_self`, so composition chains associatively exactly as in
    /// the paper's `Tree-Reduce-1 = Server ∘ Rand ∘ Tree1`.
    pub fn compose(&self, inner: &Motif) -> Motif {
        let name = format!("{} o {}", self.name, inner.name);
        let inner_cl = inner.clone();
        let outer_t = Arc::clone(&self.transformation);
        let t = FnTransform::new(name.clone(), move |a: &Program| {
            let staged = inner_cl.apply(a)?;
            outer_t.apply(&staged)
        });
        Motif {
            name,
            transformation: Arc::new(t),
            library: self.library.clone(),
        }
    }

    /// Apply the motif and return the *intermediate* program too (the
    /// stages shown in the paper's Figure 5): `(T(A), T(A) ∪ L)`.
    pub fn apply_staged(
        &self,
        application: &Program,
    ) -> Result<(Program, Program), TransformError> {
        let transformed = self.transformation.apply(application)?;
        let linked = transformed.union(&self.library);
        Ok((transformed, linked))
    }
}

impl std::fmt::Debug for Motif {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "Motif({}, {} library rules)",
            self.name,
            self.library.rule_count()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use strand_parse::pretty;

    #[test]
    fn library_only_motif_links_library() {
        let m = Motif::library_only("lib", "helper(X, Y) :- Y := X + 1.");
        let out = m.apply_src("go(V) :- helper(1, V).").unwrap();
        assert!(out.get("go", 1).is_some());
        assert!(out.get("helper", 2).is_some());
        assert_eq!(m.library_rules(), 1);
    }

    #[test]
    fn apply_is_t_then_union() {
        // A transformation that renames f→g, plus a library defining h.
        let t = FnTransform::new("ren", |p: &Program| {
            let mut out = Program::new();
            for r in p.rules() {
                let mut r = r.clone();
                if let strand_parse::Ast::Tuple(n, _) = &mut r.head {
                    if n == "f" {
                        *n = "g".into();
                    }
                }
                out.push_rule(r);
            }
            Ok(out)
        });
        let lib = parse_program("h(1).").unwrap();
        let m = Motif::new("m", t, lib);
        let out = m.apply_src("f(X).").unwrap();
        assert!(out.get("g", 1).is_some());
        assert!(out.get("f", 1).is_none());
        assert!(out.get("h", 1).is_some());
    }

    #[test]
    fn composition_matches_paper_equation() {
        // M2 ∘ M1 (A) must equal T2(T1(A) ∪ L1) ∪ L2.
        let m1 = Motif::library_only("m1", "one(1).");
        let m2 = Motif::library_only("m2", "two(2).");
        let composed = m2.compose(&m1);
        let a = parse_program("app(X).").unwrap();
        let lhs = composed.apply(&a).unwrap();
        let rhs = m2.apply(&m1.apply(&a).unwrap()).unwrap();
        assert_eq!(pretty(&lhs), pretty(&rhs));
        assert_eq!(composed.name(), "m2 o m1");
    }

    #[test]
    fn staged_application_exposes_intermediate() {
        let m = Motif::library_only("lib", "aux(0).");
        let a = parse_program("app(X).").unwrap();
        let (t_a, linked) = m.apply_staged(&a).unwrap();
        assert!(t_a.get("aux", 1).is_none());
        assert!(linked.get("aux", 1).is_some());
    }
}
