//! The **Search** motif (§4 future work; §1 cites or-parallel Prolog as a
//! motif-style system: *"the user provides logic clauses that specify a
//! search problem and the system explores the corresponding search tree"*).
//!
//! The user supplies:
//!
//! * `branch(Node, Kids)` — expand a search node into a (possibly empty)
//!   list of children;
//! * `accept(Node, Count)` — score a node with no children (1 if it is a
//!   solution, else 0).
//!
//! The library counts solutions of the search tree, shipping each child
//! exploration to a random server. Entry goal:
//! `create(P, search(Root, Count))`.

use crate::motif::Motif;
use crate::rand_map::rand_map_with_entries;
use crate::server::server;

/// The or-parallel search library.
pub const SEARCH_LIBRARY: &str = r#"
search(Node, Count) :-
    branch(Node, Kids),
    explore(Kids, Node, Count).
explore([], Node, Count) :- accept(Node, Count).
explore([K|Ks], _, Count) :- sum_kids([K|Ks], Count).
sum_kids([], C) :- C := 0.
sum_kids([K|Ks], C) :-
    search(K, C1)@random,
    sum_kids(Ks, C2),
    add_counts(C1, C2, C).
add_counts(C1, C2, C) :- C := C1 + C2.
"#;

/// `Search = Server ∘ Rand ∘ SearchCore`.
pub fn search() -> Motif {
    let core = Motif::library_only("SearchCore", SEARCH_LIBRARY);
    server()
        .compose(&rand_map_with_entries(&[("search", 2)]))
        .compose(&core)
}

/// A small N-queens instance expressed with `branch/accept`: a node is
/// `q(N, Placed, Row)` — place queens row by row on an N×N board; `Placed`
/// is the list of column positions so far (most recent first).
pub const NQUEENS_APP: &str = r#"
branch(q(N, _, Row), Kids) :- Row > N | Kids := [].
branch(q(N, Placed, Row), Kids) :- Row =< N |
    cols(N, q(N, Placed, Row), Kids, []).

% Try each column; keep only safe placements.
cols(0, _, Kids, Kids0) :- Kids := Kids0.
cols(C, q(N, Placed, Row), Kids, Kids0) :- C > 0 |
    safe(Placed, C, 1, Ok),
    keep(Ok, C, q(N, Placed, Row), Kids, Kids1),
    C1 := C - 1,
    cols(C1, q(N, Placed, Row), Kids1, Kids0).

keep(yes, C, q(N, Placed, Row), Kids, Kids1) :-
    Row1 := Row + 1,
    Kids := [q(N, [C|Placed], Row1)|Kids1].
keep(no, _, _, Kids, Kids1) :- Kids := Kids1.

% safe(Placed, Col, Dist, Ok): no placed queen attacks (Col) at distance.
safe([], _, _, Ok) :- Ok := yes.
safe([P|_], C, _, Ok) :- P == C | Ok := no.
safe([P|Ps], C, D, Ok) :- P =\= C |
    Diff := P - C, AbsD := abs(Diff),
    diag(AbsD, D, Ps, C, Ok).
diag(AbsD, D, _, _, Ok) :- AbsD == D | Ok := no.
diag(AbsD, D, Ps, C, Ok) :- AbsD =\= D |
    D1 := D + 1, safe(Ps, C, D1, Ok).

% A node with no children is a solution iff all N queens are placed.
accept(q(N, _, Row), Count) :- Row > N | Count := 1.
accept(q(N, _, Row), Count) :- Row =< N | Count := 0.
"#;

#[cfg(test)]
mod tests {
    use super::*;
    use strand_machine::{run_parsed_goal, MachineConfig};

    fn queens(n: u32, nodes: u32, seed: u64) -> i64 {
        let p = search().apply_src(NQUEENS_APP).unwrap();
        let goal = format!("create({nodes}, search(q({n}, [], 1), Count))");
        let r = run_parsed_goal(&p, &goal, MachineConfig::with_nodes(nodes).seed(seed)).unwrap();
        match r.bindings["Count"] {
            strand_core::Term::Int(i) => i,
            ref other => panic!("non-int count {other}"),
        }
    }

    #[test]
    fn nqueens_counts_match_known_values() {
        // OEIS A000170: 1, 0, 0, 2, 10, 4 for N = 1..6.
        assert_eq!(queens(1, 2, 1), 1);
        assert_eq!(queens(2, 2, 1), 0);
        assert_eq!(queens(3, 2, 1), 0);
        assert_eq!(queens(4, 3, 1), 2);
        assert_eq!(queens(5, 4, 1), 10);
    }

    #[test]
    fn six_queens_parallel_equals_serial() {
        assert_eq!(queens(6, 4, 2), 4);
        assert_eq!(queens(6, 1, 2), 4);
    }
}
