//! The **Graph** motif (§4 future work: *"various graph theory
//! problems"*): connected components by edge-partitioned label
//! propagation.
//!
//! A BSP-style algorithm on the Server motif: the coordinator (server 1)
//! holds the label vector (initially `label(v) = v`); the edge list is
//! strided across the workers. Each round the coordinator broadcasts the
//! labels; every worker relaxes its own edges (`min` across each edge) and
//! sends back an update list; the coordinator merges the updates into the
//! next label vector and iterates until a fixpoint, then halts the
//! network. On termination every vertex is labeled with the smallest
//! vertex id of its component.
//!
//! The user provides nothing but the graph — the motif is library-only —
//! and gets the classic "semi-SIMD on MIMD" structure the paper's
//! introduction describes, built from the same Server building block as
//! everything else.
//!
//! Entry goal: `create(P, cc(N, Edges, Final))` with `P ≥ 2`; `Edges` is a
//! list of `e(U, V)` terms over vertices `1..=N`; `Final` is bound to the
//! component label list in vertex order.

use crate::motif::Motif;
use crate::server::server;

/// The connected-components library.
pub const GRAPH_LIBRARY: &str = r#"
% Graph motif: connected components by label propagation (BSP rounds).
server(In) :- gserve(In).

gserve([cc(N, Edges, Final)|In]) :-
    nodes(P),
    startw(2, P, Edges),
    init_labels(N, T),
    round(In, N, P, T, Final).
gserve([block(Es, I, W)|In]) :-
    pick(Es, I, W, Mine),
    gworker(In, Mine).
gserve([halt|_]).

% Deal the edge list to workers 2..P by stride (each filters in parallel).
startw(J, P, Edges) :- J =< P |
    I := J - 1, W := P - 1,
    send(J, block(Edges, I, W)),
    J1 := J + 1,
    startw(J1, P, Edges).
startw(J, P, _) :- J > P | true.

pick([], _, _, Mine) :- Mine := [].
pick([E|Es], 1, W, Mine) :- Mine := [E|M1], pick1(Es, W, M1).
pick([_|Es], I, W, Mine) :- I > 1 | I1 := I - 1, pick(Es, I1, W, Mine).
pick1(Es, W, Mine) :- pick(Es, W, W, Mine).

init_labels(N, T) :- make_tuple(N, T), seed_labels(1, N, T).
seed_labels(I, N, T) :- I =< N | put_arg(I, T, I), I1 := I + 1, seed_labels(I1, N, T).
seed_labels(I, N, _) :- I > N | true.

% One BSP round: broadcast labels, collect worker updates, merge, repeat
% until no label changed.
round(In, N, P, T, Final) :-
    bcast_labels(2, P, T),
    W := P - 1,
    collect(In, W, Us, [], In1),
    make_tuple(N, T1),
    merge_labels(1, N, T, Us, T1, 0, D),
    next(D, In1, N, P, T1, Final).

next(0, _, N, _, T1, Final) :- to_list(1, N, T1, Final), halt.
next(D, In, N, P, T1, Final) :- D > 0 | round(In, N, P, T1, Final).

bcast_labels(J, P, T) :- J =< P | send(J, labels(T)), J1 := J + 1, bcast_labels(J1, P, T).
bcast_labels(J, P, _) :- J > P | true.

collect(In, 0, Us, Us0, InRest) :- Us = Us0, InRest = In.
collect([updates(U)|In], K, Us, Us0, InRest) :- K > 0 |
    app(U, UsMid, Us),
    K1 := K - 1,
    collect(In, K1, UsMid, Us0, InRest).

app([], Ys, Zs) :- Zs = Ys.
app([X|Xs], Ys, Zs) :- Zs := [X|Z1], app(Xs, Ys, Z1).

% merge_labels(I, N, Old, Updates, New, D0, D): New[i] = min(Old[i],
% updates for i); D counts changed labels.
merge_labels(I, N, Old, Us, New, D0, D) :- I =< N |
    arg(I, Old, L0),
    best(Us, I, L0, L1),
    put_arg(I, New, L1),
    bump(L0, L1, D0, D1),
    I1 := I + 1,
    merge_labels(I1, N, Old, Us, New, D1, D).
merge_labels(I, N, _, _, _, D0, D) :- I > N | D := D0.

best([], _, L, L1) :- L1 := L.
best([u(V, LV)|Us], I, L, L1) :- V == I | M := min(L, LV), best(Us, I, M, L1).
best([u(V, _)|Us], I, L, L1) :- V =\= I | best(Us, I, L, L1).

bump(L0, L1, D0, D1) :- L0 == L1 | D1 := D0.
bump(L0, L1, D0, D1) :- L0 =\= L1 | D1 := D0 + 1.

to_list(I, N, T, L) :- I =< N |
    arg(I, T, X), L := [X|L1], I1 := I + 1, to_list(I1, N, T, L1).
to_list(I, N, _, L) :- I > N | L := [].

% Worker: per labels broadcast, relax own edges and report updates.
gworker([labels(T)|In], Es) :-
    relax(Es, T, Us, []),
    reply_updates(Us),
    gworker(In, Es).
gworker([halt|_], _).

reply_updates(Us) :- send(1, updates(Us)).

relax([], _, Us, Us0) :- Us := Us0.
relax([e(U, V)|Es], T, Us, Us0) :-
    arg(U, T, LU), arg(V, T, LV),
    edge_min(U, V, LU, LV, Us, Us1),
    relax(Es, T, Us1, Us0).

edge_min(_, V, LU, LV, Us, Us1) :- LU < LV | Us := [u(V, LU)|Us1].
edge_min(U, _, LU, LV, Us, Us1) :- LU > LV | Us := [u(U, LV)|Us1].
edge_min(_, _, LU, LV, Us, Us1) :- LU == LV | Us := Us1.
"#;

/// The Graph (connected components) motif: `Server ∘ {identity, library}`.
pub fn graph_components() -> Motif {
    let core = Motif::library_only("GraphCore", GRAPH_LIBRARY);
    server().compose(&core)
}

/// Render an edge list as goal source: `[e(1, 2), e(2, 3)]`.
pub fn edges_src(edges: &[(u32, u32)]) -> String {
    let items: Vec<String> = edges.iter().map(|(u, v)| format!("e({u}, {v})")).collect();
    format!("[{}]", items.join(", "))
}

/// Reference implementation (union-find) for tests and experiments.
pub fn components_reference(n: u32, edges: &[(u32, u32)]) -> Vec<u32> {
    let mut parent: Vec<u32> = (0..=n).collect();
    fn find(parent: &mut [u32], x: u32) -> u32 {
        let mut root = x;
        while parent[root as usize] != root {
            root = parent[root as usize];
        }
        let mut cur = x;
        while parent[cur as usize] != root {
            let next = parent[cur as usize];
            parent[cur as usize] = root;
            cur = next;
        }
        root
    }
    for (u, v) in edges {
        let (ru, rv) = (find(&mut parent, *u), find(&mut parent, *v));
        if ru != rv {
            let (hi, lo) = if ru > rv { (ru, rv) } else { (rv, ru) };
            parent[hi as usize] = lo;
        }
    }
    (1..=n).map(|v| find(&mut parent, v)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use strand_machine::{run_parsed_goal, MachineConfig, RunStatus};

    fn components(n: u32, edges: &[(u32, u32)], servers: u32) -> Vec<u32> {
        let p = graph_components()
            .apply_src("noop(1).")
            .expect("graph motif applies");
        let goal = format!("create({servers}, cc({n}, {}, Final))", edges_src(edges));
        let r = run_parsed_goal(&p, &goal, MachineConfig::with_nodes(servers).seed(1))
            .expect("components runs");
        assert_eq!(
            r.report.status,
            RunStatus::Completed,
            "{:?}",
            r.report.suspended_goals
        );
        r.bindings["Final"]
            .as_proper_list()
            .expect("label list")
            .iter()
            .map(|t| t.to_string().parse::<u32>().expect("int label"))
            .collect()
    }

    #[test]
    fn path_graph_is_one_component() {
        let edges = [(1u32, 2), (2, 3), (3, 4), (4, 5)];
        assert_eq!(components(5, &edges, 3), vec![1, 1, 1, 1, 1]);
    }

    #[test]
    fn two_components_and_an_isolate() {
        // {1,2,3} ∪ {4,5} ∪ {6}
        let edges = [(1u32, 2), (2, 3), (4, 5)];
        assert_eq!(components(6, &edges, 3), vec![1, 1, 1, 4, 4, 6]);
    }

    #[test]
    fn ring_and_star() {
        let ring = [(1u32, 2), (2, 3), (3, 4), (4, 1)];
        assert_eq!(components(4, &ring, 4), vec![1, 1, 1, 1]);
        let star = [(5u32, 1), (5, 2), (5, 3), (5, 4)];
        assert_eq!(components(5, &star, 4), vec![1, 1, 1, 1, 1]);
    }

    #[test]
    fn empty_edge_list_leaves_singletons() {
        assert_eq!(components(4, &[], 3), vec![1, 2, 3, 4]);
    }

    #[test]
    fn matches_union_find_on_random_graphs() {
        let mut rng = strand_core::SplitMix64::new(17);
        for _ in 0..4 {
            let n = 10u32;
            let edges: Vec<(u32, u32)> = (0..12)
                .map(|_| {
                    (
                        1 + rng.next_below(n as u64) as u32,
                        1 + rng.next_below(n as u64) as u32,
                    )
                })
                .filter(|(u, v)| u != v)
                .collect();
            let expected = components_reference(n, &edges);
            assert_eq!(components(n, &edges, 4), expected, "edges {edges:?}");
        }
    }

    #[test]
    fn work_spreads_across_worker_servers() {
        // A long path needs many rounds; all workers relax edges.
        let edges: Vec<(u32, u32)> = (1..20).map(|i| (i, i + 1)).collect();
        let p = graph_components().apply_src("noop(1).").unwrap();
        let goal = format!("create(4, cc(20, {}, Final))", edges_src(&edges));
        let r = run_parsed_goal(&p, &goal, MachineConfig::with_nodes(4).seed(1)).unwrap();
        assert_eq!(r.report.status, RunStatus::Completed);
        let busy_workers = r.report.metrics.reductions[1..]
            .iter()
            .filter(|&&x| x > 20)
            .count();
        assert!(busy_workers >= 3, "{:?}", r.report.metrics.reductions);
    }
}
