//! The **Sched** motif: the `@task` pragma and demand-driven scheduling
//! (§2.2 and reference \[6\]).
//!
//! §2.2 describes the scheduler motif's ideal interface: *"it would be
//! inconvenient if programmers had to embed explicit calls to this
//! scheduler in their programs and manually construct data structures
//! representing tasks. Fortunately, these functions can be incorporated
//! automatically by an application-independent transformation. The
//! programmer only needs to supply pragma specifying tasks and data
//! dependencies."* That is this motif:
//!
//! * the programmer marks calls with `Goal@task`;
//! * the transformation threads **two short circuits** through the program
//!   (§3.3's termination-detection technique, applied twice): a *global*
//!   circuit that closes only when everything a task spawned — nested
//!   tasks included — has finished (this is how data dependencies between
//!   tasks are honored for termination), and a *local* circuit that closes
//!   as soon as the task's own process network has unwound, signalling the
//!   worker free (a dispatched task never blocks its processor, as in the
//!   Schedule package of reference \[6\]);
//! * every `@task` call becomes a `submit` message to the scheduler,
//!   carrying the task's private completion variables; a `link` process
//!   splices the task's global completion back into its parent's circuit,
//!   while the parent's local circuit closes at the submit itself;
//! * a dispatch rule per task type is synthesized (as in the Rand motif);
//! * the library implements the manager: a queue of tasks and a list of
//!   idle workers, pairing them demand-driven — an idle processor gets
//!   the next task; completion frees the worker (contrast with `Random`'s
//!   oblivious mapping: experiment E10).
//!
//! Entry goal: `create(P, boot(p(Args…, D, done), D))` — build it with
//! [`boot_goal`]. Requires P ≥ 2 machine nodes (node 1 is the manager).

use crate::motif::Motif;
use crate::server::server;
use std::collections::BTreeSet;
use strand_parse::{Annotation, Ast, Call, Program, Rule};
use transform::callgraph::Key;
use transform::rewrite::{replace_calls, thread_circuit};
use transform::{TransformError, Transformation};

/// The scheduler library: manager on server 1, demand-driven dispatch.
pub const TASK_SCHED_LIBRARY: &str = r#"
% Sched motif library: demand-driven task scheduling with completion
% tracking. Workers are servers 2..P; server 1 is the manager.
server(In) :- sched(In).

sched([boot(Goal, Dglobal, Dlocal)|In]) :-
    nodes(P),
    idles(P, Ws),
    watch_root(Dglobal),
    place(Goal, Dlocal, Ws, Ws1, Q1, []),
    manager(In, Q1, Ws1).
sched([halt|_]).

manager([submit(G, D)|In], Q, Idle) :-
    place(G, D, Idle, Idle1, Q1, Q),
    manager(In, Q1, Idle1).
manager([idle(W)|In], [t(G, D)|Q], Idle) :-
    send(W, run(G, D, W)),
    manager(In, Q, Idle).
manager([idle(W)|In], [], Idle) :-
    manager(In, [], [W|Idle]).
manager([halt|_], _, _).

% place(Goal, Done, Idle, Idle1, Q1, Q0): dispatch to an idle worker or
% queue the task.
place(G, D, [W|Ws], Ws1, Q1, Q0) :-
    send(W, run(G, D, W)),
    Ws1 := Ws, Q1 := Q0.
place(G, D, [], Ws1, Q1, Q0) :-
    Ws1 := [], Q1 := [t(G, D)|Q0].

% Workers are servers P..2 (server 1 is the manager and keeps its stream).
idles(1, Ws) :- Ws := [].
idles(J, Ws) :- J > 1 | Ws := [J|W1], J1 := J - 1, idles(J1, W1).

% When a task's *local* circuit resolves (its own process network has
% unwound on this worker), report the worker idle.
notify(D, W) :- data(D) | send(1, idle(W)).

% Splice a finished task back into its parent's circuit.
link(D, L, R) :- data(D) | L = R.

% The root task's circuit closes when every task (however nested) is done.
watch_root(D) :- data(D) | halt.
"#;

const NAME: &str = "Sched";

/// The Sched transformation: circuit threading + `@task` expansion +
/// dispatch-rule synthesis.
#[derive(Clone, Debug, Default)]
pub struct SchedTransform {
    /// Extra types to synthesize dispatch rules for (entry points booted
    /// via `boot/3` without appearing under `@task`).
    extra_entries: Vec<Key>,
}

impl SchedTransform {
    pub fn new() -> Self {
        Self::default()
    }

    /// Register an entry-point task type (pre-threading name/arity).
    pub fn with_entry(mut self, name: &str, arity: usize) -> Self {
        self.extra_entries.push((name.to_string(), arity));
        self
    }
}

impl Transformation for SchedTransform {
    fn name(&self) -> &str {
        NAME
    }

    fn apply(&self, program: &Program) -> Result<Program, TransformError> {
        if program.get("server", 1).is_some() || program.get("sched", 1).is_some() {
            return Err(TransformError::new(
                NAME,
                "application must not define server/1 or sched/1; Sched synthesizes them",
            ));
        }
        // Task types, pre-threading arity.
        let mut task_types: BTreeSet<Key> = self.extra_entries.iter().cloned().collect();
        for rule in program.rules() {
            for call in &rule.body {
                if call.annotation == Some(Annotation::Task) {
                    match call.goal.functor() {
                        Some((n, a)) => {
                            task_types.insert((n.to_string(), a));
                        }
                        None => {
                            return Err(TransformError::new(
                                NAME,
                                format!("@task on a non-callable term: {}", call.goal),
                            ))
                        }
                    }
                }
            }
        }
        if task_types.is_empty() {
            return Err(TransformError::new(
                NAME,
                "no @task pragma or registered entry found; nothing to schedule",
            ));
        }
        // Thread the circuits through every user procedure, so untracked
        // helper calls cannot be left behind by the completion signals and
        // calls into task types from anywhere stay arity-consistent.
        // Pass 1 appends the GLOBAL circuit (termination; waits on nested
        // tasks); pass 2 appends the LOCAL circuit (worker availability;
        // closes at the submit site).
        let targets: BTreeSet<Key> = program.defined_keys().into_iter().collect();
        let threaded_global = thread_circuit(program, &targets);
        let targets2: BTreeSet<Key> = targets.iter().map(|(n, a)| (n.clone(), a + 2)).collect();
        let threaded = thread_circuit(&threaded_global, &targets2);

        // Expand `Goal@task`: goals now carry [core..., Lg, Rg, Ll, Rl].
        let expanded = replace_calls(&threaded, &|call: &Call, fresh| {
            if call.annotation != Some(Annotation::Task) {
                return None;
            }
            let (name, arity) = call.goal.functor().expect("validated above");
            debug_assert!(arity >= 4, "threaded task goals carry two circuits");
            let args = call.goal.args();
            let (core, circuits) = args.split_at(arity - 4);
            let (lg, rg) = (circuits[0].clone(), circuits[1].clone());
            let (ll, rl) = (circuits[2].clone(), circuits[3].clone());
            let dg = Ast::var(fresh.fresh("Dg"));
            let dl = Ast::var(fresh.fresh("Dl"));
            let mut private_args = core.to_vec();
            private_args.push(dg.clone());
            private_args.push(Ast::atom("done"));
            private_args.push(dl.clone());
            private_args.push(Ast::atom("done"));
            Some(vec![
                // Ship the task with private circuits; the manager tracks
                // the local one for worker availability.
                Call::new(Ast::tuple(
                    "send",
                    vec![
                        Ast::Int(1),
                        Ast::tuple("submit", vec![Ast::tuple(name, private_args), dl]),
                    ],
                )),
                // Parent's global circuit waits for the nested task...
                Call::new(Ast::tuple("link", vec![dg, lg, rg])),
                // ...but its local circuit closes at the submit itself.
                Call::new(Ast::tuple("=", vec![ll, rl])),
            ])
        });

        // Synthesize dispatch rules: one per task type (threaded arity).
        let mut out = expanded;
        for (name, arity) in &task_types {
            let n = arity + 4; // two circuits
            let vars: Vec<Ast> = (1..=n).map(|i| Ast::var(format!("V{i}"))).collect();
            let msg = Ast::tuple(
                "run",
                vec![
                    Ast::tuple(name.clone(), vars.clone()),
                    Ast::var("D"),
                    Ast::var("W"),
                ],
            );
            out.push_rule(Rule {
                head: Ast::tuple("sched", vec![Ast::cons(msg, Ast::var("In"))]),
                guards: vec![],
                body: vec![
                    Call::new(Ast::tuple(name.clone(), vars)),
                    Call::new(Ast::tuple("notify", vec![Ast::var("D"), Ast::var("W")])),
                    Call::new(Ast::tuple("sched", vec![Ast::var("In")])),
                ],
            });
        }
        Ok(out)
    }
}

/// The task-scheduler motif: `Server ∘ {SchedTransform, library}`.
pub fn task_scheduler() -> Motif {
    task_scheduler_with_entries(&[])
}

/// Task scheduler with extra boot-able entry types.
pub fn task_scheduler_with_entries(entries: &[(&str, usize)]) -> Motif {
    let mut t = SchedTransform::new();
    for (n, a) in entries {
        t = t.with_entry(n, *a);
    }
    let core = Motif::new(
        "SchedCore",
        t,
        strand_parse::parse_program(TASK_SCHED_LIBRARY).expect("sched library parses"),
    );
    server().compose(&core)
}

/// Build the entry goal for a root task `name(args…)` on `servers`
/// machine nodes.
///
/// The goal has the shape
/// `create(P, boot(name(args…, Dg, done, Dl, done), Dg, Dl))` — `Dg` is
/// the global termination circuit, `Dl` the root task's local circuit.
pub fn boot_goal(servers: u32, name: &str, args: &[&str]) -> String {
    let mut all: Vec<String> = args.iter().map(|s| s.to_string()).collect();
    all.push("Dg".into());
    all.push("done".into());
    all.push("Dl".into());
    all.push("done".into());
    format!(
        "create({servers}, boot({name}({}), Dg, Dl))",
        all.join(", ")
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use strand_machine::{run_parsed_goal, MachineConfig, RunStatus};
    use strand_parse::pretty;

    const FIB_APP: &str = r#"
        fib(N, V) :- N < 2 | V := N.
        fib(N, V) :- N >= 2 |
            N1 := N - 1, N2 := N - 2,
            fib(N1, V1)@task, fib(N2, V2),
            add(V1, V2, V).
        add(V1, V2, V) :- V := V1 + V2.
    "#;

    #[test]
    fn transformation_expands_the_pragma() {
        let p = strand_parse::parse_program(FIB_APP).unwrap();
        let out = SchedTransform::new().apply(&p).unwrap();
        let s = pretty(&out);
        assert!(!s.contains("@task"), "{s}");
        assert!(
            s.contains("send(1, submit(fib(N1, V1, Dg, done, Dl, done), Dl))"),
            "{s}"
        );
        assert!(s.contains("link(Dg,"), "{s}");
        // Dispatch rule for the doubly-threaded task type fib/6.
        assert!(
            s.contains("sched([run(fib(V1, V2, V3, V4, V5, V6), D, W)|In]) :-"),
            "{s}"
        );
        assert!(s.contains("notify(D, W)"), "{s}");
    }

    #[test]
    fn fib_runs_and_terminates() {
        let program = task_scheduler().apply_src(FIB_APP).unwrap();
        let goal = boot_goal(4, "fib", &["10", "V"]);
        let r = run_parsed_goal(&program, &goal, MachineConfig::with_nodes(4).seed(3)).unwrap();
        assert_eq!(
            r.report.status,
            RunStatus::Completed,
            "{:?}",
            r.report.suspended_goals
        );
        assert_eq!(r.bindings["V"].to_string(), "55");
    }

    #[test]
    fn tasks_run_on_workers_not_the_manager() {
        let program = task_scheduler().apply_src(FIB_APP).unwrap();
        let goal = boot_goal(5, "fib", &["9", "V"]);
        let r = run_parsed_goal(&program, &goal, MachineConfig::with_nodes(5).seed(4)).unwrap();
        assert_eq!(r.bindings["V"].to_string(), "34");
        // Workers 2..5 did the fib work; the manager only dispatched.
        let red = &r.report.metrics.reductions;
        let worker_total: u64 = red[1..].iter().sum();
        assert!(worker_total > red[0], "{red:?}");
    }

    #[test]
    fn dependencies_are_honored_by_the_circuit() {
        // A chain of dependent tasks: each stage consumes the previous
        // stage's output variable. Termination must wait for all of them.
        let app = r#"
            chain(0, Acc, V) :- V := Acc.
            chain(N, Acc, V) :- N > 0 |
                step(Acc, Acc1)@task,
                N1 := N - 1,
                chain(N1, Acc1, V)@task.
            step(X, Y) :- Y := X + 1.
        "#;
        let program = task_scheduler().apply_src(app).unwrap();
        let goal = boot_goal(3, "chain", &["12", "0", "V"]);
        let r = run_parsed_goal(&program, &goal, MachineConfig::with_nodes(3).seed(5)).unwrap();
        assert_eq!(r.report.status, RunStatus::Completed);
        assert_eq!(r.bindings["V"].to_string(), "12");
    }

    #[test]
    fn rejects_programs_without_tasks() {
        let e = SchedTransform::new()
            .apply(&strand_parse::parse_program("f(1).").unwrap())
            .unwrap_err();
        assert!(e.message.contains("@task"));
    }

    #[test]
    fn rejects_reserved_server_definitions() {
        let src = "server([x|_]). f(X) :- g(X)@task. g(_).";
        let e = SchedTransform::new()
            .apply(&strand_parse::parse_program(src).unwrap())
            .unwrap_err();
        assert!(e.message.contains("server/1"));
    }

    #[test]
    fn demand_scheduling_balances_skew() {
        // Tasks with very skewed costs: demand-driven dispatch should keep
        // all workers busy (high utilization of worker nodes).
        let app = r#"
            spread(0, V) :- V := 0.
            spread(N, V) :- N > 0 |
                cost(N, C),
                burn(C, V1)@task,
                N1 := N - 1,
                spread(N1, V2)@task,
                add(V1, V2, V).
            cost(N, C) :- M := N mod 7, C := 40 + M * M * 20.
            burn(C, V) :- work(C), V := 1.
            add(V1, V2, V) :- V := V1 + V2.
        "#;
        let program = task_scheduler().apply_src(app).unwrap();
        let goal = boot_goal(5, "spread", &["24", "V"]);
        let r = run_parsed_goal(&program, &goal, MachineConfig::with_nodes(5).seed(6)).unwrap();
        assert_eq!(r.report.status, RunStatus::Completed);
        assert_eq!(r.bindings["V"].to_string(), "24");
        // Every worker node executed tasks.
        let busy_workers = r.report.metrics.busy[1..]
            .iter()
            .filter(|&&b| b > 50)
            .count();
        assert!(busy_workers >= 3, "busy: {:?}", r.report.metrics.busy);
    }
}
