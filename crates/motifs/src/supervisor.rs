//! The **Supervise** motif: fault-tolerant servers by composition.
//!
//! The paper's motifs assume a perfect machine. `Supervise` is the
//! robustness counterpart: applied *outside* the Server motif
//! (`Supervise ∘ Server` or `Supervise ∘ Server ∘ Rand`), it upgrades the
//! unreliable server network to sequence-numbered, acknowledged, retried
//! delivery with per-node heartbeat monitors that restart a crashed
//! server's loop on a spare node — without touching the application.
//!
//! **Transformation** (applies to a Server-staged program):
//!
//! 1. every `distribute(I, DT, M)` becomes `rsend(I, DT, M)` — the message
//!    is wrapped in a `msg(Seq, Ack, M)` envelope and resent with
//!    exponential backoff (virtual time) until the receiver acknowledges;
//! 2. the Server library's `server_init/2` and `spawn_servers/2` rules are
//!    replaced by supervised versions from this motif's library.
//!
//! **Library**: each node's inbox becomes a durable *wire* (a port stream
//! in the global store — it survives its consumer). A delivery loop acks
//! every envelope, suppresses duplicates by sequence number, and feeds the
//! application's `server/2`. A monitor on the next node watches a
//! heartbeat stream; on silence it restarts the delivery loop — and with
//! it the server — on its own node, replaying the wire from the start.
//!
//! The guarantee is *at-least-once*: retries are deduplicated, but a
//! restart replays messages the dead server may already have handled, so
//! supervised applications must keep handlers idempotent (bind reply
//! variables with `ack/1`, or tolerate re-execution). Delivery is bounded:
//! a sender gives up after six attempts, so a partitioned network degrades
//! to message loss instead of hanging forever.

use crate::motif::Motif;
use crate::server::server;
use transform::rewrite::replace_calls;
use transform::{TransformError, Transformation};

use strand_parse::{Ast, Call, Program};

/// The supervision library. Timing constants (in virtual ticks, against
/// the default 10-tick latency): heartbeat every 500, monitor timeout
/// 1800 (≈3 missed beats), first retry after 400 doubling per attempt.
pub const SUPERVISE_LIBRARY: &str = r#"
% Supervise motif library: acked delivery, heartbeats, crash restart.

% Reliable bootstrap: re-place server_init until the wire slot appears
% (a dropped remote spawn would otherwise lose a whole server). The
% first attempts target the server's home node; later attempts fail
% over to the next node — a home shard that died before booting would
% otherwise swallow every retry and server J would never exist
% anywhere. put_arg's test-and-set keeps a late home boot harmless.
spawn_servers(0, _).
spawn_servers(J, DT) :- J > 0 |
    boot(J, DT, 0),
    J1 := J - 1,
    spawn_servers(J1, DT).

boot(J, DT, K) :- K < 3 |
    server_init(J, J, DT)@J,
    arg(J, DT, Slot),
    after_unless(Slot, 600, T),
    bwait(T, Slot, J, DT, K).
boot(J, DT, K) :- K >= 3 |
    length(DT, N),
    H := J mod N + 1,
    server_init(H, J, DT)@H,
    arg(J, DT, Slot),
    after_unless(Slot, 600, T),
    bwait(T, Slot, J, DT, K).
bwait(_, Slot, J, DT, _) :- data(Slot) | mplace(Slot, J, DT).
bwait(timeout, Slot, J, DT, K) :- unknown(Slot), K < 8 |
    K1 := K + 1,
    boot(J, DT, K1).
bwait(timeout, Slot, _, _, K) :- unknown(Slot), K >= 8 | true.

% Supervised server_init, running on host node H (home or failover);
% the wire port is the durable inbox. The slot fill is a test-and-set
% (put_arg/4), so a duplicated server_init delivery — bootstrap retry
% racing a slow spawn, or chaos duplication — loses the race and stands
% down instead of double-starting the server. The slot carries the
% wire, the stop flag, and the host alongside the port so the bootstrap
% side can hand them to the monitor.
server_init(H, J, DT) :-
    open_port(P, Wire),
    put_arg(J, DT, m(P, Wire, Stop, H), Won),
    init_won(Won, Wire, DT, Stop).
init_won(no, _, _, _).
init_won(yes, Wire, DT, Stop) :-
    deliver(Wire, DT, Stop).

% Monitor placement is driven from the *bootstrap* node, not from the
% host H: a retry loop on H dies with H, exactly when it is needed
% most. From here it stands on ground that survives H's death, and it
% re-places the monitor until one acknowledges (a remote spawn can be
% lost to a dropped cross-machine batch). A retry racing a slow spawn
% — or several boot attempts each reaching mplace — yields extra
% monitors, which at worst duplicate a restart: at-least-once, as
% everywhere in this library.
mplace(m(_, Wire, Stop, H), _, DT) :-
    length(DT, N),
    M := H mod N + 1,
    mboot(H, M, Wire, DT, Stop, 0).
mboot(H, M, Wire, DT, Stop, K) :-
    sup_mon(H, Wire, DT, Stop, MAck)@M,
    after_unless(MAck, 600, T),
    mbwait(T, MAck, H, M, Wire, DT, Stop, K).
mbwait(_, MAck, _, _, _, _, _, _) :- data(MAck) | true.
mbwait(timeout, MAck, H, M, Wire, DT, Stop, K) :- unknown(MAck), K < 5 |
    K1 := K + 1,
    mboot(H, M, Wire, DT, Stop, K1).
mbwait(timeout, MAck, _, _, _, _, _, K) :- unknown(MAck), K >= 5 | true.

% Delivery loop: start a server and consume the wire.
deliver(Wire, DT, Stop) :-
    server(In, DT),
    dlv(Wire, [], In, Stop).

% Ack every envelope (even duplicates — the sender may be retrying
% because the first ack raced a timeout), then dedup by sequence number.
dlv([msg(Seq, Ack, M)|W], Seen, In, Stop) :-
    ack(Ack),
    seen(Seq, Seen, F),
    fwd(F, M, Seq, W, Seen, In, Stop).

seen(_, [], F) :- F := no.
seen(Seq, [S|_], F) :- Seq == S | F := yes.
seen(Seq, [S|R], F) :- Seq =\= S | seen(Seq, R, F).

fwd(yes, _, _, W, Seen, In, Stop) :- dlv(W, Seen, In, Stop).
fwd(no, halt, _, _, _, In, Stop) :-
    In = [halt|_],
    ack(Stop).
fwd(no, M, Seq, W, Seen, In, Stop) :- otherwise |
    In = [M|In1],
    dlv(W, [Seq|Seen], In1, Stop).

% Reliable send: envelope, timeout, retry with exponential backoff.
% `Done` is acked on success and on give-up (bounded waiting).
rsend(I, DT, M) :- rsend(I, DT, M, _).
rsend(I, DT, M, Done) :-
    unique_id(Seq),
    rsend1(I, DT, M, Seq, 0, 400, Done).

rsend1(I, DT, M, Seq, K, TO, Done) :-
    distribute(I, DT, msg(Seq, Ack, M)),
    after_unless(Ack, TO, T),
    rwait(Ack, T, I, DT, M, Seq, K, TO, Done).

rwait(Ack, _, _, _, _, _, _, _, Done) :- Ack == ok | ack(Done).
rwait(Ack, timeout, I, DT, M, Seq, K, TO, Done) :- unknown(Ack), K < 5 |
    K1 := K + 1,
    TO1 := TO * 2,
    rsend1(I, DT, M, Seq, K1, TO1, Done).
rwait(Ack, timeout, _, _, _, _, K, _, Done) :- unknown(Ack), K >= 5 |
    ack(Done).

% Monitor: a beater on the watched node feeds a heartbeat stream owned
% by the monitor's node; silence for a whole watch window means the
% watched node is dead — restart its delivery loop here, replaying the
% wire (the inbox survived the crash in the global store).
sup_mon(J, Wire, DT, Stop, MAck) :-
    ack(MAck),
    open_port(BP, Beats),
    beater(Stop, BP)@J,
    watch(Beats, J, Wire, DT, Stop).

beater(Stop, BP) :-
    send_port(BP, beat),
    after_unless(Stop, 500, T),
    beater1(T, Stop, BP).
% On halt, one farewell beat defuses the monitor's armed timer.
beater1(_, Stop, BP) :- Stop == ok | send_port(BP, beat).
beater1(timeout, Stop, BP) :- unknown(Stop) | beater(Stop, BP).

watch(Beats, J, Wire, DT, Stop) :-
    after_unless(Beats, 1800, T),
    mwait(Beats, T, J, Wire, DT, Stop).
mwait(_, _, _, _, _, Stop) :- Stop == ok | true.
mwait([_|Beats], T, J, Wire, DT, Stop) :- unknown(Stop) |
    watch(Beats, J, Wire, DT, Stop).
mwait(Beats, timeout, _, Wire, DT, Stop) :- unknown(Beats), unknown(Stop) |
    sup_restart,
    deliver(Wire, DT, Stop).
"#;

/// The Supervise transformation.
pub struct SuperviseTransform;

const NAME: &str = "Supervise";

impl Transformation for SuperviseTransform {
    fn name(&self) -> &str {
        NAME
    }

    fn apply(&self, program: &Program) -> Result<Program, TransformError> {
        // The input must be Server-staged: threaded server/2 plus the
        // server library. Compose as `supervise().compose(&server())`.
        if program.get("server", 2).is_none() || program.get("server_init", 2).is_none() {
            return Err(TransformError::new(
                NAME,
                "Supervise applies to a Server-staged program; compose it \
                 outside the Server motif (Supervise o Server)",
            ));
        }
        // Replace the unsupervised bootstrap with the library's versions.
        let mut kept = Program::new();
        for rule in program.rules() {
            match rule.key() {
                (ref n, 2) if n == "server_init" || n == "spawn_servers" => {}
                _ => kept.push_rule(rule.clone()),
            }
        }
        // Every send — the application's and the server library's alike —
        // becomes reliable. The motif's own library is linked afterwards,
        // untransformed, so rsend's internal distribute stays low-level
        // (exactly the paper's M(A) = T(A) ∪ L staging).
        Ok(replace_calls(&kept, &|call: &Call, _fresh| {
            let (name, arity) = call.goal.functor()?;
            if name != "distribute" || !(arity == 3 || arity == 4) {
                return None;
            }
            Some(vec![Call::new(Ast::tuple(
                "rsend",
                call.goal.args().to_vec(),
            ))])
        }))
    }
}

/// The Supervise motif: `{SuperviseTransform, supervision library}`.
pub fn supervise() -> Motif {
    let library = strand_parse::parse_program(SUPERVISE_LIBRARY).expect("supervise library parses");
    Motif::new(NAME, SuperviseTransform, library)
}

/// The supervised server motif: `Supervise ∘ Server`.
pub fn supervised_server() -> Motif {
    supervise().compose(&server())
}

/// The supervised random-mapping motif: `Supervise ∘ Server ∘ Rand`.
pub fn supervised_random() -> Motif {
    supervise().compose(&crate::rand_map::random())
}

#[cfg(test)]
mod tests {
    use super::*;
    use strand_machine::{run_parsed_goal, FaultPlan, MachineConfig, RunStatus};
    use strand_parse::pretty;

    /// The Server motif's ring, slowed with `work/1` so a mid-run crash
    /// has a wide window to land in. The token visits every server once,
    /// printing its number, then halts the network.
    const RING: &str = r#"
        server([token(K)|In]) :- pass(K), server(In).
        server([halt|_]).
        pass(K) :- work(40), print(K), nodes(N), next(K, N).
        next(K, N) :- K < N | K1 := K + 1, send(K1, token(K1)).
        next(N, N) :- halt.
    "#;

    #[test]
    fn transformation_rewrites_sends_and_bootstrap() {
        let staged = server().apply_src(RING).unwrap();
        let out = SuperviseTransform.apply(&staged).unwrap();
        let s = pretty(&out);
        assert!(s.contains("rsend(K1, DT, token(K1))"), "{s}");
        assert!(!s.contains("distribute("), "all sends reliable: {s}");
        // The unsupervised bootstrap is gone (library supplies its own).
        assert!(out.get("server_init", 2).is_none());
        assert!(out.get("spawn_servers", 2).is_none());
    }

    #[test]
    fn requires_a_server_staged_program() {
        let e = supervise().apply_src(RING).unwrap_err();
        assert!(e.message.contains("Server-staged"), "{e}");
    }

    #[test]
    fn supervised_ring_completes_on_a_perfect_machine() {
        let p = supervised_server().apply_src(RING).unwrap();
        let r = run_parsed_goal(&p, "create(4, token(1))", MachineConfig::with_nodes(4)).unwrap();
        assert_eq!(
            r.report.status,
            RunStatus::Completed,
            "{:?}",
            r.report.errors
        );
        assert_eq!(r.report.output, vec!["1", "2", "3", "4"]);
    }

    /// The acceptance scenario: one fault plan, two motifs. The plain
    /// Server ring is wrecked by a crash; the same unmodified application
    /// under Supervise completes via heartbeat-triggered restart.
    #[test]
    fn crash_partitions_plain_ring_but_supervised_ring_completes() {
        let plan = || FaultPlan::default().crash(2, 60);

        let plain = server().apply_src(RING).unwrap();
        let r = run_parsed_goal(
            &plain,
            "create(4, token(1))",
            MachineConfig::with_nodes(4).faults(plan()),
        )
        .unwrap();
        match &r.report.status {
            RunStatus::Partitioned {
                suspended,
                crashed_nodes,
                ..
            } => {
                assert!(*suspended >= 1);
                assert_eq!(crashed_nodes, &vec![2]);
            }
            other => panic!("plain ring should partition, got {other:?}"),
        }
        assert!(
            !r.report.output.contains(&"4".to_string()),
            "{:?}",
            r.report.output
        );

        let sup = supervised_server().apply_src(RING).unwrap();
        let r = run_parsed_goal(
            &sup,
            "create(4, token(1))",
            MachineConfig::with_nodes(4).faults(plan()),
        )
        .unwrap();
        assert_eq!(
            r.report.status,
            RunStatus::Completed,
            "supervised ring must survive the crash; errors: {:?}",
            r.report.errors
        );
        // Server 2's work restarts on node 3 and the token still gets
        // around (the wire replay may re-print 2: at-least-once).
        for k in ["1", "2", "3", "4"] {
            assert!(
                r.report.output.contains(&k.to_string()),
                "token must visit server {k}: {:?}",
                r.report.output
            );
        }
        assert_eq!(r.report.metrics.nodes_crashed, 1);
    }

    #[test]
    fn supervised_ring_survives_heavy_message_loss() {
        let plan = FaultPlan::default().drop_prob(0.3).seed(42);
        let p = supervised_server().apply_src(RING).unwrap();
        let r = run_parsed_goal(
            &p,
            "create(4, token(1))",
            MachineConfig::with_nodes(4).faults(plan),
        )
        .unwrap();
        assert_eq!(
            r.report.status,
            RunStatus::Completed,
            "{:?}",
            r.report.errors
        );
        // At 30% loss, lost heartbeats can trigger a false-positive
        // restart whose wire replay re-runs handlers — at-least-once, not
        // exactly-once. Every token must appear; repeats are legitimate.
        for k in ["1", "2", "3", "4"] {
            assert!(
                r.report.output.contains(&k.to_string()),
                "missing {k}: {:?}",
                r.report.output
            );
        }
        assert!(r.report.metrics.msgs_dropped > 0, "the plan did inject");
    }

    #[test]
    fn duplicate_envelopes_are_suppressed() {
        // Duplicate every delivery on the 2→3 edge: the token(3) envelope
        // arrives twice with the same sequence number, and the dedup list
        // must keep server 3 from running it twice.
        let plan = FaultPlan::default().edge(
            2,
            3,
            strand_machine::EdgeFaults {
                dup_prob: 1.0,
                ..Default::default()
            },
        );
        let p = supervised_server().apply_src(RING).unwrap();
        let r = run_parsed_goal(
            &p,
            "create(3, token(1))",
            MachineConfig::with_nodes(3).faults(plan),
        )
        .unwrap();
        assert_eq!(
            r.report.status,
            RunStatus::Completed,
            "{:?}",
            r.report.errors
        );
        assert_eq!(r.report.output, vec!["1", "2", "3"]);
        assert!(r.report.metrics.msgs_duplicated >= 1);
    }

    #[test]
    fn duplicated_bootstrap_is_idempotent() {
        // Duplicate EVERY cross-node delivery: each server_init spawn (and
        // every envelope) arrives twice. The put_arg/4 test-and-set lets
        // exactly one copy win per node; the losers stand down instead of
        // double-starting the server and double-filling the wire slot.
        let plan = FaultPlan::default().dup_prob(1.0).seed(3);
        let p = supervised_server().apply_src(RING).unwrap();
        let r = run_parsed_goal(
            &p,
            "create(4, token(1))",
            MachineConfig::with_nodes(4).faults(plan),
        )
        .unwrap();
        assert_eq!(
            r.report.status,
            RunStatus::Completed,
            "{:?}",
            r.report.errors
        );
        for k in ["1", "2", "3", "4"] {
            assert!(
                r.report.output.contains(&k.to_string()),
                "missing {k}: {:?}",
                r.report.output
            );
        }
        assert!(r.report.metrics.msgs_duplicated >= 1);
    }

    #[test]
    fn restarts_are_counted_in_metrics() {
        let plan = FaultPlan::default().crash(2, 60);
        let sup = supervised_server().apply_src(RING).unwrap();
        let r = run_parsed_goal(
            &sup,
            "create(4, token(1))",
            MachineConfig::with_nodes(4).faults(plan),
        )
        .unwrap();
        assert_eq!(r.report.status, RunStatus::Completed);
        assert!(
            r.report.metrics.supervisor_restarts >= 1,
            "the heartbeat-timeout rule must count its restarts"
        );
    }

    #[test]
    fn library_is_about_a_page() {
        // §3.6 scale: serious fault tolerance in a page of library code.
        let rules = supervise().library_rules();
        assert!((15..=40).contains(&rules), "{rules} rules");
    }
}
