//! The **Rand** and **Random** motifs (§3.3).
//!
//! `Rand` is a transformation-only motif supporting the `@random` pragma:
//!
//! 1. each call `P@random` becomes
//!    `nodes(N), rand_num(N, R), send(R, P)` — the process is shipped, as a
//!    message, to a randomly selected server;
//! 2. a `server/1` definition is synthesized with a dispatch rule per
//!    shipped process type (plus entry points registered with
//!    [`RandTransform::with_entry`]) and a rule for the `halt` message.
//!
//! `Random = Server ∘ Rand` is the composed random process mapping motif.

use crate::motif::Motif;
use crate::server::server;
use std::collections::BTreeSet;
use strand_parse::{Annotation, Ast, Call, Program};
use transform::callgraph::Key;
use transform::rewrite::{replace_calls, synthesize_dispatch_rules};
use transform::{TransformError, Transformation};

/// The Rand transformation.
#[derive(Clone, Debug, Default)]
pub struct RandTransform {
    /// Extra process types to dispatch (the paper's *"rules for the process
    /// used to initiate execution of the application"*): types that arrive
    /// as messages without appearing under `@random` in the program.
    extra_entries: Vec<Key>,
}

impl RandTransform {
    pub fn new() -> Self {
        Self::default()
    }

    /// Also synthesize a dispatch rule for `name/arity`.
    pub fn with_entry(mut self, name: &str, arity: usize) -> Self {
        self.extra_entries.push((name.to_string(), arity));
        self
    }
}

impl Transformation for RandTransform {
    fn name(&self) -> &str {
        "Rand"
    }

    fn apply(&self, program: &Program) -> Result<Program, TransformError> {
        // Collect the process types annotated @random.
        let mut types: BTreeSet<Key> = self.extra_entries.iter().cloned().collect();
        for rule in program.rules() {
            for call in &rule.body {
                if call.annotation == Some(Annotation::Random) {
                    if let Some((n, a)) = call.goal.functor() {
                        types.insert((n.to_string(), a));
                    } else {
                        return Err(TransformError::new(
                            "Rand",
                            format!("@random on a non-callable term: {}", call.goal),
                        ));
                    }
                }
            }
        }
        // An application that writes its own server/1 can still pass
        // through Rand (the stage is then the identity, which keeps
        // compositions like Supervise ∘ Server ∘ Rand applicable to both
        // styles) — but it cannot also ask Rand to synthesize one.
        if !types.is_empty() && program.get("server", 1).is_some() {
            return Err(TransformError::new(
                "Rand",
                "application already defines server/1; Rand synthesizes it",
            ));
        }
        // Step 1: replace P@random with nodes/rand_num/send.
        let mut out = replace_calls(program, &|call: &Call, fresh| {
            if call.annotation != Some(Annotation::Random) {
                return None;
            }
            let n = Ast::var(fresh.fresh("N"));
            let r = Ast::var(fresh.fresh("R"));
            Some(vec![
                Call::new(Ast::tuple("nodes", vec![n.clone()])),
                Call::new(Ast::tuple("rand_num", vec![n, r.clone()])),
                Call::new(Ast::tuple("send", vec![r, call.goal.clone()])),
            ])
        });
        // Step 2: synthesize server/1.
        let types: Vec<Key> = types.into_iter().collect();
        for rule in synthesize_dispatch_rules(&types) {
            out.push_rule(rule);
        }
        Ok(out)
    }
}

/// The Rand motif: transformation only, empty library.
pub fn rand_map() -> Motif {
    Motif::transform_only("Rand", RandTransform::new())
}

/// Rand with extra dispatchable entry points.
pub fn rand_map_with_entries(entries: &[(&str, usize)]) -> Motif {
    let mut t = RandTransform::new();
    for (n, a) in entries {
        t = t.with_entry(n, *a);
    }
    Motif::transform_only("Rand", t)
}

/// The Random motif: `Server ∘ Rand` (§3.3).
pub fn random() -> Motif {
    server().compose(&rand_map())
}

/// Random with extra dispatchable entry points.
pub fn random_with_entries(entries: &[(&str, usize)]) -> Motif {
    server().compose(&rand_map_with_entries(entries))
}

#[cfg(test)]
mod tests {
    use super::*;
    use strand_machine::{run_parsed_goal, MachineConfig, RunStatus};
    use strand_parse::{parse_program, pretty};

    const APP: &str = r#"
        fib(N, V) :- N < 2 | V := N.
        fib(N, V) :- N >= 2 |
            N1 := N - 1, N2 := N - 2,
            fib(N1, V1)@random, fib(N2, V2),
            add(V1, V2, V).
        add(V1, V2, V) :- V := V1 + V2.
    "#;

    #[test]
    fn pragma_becomes_nodes_rand_send() {
        let out = RandTransform::new()
            .apply(&parse_program(APP).unwrap())
            .unwrap();
        let s = pretty(&out);
        assert!(s.contains("nodes(N3)"), "{s}");
        assert!(s.contains("rand_num(N3, R)"), "{s}");
        assert!(s.contains("send(R, fib(N1, V1))"), "{s}");
        // Dispatch rules synthesized.
        assert!(s.contains("server([fib(V1, V2)|In]) :-"), "{s}");
        assert!(s.contains("server([halt|_])."), "{s}");
        // The non-annotated sibling call is untouched.
        assert!(s.contains("fib(N2, V2)"), "{s}");
    }

    #[test]
    fn output_feeds_the_server_motif() {
        // §3.3: "the code produced is in the form required by the Server
        // motif" — Random = Server ∘ Rand runs the program in parallel.
        let p = random().apply_src(APP).unwrap();
        let r = run_parsed_goal(
            &p,
            "create(4, fib(10, V))",
            MachineConfig::with_nodes(4).seed(11),
        )
        .unwrap();
        // Servers idle at the end (no termination detection in plain
        // Random; the paper notes this, §3.3 last paragraph).
        assert!(matches!(r.report.status, RunStatus::Quiescent { .. }));
        assert_eq!(r.bindings["V"].to_string(), "55");
        // Work actually spread across nodes.
        let busy_nodes = r
            .report
            .metrics
            .reductions
            .iter()
            .filter(|&&x| x > 1)
            .count();
        assert!(
            busy_nodes >= 2,
            "reductions: {:?}",
            r.report.metrics.reductions
        );
    }

    #[test]
    fn rejects_programs_that_define_server() {
        let src = "server([x|_]). f(X) :- g(X)@random. g(_).";
        let e = RandTransform::new()
            .apply(&parse_program(src).unwrap())
            .unwrap_err();
        assert!(e.message.contains("server/1"));
    }

    #[test]
    fn extra_entries_get_dispatch_rules() {
        let src = "noop(_).";
        let out = RandTransform::new()
            .with_entry("boot", 2)
            .apply(&parse_program(src).unwrap())
            .unwrap();
        let s = pretty(&out);
        assert!(s.contains("server([boot(V1, V2)|In]) :-"), "{s}");
    }

    #[test]
    fn unannotated_programs_pass_through_with_halt_server() {
        let out = RandTransform::new()
            .apply(&parse_program("f(1).").unwrap())
            .unwrap();
        let s = pretty(&out);
        assert!(s.contains("server([halt|_])."), "{s}");
        assert!(out.get("f", 1).is_some());
    }
}
