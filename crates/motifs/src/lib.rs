//! # motifs
//!
//! The paper's primary contribution: **algorithmic motifs** — reusable
//! parallel program structures implemented as pairs
//! `M = {transformation, library}` over a high-level concurrent language,
//! supporting reuse *as-is*, *by modification*, and *by composition*
//! (`M = M2 ∘ M1`).
//!
//! The motif suite:
//!
//! | motif | paper section | construction |
//! |---|---|---|
//! | [`server::server`] | §3.2 | `{ServerTransform, Figure-3 library}` |
//! | [`rand_map::rand_map`] | §3.3 | `{RandTransform, ∅}` |
//! | [`rand_map::random`] | §3.3 | `Server ∘ Rand` |
//! | [`tree::tree1`] | §3.4 | `{identity, 5-line library}` |
//! | [`tree::tree_reduce_1`] | §3.4 | `Server ∘ Rand ∘ Tree1` |
//! | [`tree::tree_reduce_1_halting`] | §3.3 | `Server ∘ Rand ∘ Circuit ∘ Tree1` |
//! | [`tree::tree_reduce_2`] | §3.5 | `Server ∘ TreeReduce2Core` |
//! | [`supervisor::supervise`] | robustness | `{SuperviseTransform, supervision library}` |
//! | [`supervisor::supervised_random`] | robustness | `Supervise ∘ Server ∘ Rand` |
//! | [`scheduler::scheduler`] | §1, \[6\] | manager/worker task farm |
//! | [`scheduler::scheduler_hierarchical`] | §1 | reuse-by-modification: two-level farm |
//! | [`task_sched::task_scheduler`] | §2.2, \[6\] | `@task` pragma → demand-driven scheduler with circuit-tracked completion |
//! | [`dc::divide_and_conquer`] | §4 | future work: generic D&C |
//! | [`search::search`] | §4 | future work: parallel tree search |
//! | [`grid::grid`] | §4 | future work: 1-D grid relaxation |
//! | [`graph::graph_components`] | §4 | future work: connected components by BSP label propagation |
//! | [`pipeline::pipeline`] | §4 | stream pipeline |
//!
//! See [`inventory`] for the code-size accounting of experiment E5.

pub mod dc;
pub mod graph;
pub mod grid;
pub mod inventory;
pub mod motif;
pub mod pipeline;
pub mod rand_map;
pub mod scheduler;
pub mod search;
pub mod server;
pub mod supervisor;
pub mod task_sched;
pub mod tree;

pub use motif::Motif;
pub use rand_map::{rand_map, rand_map_with_entries, random, random_with_entries, RandTransform};
pub use server::{server, ServerTransform, SERVER_LIBRARY};
pub use supervisor::{
    supervise, supervised_random, supervised_server, SuperviseTransform, SUPERVISE_LIBRARY,
};
pub use task_sched::{
    boot_goal, task_scheduler, task_scheduler_with_entries, SchedTransform, TASK_SCHED_LIBRARY,
};
pub use tree::{
    balanced_tree_src, random_tree_src, sequential_reduce, tree1, tree_reduce_1,
    tree_reduce_1_halting, tree_reduce_2, ARITH_EVAL, TREE1_LIBRARY, TREE2_LIBRARY,
};
