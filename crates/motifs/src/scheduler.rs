//! The **Scheduler** motif: manager/worker load balancing.
//!
//! The paper cites its scheduler motif as prior work (\[6\], §1) and uses it
//! as the canonical example of *reuse through modification*: *"a scheduler
//! motif might be adapted to the demands of a highly parallel computer by
//! introducing additional levels in its manager/worker hierarchy"*.
//!
//! * [`scheduler`] — one manager (server 1) farms tasks to all servers on
//!   demand: a worker that finishes a task implicitly requests another.
//! * [`scheduler_hierarchical`] — the modification: tasks are dealt to `G`
//!   group leaders, each a manager for its own block of workers; the top
//!   manager only merges group results. This relieves the single-manager
//!   bottleneck at scale (experiment E7).
//!
//! The user supplies `task(T, R)`: compute result `R` for task `T`.
//! Entry goals: `create(P, start(Tasks, Results))` and
//! `create(P, start2(Tasks, Results, Groups))` respectively.

use crate::motif::Motif;
use crate::server::server;

/// The single-level manager/worker library.
pub const SCHEDULER_LIBRARY: &str = r#"
% Scheduler motif library: manager on server 1, all servers are workers.
server(In) :- sched(In).

sched([start(Tasks, Results)|In]) :-
    nodes(P),
    prime(P, Tasks, Rest, 0, K),
    begin(K, In, Rest, Results).
sched([task(T, W)|In]) :-
    task(T, R),
    reply(R, W),
    sched(In).
sched([halt|_]).

begin(0, _, _, Results) :- Results := [], halt.
begin(K, In, Rest, Results) :- K > 0 |
    manager(In, Rest, K, [], Results).

% Deal one task to each worker P..1 until tasks run out; K counts
% outstanding tasks.
prime(0, Tasks, Rest, K, K1) :- Rest := Tasks, K1 := K.
prime(J, [], Rest, K, K1) :- J > 0 | Rest := [], K1 := K.
prime(J, [T|Ts], Rest, K, K1) :- J > 0 |
    send(J, task(T, J)),
    K2 := K + 1, J1 := J - 1,
    prime(J1, Ts, Rest, K2, K1).

% Workers send results home; a result is an implicit request for more work.
reply(R, W) :- data(R) | send(1, result(R, W)).

manager([result(R, W)|In], [T|Ts], K, Acc, Results) :-
    send(W, task(T, W)),
    manager(In, Ts, K, [R|Acc], Results).
manager([result(R, _)|In], [], K, Acc, Results) :- K > 1 |
    K1 := K - 1,
    manager(In, [], K1, [R|Acc], Results).
manager([result(R, _)|_], [], 1, Acc, Results) :-
    Results := [R|Acc], halt.
% The manager's node is also a worker: service its tasks inline.
manager([task(T, W)|In], Ts, K, Acc, Results) :-
    task(T, R), reply(R, W),
    manager(In, Ts, K, Acc, Results).
manager([halt|_], _, _, _, _).
"#;

/// The two-level (hierarchical) library — the paper's
/// reuse-through-modification example (§1). The demand-driven core
/// (`prime → manager → reply`) is the single-level scheduler's, generalized
/// by a `Home` parameter naming the manager a worker reports to; the new
/// layer deals task blocks to `G` group leaders and merges their results.
///
/// Precondition: `P ≥ G + 1` machine nodes (node 1 is the top manager;
/// groups of `W = (P-1)/G ≥ 1` workers start at node 2).
pub const SCHEDULER2_LIBRARY: &str = r#"
% Hierarchical scheduler: top manager on server 1 deals task blocks to G
% group leaders; each leader farms within its block of W workers.
server(In) :- sched(In).

sched([start2(Tasks, Results, G)|In]) :-
    nodes(P),
    W := (P - 1) / G,
    launch(1, G, W, Tasks, Results),
    top(In, G).
sched([group_start(Tasks, I, G, Leader, W, Out, Next)|In]) :-
    pick(Tasks, I, G, Mine),
    Last := Leader + W - 1,
    gprime(Last, Leader, Leader, Mine, Rest, 0, K),
    gbegin(K, In, Leader, Rest, Out, Next).
sched([task(T, W, Home)|In]) :-
    task(T, R),
    reply(R, W, Home),
    sched(In).
sched([halt|_]).

% Hand every leader the whole task list plus its stride index; each leader
% filters its own share in parallel, so the top manager's dispatch work is
% O(G), not O(#tasks) — the point of the extra hierarchy level. Results are
% stitched by the leaders themselves through a chain of difference-list
% holes (Out/Next), so collection is also O(G) at the top.
launch(I, G, _, _, Hole) :- I > G | Hole = [].
launch(I, G, W, Tasks, Hole) :- I =< G |
    Leader := 2 + (I - 1) * W,
    send(Leader, group_start(Tasks, I, G, Leader, W, Hole, Hole1)),
    I1 := I + 1,
    launch(I1, G, W, Tasks, Hole1).

% pick(Tasks, I, G, Mine): the I-th of every G tasks.
pick([], _, _, Mine) :- Mine := [].
pick([T|Ts], 1, G, Mine) :- Mine := [T|M1], pick1(Ts, G, M1).
pick([_|Ts], I, G, Mine) :- I > 1 | I1 := I - 1, pick(Ts, I1, G, Mine).
pick1(Ts, G, Mine) :- pick(Ts, G, G, Mine).

top([group_done|In], K) :- K > 1 | K1 := K - 1, top(In, K1).
top([group_done|_], 1) :- halt.
top([halt|_], _).

% Group leader: prime workers Leader..Leader+W-1 with one task each, then
% run the demand-driven loop; finished groups report to the top manager.
gprime(J, First, _, Tasks, Rest, K, K1) :- J < First | Rest := Tasks, K1 := K.
gprime(J, First, _, [], Rest, K, K1) :- J >= First | Rest := [], K1 := K.
gprime(J, First, Home, [T|Ts], Rest, K, K1) :- J >= First |
    send(J, task(T, J, Home)),
    K2 := K + 1, J1 := J - 1,
    gprime(J1, First, Home, Ts, Rest, K2, K1).

gbegin(0, In, _, _, Out, Next) :- Out = Next, send(1, group_done), drain(In).
gbegin(K, In, Leader, Rest, Out, Next) :- K > 0 |
    gman(In, Leader, Rest, K, [], Out, Next).

gman([result(R, W)|In], Home, [T|Ts], K, Acc, Out, Next) :-
    send(W, task(T, W, Home)),
    gman(In, Home, Ts, K, [R|Acc], Out, Next).
gman([result(R, _)|In], Home, [], K, Acc, Out, Next) :- K > 1 |
    K1 := K - 1, gman(In, Home, [], K1, [R|Acc], Out, Next).
gman([result(R, _)|In], _, [], 1, Acc, Out, Next) :-
    stitch([R|Acc], Out, Next),
    send(1, group_done),
    drain(In).
gman([task(T, W, Home2)|In], Home, Ts, K, Acc, Out, Next) :-
    task(T, R), reply(R, W, Home2),
    gman(In, Home, Ts, K, Acc, Out, Next).
gman([halt|_], _, _, _, _, _, _).

% Splice this group's results into the shared output chain.
stitch([], Out, Next) :- Out = Next.
stitch([X|Xs], Out, Next) :- Out := [X|O1], stitch(Xs, O1, Next).

% A finished leader keeps serving worker duties until halted.
drain([halt|_]).
drain([task(T, W, Home)|In]) :- task(T, R), reply(R, W, Home), drain(In).

reply(R, W, Home) :- data(R) | send(Home, result(R, W)).
"#;

/// Single-level scheduler motif: `Server ∘ {identity, SCHEDULER_LIBRARY}`.
pub fn scheduler() -> Motif {
    let core = Motif::library_only("SchedulerCore", SCHEDULER_LIBRARY);
    server().compose(&core)
}

/// Two-level scheduler motif (reuse through modification, §1).
pub fn scheduler_hierarchical() -> Motif {
    let core = Motif::library_only("Scheduler2Core", SCHEDULER2_LIBRARY);
    server().compose(&core)
}

/// Generate task list source: `n` tasks `t(cost)` with the given costs.
pub fn tasks_src(costs: &[u64]) -> String {
    let items: Vec<String> = costs.iter().map(|c| format!("t({c})")).collect();
    format!("[{}]", items.join(", "))
}

/// A simple user task program: `task(t(C), R)` burns `C` ticks of virtual
/// work and returns `C`.
pub const BURN_TASK: &str = r#"
task(t(C), R) :- work(C), R := C.
"#;

#[cfg(test)]
mod tests {
    use super::*;
    use strand_machine::{run_parsed_goal, MachineConfig, RunStatus};

    fn run_farm(costs: &[u64], nodes: u32, seed: u64) -> strand_machine::GoalResult {
        let p = scheduler().apply_src(BURN_TASK).unwrap();
        let goal = format!("create({nodes}, start({}, Results))", tasks_src(costs));
        run_parsed_goal(&p, &goal, MachineConfig::with_nodes(nodes).seed(seed)).unwrap()
    }

    #[test]
    fn farm_computes_all_results_and_halts() {
        let costs: Vec<u64> = (1..=20).collect();
        let r = run_farm(&costs, 4, 1);
        assert_eq!(r.report.status, RunStatus::Completed);
        let results = r.bindings["Results"].as_proper_list().unwrap();
        assert_eq!(results.len(), 20);
        let mut got: Vec<i64> = results
            .iter()
            .map(|t| match t {
                strand_core::Term::Int(i) => *i,
                other => panic!("non-int result {other}"),
            })
            .collect();
        got.sort_unstable();
        assert_eq!(got, (1..=20).collect::<Vec<i64>>());
    }

    #[test]
    fn farm_handles_empty_task_list() {
        let r = run_farm(&[], 4, 1);
        assert_eq!(r.report.status, RunStatus::Completed);
        assert_eq!(r.bindings["Results"].to_string(), "[]");
    }

    #[test]
    fn farm_with_fewer_tasks_than_workers() {
        let r = run_farm(&[5, 5], 8, 1);
        assert_eq!(r.report.status, RunStatus::Completed);
        assert_eq!(r.bindings["Results"].as_proper_list().unwrap().len(), 2);
    }

    #[test]
    fn farm_balances_nonuniform_tasks() {
        // One giant task plus many small ones: demand-driven dispatch keeps
        // other workers busy with the small tasks.
        let mut costs = vec![2000u64];
        costs.extend(std::iter::repeat_n(50, 40));
        let r = run_farm(&costs, 4, 2);
        assert_eq!(r.report.status, RunStatus::Completed);
        let m = &r.report.metrics;
        // The makespan must be far below the serial sum, and within ~3x of
        // the critical path (the giant task).
        let serial: u64 = costs.iter().sum();
        assert!(
            m.makespan < serial,
            "makespan {} vs serial {serial}",
            m.makespan
        );
        assert!(m.makespan < 3 * 2000, "makespan {}", m.makespan);
    }

    #[test]
    fn farm_on_one_node_is_serial() {
        let costs = [10u64, 10, 10, 10];
        let r = run_farm(&costs, 1, 3);
        assert_eq!(r.report.status, RunStatus::Completed);
        assert!(r.report.metrics.makespan >= 40);
    }

    fn run_farm2(costs: &[u64], nodes: u32, groups: u32, seed: u64) -> strand_machine::GoalResult {
        let p = scheduler_hierarchical().apply_src(BURN_TASK).unwrap();
        let goal = format!(
            "create({nodes}, start2({}, Results, {groups}))",
            tasks_src(costs)
        );
        run_parsed_goal(&p, &goal, MachineConfig::with_nodes(nodes).seed(seed)).unwrap()
    }

    #[test]
    fn hierarchical_farm_computes_all_results() {
        let costs: Vec<u64> = (1..=30).collect();
        let r = run_farm2(&costs, 9, 2, 1);
        assert_eq!(r.report.status, RunStatus::Completed);
        let mut got: Vec<i64> = r.bindings["Results"]
            .as_proper_list()
            .unwrap()
            .iter()
            .map(|t| match t {
                strand_core::Term::Int(i) => *i,
                other => panic!("non-int result {other}"),
            })
            .collect();
        got.sort_unstable();
        assert_eq!(got, (1..=30).collect::<Vec<i64>>());
    }

    #[test]
    fn hierarchical_farm_empty_tasks() {
        let r = run_farm2(&[], 9, 2, 1);
        assert_eq!(r.report.status, RunStatus::Completed);
        assert_eq!(r.bindings["Results"].to_string(), "[]");
    }

    #[test]
    fn hierarchy_relieves_manager_bottleneck() {
        // E7: many short tasks on a wide machine. The single manager
        // handles every result on node 1 (its busy time grows linearly with
        // the task count); two levels leave node 1 only G group messages.
        let costs: Vec<u64> = vec![5; 240];
        let nodes = 25u32;
        let r1 = run_farm(&costs, nodes, 7);
        let r2 = run_farm2(&costs, nodes, 4, 7);
        assert_eq!(r1.report.status, RunStatus::Completed);
        assert_eq!(r2.report.status, RunStatus::Completed);
        let busy1 = r1.report.metrics.busy[0];
        let busy2 = r2.report.metrics.busy[0];
        assert!(
            busy2 * 2 < busy1,
            "top-manager busy time should drop by >2x: 1-level {busy1}, 2-level {busy2}"
        );
        // Messages into node 1: per-task in 1-level, per-group in 2-level.
        let into1: u64 = r1.report.metrics.messages.iter().map(|row| row[0]).sum();
        let into2: u64 = r2.report.metrics.messages.iter().map(|row| row[0]).sum();
        assert!(
            into2 * 4 < into1,
            "manager inbox traffic should drop by >4x: {into1} vs {into2}"
        );
    }
}
