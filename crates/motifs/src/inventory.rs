//! Code-size inventory (experiment E5).
//!
//! §3.6: *"The first [tree-reduction motif] is implemented with five lines
//! of code, and the second with a page of library code … In contrast, the
//! node evaluation code for the sequence alignment application currently
//! exceeds 2000 lines … the use of motifs permits a parallel version of our
//! code to be developed with only a small incremental effort."* This module
//! measures every motif library so the claim can be tabulated against the
//! application code sizes.

use crate::motif::Motif;

/// One row of the inventory table.
#[derive(Clone, Debug)]
pub struct InventoryRow {
    pub motif: String,
    /// Rules in the motif's own library (composition stages excluded).
    pub library_rules: usize,
    /// Non-blank, non-comment source lines of the library.
    pub library_lines: usize,
    /// How the motif is constructed.
    pub construction: &'static str,
}

fn count_lines(src: &str) -> usize {
    src.lines()
        .map(str::trim)
        .filter(|l| !l.is_empty() && !l.starts_with('%'))
        .count()
}

fn row(motif: &Motif, src: &str, construction: &'static str) -> InventoryRow {
    InventoryRow {
        motif: motif.name().to_string(),
        library_rules: motif.library_rules(),
        library_lines: count_lines(src),
        construction,
    }
}

/// The full motif inventory.
pub fn inventory() -> Vec<InventoryRow> {
    vec![
        row(
            &crate::server::server(),
            crate::server::SERVER_LIBRARY,
            "{ServerTransform, server library}",
        ),
        row(&crate::rand_map::rand_map(), "", "{RandTransform, empty}"),
        row(
            &crate::supervisor::supervise(),
            crate::supervisor::SUPERVISE_LIBRARY,
            "{SuperviseTransform, supervision library}",
        ),
        row(
            &crate::tree::tree1(),
            crate::tree::TREE1_LIBRARY,
            "{identity, 5-line library}",
        ),
        InventoryRow {
            motif: "Tree-Reduce-1".into(),
            library_rules: crate::tree::tree1().library_rules(),
            library_lines: count_lines(crate::tree::TREE1_LIBRARY),
            construction: "Server o Rand o Tree1",
        },
        InventoryRow {
            motif: "Tree-Reduce-2".into(),
            library_rules: strand_parse::parse_program(crate::tree::TREE2_LIBRARY)
                .expect("tree2 parses")
                .rule_count(),
            library_lines: count_lines(crate::tree::TREE2_LIBRARY),
            construction: "Server o TreeReduce2Core",
        },
        InventoryRow {
            motif: "Scheduler".into(),
            library_rules: strand_parse::parse_program(crate::scheduler::SCHEDULER_LIBRARY)
                .expect("scheduler parses")
                .rule_count(),
            library_lines: count_lines(crate::scheduler::SCHEDULER_LIBRARY),
            construction: "Server o SchedulerCore",
        },
        InventoryRow {
            motif: "Scheduler-2-level".into(),
            library_rules: strand_parse::parse_program(crate::scheduler::SCHEDULER2_LIBRARY)
                .expect("scheduler2 parses")
                .rule_count(),
            library_lines: count_lines(crate::scheduler::SCHEDULER2_LIBRARY),
            construction: "Server o Scheduler2Core (modification)",
        },
        InventoryRow {
            motif: "Sched (@task pragma)".into(),
            library_rules: strand_parse::parse_program(crate::task_sched::TASK_SCHED_LIBRARY)
                .expect("sched library parses")
                .rule_count(),
            library_lines: count_lines(crate::task_sched::TASK_SCHED_LIBRARY),
            construction: "Server o {SchedTransform, manager library}",
        },
        InventoryRow {
            motif: "DivideAndConquer".into(),
            library_rules: strand_parse::parse_program(crate::dc::DC_LIBRARY)
                .expect("dc parses")
                .rule_count(),
            library_lines: count_lines(crate::dc::DC_LIBRARY),
            construction: "Server o Rand o DCCore",
        },
        InventoryRow {
            motif: "Search".into(),
            library_rules: strand_parse::parse_program(crate::search::SEARCH_LIBRARY)
                .expect("search parses")
                .rule_count(),
            library_lines: count_lines(crate::search::SEARCH_LIBRARY),
            construction: "Server o Rand o SearchCore",
        },
        InventoryRow {
            motif: "Grid".into(),
            library_rules: strand_parse::parse_program(crate::grid::GRID_LIBRARY)
                .expect("grid parses")
                .rule_count(),
            library_lines: count_lines(crate::grid::GRID_LIBRARY),
            construction: "{identity, grid library}",
        },
        InventoryRow {
            motif: "Graph (components)".into(),
            library_rules: strand_parse::parse_program(crate::graph::GRAPH_LIBRARY)
                .expect("graph library parses")
                .rule_count(),
            library_lines: count_lines(crate::graph::GRAPH_LIBRARY),
            construction: "Server o GraphCore",
        },
        InventoryRow {
            motif: "Pipeline".into(),
            library_rules: strand_parse::parse_program(crate::pipeline::PIPELINE_LIBRARY)
                .expect("pipeline parses")
                .rule_count(),
            library_lines: count_lines(crate::pipeline::PIPELINE_LIBRARY),
            construction: "{identity, pipeline library}",
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inventory_covers_the_suite() {
        let inv = inventory();
        assert!(inv.len() >= 10);
        let names: Vec<&str> = inv.iter().map(|r| r.motif.as_str()).collect();
        for expected in ["Server", "Rand", "Tree1", "Tree-Reduce-2", "Scheduler"] {
            assert!(
                names.iter().any(|n| n.contains(expected)),
                "missing {expected} in {names:?}"
            );
        }
    }

    #[test]
    fn tree1_is_five_lines_per_the_paper() {
        let inv = inventory();
        let t1 = inv.iter().find(|r| r.motif == "Tree1").unwrap();
        assert_eq!(t1.library_lines, 5);
        assert_eq!(t1.library_rules, 2);
    }

    #[test]
    fn tree2_is_about_a_page() {
        // §3.6: "the second with a page of library code".
        let inv = inventory();
        let t2 = inv.iter().find(|r| r.motif == "Tree-Reduce-2").unwrap();
        assert!(
            (30..90).contains(&t2.library_lines),
            "a 'page' of code, got {} lines",
            t2.library_lines
        );
    }

    #[test]
    fn rand_has_empty_library() {
        let inv = inventory();
        let r = inv.iter().find(|r| r.motif == "Rand").unwrap();
        assert_eq!(r.library_rules, 0);
    }
}
