//! Progressive multiple sequence alignment = guide-tree reduction.
//!
//! This is the paper's application assembled end to end: *"Reduction of
//! this tree using an 'align-node' function produces the desired
//! alignment"* (§3). The guide tree becomes a
//! [`skeletons::Tree`] whose leaves hold single-sequence profiles; the
//! reduction operator is [`align_profiles`]; any tree-reduction strategy
//! (sequential, Tree-Reduce-1 random labels, Tree-Reduce-2 paper labels,
//! static) computes the family alignment.

use crate::align::{align_profiles, Profile, ScoreParams};
use crate::rna::Phylo;
use crate::upgma::guide_tree;
use skeletons::pool::Pool;
use skeletons::tree::{reduce, reduce_seq, Labeling, ReduceOutcome, Tree};

/// Convert a guide tree plus sequences into a reduction tree of profiles.
pub fn alignment_tree(tree: &Phylo, seqs: &[Vec<u8>]) -> Tree<Profile, ()> {
    match tree {
        Phylo::Leaf(i) => Tree::Leaf(Profile::from_sequence(&seqs[*i])),
        Phylo::Node(l, r) => Tree::node((), alignment_tree(l, seqs), alignment_tree(r, seqs)),
    }
}

/// Sequential progressive alignment (reference).
pub fn align_family_seq(seqs: &[Vec<u8>], p: &ScoreParams) -> Profile {
    let guide = guide_tree(seqs, p);
    let tree = alignment_tree(&guide, seqs);
    let params = *p;
    reduce_seq(&tree, &move |_, a, b| {
        align_profiles(&a, &b, &params).profile
    })
}

/// Parallel progressive alignment under a tree-reduction labeling.
pub fn align_family_parallel(
    pool: &Pool,
    seqs: &[Vec<u8>],
    p: &ScoreParams,
    labeling: Labeling,
) -> ReduceOutcome<Profile> {
    let guide = guide_tree(seqs, p);
    let tree = alignment_tree(&guide, seqs);
    let params = *p;
    reduce(pool, tree, labeling, move |_, a, b| {
        align_profiles(&a, &b, &params).profile
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rna::{generate_family, FamilyParams};

    fn family(leaves: usize, seed: u64) -> Vec<Vec<u8>> {
        generate_family(&FamilyParams {
            leaves,
            ancestral_len: 80,
            seed,
            ..Default::default()
        })
        .sequences
    }

    #[test]
    fn sequential_alignment_covers_all_sequences() {
        let seqs = family(8, 1);
        let out = align_family_seq(&seqs, &ScoreParams::default());
        assert_eq!(out.seqs, 8);
        let max_len = seqs.iter().map(Vec::len).max().unwrap();
        assert!(out.len() >= max_len);
        assert!(out.len() < max_len * 2, "alignment blew up: {}", out.len());
    }

    #[test]
    fn related_family_aligns_with_high_identity() {
        let seqs = family(8, 2);
        let related = align_family_seq(&seqs, &ScoreParams::default());
        // Unrelated random sequences of the same lengths align poorly.
        let mut rng = strand_core::SplitMix64::new(99);
        let unrelated: Vec<Vec<u8>> = seqs
            .iter()
            .map(|s| crate::rna::random_sequence(s.len(), &mut rng))
            .collect();
        let noise = align_family_seq(&unrelated, &ScoreParams::default());
        assert!(
            related.column_identity() > noise.column_identity() + 0.15,
            "related {:.3} vs noise {:.3}",
            related.column_identity(),
            noise.column_identity()
        );
        assert!(related.column_identity() > 0.75);
    }

    #[test]
    fn parallel_matches_sequential_shape() {
        // The reduction order is fixed by the guide tree, so parallel and
        // sequential runs produce the same profile.
        let seqs = family(12, 3);
        let p = ScoreParams::default();
        let seq_profile = align_family_seq(&seqs, &p);
        for labeling in [Labeling::Random(3), Labeling::Paper(3), Labeling::Static] {
            let pool = Pool::new(4, false);
            let out = align_family_parallel(&pool, &seqs, &p, labeling);
            assert_eq!(out.value.seqs, seq_profile.seqs);
            assert_eq!(out.value.len(), seq_profile.len(), "labeling {labeling:?}");
            assert_eq!(out.value, seq_profile);
            pool.shutdown();
        }
    }

    #[test]
    fn paper_labeling_bounds_crossings_on_alignment_trees() {
        let seqs = family(24, 4);
        let p = ScoreParams::default();
        let pool = Pool::new(6, false);
        let out = align_family_parallel(&pool, &seqs, &p, Labeling::Paper(4));
        let internal = seqs.len() - 1;
        assert!(
            out.cross_child_values <= internal,
            "{} crossings for {internal} internal nodes",
            out.cross_child_values
        );
        pool.shutdown();
    }

    #[test]
    fn two_sequence_family() {
        let seqs = family(2, 5);
        let out = align_family_seq(&seqs, &ScoreParams::default());
        assert_eq!(out.seqs, 2);
    }
}
