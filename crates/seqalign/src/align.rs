//! Profile–profile alignment: the `align-node` operator (§3).
//!
//! A [`Profile`] is a multiple alignment summarized per column as base
//! frequencies (A, C, G, U, gap). Aligning two profiles with
//! Needleman–Wunsch produces the profile of the merged alignment — exactly
//! the associative-enough "node evaluation function" the paper's tree
//! reduction applies at every node of the phylogenetic tree, with the same
//! cost profile (quadratic in the sequence lengths, producing large
//! intermediate structures).

use crate::rna::base_index;
use skeletons::MemSize;

/// One alignment column: frequencies of A, C, G, U and gap.
pub type Column = [f32; 5];

/// A profile: per-column frequencies plus the number of sequences it
/// summarizes.
#[derive(Clone, Debug, PartialEq)]
pub struct Profile {
    pub cols: Vec<Column>,
    pub seqs: u32,
}

impl MemSize for Profile {
    fn mem_bytes(&self) -> usize {
        self.cols.len() * std::mem::size_of::<Column>() + std::mem::size_of::<Self>()
    }
}

impl Profile {
    /// Profile of a single ungapped sequence.
    pub fn from_sequence(seq: &[u8]) -> Profile {
        let cols = seq
            .iter()
            .map(|b| {
                let mut c = [0.0f32; 5];
                c[base_index(*b).expect("RNA base")] = 1.0;
                c
            })
            .collect();
        Profile { cols, seqs: 1 }
    }

    /// Alignment length.
    pub fn len(&self) -> usize {
        self.cols.len()
    }

    /// True when the profile has no columns.
    pub fn is_empty(&self) -> bool {
        self.cols.is_empty()
    }

    /// Consensus string: the dominant symbol per column (`-` for gap).
    pub fn consensus(&self) -> String {
        const SYMS: [char; 5] = ['A', 'C', 'G', 'U', '-'];
        self.cols
            .iter()
            .map(|c| {
                let mut best = 0;
                for i in 1..5 {
                    if c[i] > c[best] {
                        best = i;
                    }
                }
                SYMS[best]
            })
            .collect()
    }

    /// Average per-column identity: the weight of the dominant base (gap
    /// included) — 1.0 means all sequences agree everywhere.
    pub fn column_identity(&self) -> f64 {
        if self.cols.is_empty() {
            return 1.0;
        }
        let total: f64 = self
            .cols
            .iter()
            .map(|c| c.iter().fold(0.0f32, |m, x| m.max(*x)) as f64)
            .sum();
        total / self.cols.len() as f64
    }
}

/// Alignment scoring parameters.
#[derive(Clone, Copy, Debug)]
pub struct ScoreParams {
    pub matsh: f32,
    pub mismatch: f32,
    pub gap: f32,
}

impl Default for ScoreParams {
    fn default() -> Self {
        ScoreParams {
            matsh: 2.0,
            mismatch: -1.0,
            gap: -2.0,
        }
    }
}

/// Expected substitution score between two columns.
fn col_score(a: &Column, b: &Column, p: &ScoreParams) -> f32 {
    let mut s = 0.0;
    for (i, &fa) in a.iter().take(4).enumerate() {
        for (j, &fb) in b.iter().take(4).enumerate() {
            s += fa * fb * if i == j { p.matsh } else { p.mismatch };
        }
    }
    // A gap fraction in either column contributes gap penalty.
    s += (a[4] + b[4]) * p.gap * 0.5;
    s
}

fn merge_columns(a: &Column, wa: f32, b: &Column, wb: f32) -> Column {
    let mut out = [0.0f32; 5];
    let total = wa + wb;
    for i in 0..5 {
        out[i] = (a[i] * wa + b[i] * wb) / total;
    }
    out
}

const GAP_COLUMN: Column = [0.0, 0.0, 0.0, 0.0, 1.0];

/// The result of aligning two profiles.
#[derive(Clone, Debug)]
pub struct Alignment {
    pub profile: Profile,
    pub score: f32,
}

/// Needleman–Wunsch global alignment of two profiles; returns the merged
/// profile and the optimal score. `O(len(a)·len(b))` time and memory —
/// the "large intermediate data structures" of §3.5 are the DP matrix and
/// the merged profile.
pub fn align_profiles(a: &Profile, b: &Profile, p: &ScoreParams) -> Alignment {
    let (n, m) = (a.len(), b.len());
    let width = m + 1;
    // DP score matrix, row-major.
    let mut dp = vec![0.0f32; (n + 1) * width];
    // Traceback: 0 diag, 1 up (gap in b), 2 left (gap in a).
    let mut tb = vec![0u8; (n + 1) * width];
    for j in 1..=m {
        dp[j] = dp[j - 1] + p.gap;
        tb[j] = 2;
    }
    for i in 1..=n {
        dp[i * width] = dp[(i - 1) * width] + p.gap;
        tb[i * width] = 1;
        for j in 1..=m {
            let diag = dp[(i - 1) * width + j - 1] + col_score(&a.cols[i - 1], &b.cols[j - 1], p);
            let up = dp[(i - 1) * width + j] + p.gap;
            let left = dp[i * width + j - 1] + p.gap;
            let (best, dir) = if diag >= up && diag >= left {
                (diag, 0)
            } else if up >= left {
                (up, 1)
            } else {
                (left, 2)
            };
            dp[i * width + j] = best;
            tb[i * width + j] = dir;
        }
    }
    // Traceback, building merged columns back-to-front.
    let (wa, wb) = (a.seqs as f32, b.seqs as f32);
    let mut cols = Vec::with_capacity(n.max(m));
    let (mut i, mut j) = (n, m);
    while i > 0 || j > 0 {
        match tb[i * width + j] {
            0 => {
                cols.push(merge_columns(&a.cols[i - 1], wa, &b.cols[j - 1], wb));
                i -= 1;
                j -= 1;
            }
            1 => {
                cols.push(merge_columns(&a.cols[i - 1], wa, &GAP_COLUMN, wb));
                i -= 1;
            }
            _ => {
                cols.push(merge_columns(&GAP_COLUMN, wa, &b.cols[j - 1], wb));
                j -= 1;
            }
        }
    }
    cols.reverse();
    Alignment {
        profile: Profile {
            cols,
            seqs: a.seqs + b.seqs,
        },
        score: dp[n * width + m],
    }
}

/// Pairwise distance between two sequences: 1 − normalized alignment score
/// (clamped to [0, 1]); used to build the UPGMA guide tree.
pub fn pair_distance(a: &[u8], b: &[u8], p: &ScoreParams) -> f64 {
    let pa = Profile::from_sequence(a);
    let pb = Profile::from_sequence(b);
    let al = align_profiles(&pa, &pb, p);
    let max_possible = p.matsh * a.len().min(b.len()) as f32;
    if max_possible <= 0.0 {
        return 0.0;
    }
    (1.0 - (al.score / max_possible) as f64).clamp(0.0, 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn profile(s: &str) -> Profile {
        Profile::from_sequence(s.as_bytes())
    }

    #[test]
    fn identical_sequences_align_without_gaps() {
        let p = ScoreParams::default();
        let a = profile("ACGUACGU");
        let out = align_profiles(&a, &a.clone(), &p);
        assert_eq!(out.profile.len(), 8);
        assert_eq!(out.profile.seqs, 2);
        assert!((out.profile.column_identity() - 1.0).abs() < 1e-6);
        assert!((out.score - 8.0 * p.matsh).abs() < 1e-4);
    }

    #[test]
    fn insertion_produces_gap_column() {
        let p = ScoreParams::default();
        let a = profile("ACGU");
        let b = profile("ACGGU"); // one extra G
        let out = align_profiles(&a, &b, &p);
        assert_eq!(out.profile.len(), 5);
        // Exactly one column carries gap mass from `a`.
        let gappy = out.profile.cols.iter().filter(|c| c[4] > 0.0).count();
        assert_eq!(gappy, 1);
    }

    #[test]
    fn alignment_length_bounds() {
        let p = ScoreParams::default();
        let a = profile("ACGUACGUAC");
        let b = profile("GUACG");
        let out = align_profiles(&a, &b, &p);
        assert!(out.profile.len() >= 10);
        assert!(out.profile.len() <= 15);
    }

    #[test]
    fn empty_profile_aligns_as_all_gaps() {
        let p = ScoreParams::default();
        let a = profile("ACGU");
        let b = Profile {
            cols: vec![],
            seqs: 1,
        };
        let out = align_profiles(&a, &b, &p);
        assert_eq!(out.profile.len(), 4);
        assert!(out.profile.cols.iter().all(|c| c[4] > 0.0));
    }

    #[test]
    fn distance_orders_by_relatedness() {
        let p = ScoreParams::default();
        let a = b"ACGUACGUACGUACGUACGU";
        let close = b"ACGUACGUACGAACGUACGU"; // 1 substitution
        let far = b"UUUUGGGGCCCCAAAAUUUU";
        let d_self = pair_distance(a, a, &p);
        let d_close = pair_distance(a, close, &p);
        let d_far = pair_distance(a, far, &p);
        assert!(d_self < 1e-9);
        assert!(d_close < d_far, "{d_close} vs {d_far}");
        assert!(d_close > 0.0);
    }

    #[test]
    fn merged_profile_frequencies_are_weighted() {
        let p = ScoreParams::default();
        // Three copies of A-profile merged with one U-profile.
        let mut a3 = profile("AAAA");
        a3.seqs = 3;
        let u1 = profile("UUUU");
        let out = align_profiles(&a3, &u1, &p);
        assert_eq!(out.profile.seqs, 4);
        for c in &out.profile.cols {
            assert!((c[0] - 0.75).abs() < 1e-5, "{c:?}");
            assert!((c[3] - 0.25).abs() < 1e-5, "{c:?}");
        }
    }

    #[test]
    fn consensus_of_single_sequence_is_the_sequence() {
        let p = profile("ACGUACGU");
        assert_eq!(p.consensus(), "ACGUACGU");
    }

    #[test]
    fn consensus_reflects_majority() {
        let pr = ScoreParams::default();
        let mut a3 = profile("AAAA");
        a3.seqs = 3;
        let u1 = profile("UUUU");
        let out = align_profiles(&a3, &u1, &pr);
        assert_eq!(out.profile.consensus(), "AAAA");
    }

    #[test]
    fn consensus_marks_gap_columns() {
        let pr = ScoreParams::default();
        let mut a = profile("AC");
        a.seqs = 1;
        let b = profile("AGGGGC");
        let out = align_profiles(&a, &b, &pr);
        // The four inserted columns are mostly gap for the short profile;
        // with one sequence each, base weight (1.0 from b) beats gap (0.5
        // average), so consensus shows b's bases — but length must be 6.
        assert_eq!(out.profile.consensus().len(), 6);
    }

    #[test]
    fn profile_mem_size_scales_with_length() {
        let small = profile("ACGU");
        let big = profile(&"ACGU".repeat(100));
        assert!(big.mem_bytes() > small.mem_bytes() * 50);
    }
}
