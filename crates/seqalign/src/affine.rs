//! Affine-gap profile alignment (Gotoh's algorithm).
//!
//! The linear gap model of [`crate::align`] penalizes a length-k gap as
//! `k·gap`; real RNA indels arrive in bursts, so practical aligners charge
//! `open + (k-1)·extend`. This module provides the three-matrix Gotoh
//! variant of the profile aligner as a drop-in upgrade of the `align-node`
//! operator — the kind of "modification" reuse the paper argues motifs
//! must support: the coordination structure (tree reduction) is untouched;
//! only the node evaluation changes.

use crate::align::{Alignment, Column, Profile};

/// Affine scoring parameters.
#[derive(Clone, Copy, Debug)]
pub struct AffineParams {
    pub matsh: f32,
    pub mismatch: f32,
    /// Cost of opening a gap (first gapped column).
    pub gap_open: f32,
    /// Cost of extending an open gap (subsequent columns).
    pub gap_extend: f32,
}

impl Default for AffineParams {
    fn default() -> Self {
        AffineParams {
            matsh: 2.0,
            mismatch: -1.0,
            gap_open: -4.0,
            gap_extend: -0.5,
        }
    }
}

fn col_score(a: &Column, b: &Column, p: &AffineParams) -> f32 {
    let mut s = 0.0;
    for (i, &fa) in a.iter().take(4).enumerate() {
        for (j, &fb) in b.iter().take(4).enumerate() {
            s += fa * fb * if i == j { p.matsh } else { p.mismatch };
        }
    }
    s
}

fn merge_columns(a: &Column, wa: f32, b: &Column, wb: f32) -> Column {
    let mut out = [0.0f32; 5];
    let total = wa + wb;
    for i in 0..5 {
        out[i] = (a[i] * wa + b[i] * wb) / total;
    }
    out
}

const GAP_COLUMN: Column = [0.0, 0.0, 0.0, 0.0, 1.0];
const NEG: f32 = -1.0e30;

/// Gotoh global alignment of two profiles under affine gaps.
///
/// Three DP layers: `m` (match/mismatch), `x` (gap in `b`, i.e. consuming
/// `a`), `y` (gap in `a`). `O(len(a)·len(b))` time and memory.
pub fn align_profiles_affine(a: &Profile, b: &Profile, p: &AffineParams) -> Alignment {
    let (n, m) = (a.len(), b.len());
    let w = m + 1;
    let idx = |i: usize, j: usize| i * w + j;
    let mut sm = vec![NEG; (n + 1) * w];
    let mut sx = vec![NEG; (n + 1) * w];
    let mut sy = vec![NEG; (n + 1) * w];
    // Traceback per layer: which layer each cell came from (0=m,1=x,2=y).
    let mut tm = vec![0u8; (n + 1) * w];
    let mut tx = vec![0u8; (n + 1) * w];
    let mut ty = vec![0u8; (n + 1) * w];
    sm[0] = 0.0;
    for i in 1..=n {
        sx[idx(i, 0)] = p.gap_open + (i as f32 - 1.0) * p.gap_extend;
        tx[idx(i, 0)] = 1;
    }
    for j in 1..=m {
        sy[idx(0, j)] = p.gap_open + (j as f32 - 1.0) * p.gap_extend;
        ty[idx(0, j)] = 2;
    }
    for i in 1..=n {
        for j in 1..=m {
            let sub = col_score(&a.cols[i - 1], &b.cols[j - 1], p);
            // m layer: diagonal step from the best of the three.
            let (prev_m, prev_x, prev_y) = (
                sm[idx(i - 1, j - 1)],
                sx[idx(i - 1, j - 1)],
                sy[idx(i - 1, j - 1)],
            );
            let (best, from) = max3(prev_m, prev_x, prev_y);
            sm[idx(i, j)] = best + sub;
            tm[idx(i, j)] = from;
            // x layer: consume a[i-1] against a gap (open from m/y, extend x).
            let open = sm[idx(i - 1, j)].max(sy[idx(i - 1, j)]) + p.gap_open;
            let extend = sx[idx(i - 1, j)] + p.gap_extend;
            if extend >= open {
                sx[idx(i, j)] = extend;
                tx[idx(i, j)] = 1;
            } else {
                sx[idx(i, j)] = open;
                tx[idx(i, j)] = if sm[idx(i - 1, j)] >= sy[idx(i - 1, j)] {
                    0
                } else {
                    2
                };
            }
            // y layer: consume b[j-1] against a gap.
            let open = sm[idx(i, j - 1)].max(sx[idx(i, j - 1)]) + p.gap_open;
            let extend = sy[idx(i, j - 1)] + p.gap_extend;
            if extend >= open {
                sy[idx(i, j)] = extend;
                ty[idx(i, j)] = 2;
            } else {
                sy[idx(i, j)] = open;
                ty[idx(i, j)] = if sm[idx(i, j - 1)] >= sx[idx(i, j - 1)] {
                    0
                } else {
                    1
                };
            }
        }
    }
    // Traceback from the best final layer.
    let (score, mut layer) = {
        let (s, l) = max3(sm[idx(n, m)], sx[idx(n, m)], sy[idx(n, m)]);
        (s, l)
    };
    let (wa, wb) = (a.seqs as f32, b.seqs as f32);
    let mut cols = Vec::with_capacity(n.max(m));
    let (mut i, mut j) = (n, m);
    while i > 0 || j > 0 {
        match layer {
            0 => {
                layer = tm[idx(i, j)];
                cols.push(merge_columns(&a.cols[i - 1], wa, &b.cols[j - 1], wb));
                i -= 1;
                j -= 1;
            }
            1 => {
                layer = tx[idx(i, j)];
                cols.push(merge_columns(&a.cols[i - 1], wa, &GAP_COLUMN, wb));
                i -= 1;
            }
            _ => {
                layer = ty[idx(i, j)];
                cols.push(merge_columns(&GAP_COLUMN, wa, &b.cols[j - 1], wb));
                j -= 1;
            }
        }
    }
    cols.reverse();
    Alignment {
        profile: Profile {
            cols,
            seqs: a.seqs + b.seqs,
        },
        score,
    }
}

fn max3(m: f32, x: f32, y: f32) -> (f32, u8) {
    if m >= x && m >= y {
        (m, 0)
    } else if x >= y {
        (x, 1)
    } else {
        (y, 2)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn profile(s: &str) -> Profile {
        Profile::from_sequence(s.as_bytes())
    }

    #[test]
    fn identical_sequences_score_full_match() {
        let p = AffineParams::default();
        let a = profile("ACGUACGU");
        let out = align_profiles_affine(&a, &a.clone(), &p);
        assert_eq!(out.profile.len(), 8);
        assert!((out.score - 8.0 * p.matsh).abs() < 1e-4);
        assert!((out.profile.column_identity() - 1.0).abs() < 1e-6);
    }

    #[test]
    fn affine_prefers_one_long_gap_over_scattered_gaps() {
        let p = AffineParams::default();
        // b has a 3-base insertion in one burst.
        let a = profile("ACGUACGU");
        let b = profile("ACGUUUUACGU");
        let out = align_profiles_affine(&a, &b, &p);
        assert_eq!(out.profile.len(), 11);
        // The gap columns (where `a` contributes gap mass) must be
        // contiguous under affine scoring.
        let gap_positions: Vec<usize> = out
            .profile
            .cols
            .iter()
            .enumerate()
            .filter(|(_, c)| c[4] > 0.0)
            .map(|(i, _)| i)
            .collect();
        assert_eq!(gap_positions.len(), 3, "{gap_positions:?}");
        assert!(
            gap_positions.windows(2).all(|w| w[1] == w[0] + 1),
            "gap not contiguous: {gap_positions:?}"
        );
    }

    #[test]
    fn one_profile_empty() {
        let p = AffineParams::default();
        let a = profile("ACGU");
        let empty = Profile {
            cols: vec![],
            seqs: 1,
        };
        let out = align_profiles_affine(&a, &empty, &p);
        assert_eq!(out.profile.len(), 4);
        let expected = p.gap_open + 3.0 * p.gap_extend;
        assert!((out.score - expected).abs() < 1e-4, "{}", out.score);
    }

    #[test]
    fn gap_lengths_cost_open_plus_extends() {
        let p = AffineParams::default();
        let a = profile("AA");
        let b = profile("AAGGG");
        let out = align_profiles_affine(&a, &b, &p);
        // 2 matches + open + 2 extends.
        let expected = 2.0 * p.matsh + p.gap_open + 2.0 * p.gap_extend;
        assert!((out.score - expected).abs() < 1e-4, "{}", out.score);
    }

    #[test]
    fn progressive_alignment_with_affine_node() {
        // Drop-in use as the align-node operator on the tree skeleton.
        use crate::msa::alignment_tree;
        use crate::rna::{generate_family, FamilyParams};
        use crate::upgma::guide_tree;
        use skeletons::tree::reduce_seq;
        let fam = generate_family(&FamilyParams {
            leaves: 6,
            ancestral_len: 60,
            seed: 12,
            ..Default::default()
        });
        let guide = guide_tree(&fam.sequences, &crate::align::ScoreParams::default());
        let tree = alignment_tree(&guide, &fam.sequences);
        let p = AffineParams::default();
        let profile = reduce_seq(&tree, &move |_, a, b| {
            align_profiles_affine(&a, &b, &p).profile
        });
        assert_eq!(profile.seqs, 6);
        assert!(profile.column_identity() > 0.7);
    }
}
