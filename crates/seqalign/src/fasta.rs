//! FASTA-style input/output for sequence families.
//!
//! The application substitutes synthetic families for the 1990 lab data
//! (DESIGN.md §3), but a downstream user has real files; this module reads
//! and writes the standard FASTA text format so the pipeline accepts
//! external sequences, and renders alignments for inspection.

use crate::align::Profile;

/// Write sequences as FASTA text, one record per sequence.
pub fn to_fasta(names: &[String], seqs: &[Vec<u8>]) -> String {
    assert_eq!(names.len(), seqs.len(), "one name per sequence");
    let mut out = String::new();
    for (name, seq) in names.iter().zip(seqs.iter()) {
        out.push('>');
        out.push_str(name);
        out.push('\n');
        for line in seq.chunks(60) {
            out.push_str(&String::from_utf8_lossy(line));
            out.push('\n');
        }
    }
    out
}

/// Parse FASTA text into (names, sequences). Understands `>` headers,
/// wrapped sequence lines, blank lines, and `;` comments; uppercases
/// residues and maps `T` to `U` (DNA input for an RNA pipeline).
pub fn parse_fasta(text: &str) -> Result<(Vec<String>, Vec<Vec<u8>>), String> {
    let mut names = Vec::new();
    let mut seqs: Vec<Vec<u8>> = Vec::new();
    for (lineno, raw) in text.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() || line.starts_with(';') {
            continue;
        }
        if let Some(header) = line.strip_prefix('>') {
            names.push(header.trim().to_string());
            seqs.push(Vec::new());
            continue;
        }
        let current = seqs
            .last_mut()
            .ok_or_else(|| format!("line {}: sequence data before any '>' header", lineno + 1))?;
        for ch in line.bytes() {
            let b = ch.to_ascii_uppercase();
            let b = if b == b'T' { b'U' } else { b };
            if !matches!(b, b'A' | b'C' | b'G' | b'U') {
                return Err(format!(
                    "line {}: unsupported residue {:?}",
                    lineno + 1,
                    ch as char
                ));
            }
            current.push(b);
        }
    }
    if names.is_empty() {
        return Err("no FASTA records found".into());
    }
    if seqs.iter().any(Vec::is_empty) {
        return Err("a FASTA record has an empty sequence".into());
    }
    Ok((names, seqs))
}

/// Render an alignment profile as a FASTA-style consensus record plus a
/// per-column conservation track (`*` fully conserved, `:` ≥ 0.75, `.` ≥
/// 0.5, space otherwise).
pub fn render_alignment(name: &str, profile: &Profile) -> String {
    let consensus = profile.consensus();
    let track: String = profile
        .cols
        .iter()
        .map(|c| {
            let top = c.iter().fold(0.0f32, |m, x| m.max(*x));
            if top >= 0.999 {
                '*'
            } else if top >= 0.75 {
                ':'
            } else if top >= 0.5 {
                '.'
            } else {
                ' '
            }
        })
        .collect();
    format!(
        ">{name} | {} sequences, {} columns, {:.1}% identity\n{consensus}\n{track}\n",
        profile.seqs,
        profile.len(),
        profile.column_identity() * 100.0
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::align::ScoreParams;
    use crate::msa::align_family_seq;
    use crate::rna::{generate_family, FamilyParams};

    #[test]
    fn fasta_roundtrip() {
        let fam = generate_family(&FamilyParams {
            leaves: 4,
            ancestral_len: 70,
            ..Default::default()
        });
        let names: Vec<String> = (0..4).map(|i| format!("org_{i}")).collect();
        let text = to_fasta(&names, &fam.sequences);
        let (names2, seqs2) = parse_fasta(&text).unwrap();
        assert_eq!(names, names2);
        assert_eq!(fam.sequences, seqs2);
    }

    #[test]
    fn parser_handles_wrapping_case_and_dna() {
        let text = ">x\nacg\nt\n\n>y desc here\nGGCC\n";
        let (names, seqs) = parse_fasta(text).unwrap();
        assert_eq!(names, vec!["x".to_string(), "y desc here".to_string()]);
        assert_eq!(seqs[0], b"ACGU".to_vec()); // T -> U, lowercase ok, wrap joined
        assert_eq!(seqs[1], b"GGCC".to_vec());
    }

    #[test]
    fn parser_rejects_garbage() {
        assert!(parse_fasta("ACGU\n").is_err()); // data before header
        assert!(parse_fasta(">x\nACGX\n").is_err()); // bad residue
        assert!(parse_fasta("").is_err()); // empty
        assert!(parse_fasta(">x\n>y\nACGU\n").is_err()); // empty record
    }

    #[test]
    fn alignment_renders_with_conservation_track() {
        let fam = generate_family(&FamilyParams {
            leaves: 6,
            ancestral_len: 50,
            seed: 3,
            ..Default::default()
        });
        let profile = align_family_seq(&fam.sequences, &ScoreParams::default());
        let text = render_alignment("family", &profile);
        let lines: Vec<&str> = text.lines().collect();
        assert!(lines[0].starts_with(">family | 6 sequences"));
        assert_eq!(lines[1].len(), profile.len());
        assert_eq!(lines[2].len(), profile.len());
        // A related family has plenty of conserved columns.
        assert!(lines[2].matches('*').count() > profile.len() / 4);
    }
}
