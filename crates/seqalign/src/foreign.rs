//! Running the alignment inside the simulated multicomputer — the paper's
//! full architecture.
//!
//! In 1990 the application was *"2000 lines of Strand and C"*: Strand
//! coordinated, C computed. This module reproduces that split exactly: the
//! motif language coordinates (Tree-Reduce motifs on the simulator) while
//! the node evaluation runs natively ([`register_align_node`] installs the
//! Rust `align_node` as a foreign procedure, §2.1's multilingual approach).
//!
//! Profiles cross the language boundary as terms:
//! `profile(Seqs, [col(A, C, G, U, Gap)|…])`; a leaf may simply be the
//! sequence string, which the foreign procedure promotes to a profile.

use crate::align::{align_profiles, Profile, ScoreParams};
use crate::rna::Phylo;
use strand_core::{StrandError, StrandResult, Term};
use strand_machine::Machine;

/// Encode a profile as a term.
pub fn profile_to_term(p: &Profile) -> Term {
    let cols = p
        .cols
        .iter()
        .map(|c| Term::tuple("col", c.iter().map(|x| Term::float(*x as f64)).collect()));
    Term::tuple("profile", vec![Term::int(p.seqs as i64), Term::list(cols)])
}

/// Decode a profile term (or promote a sequence string).
pub fn term_to_profile(t: &Term) -> StrandResult<Profile> {
    match t {
        Term::Str(s) => Ok(Profile::from_sequence(s.as_bytes())),
        Term::Tuple(name, args) if name.as_str() == "profile" && args.len() == 2 => {
            let seqs = match &args[0] {
                Term::Int(i) if *i >= 0 => *i as u32,
                other => {
                    return Err(StrandError::Other(format!(
                        "bad profile sequence count: {other}"
                    )))
                }
            };
            let col_terms = args[1]
                .as_proper_list()
                .ok_or_else(|| StrandError::Other("profile columns must be a list".into()))?;
            let mut cols = Vec::with_capacity(col_terms.len());
            for ct in col_terms {
                let parts = match &ct {
                    Term::Tuple(n, parts) if n.as_str() == "col" && parts.len() == 5 => parts,
                    other => return Err(StrandError::Other(format!("bad column term: {other}"))),
                };
                let mut col = [0.0f32; 5];
                for (i, p) in parts.iter().enumerate() {
                    col[i] = match p {
                        Term::Float(x) => *x as f32,
                        Term::Int(i) => *i as f32,
                        other => {
                            return Err(StrandError::Other(format!("bad column entry: {other}")))
                        }
                    };
                }
                cols.push(col);
            }
            Ok(Profile { cols, seqs })
        }
        other => Err(StrandError::Other(format!(
            "not a profile or sequence: {other}"
        ))),
    }
}

/// Install `align_node/3` on a machine: `align_node(A, B, Merged)` aligns
/// two profiles (or sequence strings) natively and charges a virtual cost
/// proportional to the DP matrix size — the quadratic cost of the real
/// Needleman–Wunsch computation.
pub fn register_align_node(machine: &mut Machine, params: ScoreParams, cost_divisor: u64) {
    machine.register_foreign("align_node", 3, move |args| {
        let a = term_to_profile(&args[0])?;
        let b = term_to_profile(&args[1])?;
        let cost = (a.len() as u64 * b.len() as u64) / cost_divisor.max(1) + 1;
        let merged = align_profiles(&a, &b, &params).profile;
        Ok((profile_to_term(&merged), cost))
    });
}

/// The same `align_node/3` as a *pure* foreign library: alignment depends
/// only on its arguments, so the multi-threaded backend may compute it
/// outside the machine lock (and overlapped with other alignments). Install
/// with [`strand_machine::run_parsed_goal_with_lib`] on either backend.
pub fn align_lib(params: ScoreParams, cost_divisor: u64) -> strand_machine::ForeignLib {
    let mut lib = strand_machine::ForeignLib::new();
    lib.register("align_node", 3, move |args| {
        let a = term_to_profile(&args[0])?;
        let b = term_to_profile(&args[1])?;
        let cost = (a.len() as u64 * b.len() as u64) / cost_divisor.max(1) + 1;
        let merged = align_profiles(&a, &b, &params).profile;
        Ok((profile_to_term(&merged), cost))
    });
    lib
}

/// Render a guide tree over sequences as a motif-language tree term whose
/// leaves are the sequence strings: `tree(n, leaf("ACGU…"), …)`.
pub fn guide_tree_src(tree: &Phylo, seqs: &[Vec<u8>]) -> String {
    match tree {
        Phylo::Leaf(i) => format!("leaf(\"{}\")", String::from_utf8_lossy(&seqs[*i])),
        Phylo::Node(l, r) => format!(
            "tree(n, {}, {})",
            guide_tree_src(l, seqs),
            guide_tree_src(r, seqs)
        ),
    }
}

/// The node-evaluation program for the simulator: wait for both operands,
/// then call the native aligner.
pub const ALIGN_EVAL: &str = r#"
eval(_, L, R, Value) :- data(L), data(R) | align_node(L, R, Value).
"#;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rna::{generate_family, FamilyParams};
    use crate::upgma::guide_tree;
    use strand_machine::{ast_to_term, MachineConfig, RunStatus};
    use strand_parse::{compile_program, parse_term};

    #[test]
    fn profile_term_roundtrip() {
        let p = Profile::from_sequence(b"ACGUAC");
        let t = profile_to_term(&p);
        let back = term_to_profile(&t).unwrap();
        assert_eq!(p, back);
        // Strings promote.
        assert_eq!(term_to_profile(&Term::str("ACGU")).unwrap().len(), 4);
    }

    #[test]
    fn bad_terms_are_rejected() {
        assert!(term_to_profile(&Term::int(3)).is_err());
        assert!(
            term_to_profile(&Term::tuple("profile", vec![Term::int(1), Term::int(2)])).is_err()
        );
    }

    fn run_sim_msa(
        motif: motifs_like::Which,
        seqs: &[Vec<u8>],
        servers: u32,
    ) -> (Profile, strand_machine::RunReport) {
        // Build the motif program (TR1 or TR2) over the align eval.
        let program = match motif {
            motifs_like::Which::Tr1 => motifs_like::tr1_program(),
            motifs_like::Which::Tr2 => motifs_like::tr2_program(),
        };
        let compiled = compile_program(&program).unwrap();
        let mut machine = Machine::new(compiled, MachineConfig::with_nodes(servers).seed(4));
        register_align_node(&mut machine, ScoreParams::default(), 8);
        let guide = guide_tree(seqs, &ScoreParams::default());
        let tree_src = guide_tree_src(&guide, seqs);
        let goal_src = match motif {
            motifs_like::Which::Tr1 => format!("create({servers}, reduce({tree_src}, Value))"),
            motifs_like::Which::Tr2 => format!("create({servers}, tr2({tree_src}, Value))"),
        };
        let goal_ast = parse_term(&goal_src).unwrap();
        let mut vars = std::collections::BTreeMap::new();
        let goal = ast_to_term(&goal_ast, &mut machine, &mut vars);
        machine.start(goal);
        let report = machine.run().unwrap();
        let value = machine.store().resolve(&vars["Value"]);
        (term_to_profile(&value).unwrap(), report)
    }

    /// Small helper namespace so the test reads clearly.
    mod motifs_like {
        pub enum Which {
            Tr1,
            Tr2,
        }
        pub fn tr1_program() -> strand_parse::Program {
            motifs::tree_reduce_1()
                .apply_src(super::ALIGN_EVAL)
                .expect("TR1 applies to align eval")
        }
        pub fn tr2_program() -> strand_parse::Program {
            motifs::tree_reduce_2()
                .apply_src(super::ALIGN_EVAL)
                .expect("TR2 applies to align eval")
        }
    }

    #[test]
    fn full_msa_runs_inside_the_simulator() {
        let fam = generate_family(&FamilyParams {
            leaves: 8,
            ancestral_len: 60,
            seed: 21,
            ..Default::default()
        });
        let reference = crate::msa::align_family_seq(&fam.sequences, &ScoreParams::default());
        let (p1, r1) = run_sim_msa(motifs_like::Which::Tr1, &fam.sequences, 4);
        assert_eq!(p1, reference, "TR1 simulator alignment matches native");
        assert!(matches!(r1.status, RunStatus::Quiescent { .. }));
        let (p2, r2) = run_sim_msa(motifs_like::Which::Tr2, &fam.sequences, 4);
        assert_eq!(p2, reference, "TR2 simulator alignment matches native");
        assert_eq!(r2.status, RunStatus::Completed);
        // The native cost model shows up in the virtual clock.
        assert!(r1.metrics.makespan > 100);
    }
}
