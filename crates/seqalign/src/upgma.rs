//! UPGMA guide-tree construction.
//!
//! The paper's application *"first generates a binary 'phylogenetic tree',
//! in which subtrees represent clusters of more closely related
//! organisms"*. UPGMA (unweighted pair group method with arithmetic mean)
//! is the classic way to build that guide tree from a pairwise distance
//! matrix.

use crate::align::{pair_distance, ScoreParams};
use crate::rna::Phylo;

/// Build the full pairwise distance matrix (upper triangle mirrored).
pub fn distance_matrix(seqs: &[Vec<u8>], p: &ScoreParams) -> Vec<Vec<f64>> {
    let n = seqs.len();
    let mut d = vec![vec![0.0; n]; n];
    for i in 0..n {
        for j in (i + 1)..n {
            let dist = pair_distance(&seqs[i], &seqs[j], p);
            d[i][j] = dist;
            d[j][i] = dist;
        }
    }
    d
}

/// UPGMA clustering over a distance matrix; returns a binary guide tree
/// whose leaves are sequence indices.
// Paired index loops over the triangular matrix are the clearest form here.
#[allow(clippy::needless_range_loop)]
pub fn upgma(dist: &[Vec<f64>]) -> Phylo {
    let n = dist.len();
    assert!(n >= 1, "need at least one sequence");
    // Active clusters: (tree, member count); matrix d holds inter-cluster
    // average distances, rebuilt by index juggling.
    let mut clusters: Vec<(Phylo, usize)> = (0..n).map(|i| (Phylo::Leaf(i), 1)).collect();
    let mut d: Vec<Vec<f64>> = dist.to_vec();
    while clusters.len() > 1 {
        // Find the closest pair (i < j), deterministic tie-break by index.
        let (mut bi, mut bj, mut best) = (0, 1, f64::INFINITY);
        for i in 0..clusters.len() {
            for j in (i + 1)..clusters.len() {
                if d[i][j] < best {
                    best = d[i][j];
                    bi = i;
                    bj = j;
                }
            }
        }
        // Merge j into i (UPGMA average weighted by member counts).
        let (tj, sj) = clusters.remove(bj);
        let (ti, si) = clusters.remove(bi);
        let merged = Phylo::Node(Box::new(ti), Box::new(tj));
        let new_size = si + sj;
        // Distances from the merged cluster to every remaining cluster.
        let mut new_row = Vec::with_capacity(clusters.len());
        for (k, _) in d.iter().enumerate() {
            if k == bi || k == bj {
                continue;
            }
            let avg = (d[bi][k] * si as f64 + d[bj][k] * sj as f64) / new_size as f64;
            new_row.push(avg);
        }
        // Rebuild the matrix without rows/cols bi, bj, then append the row.
        let mut nd: Vec<Vec<f64>> = Vec::with_capacity(clusters.len() + 1);
        for (r, row) in d.iter().enumerate() {
            if r == bi || r == bj {
                continue;
            }
            let mut new = Vec::with_capacity(clusters.len() + 1);
            for (c, v) in row.iter().enumerate() {
                if c == bi || c == bj {
                    continue;
                }
                new.push(*v);
            }
            nd.push(new);
        }
        for (r, row) in nd.iter_mut().enumerate() {
            row.push(new_row[r]);
        }
        let mut last = new_row;
        last.push(0.0);
        nd.push(last);
        d = nd;
        clusters.push((merged, new_size));
    }
    clusters.pop().expect("one cluster remains").0
}

/// Convenience: distance matrix + UPGMA in one call.
pub fn guide_tree(seqs: &[Vec<u8>], p: &ScoreParams) -> Phylo {
    upgma(&distance_matrix(seqs, p))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rna::{generate_family, FamilyParams};

    #[test]
    fn single_sequence_is_a_leaf() {
        assert_eq!(upgma(&[vec![0.0]]), Phylo::Leaf(0));
    }

    #[test]
    fn two_sequences_join() {
        let d = vec![vec![0.0, 0.3], vec![0.3, 0.0]];
        let t = upgma(&d);
        assert_eq!(
            t,
            Phylo::Node(Box::new(Phylo::Leaf(0)), Box::new(Phylo::Leaf(1)))
        );
    }

    #[test]
    fn closest_pair_joins_first() {
        // 0 and 2 are closest; they must share the deepest node.
        let d = vec![
            vec![0.0, 0.9, 0.1],
            vec![0.9, 0.0, 0.8],
            vec![0.1, 0.8, 0.0],
        ];
        let t = upgma(&d);
        match t {
            Phylo::Node(l, r) => {
                let pair = [l.leaf_ids(), r.leaf_ids()];
                assert!(
                    pair.contains(&vec![0, 2]) || pair.contains(&vec![2, 0]),
                    "{pair:?}"
                );
            }
            other => panic!("expected node, got {other:?}"),
        }
    }

    #[test]
    fn all_leaves_present_exactly_once() {
        let fam = generate_family(&FamilyParams {
            leaves: 10,
            ancestral_len: 60,
            ..Default::default()
        });
        let t = guide_tree(&fam.sequences, &ScoreParams::default());
        let mut ids = t.leaf_ids();
        ids.sort_unstable();
        assert_eq!(ids, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn guide_tree_reflects_relatedness() {
        // Two clearly separated clusters: {0,1} mutated from one ancestor,
        // {2,3} from an unrelated one. The root must split them.
        let a = b"ACGUACGUACGUACGUACGUACGUACGUACGU".to_vec();
        let mut a2 = a.clone();
        a2[3] = b'C';
        let b = b"GGGGCCCCAAAAUUUUGGGGCCCCAAAAUUUU".to_vec();
        let mut b2 = b.clone();
        b2[7] = b'A';
        let t = guide_tree(&[a, a2, b, b2], &ScoreParams::default());
        match t {
            Phylo::Node(l, r) => {
                let mut left = l.leaf_ids();
                let mut right = r.leaf_ids();
                left.sort_unstable();
                right.sort_unstable();
                let groups = [left, right];
                assert!(
                    groups.contains(&vec![0, 1]) && groups.contains(&vec![2, 3]),
                    "{groups:?}"
                );
            }
            other => panic!("expected node, got {other:?}"),
        }
    }

    #[test]
    #[allow(clippy::needless_range_loop)]
    fn distance_matrix_is_symmetric_zero_diagonal() {
        let fam = generate_family(&FamilyParams {
            leaves: 5,
            ancestral_len: 40,
            ..Default::default()
        });
        let d = distance_matrix(&fam.sequences, &ScoreParams::default());
        for i in 0..5 {
            assert_eq!(d[i][i], 0.0);
            for j in 0..5 {
                assert!((d[i][j] - d[j][i]).abs() < 1e-12);
            }
        }
    }
}
