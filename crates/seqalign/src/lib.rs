//! # seqalign
//!
//! The paper's motivating application (§3), built to completion: *"the
//! generation of alignments of multiple sequences of RNA from different but
//! related organisms"*. The authors' node evaluation function was *"still
//! being implemented"* in 1990; this crate provides a working equivalent:
//!
//! * [`rna`] — synthetic families of related RNA sequences, evolved along a
//!   random phylogeny (the substitution for the 1990 lab data);
//! * [`align`] — profiles and Needleman–Wunsch profile–profile alignment:
//!   the `align-node` operator, quadratic cost, large intermediates;
//! * [`upgma`] — pairwise distances and UPGMA guide-tree construction (the
//!   "philogenetic tree" of §3);
//! * [`msa`] — progressive multiple alignment by guide-tree reduction,
//!   sequential and under every tree-reduction strategy of
//!   [`skeletons::tree`].
//!
//! Experiment E8 (EXPERIMENTS.md) compares Tree-Reduce-1/Tree-Reduce-2/
//! static labelings on this workload.

pub mod affine;
pub mod align;
pub mod fasta;
pub mod foreign;
pub mod msa;
pub mod rna;
pub mod upgma;

pub use affine::{align_profiles_affine, AffineParams};
pub use align::{align_profiles, pair_distance, Alignment, Profile, ScoreParams};
pub use fasta::{parse_fasta, render_alignment, to_fasta};
pub use foreign::{
    align_lib, guide_tree_src, profile_to_term, register_align_node, term_to_profile, ALIGN_EVAL,
};
pub use msa::{align_family_parallel, align_family_seq, alignment_tree};
pub use rna::{generate_family, random_sequence, Family, FamilyParams, Phylo};
pub use upgma::{distance_matrix, guide_tree, upgma};
