//! Synthetic families of related RNA sequences.
//!
//! The paper's application aligns *"multiple sequences of RNA from
//! different but related organisms"*. Lacking Ross Overbeek's 1990 data, we
//! generate the statistical equivalent: an ancestral random sequence
//! evolves along a random binary phylogeny with point substitutions and
//! short indels; the leaves are the "organisms". Relatedness decays with
//! tree distance, exactly the structure a guide tree and progressive
//! alignment exploit.

use strand_core::SplitMix64;

/// RNA alphabet.
pub const BASES: [u8; 4] = [b'A', b'C', b'G', b'U'];

/// Index of a base in [`BASES`], if it is one.
pub fn base_index(b: u8) -> Option<usize> {
    BASES.iter().position(|x| *x == b)
}

/// Parameters for family generation.
#[derive(Clone, Debug)]
pub struct FamilyParams {
    /// Number of leaf sequences (organisms).
    pub leaves: usize,
    /// Length of the ancestral sequence.
    pub ancestral_len: usize,
    /// Substitution probability per site per tree edge.
    pub substitution: f64,
    /// Indel probability per site per tree edge (half insertions, half
    /// deletions, lengths 1–3).
    pub indel: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for FamilyParams {
    fn default() -> Self {
        FamilyParams {
            leaves: 8,
            ancestral_len: 120,
            substitution: 0.03,
            indel: 0.005,
            seed: 42,
        }
    }
}

/// The true evolutionary tree used to generate a family (for reference and
/// for guide-tree quality checks).
#[derive(Clone, Debug, PartialEq)]
pub enum Phylo {
    Leaf(usize),
    Node(Box<Phylo>, Box<Phylo>),
}

impl Phylo {
    /// Leaf indices in order.
    pub fn leaf_ids(&self) -> Vec<usize> {
        match self {
            Phylo::Leaf(i) => vec![*i],
            Phylo::Node(l, r) => {
                let mut v = l.leaf_ids();
                v.extend(r.leaf_ids());
                v
            }
        }
    }
}

/// A generated family: leaf sequences plus the true phylogeny.
#[derive(Clone, Debug)]
pub struct Family {
    pub sequences: Vec<Vec<u8>>,
    pub tree: Phylo,
}

/// Generate a random sequence of the given length.
pub fn random_sequence(len: usize, rng: &mut SplitMix64) -> Vec<u8> {
    (0..len)
        .map(|_| BASES[rng.next_below(4) as usize])
        .collect()
}

fn mutate(seq: &[u8], params: &FamilyParams, rng: &mut SplitMix64) -> Vec<u8> {
    let mut out = Vec::with_capacity(seq.len() + 4);
    let mut i = 0;
    while i < seq.len() {
        let roll = rng.next_f64();
        if roll < params.indel / 2.0 {
            // Deletion of 1–3 sites.
            i += 1 + rng.next_below(3) as usize;
            continue;
        } else if roll < params.indel {
            // Insertion of 1–3 random bases before this site.
            for _ in 0..=rng.next_below(3) {
                out.push(BASES[rng.next_below(4) as usize]);
            }
        }
        if rng.next_f64() < params.substitution {
            // Substitute with a different base.
            let cur = base_index(seq[i]).unwrap_or(0);
            let next = (cur + 1 + rng.next_below(3) as usize) % 4;
            out.push(BASES[next]);
        } else {
            out.push(seq[i]);
        }
        i += 1;
    }
    if out.is_empty() {
        out.push(BASES[rng.next_below(4) as usize]);
    }
    out
}

/// Generate a family of related sequences.
pub fn generate_family(params: &FamilyParams) -> Family {
    assert!(params.leaves >= 1);
    let mut rng = SplitMix64::new(params.seed);
    let ancestor = random_sequence(params.ancestral_len, &mut rng);
    let mut next_leaf = 0usize;
    let mut sequences = Vec::with_capacity(params.leaves);
    let tree = evolve(
        ancestor,
        params.leaves,
        params,
        &mut rng,
        &mut next_leaf,
        &mut sequences,
    );
    Family { sequences, tree }
}

fn evolve(
    seq: Vec<u8>,
    leaves: usize,
    params: &FamilyParams,
    rng: &mut SplitMix64,
    next_leaf: &mut usize,
    out: &mut Vec<Vec<u8>>,
) -> Phylo {
    if leaves == 1 {
        let id = *next_leaf;
        *next_leaf += 1;
        out.push(seq);
        return Phylo::Leaf(id);
    }
    let left_leaves = 1 + rng.next_below((leaves - 1) as u64) as usize;
    let left_seq = mutate(&seq, params, rng);
    let right_seq = mutate(&seq, params, rng);
    let l = evolve(left_seq, left_leaves, params, rng, next_leaf, out);
    let r = evolve(right_seq, leaves - left_leaves, params, rng, next_leaf, out);
    Phylo::Node(Box::new(l), Box::new(r))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn family_has_requested_size() {
        let fam = generate_family(&FamilyParams::default());
        assert_eq!(fam.sequences.len(), 8);
        assert_eq!(fam.tree.leaf_ids(), (0..8).collect::<Vec<_>>());
        for s in &fam.sequences {
            assert!(!s.is_empty());
            assert!(s.iter().all(|b| base_index(*b).is_some()));
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let a = generate_family(&FamilyParams::default());
        let b = generate_family(&FamilyParams::default());
        assert_eq!(a.sequences, b.sequences);
        assert_eq!(a.tree, b.tree);
        let c = generate_family(&FamilyParams {
            seed: 43,
            ..Default::default()
        });
        assert_ne!(a.sequences, c.sequences);
    }

    #[test]
    fn related_sequences_are_similar_lengths() {
        let fam = generate_family(&FamilyParams {
            leaves: 16,
            ancestral_len: 200,
            ..Default::default()
        });
        for s in &fam.sequences {
            assert!((150..=260).contains(&s.len()), "length {}", s.len());
        }
    }

    #[test]
    fn mutation_changes_but_preserves_most() {
        let mut rng = SplitMix64::new(1);
        let params = FamilyParams::default();
        let seq = random_sequence(200, &mut rng);
        let mutated = mutate(&seq, &params, &mut rng);
        // Hamming-ish check over the common prefix: most sites identical.
        let same = seq
            .iter()
            .zip(mutated.iter())
            .filter(|(a, b)| a == b)
            .count();
        assert!(same > 120, "only {same} preserved");
    }

    #[test]
    fn single_leaf_family() {
        let fam = generate_family(&FamilyParams {
            leaves: 1,
            ..Default::default()
        });
        assert_eq!(fam.sequences.len(), 1);
        assert_eq!(fam.tree, Phylo::Leaf(0));
    }
}
