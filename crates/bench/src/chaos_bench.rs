//! The `motif-bench chaos-json` mode: wall-clock fault-injection tracking.
//!
//! The A-series fault sweep measures *virtual-time* faults on the
//! deterministic simulator; this series measures the same supervised ring
//! under the parallel backend's *wall-clock* chaos layer (`ChaosPlan`):
//! real worker threads, a shard killed mid-run, spawn batches dropped and
//! duplicated at the outbox. Two questions per scenario:
//!
//! * **delivery rate** — distinct tokens printed over tokens expected.
//!   The Supervise contract promises at-least-once delivery, so the rate
//!   must hold at 1.0 under every fault mix; duplicates do not inflate it.
//! * **recovery overhead** — total reductions over the clean run's
//!   reductions at the same thread count. Recovery is retry/backoff work
//!   (failed bootstraps, monitor restarts, replayed wires), so the reduction
//!   ratio is the wall-clock-noise-free proxy for recovery latency.
//!
//! Scenarios: `clean` (calibration), `drop-dup` (10% batch drop + 5%
//! duplication), `kill` (one of two-plus worker shards killed a third of
//! the way in), and `kill-drop-dup` (all three at once — the chaos
//! conformance mix). `render_chaos_json` records the rows
//! (`out/BENCH_chaos.json` via `motif-bench chaos-json`); the committed
//! `BENCH_chaos.json` snapshot at the repo root is a full recording.

use motifs::supervised_random;
use std::time::Instant;
use strand_machine::{run_parsed_goal, ChaosPlan, MachineConfig, RunReport};
use strand_parse::Program;

/// One measured row: the supervised ring under one fault mix.
#[derive(Clone, Debug, PartialEq)]
pub struct ChaosPoint {
    pub scenario: String,
    pub threads: u32,
    pub wall_ns: u64,
    pub reductions: u64,
    /// Reductions over the clean run's reductions at this thread count
    /// (1.0 for the clean row itself) — the recovery-latency proxy.
    pub overhead: f64,
    /// Distinct tokens printed; `expected` is the ring size.
    pub delivered: u64,
    pub expected: u64,
    pub restarts: u64,
    pub shards_killed: u64,
    pub batches_dropped: u64,
    pub batches_duplicated: u64,
}

impl ChaosPoint {
    pub fn delivery_rate(&self) -> f64 {
        self.delivered as f64 / self.expected as f64
    }
}

const RING: u32 = 8;

fn ring_workload() -> (Program, String) {
    let program = supervised_random()
        .apply_src(crate::RING_APP)
        .expect("Supervise o Server o Rand applies");
    (program, format!("create({RING}, token(1))"))
}

fn base_cfg() -> MachineConfig {
    let mut cfg = MachineConfig::with_nodes(RING).seed(47);
    cfg.fail_fast = false;
    // A recovery regression diverges; budget it into `Truncated` (which
    // the snapshot gate then rejects as a delivery-rate miss).
    cfg.max_reductions = 2_000_000;
    cfg
}

fn distinct_tokens(report: &RunReport) -> u64 {
    let mut seen: Vec<&str> = report.output.iter().map(String::as_str).collect();
    seen.sort_unstable();
    seen.dedup();
    seen.len() as u64
}

fn run_once(program: &Program, goal: &str, cfg: MachineConfig) -> (u64, RunReport) {
    let t0 = Instant::now();
    let r = run_parsed_goal(program, goal, cfg).expect("chaos workload runs");
    (t0.elapsed().as_nanos() as u64, r.report)
}

/// Run the chaos series. `quick` takes one sample per cell (CI smoke);
/// the full run keeps the fastest of three, which still records the
/// *sample's* fault counters so rows stay internally consistent.
pub fn b3_chaos(quick: bool) -> Vec<ChaosPoint> {
    strand_parallel::install();
    let (program, goal) = ring_workload();
    let samples = if quick { 1 } else { 3 };
    let mut points = Vec::new();
    for threads in [2u32, 4] {
        let clean_cfg = base_cfg().parallel(threads);
        let (_, calib) = run_once(&program, &goal, clean_cfg.clone());
        let clean_red = calib.metrics.total_reductions.max(1);
        let kill_at = (clean_red / 3).max(1);
        let cells: Vec<(&str, Option<ChaosPlan>)> = vec![
            ("clean", None),
            (
                "drop-dup",
                Some(ChaosPlan::default().drop_prob(0.10).dup_prob(0.05).seed(61)),
            ),
            ("kill", Some(ChaosPlan::default().kill(1, kill_at).seed(61))),
            (
                "kill-drop-dup",
                Some(
                    ChaosPlan::default()
                        .kill(1, kill_at)
                        .drop_prob(0.10)
                        .dup_prob(0.05)
                        .seed(61),
                ),
            ),
        ];
        for (name, plan) in cells {
            let cfg = match &plan {
                Some(p) => clean_cfg.clone().chaos(p.clone()),
                None => clean_cfg.clone(),
            };
            let mut best: Option<(u64, RunReport)> = None;
            for _ in 0..samples {
                let (ns, report) = run_once(&program, &goal, cfg.clone());
                if best.as_ref().is_none_or(|(b, _)| ns < *b) {
                    best = Some((ns, report));
                }
            }
            let (wall_ns, report) = best.expect("at least one sample");
            let m = &report.metrics;
            points.push(ChaosPoint {
                scenario: name.to_string(),
                threads,
                wall_ns,
                reductions: m.total_reductions,
                overhead: m.total_reductions as f64 / clean_red as f64,
                delivered: distinct_tokens(&report),
                expected: RING as u64,
                restarts: m.supervisor_restarts,
                shards_killed: m.shards_killed,
                batches_dropped: m.batches_dropped,
                batches_duplicated: m.batches_duplicated,
            });
        }
    }
    points
}

/// Serialize chaos points as JSON (no external dependencies).
pub fn render_chaos_json(points: &[ChaosPoint]) -> String {
    let host = std::thread::available_parallelism().map_or(1, |n| n.get());
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str("  \"schema\": \"motif-bench chaos-json v1\",\n");
    out.push_str(&format!("  \"host_parallelism\": {host},\n"));
    out.push_str("  \"points\": [\n");
    for (i, p) in points.iter().enumerate() {
        let comma = if i + 1 == points.len() { "" } else { "," };
        out.push_str(&format!(
            "    {{\"scenario\": \"{}\", \"threads\": {}, \"wall_ns\": {}, \
             \"reductions\": {}, \"overhead\": {:.4}, \"delivered\": {}, \
             \"expected\": {}, \"restarts\": {}, \"shards_killed\": {}, \
             \"batches_dropped\": {}, \"batches_duplicated\": {}}}{comma}\n",
            p.scenario,
            p.threads,
            p.wall_ns,
            p.reductions,
            p.overhead,
            p.delivered,
            p.expected,
            p.restarts,
            p.shards_killed,
            p.batches_dropped,
            p.batches_duplicated
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

/// Strict parser for [`render_chaos_json`] output — the same schema-drift
/// tripwire as the other series parsers.
pub fn parse_chaos_json(json: &str) -> Result<Vec<ChaosPoint>, String> {
    fn raw_field<'a>(s: &'a str, key: &str) -> Result<&'a str, String> {
        let pat = format!("\"{key}\": ");
        let start = s
            .find(&pat)
            .ok_or_else(|| format!("missing field {key:?}"))?
            + pat.len();
        let rest = &s[start..];
        let end = rest
            .find([',', '}', '\n'])
            .ok_or_else(|| format!("unterminated field {key:?}"))?;
        Ok(rest[..end].trim())
    }
    fn string_field(s: &str, key: &str) -> Result<String, String> {
        let raw = raw_field(s, key)?;
        raw.strip_prefix('"')
            .and_then(|r| r.strip_suffix('"'))
            .map(str::to_string)
            .ok_or_else(|| format!("field {key:?} is not a string: {raw}"))
    }
    fn num_field<T: std::str::FromStr>(s: &str, key: &str) -> Result<T, String> {
        raw_field(s, key)?
            .parse()
            .map_err(|_| format!("field {key:?} is not a number"))
    }

    if !json.contains("\"schema\": \"motif-bench chaos-json v1\"") {
        return Err("missing or unknown schema".to_string());
    }
    let mut points = Vec::new();
    for line in json.lines().map(str::trim) {
        if !line.starts_with("{\"scenario\"") {
            continue;
        }
        points.push(ChaosPoint {
            scenario: string_field(line, "scenario")?,
            threads: num_field(line, "threads")?,
            wall_ns: num_field(line, "wall_ns")?,
            reductions: num_field(line, "reductions")?,
            overhead: num_field(line, "overhead")?,
            delivered: num_field(line, "delivered")?,
            expected: num_field(line, "expected")?,
            restarts: num_field(line, "restarts")?,
            shards_killed: num_field(line, "shards_killed")?,
            batches_dropped: num_field(line, "batches_dropped")?,
            batches_duplicated: num_field(line, "batches_duplicated")?,
        });
    }
    if points.is_empty() {
        return Err("no points parsed".to_string());
    }
    Ok(points)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Vec<ChaosPoint> {
        vec![
            ChaosPoint {
                scenario: "clean".to_string(),
                threads: 2,
                wall_ns: 1_234_567,
                reductions: 900,
                overhead: 1.0,
                delivered: 8,
                expected: 8,
                restarts: 0,
                shards_killed: 0,
                batches_dropped: 0,
                batches_duplicated: 0,
            },
            ChaosPoint {
                scenario: "kill-drop-dup".to_string(),
                threads: 2,
                wall_ns: 7_654_321,
                reductions: 4200,
                overhead: 4.6667,
                delivered: 8,
                expected: 8,
                restarts: 4,
                shards_killed: 1,
                batches_dropped: 9,
                batches_duplicated: 2,
            },
        ]
    }

    #[test]
    fn json_schema_round_trips() {
        let points = sample();
        let json = render_chaos_json(&points);
        let parsed = parse_chaos_json(&json).expect("round-trip parses");
        assert_eq!(parsed, points);
        assert_eq!(render_chaos_json(&parsed), json);
    }

    #[test]
    fn parser_rejects_schema_drift() {
        let json = render_chaos_json(&sample());
        assert!(parse_chaos_json(&json.replace("\"restarts\"", "\"boots\"")).is_err());
        assert!(parse_chaos_json("{}").is_err());
    }

    #[test]
    fn committed_snapshot_parses_and_meets_targets() {
        // The repo-root BENCH_chaos.json is a recorded artifact; if it
        // exists it must parse and must still show the robustness targets:
        // full delivery under every fault mix, the kill actually landing,
        // and recovery overhead within an order of magnitude of clean.
        let Ok(json) = std::fs::read_to_string(concat!(
            env!("CARGO_MANIFEST_DIR"),
            "/../../BENCH_chaos.json"
        )) else {
            return;
        };
        let points = parse_chaos_json(&json).expect("committed snapshot parses");
        for scenario in ["clean", "drop-dup", "kill", "kill-drop-dup"] {
            assert!(
                points.iter().any(|p| p.scenario == scenario),
                "snapshot missing scenario {scenario}"
            );
        }
        for p in &points {
            assert!(
                (p.delivery_rate() - 1.0).abs() < f64::EPSILON,
                "{} at {} threads delivered {}/{} tokens",
                p.scenario,
                p.threads,
                p.delivered,
                p.expected
            );
            if p.scenario.contains("kill") {
                assert_eq!(
                    p.shards_killed, 1,
                    "{} at {} threads: the kill must land",
                    p.scenario, p.threads
                );
            }
            assert!(
                p.overhead < 50.0,
                "{} at {} threads: recovery overhead blew up to {:.1}x",
                p.scenario,
                p.threads,
                p.overhead
            );
        }
    }
}
