//! B-series: wall-clock speedup of the multi-threaded backend.
//!
//! The other experiments measure *virtual* time on the deterministic
//! simulator; this one measures *real* time. Each workload is one motif
//! program run first on the simulator (the baseline) and then on the
//! `strand-parallel` backend at 1, 2, 4 and 8 worker threads; `speedup` is
//! simulator wall-clock over parallel wall-clock.
//!
//! Workloads:
//!
//! * `ring` — a token ring of timed hops. Inherently sequential: the
//!   honesty check. Any backend claiming a speedup here is broken.
//! * `tree-reduce` — Tree-Reduce-1 whose node evaluation *spins* (CPU
//!   burn). Scales with physical cores; on a single-core host it stays
//!   near 1×.
//! * `tree-reduce-io` — the same tree whose node evaluation *sleeps*
//!   (I/O-bound node work, e.g. the paper's telephone-network provisioning
//!   runs blocked on external calls). Sleeps overlap across worker threads
//!   even on one core, so this shows genuine wall-clock speedup anywhere.
//! * `seqalign` — progressive RNA alignment with the native `align_node`
//!   as a pure foreign procedure, computed outside the machine lock.
//!
//! `write_parallel_json` records the rows machine-readably
//! (`out/BENCH_parallel.json` via `motif-bench parallel-json`).

use crate::table::Table;
use motifs::{random_tree_src, tree_reduce_1};
use std::time::{Duration, Instant};
use strand_core::{StrandResult, Term};
use strand_machine::{run_parsed_goal_with_lib, ForeignLib, GoalResult, MachineConfig};
use strand_parse::{parse_program, Program};

/// One measured row: a workload on one backend configuration.
#[derive(Clone, Debug, PartialEq)]
pub struct ParallelPoint {
    pub workload: String,
    /// `"simulator"` or `"parallel"`.
    pub backend: String,
    /// Worker threads (1 for the simulator).
    pub threads: u32,
    pub wall_ns: u64,
    /// Simulator wall-clock over this row's wall-clock (1.0 for the
    /// simulator row itself).
    pub speedup: f64,
}

/// Timed-work foreign library: `nspin(Ns, Done)` burns CPU for `Ns`
/// nanoseconds, `nsleep(Ns, Done)` blocks for `Ns` nanoseconds. Both bind
/// `Done := done` and charge one virtual tick — they model node work whose
/// cost is real time, not virtual time.
pub fn timed_work_lib() -> ForeignLib {
    fn ns_arg(args: &[Term]) -> StrandResult<u64> {
        match &args[0] {
            Term::Int(n) if *n >= 0 => Ok(*n as u64),
            other => Err(strand_core::StrandError::Other(format!(
                "timed work wants a non-negative integer nanosecond count, got {other}"
            ))),
        }
    }
    let mut lib = ForeignLib::new();
    lib.register("nspin", 2, |args| {
        let ns = ns_arg(args)?;
        let t0 = Instant::now();
        while (t0.elapsed().as_nanos() as u64) < ns {
            std::hint::spin_loop();
        }
        Ok((Term::atom("done"), 1))
    });
    lib.register("nsleep", 2, |args| {
        let ns = ns_arg(args)?;
        std::thread::sleep(Duration::from_nanos(ns));
        Ok((Term::atom("done"), 1))
    });
    lib
}

/// A token ring: each hop sleeps, then forwards to the next node. The
/// dependency chain is total, so no backend can go faster than the sum of
/// the hops.
fn ring_workload(hops: u32, hop_ns: u64) -> (Program, String) {
    // 8 = the machine's node count; `nodes/1` is a server-motif operation
    // and this program deliberately stays raw (no transform overhead).
    let src = format!(
        r#"
        token(0, D) :- D := done.
        token(K, D) :- K > 0 | nsleep({hop_ns}, W), hop(W, K, D).
        hop(done, K, D) :- K1 := K - 1, M := K1 mod 8 + 1, token(K1, D)@M.
        "#
    );
    let program = parse_program(&src).expect("ring program parses");
    (program, format!("token({hops}, D)"))
}

/// Tree-Reduce-1 over a random tree whose node evaluation does `work_ns`
/// of timed work (`nspin` or `nsleep`) before combining the operands.
fn tree_workload(leaves: u32, work_ns: u64, timed_proc: &str) -> (Program, String) {
    let eval = format!(
        r#"
        eval(_, L, R, Value) :- data(L), data(R) | {timed_proc}({work_ns}, W), emit(W, L, R, Value).
        emit(done, L, R, Value) :- Value := L + R.
        "#
    );
    let program = tree_reduce_1()
        .apply_src(&eval)
        .expect("TR1 applies to timed eval");
    let tree = random_tree_src(leaves, 9);
    (program, format!("create(8, reduce({tree}, Value))"))
}

/// Progressive RNA alignment on Tree-Reduce-1 with the native aligner as a
/// pure foreign procedure.
fn seqalign_workload(leaves: usize) -> (Program, String, ForeignLib) {
    use seqalign::{align_lib, generate_family, guide_tree, guide_tree_src, FamilyParams};
    let params = seqalign::ScoreParams::default();
    let fam = generate_family(&FamilyParams {
        leaves,
        ancestral_len: 80,
        seed: 21,
        ..Default::default()
    });
    let guide = guide_tree(&fam.sequences, &params);
    let tree_src = guide_tree_src(&guide, &fam.sequences);
    let program = tree_reduce_1()
        .apply_src(seqalign::ALIGN_EVAL)
        .expect("TR1 applies to align eval");
    (
        program,
        format!("create(8, reduce({tree_src}, Value))"),
        align_lib(params, 8),
    )
}

fn timed_run(
    program: &Program,
    goal: &str,
    cfg: MachineConfig,
    lib: &ForeignLib,
) -> (GoalResult, u64) {
    let t0 = Instant::now();
    let r = run_parsed_goal_with_lib(program, goal, cfg, lib).expect("workload runs");
    (r, t0.elapsed().as_nanos() as u64)
}

/// Run the B-series. `quick` shrinks the workloads and stops at 2 threads —
/// the CI smoke configuration; the full run sweeps 1/2/4/8 threads.
pub fn b1_parallel(quick: bool) -> Vec<ParallelPoint> {
    strand_parallel::install();
    let thread_counts: &[u32] = if quick { &[1, 2] } else { &[1, 2, 4, 8] };
    let (hops, hop_ns) = if quick {
        (16, 500_000)
    } else {
        (48, 1_000_000)
    };
    let (leaves, work_ns) = if quick {
        (16, 1_000_000)
    } else {
        (64, 3_000_000)
    };
    let align_leaves = if quick { 8 } else { 16 };

    let timed = timed_work_lib();
    let (align_prog, align_goal, align) = seqalign_workload(align_leaves);
    let workloads: Vec<(&'static str, Program, String, &ForeignLib)> = vec![
        {
            let (p, g) = ring_workload(hops, hop_ns);
            ("ring", p, g, &timed)
        },
        {
            let (p, g) = tree_workload(leaves, work_ns, "nspin");
            ("tree-reduce", p, g, &timed)
        },
        {
            let (p, g) = tree_workload(leaves, work_ns, "nsleep");
            ("tree-reduce-io", p, g, &timed)
        },
        ("seqalign", align_prog, align_goal, &align),
    ];

    let mut points = Vec::new();
    for (name, program, goal, lib) in &workloads {
        let cfg = MachineConfig::with_nodes(8).seed(7);
        let (_base, base_ns) = timed_run(program, goal, cfg.clone(), lib);
        points.push(ParallelPoint {
            workload: name.to_string(),
            backend: "simulator".to_string(),
            threads: 1,
            wall_ns: base_ns,
            speedup: 1.0,
        });
        for &threads in thread_counts {
            let (_r, wall_ns) = timed_run(program, goal, cfg.clone().parallel(threads), lib);
            points.push(ParallelPoint {
                workload: name.to_string(),
                backend: "parallel".to_string(),
                threads,
                wall_ns,
                speedup: base_ns as f64 / wall_ns.max(1) as f64,
            });
        }
    }
    points
}

/// Render the B-series as an experiment table.
pub fn b1_parallel_table(quick: bool) -> Table {
    let points = b1_parallel(quick);
    let mut t = Table::new(
        "B1: wall-clock speedup, multi-threaded backend vs simulator",
        &["workload", "backend", "threads", "wall ms", "speedup"],
    );
    for p in &points {
        t.row(vec![
            p.workload.to_string(),
            p.backend.to_string(),
            p.threads.to_string(),
            format!("{:.2}", p.wall_ns as f64 / 1e6),
            format!("{:.2}x", p.speedup),
        ]);
    }
    t.note("speedup = simulator wall-clock / this row's wall-clock.");
    t.note("ring is inherently sequential (honesty check); tree-reduce (spin)");
    t.note("needs physical cores; tree-reduce-io (sleep) overlaps on any host.");
    t
}

/// Serialize B-series points as JSON (no external dependencies).
pub fn render_parallel_json(points: &[ParallelPoint]) -> String {
    let host = std::thread::available_parallelism().map_or(1, |n| n.get());
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str(&format!("  \"host_parallelism\": {host},\n"));
    if host <= 1 {
        // Loud in-band annotation: a snapshot recorded on one core measures
        // scheduling overhead, not parallelism. Tooling that plots speedups
        // should treat such files as smoke output only.
        out.push_str(
            "  \"host_warning\": \"recorded on a single-core host; speedup \
             columns are not parallel speedups\",\n",
        );
    }
    out.push_str("  \"points\": [\n");
    for (i, p) in points.iter().enumerate() {
        let comma = if i + 1 == points.len() { "" } else { "," };
        out.push_str(&format!(
            "    {{\"workload\": \"{}\", \"backend\": \"{}\", \"threads\": {}, \
             \"wall_ns\": {}, \"speedup\": {:.4}}}{comma}\n",
            p.workload, p.backend, p.threads, p.wall_ns, p.speedup
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

/// Parse the JSON produced by [`render_parallel_json`] back into points —
/// the schema round-trip that plotting scripts and the committed
/// `BENCH_parallel_sharded.json` snapshot rely on. Hand-rolled (the
/// workspace vendors no JSON crate) and deliberately strict: a field the
/// renderer stops emitting, renames or reorders fails here, so schema
/// drift breaks the round-trip test instead of passing silently.
pub fn parse_parallel_json(json: &str) -> Result<(usize, Vec<ParallelPoint>), String> {
    fn raw_field<'a>(s: &'a str, key: &str) -> Result<&'a str, String> {
        let pat = format!("\"{key}\": ");
        let start = s
            .find(&pat)
            .ok_or_else(|| format!("missing field {key:?}"))?
            + pat.len();
        let rest = &s[start..];
        let end = rest
            .find([',', '}', '\n'])
            .ok_or_else(|| format!("unterminated field {key:?}"))?;
        Ok(rest[..end].trim())
    }
    fn string_field(s: &str, key: &str) -> Result<String, String> {
        let raw = raw_field(s, key)?;
        raw.strip_prefix('"')
            .and_then(|r| r.strip_suffix('"'))
            .map(str::to_string)
            .ok_or_else(|| format!("field {key:?} is not a string: {raw}"))
    }
    fn num_field<T: std::str::FromStr>(s: &str, key: &str) -> Result<T, String> {
        raw_field(s, key)?
            .parse()
            .map_err(|_| format!("field {key:?} is not a number"))
    }

    let host: usize = num_field(json, "host_parallelism")?;
    if !json.contains("\"points\": [") {
        return Err("missing points array".to_string());
    }
    let mut points = Vec::new();
    for line in json.lines().map(str::trim) {
        if !line.starts_with("{\"workload\"") {
            continue;
        }
        points.push(ParallelPoint {
            workload: string_field(line, "workload")?,
            backend: string_field(line, "backend")?,
            threads: num_field(line, "threads")?,
            wall_ns: num_field(line, "wall_ns")?,
            speedup: num_field(line, "speedup")?,
        });
    }
    if points.is_empty() {
        return Err("no points parsed".to_string());
    }
    Ok((host, points))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_points_cover_every_workload_and_backend() {
        let points = b1_parallel(true);
        for w in ["ring", "tree-reduce", "tree-reduce-io", "seqalign"] {
            assert!(points
                .iter()
                .any(|p| p.workload == w && p.backend == "simulator"));
            assert!(points
                .iter()
                .any(|p| p.workload == w && p.backend == "parallel" && p.threads == 2));
        }
    }

    #[test]
    fn json_is_well_formed_enough() {
        let points = b1_parallel(true);
        let json = render_parallel_json(&points);
        assert!(json.contains("\"workload\": \"tree-reduce-io\""));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
    }

    #[test]
    fn json_schema_round_trips() {
        // Synthetic points exercise the full value space without running
        // the workloads: render → parse must reproduce every field (speedup
        // to its serialized 4-decimal precision), and a second render of
        // the parsed points must be byte-identical.
        let points = vec![
            ParallelPoint {
                workload: "ring".to_string(),
                backend: "simulator".to_string(),
                threads: 1,
                wall_ns: 123_456_789,
                speedup: 1.0,
            },
            ParallelPoint {
                workload: "tree-reduce".to_string(),
                backend: "parallel".to_string(),
                threads: 8,
                wall_ns: 42,
                speedup: 2.5625,
            },
        ];
        let json = render_parallel_json(&points);
        let (host, parsed) = parse_parallel_json(&json).expect("round-trip parses");
        assert!(host >= 1);
        assert_eq!(parsed, points);
        assert_eq!(render_parallel_json(&parsed), json);
    }

    #[test]
    fn parser_rejects_schema_drift() {
        let points = b1_parallel(true);
        let json = render_parallel_json(&points);
        let renamed = json.replace("\"wall_ns\"", "\"wall_nanos\"");
        assert!(parse_parallel_json(&renamed).is_err());
        assert!(parse_parallel_json("{}").is_err());
    }
}
