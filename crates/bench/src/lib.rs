//! # bench
//!
//! The experiment harness: one function per experiment in EXPERIMENTS.md
//! (F1–F7 reproduce the paper's figures as executable artifacts; E1–E9
//! reproduce its evaluation claims as measured tables). The `motif-bench`
//! binary prints the tables; the criterion benches under `benches/` time
//! the hot paths.
//!
//! All simulator experiments are deterministic: fixed seeds, virtual time.
//! Real-thread experiments report *work distribution* (tasks per worker,
//! crossings, live bytes); on a single-core CI box wall-clock speedup is
//! meaningless, and EXPERIMENTS.md says so.

pub mod chaos_bench;
pub mod compiled_bench;
pub mod counting_alloc;
pub mod experiments;
pub mod machine_bench;
pub mod parallel_bench;
pub mod serve_bench;
pub mod table;

pub use chaos_bench::{b3_chaos, parse_chaos_json, render_chaos_json, ChaosPoint};
pub use compiled_bench::{b2_compiled, parse_compiled_json, render_compiled_json, CompiledPoint};
pub use experiments::*;
pub use parallel_bench::{b1_parallel, parse_parallel_json, render_parallel_json, ParallelPoint};
pub use serve_bench::{
    c1_serve, c1_serve_supervised, parse_serve_json, render_serve_json, ServePoint,
};
pub use table::Table;
