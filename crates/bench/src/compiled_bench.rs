//! The `motif-bench compiled-json` mode: compiled-tier speedup tracking.
//!
//! The B-series compares *backends* (simulator vs worker threads); this
//! series compares *rule-execution tiers* inside one backend. Each workload
//! runs twice in the same binary — `--exec interpreted` (the reference
//! interpreter, per-reduction `Pat` walking) and `--exec compiled` (the
//! direct-threaded tier of `strand-machine::exec`) — and `speedup` is
//! interpreted wall-clock over compiled wall-clock.
//!
//! Workloads:
//!
//! * `tree-reduce` — the tree-reduce skeleton over a 256-way opcode
//!   combine table on the deterministic simulator: the ≥5× target. The
//!   combine step dispatches on an integer opcode through a
//!   guard-discriminated decision table (`combine(Op,…) :- Op == k | …`),
//!   which is the rule shape the compiled tier's guard-derived
//!   first-argument index exists for: the interpreter must attempt half
//!   the table per node (a head match plus a guard instantiation and
//!   evaluation per clause), the compiled tier skips non-matching clauses
//!   on a pre-computed key compare. Deliberately rule-dispatch-bound —
//!   rule dispatch is the tier under test; `--stats` on any run shows
//!   where the time goes.
//! * `eval-chain` — a deep `step/3` recursion over a ten-clause
//!   constant-headed table interleaved 1:1 with `:=` builtins: a
//!   mixed-workload row, so the series also records what compiled buys
//!   when shared builtin costs dilute dispatch.
//! * `seqalign` — progressive RNA alignment on the parallel backend. The
//!   native aligner dominates, so the claim here is only "the compiled
//!   tier never loses" (≥1×).
//!
//! `render_compiled_json` records the rows (`out/BENCH_compiled.json` via
//! `motif-bench compiled-json`); the committed `BENCH_compiled.json`
//! snapshot at the repo root is a full recording.

use motifs::tree_reduce_1;
use std::time::Instant;
use strand_machine::{run_parsed_goal_with_lib, ExecMode, ForeignLib, MachineConfig};
use strand_parse::{parse_program, Program};

/// One measured row: a workload on one execution tier.
#[derive(Clone, Debug, PartialEq)]
pub struct CompiledPoint {
    pub workload: String,
    /// `"interpreted"` or `"compiled"`.
    pub exec: String,
    /// `"simulator"` or `"parallel"`.
    pub backend: String,
    pub wall_ns: u64,
    pub reductions: u64,
    /// Interpreted wall-clock over this row's wall-clock (1.0 for the
    /// interpreted row itself).
    pub speedup: f64,
}

/// Opcode table width of the tree-reduce row. Wide enough that rule
/// dispatch dominates the run; `--stats` confirms the interpreter attempts
/// ~`OPS/2` clauses per combine while the index skips them.
const TREE_OPS: usize = 256;

/// A random binary tree whose internal nodes carry integer opcodes — the
/// same shape as `motifs::random_tree_src`, with the atom operators
/// replaced by indices into the combine table.
fn opcode_tree_src(leaves: u32, seed: u64) -> String {
    let mut rng = strand_core::SplitMix64::new(seed);
    fn go(leaves: u32, rng: &mut strand_core::SplitMix64) -> String {
        if leaves <= 1 {
            format!("leaf({})", 1 + rng.next_below(9))
        } else {
            let left = 1 + rng.next_below((leaves - 1) as u64) as u32;
            let op = rng.next_below(TREE_OPS as u64);
            format!("tree({op}, {}, {})", go(left, rng), go(leaves - left, rng))
        }
    }
    go(leaves, &mut rng)
}

/// The tree-reduce skeleton combining through a guard-dispatched opcode
/// table: per internal node, one `reduce` dispatch, one `combine` dispatch
/// across the table, and one `:=`. Rule dispatch is the dominant cost by
/// construction — it is the tier under test.
fn tree_workload() -> (Program, String) {
    let mut src = String::from(
        "reduce(leaf(X), V) :- V := X.\n\
         reduce(tree(Op, L, R), V) :- reduce(L, VL), reduce(R, VR), combine(Op, VL, VR, V).\n",
    );
    for k in 0..TREE_OPS {
        src.push_str(&format!(
            "combine(Op, L, R, V) :- Op == {k} | V := L + R + {k}.\n"
        ));
    }
    let program = parse_program(&src).expect("opcode tree program parses");
    let tree = opcode_tree_src(512, 7);
    (program, format!("reduce({tree}, Value)"))
}

/// A raw recursion over a ten-clause dispatch table: each step picks one of
/// ten constant-headed clauses, so first-argument indexing skips ~90% of
/// head matches and the interpreter pays for all of them.
fn eval_chain_workload() -> (Program, String) {
    let mut src = String::from(
        "chain(0, Acc, V) :- V := Acc.\n\
         chain(N, Acc, V) :- N > 0 | K := N mod 10, step(K, Acc, A1), N1 := N - 1, chain(N1, A1, V).\n",
    );
    for k in 0..10 {
        src.push_str(&format!("step({k}, A, B) :- B := A + {k}.\n"));
    }
    let program = parse_program(&src).expect("chain program parses");
    (program, "chain(20000, 0, V)".to_string())
}

/// Progressive RNA alignment on Tree-Reduce-1 with the native aligner as a
/// pure foreign procedure (same shape as the B-series `seqalign` row).
fn seqalign_workload() -> (Program, String, ForeignLib) {
    use seqalign::{align_lib, generate_family, guide_tree, guide_tree_src, FamilyParams};
    let params = seqalign::ScoreParams::default();
    let fam = generate_family(&FamilyParams {
        leaves: 12,
        ancestral_len: 80,
        seed: 21,
        ..Default::default()
    });
    let guide = guide_tree(&fam.sequences, &params);
    let tree_src = guide_tree_src(&guide, &fam.sequences);
    let program = tree_reduce_1()
        .apply_src(seqalign::ALIGN_EVAL)
        .expect("TR1 applies to align eval");
    (
        program,
        format!("create(8, reduce({tree_src}, Value))"),
        align_lib(params, 8),
    )
}

/// Best-of-batches wall-clock for one (workload, tier) cell — the standard
/// minimum-time estimator: noise only ever slows a batch down.
fn measure(
    program: &Program,
    goal: &str,
    cfg: &MachineConfig,
    lib: &ForeignLib,
    quick: bool,
) -> (u64, u64) {
    let run = || {
        let t0 = Instant::now();
        let r = run_parsed_goal_with_lib(program, goal, cfg.clone(), lib).expect("workload runs");
        (t0.elapsed().as_nanos() as u64, r)
    };
    // Warmup + calibration.
    let (once, first) = run();
    let reductions = first.report.metrics.total_reductions;
    let (per_batch, batches) = if quick {
        (1, 1)
    } else {
        ((100_000_000 / once.max(1)).clamp(1, 30), 5)
    };
    let mut best = u64::MAX;
    for _ in 0..batches {
        let mut elapsed = 0u64;
        for _ in 0..per_batch {
            let (ns, r) = run();
            elapsed += ns;
            assert_eq!(
                r.report.metrics.total_reductions, reductions,
                "workload must be deterministic"
            );
        }
        best = best.min(elapsed / per_batch);
    }
    (best, reductions)
}

/// Run the compiled-tier series. `quick` shrinks the sampling for CI smoke;
/// rows and workloads are identical either way.
pub fn b2_compiled(quick: bool) -> Vec<CompiledPoint> {
    strand_parallel::install();
    let empty = ForeignLib::new();
    let (tree_prog, tree_goal) = tree_workload();
    let (chain_prog, chain_goal) = eval_chain_workload();
    let (align_prog, align_goal, align) = seqalign_workload();
    let sim = MachineConfig::with_nodes(1).seed(7);
    let par = MachineConfig::with_nodes(8).seed(7).parallel(2);
    let cells: Vec<(&str, &Program, &str, MachineConfig, &ForeignLib, &str)> = vec![
        (
            "tree-reduce",
            &tree_prog,
            &tree_goal,
            sim.clone(),
            &empty,
            "simulator",
        ),
        (
            "eval-chain",
            &chain_prog,
            &chain_goal,
            sim,
            &empty,
            "simulator",
        ),
        (
            "seqalign",
            &align_prog,
            &align_goal,
            par,
            &align,
            "parallel",
        ),
    ];

    let mut points = Vec::new();
    for (name, program, goal, cfg, lib, backend) in &cells {
        // Quick mode (CI smoke): one warmup + one timed run per cell is
        // enough to prove the rows exist and both tiers complete; the
        // committed snapshot is a full local recording.
        let (interp_ns, interp_red) = measure(
            program,
            goal,
            &cfg.clone().exec(ExecMode::Interpreted),
            lib,
            quick,
        );
        let (comp_ns, comp_red) = measure(
            program,
            goal,
            &cfg.clone().exec(ExecMode::Compiled),
            lib,
            quick,
        );
        assert_eq!(
            interp_red, comp_red,
            "{name}: tiers must perform identical reductions"
        );
        points.push(CompiledPoint {
            workload: name.to_string(),
            exec: "interpreted".to_string(),
            backend: backend.to_string(),
            wall_ns: interp_ns,
            reductions: interp_red,
            speedup: 1.0,
        });
        points.push(CompiledPoint {
            workload: name.to_string(),
            exec: "compiled".to_string(),
            backend: backend.to_string(),
            wall_ns: comp_ns,
            reductions: comp_red,
            speedup: interp_ns as f64 / comp_ns.max(1) as f64,
        });
    }
    points
}

/// Serialize compiled-tier points as JSON (no external dependencies).
pub fn render_compiled_json(points: &[CompiledPoint]) -> String {
    let host = std::thread::available_parallelism().map_or(1, |n| n.get());
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str("  \"schema\": \"motif-bench compiled-json v1\",\n");
    out.push_str(&format!("  \"host_parallelism\": {host},\n"));
    out.push_str("  \"points\": [\n");
    for (i, p) in points.iter().enumerate() {
        let comma = if i + 1 == points.len() { "" } else { "," };
        out.push_str(&format!(
            "    {{\"workload\": \"{}\", \"exec\": \"{}\", \"backend\": \"{}\", \
             \"wall_ns\": {}, \"reductions\": {}, \"speedup\": {:.4}}}{comma}\n",
            p.workload, p.exec, p.backend, p.wall_ns, p.reductions, p.speedup
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

/// Strict parser for [`render_compiled_json`] output — same schema-drift
/// tripwire as the B-series parser.
pub fn parse_compiled_json(json: &str) -> Result<Vec<CompiledPoint>, String> {
    fn raw_field<'a>(s: &'a str, key: &str) -> Result<&'a str, String> {
        let pat = format!("\"{key}\": ");
        let start = s
            .find(&pat)
            .ok_or_else(|| format!("missing field {key:?}"))?
            + pat.len();
        let rest = &s[start..];
        let end = rest
            .find([',', '}', '\n'])
            .ok_or_else(|| format!("unterminated field {key:?}"))?;
        Ok(rest[..end].trim())
    }
    fn string_field(s: &str, key: &str) -> Result<String, String> {
        let raw = raw_field(s, key)?;
        raw.strip_prefix('"')
            .and_then(|r| r.strip_suffix('"'))
            .map(str::to_string)
            .ok_or_else(|| format!("field {key:?} is not a string: {raw}"))
    }
    fn num_field<T: std::str::FromStr>(s: &str, key: &str) -> Result<T, String> {
        raw_field(s, key)?
            .parse()
            .map_err(|_| format!("field {key:?} is not a number"))
    }

    if !json.contains("\"schema\": \"motif-bench compiled-json v1\"") {
        return Err("missing or unknown schema".to_string());
    }
    let mut points = Vec::new();
    for line in json.lines().map(str::trim) {
        if !line.starts_with("{\"workload\"") {
            continue;
        }
        points.push(CompiledPoint {
            workload: string_field(line, "workload")?,
            exec: string_field(line, "exec")?,
            backend: string_field(line, "backend")?,
            wall_ns: num_field(line, "wall_ns")?,
            reductions: num_field(line, "reductions")?,
            speedup: num_field(line, "speedup")?,
        });
    }
    if points.is_empty() {
        return Err("no points parsed".to_string());
    }
    Ok(points)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_schema_round_trips() {
        let points = vec![
            CompiledPoint {
                workload: "tree-reduce".to_string(),
                exec: "interpreted".to_string(),
                backend: "simulator".to_string(),
                wall_ns: 123_456_789,
                reductions: 9001,
                speedup: 1.0,
            },
            CompiledPoint {
                workload: "tree-reduce".to_string(),
                exec: "compiled".to_string(),
                backend: "simulator".to_string(),
                wall_ns: 42,
                reductions: 9001,
                speedup: 5.25,
            },
        ];
        let json = render_compiled_json(&points);
        let parsed = parse_compiled_json(&json).expect("round-trip parses");
        assert_eq!(parsed, points);
        assert_eq!(render_compiled_json(&parsed), json);
    }

    #[test]
    fn parser_rejects_schema_drift() {
        let points = vec![CompiledPoint {
            workload: "x".to_string(),
            exec: "compiled".to_string(),
            backend: "simulator".to_string(),
            wall_ns: 1,
            reductions: 1,
            speedup: 1.0,
        }];
        let json = render_compiled_json(&points);
        assert!(parse_compiled_json(&json.replace("\"wall_ns\"", "\"ns\"")).is_err());
        assert!(parse_compiled_json("{}").is_err());
    }

    #[test]
    fn committed_snapshot_parses_and_meets_targets() {
        // The repo-root BENCH_compiled.json is a recorded artifact; if it
        // exists it must parse and must still show the ISSUE's targets:
        // tree-reduce ≥5× on the simulator, seqalign ≥1× under the
        // parallel backend (small tolerance for recording noise).
        let Ok(json) = std::fs::read_to_string(concat!(
            env!("CARGO_MANIFEST_DIR"),
            "/../../BENCH_compiled.json"
        )) else {
            return;
        };
        let points = parse_compiled_json(&json).expect("committed snapshot parses");
        let speedup = |w: &str| {
            points
                .iter()
                .find(|p| p.workload == w && p.exec == "compiled")
                .unwrap_or_else(|| panic!("snapshot missing compiled row for {w}"))
                .speedup
        };
        assert!(
            speedup("tree-reduce") >= 5.0,
            "tree-reduce compiled speedup regressed below 5x: {}",
            speedup("tree-reduce")
        );
        assert!(
            speedup("seqalign") >= 0.95,
            "seqalign compiled speedup fell below 1x: {}",
            speedup("seqalign")
        );
    }
}
