//! The `motif-bench machine-json` mode: machine-level throughput tracking.
//!
//! Measures reductions per second and heap allocations per reduction for the
//! reduction hot path on three representative workloads (the tree-reduce
//! motif, the E1 random-mapping farm, and one cell of the E4 speedup sweep),
//! then writes `BENCH_machine.json`.
//!
//! The file keeps a **baseline**: the first recording (made on the
//! pre-optimization engine) is preserved verbatim on every later run, so the
//! JSON always shows current-vs-baseline for the perf trajectory. Allocation
//! counts come from the counting global allocator installed by the
//! `motif-bench` binary ([`crate::counting_alloc`]); when that allocator is
//! absent the alloc columns read zero.

use crate::counting_alloc;
use crate::experiments::{heavy_eval, uniform_eval};
use motifs::{random_tree_src, tree_reduce_1};
use std::collections::BTreeMap;
use std::time::Instant;
use strand_machine::{ast_to_term, Machine, MachineConfig};
use strand_parse::{compile_program, parse_term, Program};

/// One measured workload, current run plus preserved baseline.
#[derive(Clone, Debug)]
pub struct WorkloadReport {
    pub name: &'static str,
    pub reductions: u64,
    pub reductions_per_sec: f64,
    pub allocs_per_reduction: f64,
    pub baseline_reductions_per_sec: f64,
    pub baseline_allocs_per_reduction: f64,
}

impl WorkloadReport {
    pub fn speedup_vs_baseline(&self) -> f64 {
        if self.baseline_reductions_per_sec > 0.0 {
            self.reductions_per_sec / self.baseline_reductions_per_sec
        } else {
            1.0
        }
    }
}

struct Workload {
    name: &'static str,
    program: Program,
    goal: String,
    config: MachineConfig,
}

fn workloads() -> Vec<Workload> {
    let tr1_cheap = tree_reduce_1()
        .apply_src(&uniform_eval(50))
        .expect("TR1 applies");
    let tr1_heavy = tree_reduce_1()
        .apply_src(&heavy_eval(8))
        .expect("TR1 applies");
    let tr1_e4 = tree_reduce_1()
        .apply_src(&uniform_eval(200))
        .expect("TR1 applies");
    vec![
        // The tree-reduce motif on a mid-size random tree: the canonical
        // dispatch-heavy workload (every eval goes through reduce/eval/
        // apply_op plus the server library).
        Workload {
            name: "tree_reduce",
            program: tr1_cheap,
            goal: format!("create(4, reduce({}, Value))", random_tree_src(64, 7)),
            config: MachineConfig::with_nodes(4).seed(7),
        },
        // E1's random-mapping farm shape: many servers, heavy-tailed task
        // cost, leaves ≫ processors.
        Workload {
            name: "e1_farm",
            program: tr1_heavy,
            goal: format!("create(6, reduce({}, Value))", random_tree_src(96, 13)),
            config: MachineConfig::with_nodes(6).seed(13),
        },
        // One cell of the E4 speedup sweep (uniform(200), 128 leaves, P=8).
        Workload {
            name: "e4_speedup_p8",
            program: tr1_e4,
            goal: format!("create(8, reduce({}, Value))", random_tree_src(128, 21)),
            config: MachineConfig::with_nodes(8).seed(21),
        },
    ]
}

fn measure(w: &Workload) -> (u64, f64, f64) {
    // Parse and compile once: the metric is *reduction* throughput, so the
    // timed region is the machine run only — goal parsing and program
    // compilation are per-program costs, not per-reduction ones.
    let goal_ast = parse_term(&w.goal).expect("workload goal parses");
    let compiled = compile_program(&w.program).expect("workload compiles");
    let fresh = |prog: strand_parse::CompiledProgram| {
        let mut machine = Machine::new(prog, w.config.clone());
        let mut vars = BTreeMap::new();
        let goal = ast_to_term(&goal_ast, &mut machine, &mut vars);
        machine.start(goal);
        machine
    };

    // Warmup + calibration run.
    let t0 = Instant::now();
    let report = fresh(compiled.clone()).run().expect("workload runs");
    let once = t0.elapsed().as_secs_f64().max(1e-9);
    let reductions = report.metrics.total_reductions;

    // Shared CI boxes are noisy; throughput is the *best of several
    // batches* (the standard minimum-time estimator: contention only ever
    // slows a batch down, so the fastest batch is the closest to the
    // machine's true speed). Allocation counts are deterministic and are
    // averaged over everything.
    const BATCHES: u64 = 7;
    let per_batch = ((0.1 / once) as u64).clamp(3, 50);
    let mut best_rps = 0.0f64;
    let mut allocs = 0u64;
    for _ in 0..BATCHES {
        let mut elapsed = 0.0;
        for _ in 0..per_batch {
            let mut machine = fresh(compiled.clone());
            let alloc0 = counting_alloc::allocations();
            let start = Instant::now();
            let report = machine.run().expect("workload runs");
            elapsed += start.elapsed().as_secs_f64();
            allocs += counting_alloc::allocations() - alloc0;
            assert_eq!(
                report.metrics.total_reductions, reductions,
                "workload must be deterministic"
            );
        }
        best_rps = best_rps.max((reductions * per_batch) as f64 / elapsed);
    }

    (
        reductions,
        best_rps,
        allocs as f64 / (reductions * per_batch * BATCHES) as f64,
    )
}

/// Extract `"key": <number>` occurring after `"name": "<workload>"` in a
/// previously written report. Returns `None` on any mismatch, which makes
/// the current run the new baseline.
fn parse_field(json: &str, workload: &str, key: &str) -> Option<f64> {
    let at = json.find(&format!("\"name\": \"{workload}\""))?;
    let rest = &json[at..];
    let kat = rest.find(&format!("\"{key}\":"))?;
    let num = rest[kat..].split(':').nth(1)?;
    let num: String = num
        .trim_start()
        .chars()
        .take_while(|c| c.is_ascii_digit() || *c == '.' || *c == '-' || *c == 'e' || *c == '+')
        .collect();
    num.parse().ok()
}

/// Run every workload; `previous` is the old file contents (if any) whose
/// baseline numbers are carried forward.
pub fn run_machine_bench(previous: Option<&str>) -> Vec<WorkloadReport> {
    workloads()
        .iter()
        .map(|w| {
            let (reductions, rps, apr) = measure(w);
            let base_rps = previous
                .and_then(|j| parse_field(j, w.name, "baseline_reductions_per_sec"))
                .unwrap_or(rps);
            let base_apr = previous
                .and_then(|j| parse_field(j, w.name, "baseline_allocs_per_reduction"))
                .unwrap_or(apr);
            WorkloadReport {
                name: w.name,
                reductions,
                reductions_per_sec: rps,
                allocs_per_reduction: apr,
                baseline_reductions_per_sec: base_rps,
                baseline_allocs_per_reduction: base_apr,
            }
        })
        .collect()
}

/// Render the reports as the `BENCH_machine.json` document.
pub fn render_json(reports: &[WorkloadReport]) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str("  \"schema\": \"motif-bench machine-json v1\",\n");
    out.push_str(
        "  \"description\": \"Reduction hot-path throughput. baseline_* fields are \
         preserved from the first recording (pre-optimization engine); the other \
         fields are the latest run.\",\n",
    );
    out.push_str("  \"workloads\": [\n");
    for (i, r) in reports.iter().enumerate() {
        out.push_str("    {\n");
        out.push_str(&format!("      \"name\": \"{}\",\n", r.name));
        out.push_str(&format!("      \"reductions\": {},\n", r.reductions));
        out.push_str(&format!(
            "      \"reductions_per_sec\": {:.1},\n",
            r.reductions_per_sec
        ));
        out.push_str(&format!(
            "      \"allocs_per_reduction\": {:.2},\n",
            r.allocs_per_reduction
        ));
        out.push_str(&format!(
            "      \"baseline_reductions_per_sec\": {:.1},\n",
            r.baseline_reductions_per_sec
        ));
        out.push_str(&format!(
            "      \"baseline_allocs_per_reduction\": {:.2},\n",
            r.baseline_allocs_per_reduction
        ));
        out.push_str(&format!(
            "      \"speedup_vs_baseline\": {:.2}\n",
            r.speedup_vs_baseline()
        ));
        out.push_str(if i + 1 == reports.len() {
            "    }\n"
        } else {
            "    },\n"
        });
    }
    out.push_str("  ]\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn baseline_fields_survive_a_rewrite() {
        let reports = vec![WorkloadReport {
            name: "tree_reduce",
            reductions: 100,
            reductions_per_sec: 2000.0,
            allocs_per_reduction: 10.0,
            baseline_reductions_per_sec: 1000.0,
            baseline_allocs_per_reduction: 40.0,
        }];
        let json = render_json(&reports);
        assert_eq!(
            parse_field(&json, "tree_reduce", "baseline_reductions_per_sec"),
            Some(1000.0)
        );
        assert_eq!(
            parse_field(&json, "tree_reduce", "baseline_allocs_per_reduction"),
            Some(40.0)
        );
        assert_eq!(
            parse_field(&json, "tree_reduce", "speedup_vs_baseline"),
            Some(2.0)
        );
        assert_eq!(parse_field(&json, "missing", "reductions_per_sec"), None);
    }
}
