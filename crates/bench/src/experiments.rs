//! Experiment implementations (see EXPERIMENTS.md for the index).

use crate::table::Table;
use motifs::scheduler::{scheduler, scheduler_hierarchical, tasks_src, BURN_TASK};
use motifs::{
    balanced_tree_src, random_tree_src, sequential_reduce, server, supervised_server,
    tree_reduce_1, tree_reduce_2, ARITH_EVAL,
};
use seqalign::{align_family_parallel, align_family_seq, FamilyParams, ScoreParams};
use skeletons::{Labeling, Pool};
use strand_machine::{run_goal, run_parsed_goal, FaultPlan, GoalResult, MachineConfig, RunStatus};

/// Uniform-cost arithmetic eval: every node evaluation takes `cost` ticks.
pub fn uniform_eval(cost: u64) -> String {
    format!(
        r#"
eval(Op, L, R, Value) :- data(L), data(R) |
    work({cost}), apply_op(Op, L, R, Value).
apply_op('+', L, R, Value) :- Value := L + R.
apply_op('*', L, R, Value) :- Value := L * R.
apply_op('max', L, R, Value) :- Value := max(L, R).
"#
    )
}

/// Heavy-tailed eval: cost = X² · scale with X uniform on 1..=10 — the
/// paper's "time required at each node is non-uniform and cannot easily be
/// predicted" (§3.1).
pub fn heavy_eval(scale: u64) -> String {
    format!(
        r#"
eval(Op, L, R, Value) :- data(L), data(R) |
    rand_num(10, X), C := X * X * {scale}, work(C), apply_op(Op, L, R, Value).
apply_op('+', L, R, Value) :- Value := L + R.
apply_op('*', L, R, Value) :- Value := L * R.
apply_op('max', L, R, Value) :- Value := max(L, R).
"#
    )
}

/// The hand-written Figure 2 program (Parts A–C; Part D is the server
/// library, which the experiment links explicitly). This is the
/// *pre-motif* version the paper decomposes — experiment E6 checks the
/// composed `Tree-Reduce-1` is equivalent to it.
pub const FIGURE2_HANDWRITTEN: &str = r#"
% Part B: divide-and-conquer reduction with explicit DT threading.
reduce(tree(V, L, R), Value, DT) :-
    length(DT, N), rand_num(N, O),
    distribute(O, DT, reduce(R, RV)),
    reduce(L, LV, DT),
    eval(V, LV, RV, Value).
reduce(leaf(L), Value, _) :- Value := L.

% Part C: server dispatching reduce messages.
server([reduce(T, V)|In], DT) :- reduce(T, V, DT), server(In, DT).
server([halt|_], _).
"#;

/// The §3.1 arithmetic example tree: (3*2)*((2+1)+1) = 24.
pub const PAPER_TREE: &str = "tree('*', tree('*', leaf(3), leaf(2)), \
                              tree('+', tree('+', leaf(2), leaf(1)), leaf(1)))";

fn run_tr1(eval_src: &str, tree: &str, servers: u32, seed: u64, track: &str) -> GoalResult {
    let p = tree_reduce_1().apply_src(eval_src).expect("TR1 applies");
    let mut cfg = MachineConfig::with_nodes(servers).seed(seed);
    if !track.is_empty() {
        cfg = cfg.track(track);
    }
    run_parsed_goal(
        &p,
        &format!("create({servers}, reduce({tree}, Value))"),
        cfg,
    )
    .expect("TR1 runs")
}

fn run_tr2(eval_src: &str, tree: &str, servers: u32, seed: u64, track: &str) -> GoalResult {
    let p = tree_reduce_2().apply_src(eval_src).expect("TR2 applies");
    let mut cfg = MachineConfig::with_nodes(servers).seed(seed);
    if !track.is_empty() {
        cfg = cfg.track(track);
    }
    run_parsed_goal(&p, &format!("create({servers}, tr2({tree}, Value))"), cfg).expect("TR2 runs")
}

/// F1: the Figure 1 producer/consumer program.
pub fn fig1() -> Table {
    let src = r#"
        go(N) :- producer(N, Xs, sync), consumer(Xs).
        producer(N, Xs, sync) :- N > 0 |
            Xs := [X|Xs1], N1 := N - 1, producer(N1, Xs1, X).
        producer(0, Xs, _) :- Xs := [].
        consumer([X|Xs]) :- X := sync, consumer(Xs).
        consumer([]).
    "#;
    let mut t = Table::new(
        "F1: Figure 1 producer/consumer (synchronous stream)",
        &["N", "status", "reductions", "suspensions", "peak queue"],
    );
    for n in [4u32, 16, 64, 256] {
        let r = run_goal(src, &format!("go({n})"), MachineConfig::default()).expect("fig1 runs");
        t.row(vec![
            n.to_string(),
            format!("{:?}", r.report.status),
            r.report.metrics.total_reductions.to_string(),
            r.report.metrics.suspensions.to_string(),
            r.report.metrics.peak_queue[0].to_string(),
        ]);
    }
    t.note("The paper runs N=4; suspensions ≥ N confirms the synchronous ack protocol.");
    t.note("Peak queue stays O(1): the producer never runs ahead of the consumer.");
    t
}

/// F2/F3: the hand-written tree reduction (Figure 2) over the server
/// library (Figure 3).
pub fn fig2() -> Table {
    let program_src = format!(
        "{ARITH_EVAL}\n{FIGURE2_HANDWRITTEN}\n{}",
        motifs::SERVER_LIBRARY
    );
    let mut t = Table::new(
        "F2/F3: hand-written tree reduction on the server library",
        &["servers", "value", "status", "reductions", "cross msgs"],
    );
    for servers in [1u32, 2, 4, 8] {
        let r = run_goal(
            &program_src,
            &format!("create({servers}, reduce({PAPER_TREE}, Value))"),
            MachineConfig::with_nodes(servers).seed(2),
        )
        .expect("fig2 runs");
        t.row(vec![
            servers.to_string(),
            r.bindings["Value"].to_string(),
            format!("{:?}", r.report.status),
            r.report.metrics.total_reductions.to_string(),
            r.report.metrics.total_messages().to_string(),
        ]);
    }
    t.note("Value must be 24 = (3*2)*((2+1)+1), the paper's §3.1 example.");
    t
}

/// F4: server-network connectivity (the Figure 4 topology).
pub fn fig4() -> Table {
    let flood = r#"
        server([probe(K)|In]) :- fan(K), server(In).
        server([halt|_]).
        fan(K) :- nodes(N), fan1(K, N).
        fan1(K, N) :- K < N | K1 := K + 1, send(K1, probe(K1)), fan1(K1, N).
        fan1(N, N) :- halt.
    "#;
    let mut t = Table::new(
        "F4: server network — all-pairs probe flood",
        &[
            "servers",
            "status",
            "cross port msgs",
            "min expected (C(n,2))",
        ],
    );
    for n in [2u32, 4, 8, 16] {
        let p = server().apply_src(flood).expect("server motif applies");
        let r = run_parsed_goal(
            &p,
            &format!("create({n}, probe(1))"),
            MachineConfig::with_nodes(n),
        )
        .expect("fig4 runs");
        t.row(vec![
            n.to_string(),
            format!("{:?}", r.report.status),
            r.report.metrics.port_msgs_cross.to_string(),
            (n as u64 * (n as u64 - 1) / 2).to_string(),
        ]);
    }
    t.note("Every ordered pair (i, j>i) exchanges a probe: full connectivity.");
    t
}

/// F5/F6: the three composition stages of Tree-Reduce-1, pretty-printed.
pub fn fig5() -> String {
    let app = strand_parse::parse_program(ARITH_EVAL).expect("eval parses");
    let stage1 = motifs::tree1().apply(&app).expect("Tree1 applies");
    let stage2 = motifs::rand_map().apply(&stage1).expect("Rand applies");
    let stage3 = motifs::server().apply(&stage2).expect("Server applies");
    format!(
        "== F5/F6: the three stages of Tree-Reduce-1 = Server o Rand o Tree1 ==\n\n\
         %%% Stage 1: output of Tree1 (user eval + 5-line library) %%%\n{}\n\
         %%% Stage 2: output of Rand (pragma expanded, server/1 synthesized) %%%\n{}\n\
         %%% Stage 3: output of Server (DT threaded, operations translated) %%%\n{}",
        strand_parse::pretty(&stage1),
        strand_parse::pretty(&stage2),
        strand_parse::pretty(&stage3),
    )
}

/// F7: the Tree-Reduce-2 library in action.
pub fn fig7() -> Table {
    let mut t = Table::new(
        "F7: Tree-Reduce-2 (queued values, sequenced evaluation)",
        &[
            "leaves",
            "servers",
            "value ok",
            "status",
            "peak pending",
            "peak live evals",
        ],
    );
    for (leaves, servers) in [(8u32, 2u32), (16, 4), (64, 4), (64, 8)] {
        let tree = random_tree_src(leaves, 7);
        let expected = sequential_reduce(&tree).to_string();
        let r = run_tr2(ARITH_EVAL, &tree, servers, 7, "eval");
        t.row(vec![
            leaves.to_string(),
            servers.to_string(),
            (r.bindings["Value"].to_string() == expected).to_string(),
            format!("{:?}", r.report.status),
            r.report.metrics.max_gauge("pending").to_string(),
            r.report.metrics.max_peak_tracked().to_string(),
        ]);
    }
    t.note("Peak live evals is 1: computation is sequenced per processor (§3.5).");
    t
}

/// E1: load balance of random mapping vs leaves-per-processor.
pub fn e1_balance() -> Table {
    let mut t = Table::new(
        "E1: random-mapping load balance (imbalance = max/mean busy time)",
        &["P", "leaves", "leaves/P", "imbalance", "utilization"],
    );
    for p in [4u32, 16, 64] {
        for ratio in [1u32, 4, 16, 64] {
            let leaves = p * ratio;
            let tree = random_tree_src(leaves, 100 + ratio as u64);
            let r = run_tr1(&uniform_eval(50), &tree, p, 100 + ratio as u64, "");
            let m = &r.report.metrics;
            t.row(vec![
                p.to_string(),
                leaves.to_string(),
                ratio.to_string(),
                m.imbalance().map_or("n/a".into(), |x| format!("{x:.2}")),
                format!("{:.2}", m.utilization()),
            ]);
        }
    }
    t.note("Claim (§3.1): random mapping balances well when leaves/P >> 1 —");
    t.note("imbalance should fall toward ~1 as leaves/P grows, at every P.");
    t
}

/// E2: memory behaviour — concurrent evaluations and queued values.
pub fn e2_memory() -> Table {
    let mut t = Table::new(
        "E2: Tree-Reduce-1 vs Tree-Reduce-2 memory pressure (4 servers)",
        &[
            "leaves",
            "TR1 peak live evals",
            "TR2 peak live evals",
            "TR2 peak pending queue",
        ],
    );
    for leaves in [16u32, 64, 256] {
        let tree = random_tree_src(leaves, 11);
        let r1 = run_tr1(&heavy_eval(20), &tree, 4, 11, "eval");
        let r2 = run_tr2(&heavy_eval(20), &tree, 4, 11, "eval");
        t.row(vec![
            leaves.to_string(),
            r1.report.metrics.max_peak_tracked().to_string(),
            r2.report.metrics.max_peak_tracked().to_string(),
            r2.report.metrics.max_gauge("pending").to_string(),
        ]);
    }
    t.note("Claim (§3.5): TR1 initiates many evaluations per processor at once");
    t.note("(grows with tree size); TR2 sequences them (stays at 1), trading a");
    t.note("bounded pending-value queue.");
    t
}

/// E2b: live intermediate bytes on the real alignment workload.
pub fn e2_memory_bytes() -> Table {
    let mut t = Table::new(
        "E2b: peak live intermediate bytes, progressive alignment (threads)",
        &["sequences", "labeling", "peak live KiB", "crossings"],
    );
    let params = ScoreParams::default();
    for leaves in [16usize, 32] {
        let fam = seqalign::generate_family(&FamilyParams {
            leaves,
            ancestral_len: 100,
            seed: 5,
            ..Default::default()
        });
        for (name, labeling) in [
            ("TR1 random", Labeling::Random(5)),
            ("TR2 paper", Labeling::Paper(5)),
            ("static", Labeling::Static),
        ] {
            let pool = Pool::new(4, false);
            let out = align_family_parallel(&pool, &fam.sequences, &params, labeling);
            t.row(vec![
                leaves.to_string(),
                name.to_string(),
                format!("{:.1}", out.peak_live_bytes as f64 / 1024.0),
                out.cross_child_values.to_string(),
            ]);
            pool.shutdown();
        }
    }
    t.note("Profiles are the 'large intermediate data structures' of §3.5.");
    t
}

/// E3: the communication bound of Tree-Reduce-2's labeling.
pub fn e3_comm() -> Table {
    let mut t = Table::new(
        "E3: offspring-value communications per internal node",
        &[
            "seed",
            "leaves",
            "P",
            "TR2 value crossings",
            "internal nodes",
            "bound holds",
            "TR1 reduce msgs crossing",
        ],
    );
    for seed in [4u64, 5, 6, 7] {
        let leaves = 48u32;
        let internal = (leaves - 1) as u64;
        let tree = random_tree_src(leaves, seed);
        let r2 = run_tr2(ARITH_EVAL, &tree, 6, seed, "");
        let crossings = r2
            .report
            .metrics
            .port_msgs_by_functor
            .get("value")
            .copied()
            .unwrap_or(0);
        let r1 = run_tr1(ARITH_EVAL, &tree, 6, seed, "");
        let tr1_reduce = r1
            .report
            .metrics
            .port_msgs_by_functor
            .get("reduce")
            .copied()
            .unwrap_or(0);
        t.row(vec![
            seed.to_string(),
            leaves.to_string(),
            "6".into(),
            crossings.to_string(),
            internal.to_string(),
            (crossings <= internal).to_string(),
            tr1_reduce.to_string(),
        ]);
    }
    t.note("Claim (§3.5): the labeling ensures at most one of each node's");
    t.note("offspring values crosses processors: crossings <= internal nodes.");
    t.note("TR1 ships ~(P-1)/P of all spawned reduce messages across nodes.");
    t
}

/// E4: virtual-time speedup of the two motifs.
pub fn e4_speedup() -> Table {
    let mut t = Table::new(
        "E4: virtual-time speedup (leaves=128)",
        &[
            "cost model",
            "P",
            "TR1 makespan",
            "TR1 speedup",
            "TR2 makespan",
            "TR2 speedup",
        ],
    );
    for (label, eval_src) in [
        ("uniform(200)", uniform_eval(200)),
        ("heavy-tailed", heavy_eval(8)),
    ] {
        let tree = random_tree_src(128, 21);
        let base1 = run_tr1(&eval_src, &tree, 1, 21, "").report.metrics.makespan as f64;
        let base2 = run_tr2(&eval_src, &tree, 1, 21, "").report.metrics.makespan as f64;
        for p in [1u32, 2, 4, 8, 16, 32] {
            let m1 = run_tr1(&eval_src, &tree, p, 21, "").report.metrics.makespan;
            let m2 = run_tr2(&eval_src, &tree, p, 21, "").report.metrics.makespan;
            t.row(vec![
                label.to_string(),
                p.to_string(),
                m1.to_string(),
                format!("{:.2}", base1 / m1 as f64),
                m2.to_string(),
                format!("{:.2}", base2 / m2 as f64),
            ]);
        }
    }
    t.note("Both motifs speed up with P; gains flatten once P approaches the");
    t.note("tree's available parallelism (critical path).");
    t
}

/// E5: the code-size inventory (§3.6's economy argument).
pub fn e5_loc() -> Table {
    let mut t = Table::new(
        "E5: motif library sizes (rules / non-comment lines)",
        &["motif", "rules", "lines", "construction"],
    );
    for row in motifs::inventory::inventory() {
        t.row(vec![
            row.motif,
            row.library_rules.to_string(),
            row.library_lines.to_string(),
            row.construction.to_string(),
        ]);
    }
    t.note("The paper: Tree1 is 5 lines; Tree-Reduce-2 'a page of library code';");
    t.note("the application's node evaluation exceeded 2000 lines — motifs make");
    t.note("the parallel version a small increment.");
    t
}

/// E6: composed Tree-Reduce-1 ≡ hand-written Figure 2.
pub fn e6_compose() -> Table {
    let mut t = Table::new(
        "E6: composed motif vs hand-written program (4 servers)",
        &[
            "tree",
            "hand value",
            "composed value",
            "hand reductions",
            "composed reductions",
        ],
    );
    let hand_src = format!(
        "{ARITH_EVAL}\n{FIGURE2_HANDWRITTEN}\n{}",
        motifs::SERVER_LIBRARY
    );
    for (name, tree) in [
        ("paper §3.1", PAPER_TREE.to_string()),
        ("random-24", random_tree_src(24, 3)),
        ("balanced-d5", balanced_tree_src(5)),
    ] {
        let hand = run_goal(
            &hand_src,
            &format!("create(4, reduce({tree}, Value))"),
            MachineConfig::with_nodes(4).seed(9),
        )
        .expect("hand-written runs");
        let composed = run_tr1(ARITH_EVAL, &tree, 4, 9, "");
        t.row(vec![
            name.to_string(),
            hand.bindings["Value"].to_string(),
            composed.bindings["Value"].to_string(),
            hand.report.metrics.total_reductions.to_string(),
            composed.report.metrics.total_reductions.to_string(),
        ]);
    }
    t.note("Same results; reduction counts within a few percent — composition");
    t.note("does not cost efficiency (the transformation output matches the");
    t.note("hand-threaded code, Figure 5).");
    t
}

/// E7: scheduler — single manager vs two-level hierarchy.
pub fn e7_scheduler() -> Table {
    let mut t = Table::new(
        "E7: manager/worker scheduler, 1-level vs 2-level (240 tasks x 5 ticks)",
        &[
            "P",
            "groups",
            "makespan 1L",
            "makespan 2L",
            "mgr busy 1L",
            "mgr busy 2L",
            "msgs into mgr 1L",
            "msgs into mgr 2L",
        ],
    );
    let costs: Vec<u64> = vec![5; 240];
    for (p, g) in [(9u32, 2u32), (17, 4), (25, 4), (41, 8), (65, 16)] {
        let p1 = scheduler().apply_src(BURN_TASK).expect("scheduler applies");
        let r1 = run_parsed_goal(
            &p1,
            &format!("create({p}, start({}, Results))", tasks_src(&costs)),
            MachineConfig::with_nodes(p).seed(7),
        )
        .expect("1-level runs");
        let p2 = scheduler_hierarchical()
            .apply_src(BURN_TASK)
            .expect("scheduler2 applies");
        let r2 = run_parsed_goal(
            &p2,
            &format!("create({p}, start2({}, Results, {g}))", tasks_src(&costs)),
            MachineConfig::with_nodes(p).seed(7),
        )
        .expect("2-level runs");
        let m1 = &r1.report.metrics;
        let m2 = &r2.report.metrics;
        let into1: u64 = m1.messages.iter().map(|row| row[0]).sum();
        let into2: u64 = m2.messages.iter().map(|row| row[0]).sum();
        t.row(vec![
            p.to_string(),
            g.to_string(),
            m1.makespan.to_string(),
            m2.makespan.to_string(),
            m1.busy[0].to_string(),
            m2.busy[0].to_string(),
            into1.to_string(),
            into2.to_string(),
        ]);
    }
    t.note("Claim (§1, reuse by modification): the single manager's busy time and");
    t.note("inbox traffic grow with task count and stay the bottleneck at scale;");
    t.note("the extra hierarchy level makes both O(groups).");
    t
}

/// E8: the sequence-alignment application.
pub fn e8_seqalign() -> Table {
    let mut t = Table::new(
        "E8: progressive RNA alignment via tree reduction (4 worker threads)",
        &[
            "seqs",
            "labeling",
            "identity",
            "columns",
            "crossings",
            "peak live KiB",
            "evals/worker",
        ],
    );
    let params = ScoreParams::default();
    for leaves in [8usize, 16, 32] {
        let fam = seqalign::generate_family(&FamilyParams {
            leaves,
            ancestral_len: 120,
            seed: 8,
            ..Default::default()
        });
        let seq_ref = align_family_seq(&fam.sequences, &params);
        for (name, labeling) in [
            ("TR1 random", Labeling::Random(8)),
            ("TR2 paper", Labeling::Paper(8)),
            ("static", Labeling::Static),
        ] {
            let pool = Pool::new(4, false);
            let out = align_family_parallel(&pool, &fam.sequences, &params, labeling);
            assert_eq!(out.value, seq_ref, "parallel must equal sequential");
            let spread = format!("{:?}", out.evals_per_worker);
            t.row(vec![
                leaves.to_string(),
                name.to_string(),
                format!("{:.3}", out.value.column_identity()),
                out.value.len().to_string(),
                out.cross_child_values.to_string(),
                format!("{:.1}", out.peak_live_bytes as f64 / 1024.0),
                spread,
            ]);
            pool.shutdown();
        }
    }
    t.note("All labelings produce the identical alignment (same guide tree);");
    t.note("they differ in communication (crossings) and working-set placement.");
    t
}

/// E9: the future-work motifs (§4): search, sort, grid, pipeline.
pub fn e9_future() -> Table {
    let mut t = Table::new(
        "E9: future-work motifs (search, sorting, grid, pipeline)",
        &["motif", "instance", "result", "ok", "notes"],
    );
    // Search: N-queens solution counts.
    let search_program = motifs::search::search()
        .apply_src(motifs::search::NQUEENS_APP)
        .expect("search applies");
    for (n, expected) in [(4u32, 2i64), (5, 10), (6, 4)] {
        let r = run_parsed_goal(
            &search_program,
            &format!("create(4, search(q({n}, [], 1), Count))"),
            MachineConfig::with_nodes(4).seed(1),
        )
        .expect("search runs");
        let got = r.bindings["Count"].to_string();
        t.row(vec![
            "Search".into(),
            format!("{n}-queens"),
            got.clone(),
            (got == expected.to_string()).to_string(),
            "or-parallel count".into(),
        ]);
    }
    // Sort: mergesort through the DC motif.
    let sort_program = motifs::dc::divide_and_conquer()
        .apply_src(motifs::dc::MERGESORT_APP)
        .expect("dc applies");
    let xs: Vec<i64> = (0..40).rev().collect();
    let r = run_parsed_goal(
        &sort_program,
        &format!("create(4, dc({}, S))", motifs::dc::int_list_src(&xs)),
        MachineConfig::with_nodes(4).seed(2),
    )
    .expect("sort runs");
    let sorted = r.bindings["S"].as_proper_list().map(|v| {
        v.windows(2).all(|w| {
            format!("{}", w[0]).parse::<i64>().unwrap()
                <= format!("{}", w[1]).parse::<i64>().unwrap()
        })
    });
    t.row(vec![
        "DivideAndConquer".into(),
        "mergesort(40)".into(),
        format!("{} elems", xs.len()),
        sorted.unwrap_or(false).to_string(),
        "one branch shipped @random".into(),
    ]);
    // Grid: stencil vs sequential reference.
    let grid_program = motifs::grid::grid()
        .apply_src("cell_init(I, V) :- V := I * 1.0.")
        .expect("grid applies");
    let r = run_parsed_goal(
        &grid_program,
        "grid(8, 10, Final)",
        MachineConfig::with_nodes(4),
    )
    .expect("grid runs");
    let expected =
        motifs::grid::sequential_stencil(&(1..=8).map(|i| i as f64).collect::<Vec<_>>(), 10);
    let got: Vec<f64> = r.bindings["Final"]
        .as_proper_list()
        .expect("grid output list")
        .iter()
        .map(|v| match v {
            strand_core::Term::Float(x) => *x,
            strand_core::Term::Int(i) => *i as f64,
            other => panic!("{other}"),
        })
        .collect();
    let ok = got
        .iter()
        .zip(expected.iter())
        .all(|(a, b)| (a - b).abs() < 1e-9);
    t.row(vec![
        "Grid".into(),
        "1-D stencil 8x10".into(),
        format!("{} cells", got.len()),
        ok.to_string(),
        "streams only, no server net".into(),
    ]);
    // Graph: connected components against the union-find reference.
    {
        let mut rng = strand_core::SplitMix64::new(5);
        let n = 12u32;
        let edges: Vec<(u32, u32)> = (0..14)
            .map(|_| {
                (
                    1 + rng.next_below(n as u64) as u32,
                    1 + rng.next_below(n as u64) as u32,
                )
            })
            .filter(|(u, v)| u != v)
            .collect();
        let expected = motifs::graph::components_reference(n, &edges);
        let prog = motifs::graph::graph_components()
            .apply_src("noop(1).")
            .expect("graph applies");
        let goal = format!(
            "create(4, cc({n}, {}, Final))",
            motifs::graph::edges_src(&edges)
        );
        let r = run_parsed_goal(&prog, &goal, MachineConfig::with_nodes(4).seed(5))
            .expect("graph runs");
        let got: Vec<u32> = r.bindings["Final"]
            .as_proper_list()
            .expect("labels")
            .iter()
            .map(|t| t.to_string().parse().expect("int"))
            .collect();
        t.row(vec![
            "Graph".into(),
            format!("components n={n} m={}", edges.len()),
            format!("{} labels", got.len()),
            (got == expected).to_string(),
            "BSP label propagation".into(),
        ]);
    }
    // Pipeline: overlap factor in virtual time.
    let pipe_program = motifs::pipeline::pipeline()
        .apply_src("stage(_, X, Y) :- work(100), Y := X.")
        .expect("pipeline applies");
    let items = motifs::dc::int_list_src(&(0..16).collect::<Vec<_>>());
    let r = run_parsed_goal(
        &pipe_program,
        &format!("pipe(4, {items}, Out)"),
        MachineConfig::with_nodes(4),
    )
    .expect("pipeline runs");
    let serial = 16 * 4 * 100;
    let overlap = serial as f64 / r.report.metrics.makespan as f64;
    t.row(vec![
        "Pipeline".into(),
        "4 stages x 16 items".into(),
        format!("overlap x{overlap:.1}"),
        (overlap > 2.0).to_string(),
        format!("makespan {} vs serial {serial}", r.report.metrics.makespan),
    ]);
    t
}

/// E10: the `@task` pragma (demand scheduling, §2.2) vs `@random`
/// (oblivious mapping, §3.3) on one skewed-cost program.
pub fn e10_pragma() -> Table {
    const APP_TASK: &str = r#"
        gen(0, V) :- V := 0.
        gen(N, V) :- N > 0 |
            cost(N, C),
            burn(C, V1)@task,
            N1 := N - 1,
            gen(N1, V2),
            add(V1, V2, V).
        cost(N, C) :- M := N mod 13, C := 30 + M * M * M.
        burn(C, V) :- work(C), V := 1.
        add(V1, V2, V) :- V := V1 + V2.
    "#;
    let app_random = APP_TASK.replace("@task", "@random");
    let mut t = Table::new(
        "E10: @task (demand) vs @random (oblivious) on skewed tasks",
        &["P", "tasks", "mapping", "makespan", "imbalance", "value ok"],
    );
    for (p, n) in [(5u32, 40u32), (9, 40), (9, 120)] {
        // Demand-driven via the Sched motif.
        let prog = motifs::task_scheduler_with_entries(&[("gen", 2)])
            .apply_src(APP_TASK)
            .expect("Sched applies");
        let goal = motifs::boot_goal(p, "gen", &[&n.to_string(), "V"]);
        let r = run_parsed_goal(&prog, &goal, MachineConfig::with_nodes(p).seed(13))
            .expect("task version runs");
        t.row(vec![
            p.to_string(),
            n.to_string(),
            "@task".into(),
            r.report.metrics.makespan.to_string(),
            r.report
                .metrics
                .imbalance()
                .map_or("n/a".into(), |x| format!("{x:.2}")),
            (r.bindings["V"].to_string() == n.to_string()).to_string(),
        ]);
        // Oblivious random mapping via the Random motif.
        let prog = motifs::random_with_entries(&[("gen", 2)])
            .apply_src(&app_random)
            .expect("Random applies");
        let r = run_parsed_goal(
            &prog,
            &format!("create({p}, gen({n}, V))"),
            MachineConfig::with_nodes(p).seed(13),
        )
        .expect("random version runs");
        t.row(vec![
            p.to_string(),
            n.to_string(),
            "@random".into(),
            r.report.metrics.makespan.to_string(),
            r.report
                .metrics
                .imbalance()
                .map_or("n/a".into(), |x| format!("{x:.2}")),
            (r.bindings["V"].to_string() == n.to_string()).to_string(),
        ]);
    }
    t.note("Heavily skewed task costs (cubic in N mod 13). Demand dispatch");
    t.note("adapts to skew; oblivious random mapping leaves the unlucky node");
    t.note("with the long tail. (The @task run reserves node 1 as manager.)");
    t
}

/// E1-threads: the random-mapping balance claim at real-thread level —
/// tasks per worker under the Random placement policy as tasks/worker
/// grows (count-based, so valid on any core count).
pub fn e1_threads() -> Table {
    use skeletons::{farm, Policy, Pool};
    let mut t = Table::new(
        "E1-threads: tasks-per-worker imbalance under random placement",
        &["workers", "tasks", "tasks/worker", "max/mean tasks"],
    );
    for workers in [4usize, 8] {
        for ratio in [1usize, 4, 16, 64] {
            let n = workers * ratio;
            let pool = Pool::new(workers, false);
            let _ = farm(&pool, Policy::Random(7), (0..n).collect(), |x: usize| x);
            let stats = pool.stats();
            let max = stats.iter().map(|s| s.tasks).max().unwrap_or(0) as f64;
            let mean = n as f64 / workers as f64;
            t.row(vec![
                workers.to_string(),
                n.to_string(),
                ratio.to_string(),
                format!("{:.2}", max / mean),
            ]);
            pool.shutdown();
        }
    }
    t.note("Same shape as E1 on the simulator: the balls-into-bins imbalance");
    t.note("of random mapping decays as tasks/worker grows.");
    t
}

/// E8-sim: the paper's *complete* system — motif-language coordination on
/// the simulated multicomputer with the node evaluation running natively
/// (the §2.1 multilingual split: "Strand and C", here motif-language and
/// Rust). Compares the two tree-reduction motifs on real alignment data
/// with a realistic quadratic cost model.
pub fn e8_sim() -> Table {
    use seqalign::{guide_tree, guide_tree_src, register_align_node, term_to_profile, ALIGN_EVAL};
    use strand_machine::{ast_to_term, Machine};
    use strand_parse::{compile_program, parse_term};

    let mut t = Table::new(
        "E8-sim: full MSA inside the simulated multicomputer (native align_node)",
        &[
            "seqs",
            "motif",
            "servers",
            "status",
            "makespan",
            "cross msgs",
            "identity",
        ],
    );
    for leaves in [8usize, 16] {
        let fam = seqalign::generate_family(&FamilyParams {
            leaves,
            ancestral_len: 80,
            seed: 21,
            ..Default::default()
        });
        let guide = guide_tree(&fam.sequences, &ScoreParams::default());
        let tree_src = guide_tree_src(&guide, &fam.sequences);
        for (name, program, goal) in [
            (
                "Tree-Reduce-1",
                tree_reduce_1().apply_src(ALIGN_EVAL).expect("TR1 applies"),
                format!("create(4, reduce({tree_src}, Value))"),
            ),
            (
                "Tree-Reduce-2",
                tree_reduce_2().apply_src(ALIGN_EVAL).expect("TR2 applies"),
                format!("create(4, tr2({tree_src}, Value))"),
            ),
        ] {
            let compiled = compile_program(&program).expect("compiles");
            let mut machine = Machine::new(compiled, MachineConfig::with_nodes(4).seed(21));
            register_align_node(&mut machine, ScoreParams::default(), 8);
            let goal_ast = parse_term(&goal).expect("goal parses");
            let mut vars = std::collections::BTreeMap::new();
            let g = ast_to_term(&goal_ast, &mut machine, &mut vars);
            machine.start(g);
            let report = machine.run().expect("sim MSA runs");
            let profile =
                term_to_profile(&machine.store().resolve(&vars["Value"])).expect("profile");
            t.row(vec![
                leaves.to_string(),
                name.into(),
                "4".into(),
                format!("{:?}", report.status),
                report.metrics.makespan.to_string(),
                report.metrics.total_messages().to_string(),
                format!("{:.3}", profile.column_identity()),
            ]);
        }
    }
    t.note("The node evaluation is the real Needleman-Wunsch, run as a native");
    t.note("foreign procedure and charged quadratic virtual cost — the paper's");
    t.note("'Strand and C' architecture, complete.");
    t
}

/// A1 (ablation): sensitivity of the two tree-reduction motifs to message
/// latency. TR2 sends at most one offspring value per node across
/// processors plus a one-time tree broadcast; TR1 ships ~(P-1)/P of all
/// spawned reductions. Raising the latency therefore hurts TR1's makespan
/// faster once computation no longer dominates.
pub fn a1_latency() -> Table {
    let mut t = Table::new(
        "A1: makespan vs message latency (leaves=96, P=8, uniform cost 50)",
        &[
            "latency",
            "TR1 makespan",
            "TR2 makespan",
            "TR1 slowdown",
            "TR2 slowdown",
        ],
    );
    let tree = random_tree_src(96, 31);
    let eval = uniform_eval(50);
    let mut base = (0u64, 0u64);
    for latency in [1u64, 10, 100, 1000] {
        let cfg1 = MachineConfig::with_nodes(8).seed(31).latency(latency);
        let p1 = tree_reduce_1().apply_src(&eval).expect("TR1 applies");
        let m1 = run_parsed_goal(&p1, &format!("create(8, reduce({tree}, Value))"), cfg1)
            .expect("TR1 runs")
            .report
            .metrics
            .makespan;
        let cfg2 = MachineConfig::with_nodes(8).seed(31).latency(latency);
        let p2 = tree_reduce_2().apply_src(&eval).expect("TR2 applies");
        let m2 = run_parsed_goal(&p2, &format!("create(8, tr2({tree}, Value))"), cfg2)
            .expect("TR2 runs")
            .report
            .metrics
            .makespan;
        if latency == 1 {
            base = (m1, m2);
        }
        t.row(vec![
            latency.to_string(),
            m1.to_string(),
            m2.to_string(),
            format!("{:.2}x", m1 as f64 / base.0 as f64),
            format!("{:.2}x", m2 as f64 / base.1 as f64),
        ]);
    }
    t.note("Slowdown is relative to latency=1 for each motif. The design");
    t.note("choice DESIGN.md calls out: bounded communication buys latency");
    t.note("tolerance.");
    t
}

/// The fault-sweep workload (experiment A2): a token ring of servers. Each
/// server prints its number and forwards the token; the last one halts the
/// network. Every `send/2` in this application becomes a reliable `rsend`
/// under the Supervise motif with zero source changes.
pub const RING_APP: &str = r#"
    server([token(K)|In]) :- pass(K), server(In).
    server([halt|_]).
    pass(K) :- work(40), print(K), nodes(N), next(K, N).
    next(K, N) :- K < N | K1 := K + 1, send(K1, token(K1)).
    next(N, N) :- halt.
"#;

/// One row of the A2 fault sweep.
#[derive(Clone, Copy, Debug)]
pub struct FaultSweepPoint {
    pub drop_prob: f64,
    pub runs: u32,
    /// Tokens that should be printed across all runs (ring size × runs).
    pub expected: u64,
    /// Distinct tokens actually printed (at-least-once delivery counts
    /// once — a replayed handler does not inflate the rate).
    pub delivered: u64,
    /// Runs that reached `RunStatus::Completed`.
    pub completed: u32,
    pub mean_makespan: f64,
}

impl FaultSweepPoint {
    pub fn delivery_rate(&self) -> f64 {
        self.delivered as f64 / self.expected as f64
    }
}

/// Run the supervised ring across `seeds` at each drop probability. Both
/// the program seed and the fault seed vary with `seeds`, so each run sees
/// an independent loss pattern.
pub fn fault_sweep(ring: u32, probs: &[f64], seeds: &[u64]) -> Vec<FaultSweepPoint> {
    let prog = supervised_server()
        .apply_src(RING_APP)
        .expect("Supervise o Server applies");
    let goal = format!("create({ring}, token(1))");
    probs
        .iter()
        .map(|&p| {
            let mut delivered = 0u64;
            let mut completed = 0u32;
            let mut makespan_sum = 0u64;
            for &seed in seeds {
                let plan = FaultPlan::default().drop_prob(p).seed(seed);
                let cfg = MachineConfig::with_nodes(ring).seed(seed).faults(plan);
                let r = run_parsed_goal(&prog, &goal, cfg).expect("supervised ring runs");
                if r.report.status == RunStatus::Completed {
                    completed += 1;
                }
                for k in 1..=ring {
                    if r.report.output.contains(&k.to_string()) {
                        delivered += 1;
                    }
                }
                makespan_sum += r.report.metrics.makespan;
            }
            FaultSweepPoint {
                drop_prob: p,
                runs: seeds.len() as u32,
                expected: ring as u64 * seeds.len() as u64,
                delivered,
                completed,
                mean_makespan: makespan_sum as f64 / seeds.len() as f64,
            }
        })
        .collect()
}

/// A2: the Supervise motif under message loss — delivery rate and makespan
/// overhead vs. drop probability (ISSUE 3's fault sweep).
pub fn a2_faults() -> Table {
    let mut t = Table::new(
        "A2: supervised ring under message loss (6 servers, 10 seeds/point)",
        &[
            "drop p",
            "delivered",
            "rate",
            "completed",
            "mean makespan",
            "overhead",
        ],
    );
    let seeds: Vec<u64> = (1..=10).collect();
    let points = fault_sweep(6, &[0.0, 0.02, 0.05, 0.1, 0.2], &seeds);
    let base = points[0].mean_makespan;
    for pt in &points {
        t.row(vec![
            format!("{:.2}", pt.drop_prob),
            format!("{}/{}", pt.delivered, pt.expected),
            format!("{:.1}%", 100.0 * pt.delivery_rate()),
            format!("{}/{}", pt.completed, pt.runs),
            format!("{:.0}", pt.mean_makespan),
            format!("{:.2}x", pt.mean_makespan / base),
        ]);
    }
    t.note("Every send is acked with exponential-backoff retry; crashed or");
    t.note("silent servers restart from their wire (at-least-once). Rate");
    t.note("counts distinct tokens printed, so replays do not inflate it.");
    t
}

/// The consultable archive (§1: motif libraries are *"archives of
/// expertise that can be consulted, modified, and extended"*): named motif
/// library sources for `motif-bench show <name>`.
pub fn motif_source(name: &str) -> Option<(&'static str, String)> {
    Some(match name {
        "server" => ("Server (§3.2)", motifs::SERVER_LIBRARY.to_string()),
        "supervise" => (
            "Supervise (robustness: acked delivery, heartbeats, restart)",
            motifs::SUPERVISE_LIBRARY.to_string(),
        ),
        "tree1" => ("Tree1 (§3.4)", motifs::TREE1_LIBRARY.to_string()),
        "tree-reduce-2" => (
            "Tree-Reduce-2 (§3.5 / Figure 7)",
            motifs::TREE2_LIBRARY.to_string(),
        ),
        "scheduler" => (
            "Scheduler (ref [6])",
            motifs::scheduler::SCHEDULER_LIBRARY.to_string(),
        ),
        "scheduler-2" => (
            "Hierarchical scheduler (§1, reuse by modification)",
            motifs::scheduler::SCHEDULER2_LIBRARY.to_string(),
        ),
        "sched" => (
            "Sched / @task pragma (§2.2)",
            motifs::TASK_SCHED_LIBRARY.to_string(),
        ),
        "dc" => ("DivideAndConquer (§4)", motifs::dc::DC_LIBRARY.to_string()),
        "search" => ("Search (§4)", motifs::search::SEARCH_LIBRARY.to_string()),
        "grid" => ("Grid (§4)", motifs::grid::GRID_LIBRARY.to_string()),
        "graph" => (
            "Graph components (§4)",
            motifs::graph::GRAPH_LIBRARY.to_string(),
        ),
        "pipeline" => ("Pipeline", motifs::pipeline::PIPELINE_LIBRARY.to_string()),
        _ => return None,
    })
}

/// Names accepted by [`motif_source`].
pub const MOTIF_SOURCES: &[&str] = &[
    "server",
    "supervise",
    "tree1",
    "tree-reduce-2",
    "scheduler",
    "scheduler-2",
    "sched",
    "dc",
    "search",
    "grid",
    "graph",
    "pipeline",
];

/// Run status sanity helper shared by tests.
pub fn completed(r: &GoalResult) -> bool {
    r.report.status == RunStatus::Completed
}

/// Convenience: the names of all printable experiments.
pub const EXPERIMENTS: &[&str] = &[
    "fig1",
    "fig2",
    "fig4",
    "fig5",
    "fig7",
    "e1-balance",
    "e2-memory",
    "e2-memory-bytes",
    "e3-comm",
    "e4-speedup",
    "e5-loc",
    "e6-compose",
    "e7-scheduler",
    "e8-seqalign",
    "e9-future",
    "e10-pragma",
    "a1-latency",
    "a2-faults",
    "e8-sim",
    "e1-threads",
    "b1-parallel",
];

/// Run one experiment by name, returning its rendered output.
pub fn run_experiment(name: &str) -> Option<String> {
    Some(match name {
        "fig1" => fig1().render(),
        "fig2" => fig2().render(),
        "fig4" => fig4().render(),
        "fig5" => fig5(),
        "fig7" => fig7().render(),
        "e1-balance" => e1_balance().render(),
        "e2-memory" => e2_memory().render(),
        "e2-memory-bytes" => e2_memory_bytes().render(),
        "e3-comm" => e3_comm().render(),
        "e4-speedup" => e4_speedup().render(),
        "e5-loc" => e5_loc().render(),
        "e6-compose" => e6_compose().render(),
        "e7-scheduler" => e7_scheduler().render(),
        "e8-seqalign" => e8_seqalign().render(),
        "e9-future" => e9_future().render(),
        "e10-pragma" => e10_pragma().render(),
        "a1-latency" => a1_latency().render(),
        "a2-faults" => a2_faults().render(),
        "e8-sim" => e8_sim().render(),
        "e1-threads" => e1_threads().render(),
        "b1-parallel" => crate::parallel_bench::b1_parallel_table(false).render(),
        _ => return None,
    })
}
