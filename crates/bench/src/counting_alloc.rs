//! A counting global allocator for allocations-per-reduction measurements.
//!
//! The `motif-bench` binary installs [`CountingAllocator`] as its
//! `#[global_allocator]`; [`allocations`] then reports the running count of
//! heap allocations (including reallocs) with one relaxed atomic increment
//! of overhead per call. In processes that don't install it, the counter
//! simply stays at zero.
//!
//! (A size-class pooling layer was prototyped here and benchmarked at
//! parity with the system allocator — glibc's tcache already serves the
//! engine's small-block pattern from a thread-local free list — so the
//! simple pass-through stays.)

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

/// Total heap allocations made through [`CountingAllocator`] so far.
pub fn allocations() -> u64 {
    ALLOCATIONS.load(Ordering::Relaxed)
}

/// Pass-through to the system allocator that counts allocation events.
pub struct CountingAllocator;

// SAFETY: defers entirely to `System`; the atomic bump has no allocator
// side effects.
unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc_zeroed(layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }
}
