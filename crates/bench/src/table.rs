//! Plain-text table rendering for experiment output.

/// A titled table with headers and string rows.
#[derive(Clone, Debug)]
pub struct Table {
    pub title: String,
    pub headers: Vec<String>,
    pub rows: Vec<Vec<String>>,
    /// Free-form notes printed under the table (expected shape, caveats).
    pub notes: Vec<String>,
}

impl Table {
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Table {
        Table {
            title: title.into(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
            notes: Vec::new(),
        }
    }

    pub fn row(&mut self, cells: Vec<String>) -> &mut Self {
        assert_eq!(cells.len(), self.headers.len(), "row width mismatch");
        self.rows.push(cells);
        self
    }

    pub fn note(&mut self, note: impl Into<String>) -> &mut Self {
        self.notes.push(note.into());
        self
    }

    /// Render with aligned columns.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let sep: String = widths
            .iter()
            .map(|w| "-".repeat(w + 2))
            .collect::<Vec<_>>()
            .join("+");
        let fmt_row = |cells: &[String]| {
            cells
                .iter()
                .enumerate()
                .map(|(i, c)| format!(" {:<w$} ", c, w = widths[i]))
                .collect::<Vec<_>>()
                .join("|")
        };
        let mut out = format!("== {} ==\n", self.title);
        out.push_str(&fmt_row(&self.headers));
        out.push('\n');
        out.push_str(&sep);
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row));
            out.push('\n');
        }
        for n in &self.notes {
            out.push_str("  * ");
            out.push_str(n);
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned() {
        let mut t = Table::new("demo", &["a", "wide-header"]);
        t.row(vec!["1".into(), "2".into()]);
        t.row(vec!["100".into(), "x".into()]);
        t.note("a note");
        let s = t.render();
        assert!(s.contains("== demo =="));
        assert!(s.contains("wide-header"));
        assert!(s.contains("* a note"));
        // All data lines have the same width.
        let lines: Vec<&str> = s.lines().skip(1).take(4).collect();
        assert_eq!(lines[0].len(), lines[2].len());
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn rejects_ragged_rows() {
        let mut t = Table::new("demo", &["a", "b"]);
        t.row(vec!["1".into()]);
    }
}
