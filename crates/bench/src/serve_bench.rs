//! The `motif-bench serve-json` mode: the C-series load test for the
//! resident service (`strand-serve`).
//!
//! Each point hammers a freshly booted doubler service over **loopback
//! TCP** with a swarm of concurrent synthetic clients — every client is a
//! real connection (hence a real session region) issuing a fixed number of
//! requests and validating every reply. Three questions per burst size:
//!
//! * **completeness** — `lost` must be 0: every admitted request got its
//!   `OK` reply (BUSY backpressure answers are retried, and the retries
//!   are counted separately — a retry is not a loss).
//! * **latency/throughput** — p50/p99 round-trip microseconds over all
//!   requests, and completed requests per second over the burst wall time.
//! * **residency** — after the burst drains the engine must have *parked*
//!   (`idle_parks > 0`), not terminated, and session close must have
//!   reclaimed store slots (`vars_reclaimed`), which is what bounds a
//!   long-lived process. Both come from the service's own merged metrics.
//!
//! `--quick` runs small bursts for CI smoke; the full run's largest burst
//! is 1000 concurrent clients, matching the acceptance bar. On a
//! single-core host the numbers measure scheduling overhead as much as
//! the engine — `host_parallelism` is recorded in the snapshot so readers
//! can judge (the gate checks completeness and residency, which are
//! host-independent, plus sane latency ordering — not absolute speed).

use std::io::{BufRead, BufReader, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Barrier, Mutex};
use std::time::{Duration, Instant};
use strand_serve::{serve, MotifService, ServeBackend, ServeConfig, DOUBLER_APP};

/// One measured row: a burst of concurrent clients against a resident
/// service.
#[derive(Clone, Debug, PartialEq)]
pub struct ServePoint {
    pub scenario: String,
    /// Engine worker threads behind the service.
    pub threads: u32,
    pub clients: u64,
    /// Requests attempted (clients × requests-per-client).
    pub requests: u64,
    /// Requests answered `OK` with the correct value.
    pub completed: u64,
    /// Attempted minus completed — the zero-loss acceptance bar.
    pub lost: u64,
    /// `BUSY` backpressure answers absorbed by client retries.
    pub busy_retries: u64,
    pub p50_us: u64,
    pub p99_us: u64,
    pub throughput_rps: f64,
    /// Times the engine parked at global quiescence instead of exiting —
    /// nonzero proves the service went *idle*, not *terminated*.
    pub idle_parks: u64,
    /// Store slots reclaimed by session close — nonzero proves bounded
    /// growth across sessions.
    pub vars_reclaimed: u64,
    pub sessions_closed: u64,
}

/// Drive one client connection: `count` requests of `value`, validating
/// the doubled reply. Returns (latencies µs, completed, busy retries).
fn client_burst(addr: std::net::SocketAddr, start: &Barrier, count: u64) -> (Vec<u64>, u64, u64) {
    let stream = TcpStream::connect(addr).expect("connect to serve loop");
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .expect("set client timeout");
    let _ = stream.set_nodelay(true);
    let mut writer = stream.try_clone().expect("clone stream");
    let mut reader = BufReader::new(stream);
    start.wait();
    let mut latencies = Vec::with_capacity(count as usize);
    let mut completed = 0u64;
    let mut busy = 0u64;
    for k in 0..count {
        let value = 3 + k as i64;
        let want = format!("OK {}", value * 2);
        let t0 = Instant::now();
        // Honest load-test protocol: BUSY answers are backpressure, not
        // failure — wait the advertised delay and retry, still charging
        // the full wait to this request's latency.
        let mut tries = 0;
        loop {
            let frame = format!("{value}\n");
            if writer
                .write_all(frame.as_bytes())
                .and_then(|_| writer.flush())
                .is_err()
            {
                return (latencies, completed, busy);
            }
            let mut line = String::new();
            match reader.read_line(&mut line) {
                Ok(n) if n > 0 => {
                    let line = line.trim();
                    if line == want {
                        latencies.push(t0.elapsed().as_micros() as u64);
                        completed += 1;
                        break;
                    }
                    if let Some(ms) = line.strip_prefix("BUSY ") {
                        busy += 1;
                        tries += 1;
                        if tries > 100 {
                            break; // charge it as lost
                        }
                        let ms: u64 = ms.parse().unwrap_or(10);
                        std::thread::sleep(Duration::from_millis(ms.max(1)));
                        continue;
                    }
                    break; // ERR or a wrong value: lost
                }
                _ => return (latencies, completed, busy),
            }
        }
    }
    (latencies, completed, busy)
}

/// Run one burst against a fresh resident service and fold in the
/// service's own post-drain metrics. `supervise` composes `Supervise`
/// over the servers, so every request rides an acked `rsend` and the
/// heartbeat/retransmit deadlines live on the wall-clock timer wheel —
/// the measured delta against the plain series is the cost of residency
/// with a safety net.
fn burst_point(clients: u64, per_client: u64, supervise: bool) -> ServePoint {
    let cfg = ServeConfig {
        servers: 4,
        backend: ServeBackend::Parallel(0),
        supervise,
        ..ServeConfig::default()
    };
    let service = MotifService::start(DOUBLER_APP, cfg).expect("service boots");
    let threads = service.threads() as u32;
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind loopback");
    let addr = listener.local_addr().expect("ephemeral addr");
    let shutdown = Arc::new(AtomicBool::new(false));
    let serve_thread = {
        let shutdown = Arc::clone(&shutdown);
        std::thread::Builder::new()
            .name("serve-bench".to_string())
            .spawn(move || serve(listener, service, shutdown, Duration::from_secs(30)))
            .expect("spawn serve loop")
    };

    // Per-client outcome: (latencies µs, completed, busy retries).
    type ClientResult = (Vec<u64>, u64, u64);
    let start = Arc::new(Barrier::new(clients as usize + 1));
    let results: Arc<Mutex<Vec<ClientResult>>> = Arc::new(Mutex::new(Vec::new()));
    let mut handles = Vec::new();
    for _ in 0..clients {
        let start = Arc::clone(&start);
        let results = Arc::clone(&results);
        handles.push(
            std::thread::Builder::new()
                .name("serve-client".to_string())
                .stack_size(128 * 1024)
                .spawn(move || {
                    let r = client_burst(addr, &start, per_client);
                    results.lock().unwrap_or_else(|e| e.into_inner()).push(r);
                })
                .expect("spawn client"),
        );
    }
    start.wait();
    let t0 = Instant::now();
    for h in handles {
        let _ = h.join();
    }
    let wall = t0.elapsed();
    shutdown.store(true, Ordering::Release);
    let summary = serve_thread
        .join()
        .expect("serve loop joins")
        .expect("serve loop exits cleanly");

    let results = results.lock().unwrap_or_else(|e| e.into_inner());
    let mut latencies: Vec<u64> = results
        .iter()
        .flat_map(|(l, _, _)| l.iter().copied())
        .collect();
    latencies.sort_unstable();
    let completed: u64 = results.iter().map(|(_, c, _)| c).sum();
    let busy_retries: u64 = results.iter().map(|(_, _, b)| b).sum();
    let requests = clients * per_client;
    let pct = |p: f64| -> u64 {
        if latencies.is_empty() {
            return 0;
        }
        let idx = ((latencies.len() - 1) as f64 * p).round() as usize;
        latencies[idx]
    };
    let m = &summary.report.metrics;
    ServePoint {
        scenario: if supervise { "supervised" } else { "burst" }.to_string(),
        threads,
        clients,
        requests,
        completed,
        lost: requests - completed,
        busy_retries,
        p50_us: pct(0.50),
        p99_us: pct(0.99),
        throughput_rps: completed as f64 / wall.as_secs_f64().max(1e-9),
        idle_parks: m.idle_parks,
        vars_reclaimed: m.vars_reclaimed,
        sessions_closed: m.sessions_closed,
    }
}

/// Run the serve load series. `quick` keeps the bursts small for CI; the
/// full run's top burst is 1000 concurrent clients (the acceptance bar).
pub fn c1_serve(quick: bool) -> Vec<ServePoint> {
    strand_parallel::install();
    let bursts: &[(u64, u64)] = if quick {
        &[(8, 5), (64, 5)]
    } else {
        &[(16, 20), (256, 10), (1000, 5)]
    };
    bursts
        .iter()
        .map(|&(clients, per_client)| burst_point(clients, per_client, false))
        .collect()
}

/// The supervised variant of [`c1_serve`]: identical burst shapes, same
/// `serve-json v1` schema (the `scenario` field reads `"supervised"`), but
/// every request is delivered through `Supervise ∘ Server` with heartbeat,
/// retransmit and watch deadlines armed on the wall-clock wheel. Recorded
/// to its own snapshot so the plain baseline stays comparable across runs.
pub fn c1_serve_supervised(quick: bool) -> Vec<ServePoint> {
    strand_parallel::install();
    let bursts: &[(u64, u64)] = if quick {
        &[(8, 5), (64, 5)]
    } else {
        &[(16, 20), (256, 10), (1000, 5)]
    };
    bursts
        .iter()
        .map(|&(clients, per_client)| burst_point(clients, per_client, true))
        .collect()
}

/// Serialize serve points as JSON (no external dependencies).
pub fn render_serve_json(points: &[ServePoint]) -> String {
    let host = std::thread::available_parallelism().map_or(1, |n| n.get());
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str("  \"schema\": \"motif-bench serve-json v1\",\n");
    out.push_str(&format!("  \"host_parallelism\": {host},\n"));
    out.push_str("  \"points\": [\n");
    for (i, p) in points.iter().enumerate() {
        let comma = if i + 1 == points.len() { "" } else { "," };
        out.push_str(&format!(
            "    {{\"scenario\": \"{}\", \"threads\": {}, \"clients\": {}, \
             \"requests\": {}, \"completed\": {}, \"lost\": {}, \
             \"busy_retries\": {}, \"p50_us\": {}, \"p99_us\": {}, \
             \"throughput_rps\": {:.1}, \"idle_parks\": {}, \
             \"vars_reclaimed\": {}, \"sessions_closed\": {}}}{comma}\n",
            p.scenario,
            p.threads,
            p.clients,
            p.requests,
            p.completed,
            p.lost,
            p.busy_retries,
            p.p50_us,
            p.p99_us,
            p.throughput_rps,
            p.idle_parks,
            p.vars_reclaimed,
            p.sessions_closed
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

/// Strict parser for [`render_serve_json`] output — the same schema-drift
/// tripwire as the other series parsers.
pub fn parse_serve_json(json: &str) -> Result<Vec<ServePoint>, String> {
    fn raw_field<'a>(s: &'a str, key: &str) -> Result<&'a str, String> {
        let pat = format!("\"{key}\": ");
        let start = s
            .find(&pat)
            .ok_or_else(|| format!("missing field {key:?}"))?
            + pat.len();
        let rest = &s[start..];
        let end = rest
            .find([',', '}', '\n'])
            .ok_or_else(|| format!("unterminated field {key:?}"))?;
        Ok(rest[..end].trim())
    }
    fn string_field(s: &str, key: &str) -> Result<String, String> {
        let raw = raw_field(s, key)?;
        raw.strip_prefix('"')
            .and_then(|r| r.strip_suffix('"'))
            .map(str::to_string)
            .ok_or_else(|| format!("field {key:?} is not a string: {raw}"))
    }
    fn num_field<T: std::str::FromStr>(s: &str, key: &str) -> Result<T, String> {
        raw_field(s, key)?
            .parse()
            .map_err(|_| format!("field {key:?} is not a number"))
    }

    if !json.contains("\"schema\": \"motif-bench serve-json v1\"") {
        return Err("missing or unknown schema".to_string());
    }
    let mut points = Vec::new();
    for line in json.lines().map(str::trim) {
        if !line.starts_with("{\"scenario\"") {
            continue;
        }
        points.push(ServePoint {
            scenario: string_field(line, "scenario")?,
            threads: num_field(line, "threads")?,
            clients: num_field(line, "clients")?,
            requests: num_field(line, "requests")?,
            completed: num_field(line, "completed")?,
            lost: num_field(line, "lost")?,
            busy_retries: num_field(line, "busy_retries")?,
            p50_us: num_field(line, "p50_us")?,
            p99_us: num_field(line, "p99_us")?,
            throughput_rps: num_field(line, "throughput_rps")?,
            idle_parks: num_field(line, "idle_parks")?,
            vars_reclaimed: num_field(line, "vars_reclaimed")?,
            sessions_closed: num_field(line, "sessions_closed")?,
        });
    }
    if points.is_empty() {
        return Err("no points parsed".to_string());
    }
    Ok(points)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Vec<ServePoint> {
        vec![
            ServePoint {
                scenario: "burst".to_string(),
                threads: 4,
                clients: 16,
                requests: 320,
                completed: 320,
                lost: 0,
                busy_retries: 0,
                p50_us: 180,
                p99_us: 2400,
                throughput_rps: 5123.4,
                idle_parks: 7,
                vars_reclaimed: 960,
                sessions_closed: 16,
            },
            ServePoint {
                scenario: "supervised".to_string(),
                threads: 4,
                clients: 1000,
                requests: 5000,
                completed: 5000,
                lost: 0,
                busy_retries: 12,
                p50_us: 900,
                p99_us: 41000,
                throughput_rps: 2100.0,
                idle_parks: 3,
                vars_reclaimed: 15000,
                sessions_closed: 1000,
            },
        ]
    }

    #[test]
    fn json_schema_round_trips() {
        let points = sample();
        let json = render_serve_json(&points);
        let parsed = parse_serve_json(&json).expect("round-trip parses");
        assert_eq!(parsed, points);
        assert_eq!(render_serve_json(&parsed), json);
    }

    #[test]
    fn parser_rejects_schema_drift() {
        let json = render_serve_json(&sample());
        assert!(parse_serve_json(&json.replace("\"lost\"", "\"dropped\"")).is_err());
        assert!(parse_serve_json("{}").is_err());
    }

    #[test]
    fn committed_snapshot_parses_and_meets_targets() {
        // The repo-root BENCH_serve.json is a recorded artifact; if it
        // exists it must parse and must still show the acceptance bar:
        // a ≥1000-client burst, zero lost replies anywhere, the engine
        // parking idle between bursts, session reclamation actually
        // freeing slots, and coherent percentiles.
        let Ok(json) = std::fs::read_to_string(concat!(
            env!("CARGO_MANIFEST_DIR"),
            "/../../BENCH_serve.json"
        )) else {
            return;
        };
        let points = parse_serve_json(&json).expect("committed snapshot parses");
        assert!(
            points.iter().any(|p| p.clients >= 1000),
            "snapshot is missing the ≥1000-client burst"
        );
        for p in &points {
            assert_eq!(
                p.lost, 0,
                "{} clients lost {} of {} replies",
                p.clients, p.lost, p.requests
            );
            assert_eq!(p.completed, p.requests);
            assert_eq!(p.sessions_closed, p.clients, "sessions leaked");
            assert!(
                p.idle_parks > 0,
                "{} clients: the engine never parked idle",
                p.clients
            );
            assert!(
                p.vars_reclaimed > 0,
                "{} clients: session close reclaimed nothing",
                p.clients
            );
            assert!(p.p50_us <= p.p99_us, "percentiles out of order");
            assert!(p.throughput_rps > 0.0);
        }
    }
}
