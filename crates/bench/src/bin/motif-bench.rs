//! Regenerate the experiment tables of EXPERIMENTS.md.
//!
//! Usage: `motif-bench [experiment...]` — with no arguments, runs them all.
//! Experiment names: see `motif-bench list`. Machine-readable outputs
//! (`machine-json`, `parallel-json`) default to files under `out/`, which
//! is gitignored.

/// Counting allocator so `machine-json` can report allocations/reduction.
#[global_allocator]
static ALLOC: bench::counting_alloc::CountingAllocator = bench::counting_alloc::CountingAllocator;

fn ensure_parent(path: &str) {
    if let Some(dir) = std::path::Path::new(path).parent() {
        if !dir.as_os_str().is_empty() {
            std::fs::create_dir_all(dir).expect("create output directory");
        }
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.first().map(String::as_str) == Some("machine-json") {
        // Machine hot-path throughput, written as JSON with the first
        // recording preserved as the comparison baseline.
        let path = args
            .get(1)
            .map(String::as_str)
            .unwrap_or("out/BENCH_machine.json");
        ensure_parent(path);
        let previous = std::fs::read_to_string(path).ok();
        let reports = bench::machine_bench::run_machine_bench(previous.as_deref());
        let json = bench::machine_bench::render_json(&reports);
        std::fs::write(path, &json).expect("write bench json");
        print!("{json}");
        for r in &reports {
            eprintln!(
                "{:<16} {:>12.0} red/s ({:>5.2}x baseline), {:>6.2} allocs/red",
                r.name,
                r.reductions_per_sec,
                r.speedup_vs_baseline(),
                r.allocs_per_reduction
            );
        }
        return;
    }
    if args.first().map(String::as_str) == Some("parallel-json") {
        // B-series: wall-clock speedup of the multi-threaded backend.
        // `--quick` is the CI smoke configuration (small workloads, 2
        // threads); the full run sweeps 1/2/4/8 threads.
        // `--require-cores` refuses to record on a single-core host —
        // parallel speedups measured there are meaningless, so the CI
        // recording job uses it to fail loudly instead of committing noise.
        let quick = args.iter().any(|a| a == "--quick");
        let require_cores = args.iter().any(|a| a == "--require-cores");
        let host = std::thread::available_parallelism().map_or(1, |n| n.get());
        if host <= 1 {
            if require_cores {
                eprintln!(
                    "error: refusing to record the B-series on a single-core host \
                     (--require-cores); parallel speedups here measure scheduling \
                     overhead, not parallelism"
                );
                std::process::exit(3);
            }
            eprintln!(
                "WARNING: single-core host — B-series speedups below are NOT \
                 parallel speedups; the snapshot is annotated host_parallelism: 1 \
                 and should not be committed as a recording"
            );
        }
        let path = args
            .get(1)
            .filter(|a| !a.starts_with("--"))
            .map(String::as_str)
            .unwrap_or("out/BENCH_parallel.json");
        ensure_parent(path);
        let points = bench::b1_parallel(quick);
        let json = bench::render_parallel_json(&points);
        std::fs::write(path, &json).expect("write parallel bench json");
        print!("{json}");
        for p in &points {
            eprintln!(
                "{:<16} {:<10} {} threads: {:>9.2} ms ({:>5.2}x)",
                p.workload,
                p.backend,
                p.threads,
                p.wall_ns as f64 / 1e6,
                p.speedup
            );
        }
        return;
    }
    if args.first().map(String::as_str) == Some("compiled-json") {
        // Compiled-tier series: interpreted vs compiled rule execution on
        // the same scheduler. `--quick` caps the workloads for CI smoke.
        let quick = args.iter().any(|a| a == "--quick");
        let path = args
            .get(1)
            .filter(|a| !a.starts_with("--"))
            .map(String::as_str)
            .unwrap_or("out/BENCH_compiled.json");
        ensure_parent(path);
        let points = bench::b2_compiled(quick);
        let json = bench::render_compiled_json(&points);
        std::fs::write(path, &json).expect("write compiled bench json");
        print!("{json}");
        for p in &points {
            eprintln!(
                "{:<16} {:<12} {:<10} {:>9.2} ms, {:>8} red ({:>5.2}x)",
                p.workload,
                p.exec,
                p.backend,
                p.wall_ns as f64 / 1e6,
                p.reductions,
                p.speedup
            );
        }
        return;
    }
    if args.first().map(String::as_str) == Some("chaos-json") {
        // Robustness series: the supervised ring under the parallel
        // backend's wall-clock fault injection (shard kill, batch
        // drop/duplication). `--quick` takes one sample per cell.
        let quick = args.iter().any(|a| a == "--quick");
        let path = args
            .get(1)
            .filter(|a| !a.starts_with("--"))
            .map(String::as_str)
            .unwrap_or("out/BENCH_chaos.json");
        ensure_parent(path);
        let points = bench::b3_chaos(quick);
        let json = bench::render_chaos_json(&points);
        std::fs::write(path, &json).expect("write chaos bench json");
        print!("{json}");
        for p in &points {
            eprintln!(
                "{:<14} {} threads: {:>8.2} ms, {:>7} red ({:>5.2}x), \
                 delivered {}/{}, restarts {}",
                p.scenario,
                p.threads,
                p.wall_ns as f64 / 1e6,
                p.reductions,
                p.overhead,
                p.delivered,
                p.expected,
                p.restarts
            );
        }
        return;
    }
    if args.first().map(String::as_str) == Some("serve-json") {
        // C-series: the resident service under concurrent TCP load.
        // `--quick` runs small bursts for CI smoke; the full run's top
        // burst is 1000 concurrent clients. `--supervised` records the
        // Supervise ∘ Server variant (acked sends, wall-clock heartbeat
        // and watch deadlines) — same schema, `scenario: "supervised"`,
        // conventionally written to its own snapshot so the plain
        // baseline stays comparable. `--require-cores` refuses to record
        // on a single-core host, mirroring the B-series recorder
        // (loss/residency hold anywhere, but latency recorded there is
        // scheduling noise).
        let quick = args.iter().any(|a| a == "--quick");
        let supervised = args.iter().any(|a| a == "--supervised");
        let require_cores = args.iter().any(|a| a == "--require-cores");
        let host = std::thread::available_parallelism().map_or(1, |n| n.get());
        if host <= 1 {
            if require_cores {
                eprintln!(
                    "error: refusing to record the serve series on a single-core \
                     host (--require-cores); latencies there measure thread \
                     scheduling, not the service"
                );
                std::process::exit(3);
            }
            eprintln!(
                "WARNING: single-core host — serve latencies below are dominated \
                 by scheduling; the snapshot is annotated host_parallelism: 1"
            );
        }
        let path = args
            .get(1)
            .filter(|a| !a.starts_with("--"))
            .map(String::as_str)
            .unwrap_or(if supervised {
                "out/BENCH_serve_supervised.json"
            } else {
                "out/BENCH_serve.json"
            });
        ensure_parent(path);
        let points = if supervised {
            bench::c1_serve_supervised(quick)
        } else {
            bench::c1_serve(quick)
        };
        let json = bench::render_serve_json(&points);
        std::fs::write(path, &json).expect("write serve bench json");
        print!("{json}");
        for p in &points {
            eprintln!(
                "{:>5} clients × {:>2} req: {:>6}/{:<6} ok ({} lost), p50 {:>7} µs, \
                 p99 {:>8} µs, {:>9.1} req/s, {} parks, {} reclaimed",
                p.clients,
                p.requests / p.clients.max(1),
                p.completed,
                p.requests,
                p.lost,
                p.p50_us,
                p.p99_us,
                p.throughput_rps,
                p.idle_parks,
                p.vars_reclaimed
            );
        }
        return;
    }
    if args.iter().any(|a| a == "list" || a == "--list") {
        for name in bench::EXPERIMENTS {
            println!("{name}");
        }
        return;
    }
    if args.first().map(String::as_str) == Some("show") {
        // Consult the archive: print a motif library's source.
        match args.get(1).and_then(|n| bench::motif_source(n)) {
            Some((title, src)) => {
                println!("%% {title}\n{src}");
            }
            None => {
                eprintln!("usage: motif-bench show <motif>; motifs:");
                for m in bench::MOTIF_SOURCES {
                    eprintln!("  {m}");
                }
                std::process::exit(2);
            }
        }
        return;
    }
    let selected: Vec<&str> = if args.is_empty() {
        bench::EXPERIMENTS.to_vec()
    } else {
        args.iter().map(String::as_str).collect()
    };
    for name in selected {
        match bench::run_experiment(name) {
            Some(output) => println!("{output}"),
            None => {
                eprintln!("unknown experiment `{name}`; try `motif-bench list`");
                std::process::exit(2);
            }
        }
    }
}
