//! Regenerate the experiment tables of EXPERIMENTS.md.
//!
//! Usage: `motif-bench [experiment...]` — with no arguments, runs them all.
//! Experiment names: see `motif-bench list`.

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "list" || a == "--list") {
        for name in bench::EXPERIMENTS {
            println!("{name}");
        }
        return;
    }
    if args.first().map(String::as_str) == Some("show") {
        // Consult the archive: print a motif library's source.
        match args.get(1).and_then(|n| bench::motif_source(n)) {
            Some((title, src)) => {
                println!("%% {title}\n{src}");
            }
            None => {
                eprintln!("usage: motif-bench show <motif>; motifs:");
                for m in bench::MOTIF_SOURCES {
                    eprintln!("  {m}");
                }
                std::process::exit(2);
            }
        }
        return;
    }
    let selected: Vec<&str> = if args.is_empty() {
        bench::EXPERIMENTS.to_vec()
    } else {
        args.iter().map(String::as_str).collect()
    };
    for name in selected {
        match bench::run_experiment(name) {
            Some(output) => println!("{output}"),
            None => {
                eprintln!("unknown experiment `{name}`; try `motif-bench list`");
                std::process::exit(2);
            }
        }
    }
}
