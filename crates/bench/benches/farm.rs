//! Criterion bench: task farm under all placement policies (experiments
//! E1/E7's real-thread companion).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use skeletons::{farm, Policy, Pool};

fn busy_work(n: u64) -> u64 {
    // A tiny deterministic spin (prevents the optimizer removing the task).
    let mut acc = n;
    for i in 0..(n % 64 + 16) {
        acc = acc.wrapping_mul(6364136223846793005).wrapping_add(i);
    }
    acc
}

fn bench_farm(c: &mut Criterion) {
    let mut g = c.benchmark_group("farm");
    g.sample_size(15);
    for policy in [
        Policy::StaticBlock,
        Policy::StaticCyclic,
        Policy::Random(3),
        Policy::Demand,
        Policy::Stealing,
    ] {
        g.bench_with_input(
            BenchmarkId::new("policy", format!("{policy:?}")),
            &policy,
            |b, &policy| {
                let pool = Pool::new(4, matches!(policy, Policy::Stealing));
                b.iter(|| farm(&pool, policy, (0..512u64).collect(), busy_work));
                pool.shutdown();
            },
        );
    }
    g.finish();
}

criterion_group!(benches, bench_farm);
criterion_main!(benches);
