//! Criterion bench: the future-work motifs at real-thread level —
//! divide-and-conquer mergesort and the 1-D stencil (experiment E9).

use criterion::{criterion_group, criterion_main, Criterion};
use skeletons::dc::{run, run_seq, SortProblem};
use skeletons::pool::Pool;
use skeletons::stencil::{stencil_1d, stencil_1d_seq};
use strand_core::SplitMix64;

fn random_vec(n: usize, seed: u64) -> Vec<i64> {
    let mut rng = SplitMix64::new(seed);
    (0..n).map(|_| rng.next_below(1_000_000) as i64).collect()
}

fn bench_sort_stencil(c: &mut Criterion) {
    let mut g = c.benchmark_group("sort_stencil");
    g.sample_size(10);

    g.bench_function("mergesort_seq_50k", |b| {
        b.iter(|| run_seq(SortProblem(random_vec(50_000, 3))))
    });
    g.bench_function("mergesort_dc_50k", |b| {
        let pool = Pool::new(4, true);
        b.iter(|| run(&pool, SortProblem(random_vec(50_000, 3))));
        pool.shutdown();
    });

    let init: Vec<f64> = (0..4096).map(|i| (i % 17) as f64).collect();
    g.bench_function("stencil_seq_4096x50", |b| {
        b.iter(|| stencil_1d_seq(&init, 50))
    });
    g.bench_function("stencil_par_4096x50", |b| {
        let pool = Pool::new(4, true);
        b.iter(|| stencil_1d(&pool, init.clone(), 50));
        pool.shutdown();
    });
    g.finish();
}

criterion_group!(benches, bench_sort_stencil);
criterion_main!(benches);
