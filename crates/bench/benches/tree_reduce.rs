//! Criterion bench: typed tree-reduction skeletons under the three
//! labelings (experiment E4's real-thread companion).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use skeletons::{int_eval, random_int_tree, reduce, Labeling, Pool};

fn bench_tree(c: &mut Criterion) {
    let mut g = c.benchmark_group("tree_reduce");
    g.sample_size(15);
    let workers = 4;
    for labeling in [Labeling::Random(7), Labeling::Paper(7), Labeling::Static] {
        g.bench_with_input(
            BenchmarkId::new("labeling", format!("{labeling:?}")),
            &labeling,
            |b, &labeling| {
                let pool = Pool::new(workers, false);
                b.iter(|| {
                    reduce(&pool, random_int_tree(256, 5), labeling, |op, l, r| {
                        int_eval(op, l, r)
                    })
                });
                pool.shutdown();
            },
        );
    }
    g.finish();
}

criterion_group!(benches, bench_tree);
criterion_main!(benches);
