//! Criterion bench: end-to-end motif applications on the simulator —
//! the graph motif (E9), the task-pragma scheduler (E10), and the full
//! in-simulator alignment (E8-sim).

use criterion::{criterion_group, criterion_main, Criterion};
use strand_machine::{run_parsed_goal, MachineConfig};

fn bench_motif_suite(c: &mut Criterion) {
    let mut g = c.benchmark_group("motif_suite");
    g.sample_size(10);

    // Graph components: ring of 24 vertices on 4 servers.
    g.bench_function("graph_components_ring24", |b| {
        let edges: Vec<(u32, u32)> = (1..24).map(|i| (i, i + 1)).chain([(24, 1)]).collect();
        let prog = motifs::graph::graph_components()
            .apply_src("noop(1).")
            .unwrap();
        let goal = format!(
            "create(4, cc(24, {}, Final))",
            motifs::graph::edges_src(&edges)
        );
        b.iter(|| run_parsed_goal(&prog, &goal, MachineConfig::with_nodes(4).seed(1)).unwrap())
    });

    // Task-pragma scheduler: 40 skewed tasks on 5 servers.
    g.bench_function("task_pragma_skewed40", |b| {
        const APP: &str = r#"
            gen(0, V) :- V := 0.
            gen(N, V) :- N > 0 |
                cost(N, C), burn(C, V1)@task,
                N1 := N - 1, gen(N1, V2), add(V1, V2, V).
            cost(N, C) :- M := N mod 13, C := 30 + M * M * M.
            burn(C, V) :- work(C), V := 1.
            add(V1, V2, V) :- V := V1 + V2.
        "#;
        let prog = motifs::task_scheduler_with_entries(&[("gen", 2)])
            .apply_src(APP)
            .unwrap();
        let goal = motifs::boot_goal(5, "gen", &["40", "V"]);
        b.iter(|| run_parsed_goal(&prog, &goal, MachineConfig::with_nodes(5).seed(13)).unwrap())
    });

    // In-simulator MSA with the native aligner (8 sequences).
    g.bench_function("msa_in_simulator_8", |b| {
        use seqalign::{guide_tree, guide_tree_src, register_align_node, ScoreParams, ALIGN_EVAL};
        use strand_machine::{ast_to_term, Machine};
        use strand_parse::{compile_program, parse_term};
        let fam = seqalign::generate_family(&seqalign::FamilyParams {
            leaves: 8,
            ancestral_len: 60,
            seed: 21,
            ..Default::default()
        });
        let guide = guide_tree(&fam.sequences, &ScoreParams::default());
        let tree_src = guide_tree_src(&guide, &fam.sequences);
        let program = motifs::tree_reduce_2().apply_src(ALIGN_EVAL).unwrap();
        let compiled = compile_program(&program).unwrap();
        let goal_src = format!("create(4, tr2({tree_src}, Value))");
        b.iter(|| {
            let mut machine = Machine::new(compiled.clone(), MachineConfig::with_nodes(4).seed(4));
            register_align_node(&mut machine, ScoreParams::default(), 8);
            let goal_ast = parse_term(&goal_src).unwrap();
            let mut vars = std::collections::BTreeMap::new();
            let goal = ast_to_term(&goal_ast, &mut machine, &mut vars);
            machine.start(goal);
            machine.run().unwrap()
        })
    });

    g.finish();
}

criterion_group!(benches, bench_motif_suite);
criterion_main!(benches);
