//! Criterion bench: the sequence-alignment application (experiment E8) —
//! pairwise alignment, guide-tree construction, and full progressive MSA
//! sequential vs. skeleton-parallel.

use criterion::{criterion_group, criterion_main, Criterion};
use seqalign::{
    align_family_parallel, align_family_seq, align_profiles, generate_family, FamilyParams,
    Profile, ScoreParams,
};
use skeletons::{Labeling, Pool};

fn bench_seqalign(c: &mut Criterion) {
    let mut g = c.benchmark_group("seqalign");
    g.sample_size(10);
    let p = ScoreParams::default();
    let fam = generate_family(&FamilyParams {
        leaves: 12,
        ancestral_len: 100,
        seed: 8,
        ..Default::default()
    });

    g.bench_function("pairwise_nw_100bp", |b| {
        let a = Profile::from_sequence(&fam.sequences[0]);
        let q = Profile::from_sequence(&fam.sequences[1]);
        b.iter(|| align_profiles(&a, &q, &p))
    });

    g.bench_function("msa_sequential_12", |b| {
        b.iter(|| align_family_seq(&fam.sequences, &p))
    });

    for labeling in [Labeling::Random(8), Labeling::Paper(8)] {
        g.bench_function(format!("msa_parallel_12_{labeling:?}"), |b| {
            let pool = Pool::new(4, false);
            b.iter(|| align_family_parallel(&pool, &fam.sequences, &p, labeling));
            pool.shutdown();
        });
    }
    g.finish();
}

criterion_group!(benches, bench_seqalign);
criterion_main!(benches);
