//! Criterion bench: abstract-machine reduction throughput and the
//! simulator costs behind every experiment table.

use criterion::{criterion_group, criterion_main, Criterion};
use strand_machine::{run_goal, MachineConfig};

fn bench_machine(c: &mut Criterion) {
    let mut g = c.benchmark_group("machine");
    g.sample_size(20);

    // Raw reduction throughput: a counting loop.
    let count_src = "count(0). count(N) :- N > 0 | N1 := N - 1, count(N1).";
    g.bench_function("count_10k_reductions", |b| {
        b.iter(|| {
            run_goal(count_src, "count(5000)", MachineConfig::default()).unwrap();
        })
    });

    // Figure 1 producer/consumer with suspension traffic.
    let fig1 = r#"
        go(N) :- producer(N, Xs, sync), consumer(Xs).
        producer(N, Xs, sync) :- N > 0 |
            Xs := [X|Xs1], N1 := N - 1, producer(N1, Xs1, X).
        producer(0, Xs, _) :- Xs := [].
        consumer([X|Xs]) :- X := sync, consumer(Xs).
        consumer([]).
    "#;
    g.bench_function("fig1_producer_consumer_256", |b| {
        b.iter(|| run_goal(fig1, "go(256)", MachineConfig::default()).unwrap())
    });

    // Tree-Reduce-1 end to end (transform + compile + simulate).
    g.bench_function("tree_reduce_1_leaves64_p4", |b| {
        let program = motifs::tree_reduce_1()
            .apply_src(motifs::ARITH_EVAL)
            .unwrap();
        let tree = motifs::random_tree_src(64, 3);
        let goal = format!("create(4, reduce({tree}, Value))");
        b.iter(|| {
            strand_machine::run_parsed_goal(&program, &goal, MachineConfig::with_nodes(4).seed(3))
                .unwrap()
        })
    });

    // Tree-Reduce-2 on the same workload.
    g.bench_function("tree_reduce_2_leaves64_p4", |b| {
        let program = motifs::tree_reduce_2()
            .apply_src(motifs::ARITH_EVAL)
            .unwrap();
        let tree = motifs::random_tree_src(64, 3);
        let goal = format!("create(4, tr2({tree}, Value))");
        b.iter(|| {
            strand_machine::run_parsed_goal(&program, &goal, MachineConfig::with_nodes(4).seed(3))
                .unwrap()
        })
    });

    // Motif application cost (transformation + linking, no execution).
    g.bench_function("compose_tree_reduce_1", |b| {
        b.iter(|| {
            motifs::tree_reduce_1()
                .apply_src(motifs::ARITH_EVAL)
                .unwrap()
        })
    });

    g.finish();
}

criterion_group!(benches, bench_machine);
criterion_main!(benches);
