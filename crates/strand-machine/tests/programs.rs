//! Scenario tests: classic concurrent-logic programs running on the
//! abstract machine — the kind of code the paper's §2.1 presents as the
//! idiom of the language (streams, dataflow, incremental structures).

use strand_machine::{run_goal, GoalResult, MachineConfig, RunStatus};

fn run(src: &str, goal: &str) -> GoalResult {
    run_goal(src, goal, MachineConfig::default()).expect("program runs")
}

#[test]
fn naive_reverse() {
    let src = r#"
        rev([], R) :- R := [].
        rev([X|Xs], R) :- rev(Xs, R1), app(R1, [X], R).
        app([], Ys, Zs) :- Zs := Ys.
        app([X|Xs], Ys, Zs) :- Zs := [X|Z1], app(Xs, Ys, Z1).
    "#;
    let r = run(src, "rev([1, 2, 3, 4, 5], R)");
    assert_eq!(r.bindings["R"].to_string(), "[5,4,3,2,1]");
}

#[test]
fn quicksort_with_difference_lists() {
    let src = r#"
        qsort(Xs, Ys) :- qs(Xs, Ys, []).
        qs([], Ys, Ys0) :- Ys := Ys0.
        qs([X|Xs], Ys, Ys0) :-
            part(Xs, X, S, L),
            qs(S, Ys, [X|Ys1]),
            qs(L, Ys1, Ys0).
        part([], _, S, L) :- S := [], L := [].
        part([Y|Ys], X, S, L) :- Y =< X | S := [Y|S1], part(Ys, X, S1, L).
        part([Y|Ys], X, S, L) :- Y > X | L := [Y|L1], part(Ys, X, S, L1).
    "#;
    let r = run(src, "qsort([5, 3, 9, 1, 4, 1, 8], R)");
    assert_eq!(r.bindings["R"].to_string(), "[1,1,3,4,5,8,9]");
    assert_eq!(run(src, "qsort([], R)").bindings["R"].to_string(), "[]");
}

#[test]
fn sieve_of_eratosthenes_over_streams() {
    // The canonical stream program: integers flow through a growing chain
    // of filter processes.
    let src = r#"
        primes(Max, Ps) :- ints(2, Max, Ns), sieve(Ns, Ps).
        ints(K, Max, Ns) :- K =< Max | Ns := [K|N1], K1 := K + 1, ints(K1, Max, N1).
        ints(K, Max, Ns) :- K > Max | Ns := [].
        sieve([], Ps) :- Ps := [].
        sieve([P|Ns], Ps) :-
            Ps := [P|P1],
            filter(Ns, P, Rest),
            sieve(Rest, P1).
        filter([], _, Rest) :- Rest := [].
        filter([N|Ns], P, Rest) :-
            M := N mod P,
            keep(M, N, Ns, P, Rest).
        keep(0, _, Ns, P, Rest) :- filter(Ns, P, Rest).
        keep(M, N, Ns, P, Rest) :- M > 0 |
            Rest := [N|R1], filter(Ns, P, R1).
    "#;
    let r = run(src, "primes(30, Ps)");
    assert_eq!(r.bindings["Ps"].to_string(), "[2,3,5,7,11,13,17,19,23,29]");
}

#[test]
fn fibonacci_with_dataflow_joins() {
    let src = r#"
        fib(N, V) :- N < 2 | V := N.
        fib(N, V) :- N >= 2 |
            N1 := N - 1, N2 := N - 2,
            fib(N1, V1), fib(N2, V2),
            V := V1 + V2.
    "#;
    assert_eq!(run(src, "fib(15, V)").bindings["V"].to_string(), "610");
}

#[test]
fn stream_transducer_chain_across_nodes() {
    // map(×2) → map(+1) across three virtual nodes.
    let src = r#"
        go(N, Out) :- gen(N, S1), dbl(S1, S2)@2, inc(S2, Out)@3.
        gen(0, S) :- S := [].
        gen(N, S) :- N > 0 | S := [N|S1], N1 := N - 1, gen(N1, S1).
        dbl([], O) :- O := [].
        dbl([X|Xs], O) :- Y := X * 2, O := [Y|O1], dbl(Xs, O1).
        inc([], O) :- O := [].
        inc([X|Xs], O) :- Y := X + 1, O := [Y|O1], inc(Xs, O1).
    "#;
    let r = run_goal(src, "go(4, Out)", MachineConfig::with_nodes(3)).unwrap();
    assert_eq!(r.bindings["Out"].to_string(), "[9,7,5,3]");
    assert!(r.report.metrics.total_messages() > 0);
}

#[test]
fn errors_collected_when_fail_fast_off() {
    let src = r#"
        go :- bad(1), fine(X), use(X).
        bad(N) :- N := 2.
        fine(X) :- X := ok.
        use(_).
    "#;
    let cfg = MachineConfig {
        fail_fast: false,
        ..Default::default()
    };
    let r = run_goal(src, "go", cfg).unwrap();
    assert_eq!(r.report.errors.len(), 1, "{:?}", r.report.errors);
    // The rest of the program still completed.
    assert_eq!(r.report.status, RunStatus::Completed);
}

#[test]
fn mutual_recursion_and_deep_structures() {
    let src = r#"
        evens(0, E) :- E := yes.
        evens(N, E) :- N > 0 | N1 := N - 1, odds(N1, E).
        odds(0, E) :- E := no.
        odds(N, E) :- N > 0 | N1 := N - 1, evens(N1, E).
    "#;
    assert_eq!(run(src, "evens(100, E)").bindings["E"].to_string(), "yes");
    assert_eq!(run(src, "evens(101, E)").bindings["E"].to_string(), "no");
}

#[test]
fn float_arithmetic_flows() {
    let src = "avg(A, B, M) :- M := (A + B) / 2.";
    let r = run(src, "avg(1.5, 2.5, M)");
    assert_eq!(r.bindings["M"].to_string(), "2.0");
    // Mixed int/float promotes.
    let r = run(src, "avg(1, 2.0, M)");
    assert_eq!(r.bindings["M"].to_string(), "1.5");
}

#[test]
fn bounded_buffer_protocol() {
    // A demand-driven bounded buffer: the consumer sends K initial credits;
    // the producer emits one element per credit.
    let src = r#"
        go(N, K, Out) :-
            credits(K, Cs, Tail),
            producer(N, Cs, Xs),
            consumer(Xs, Tail, Out).
        credits(0, Cs, Tail) :- Cs = Tail.
        credits(K, Cs, Tail) :- K > 0 |
            Cs := [credit|C1], K1 := K - 1, credits(K1, C1, Tail).
        producer(0, _, Xs) :- Xs := [].
        producer(N, [credit|Cs], Xs) :- N > 0 |
            Xs := [N|X1], N1 := N - 1, producer(N1, Cs, X1).
        consumer([], Tail, Out) :- Tail = [], Out := [].
        consumer([X|Xs], Tail, Out) :-
            Tail := [credit|T1],
            Out := [X|O1],
            consumer(Xs, T1, O1).
    "#;
    let r = run(src, "go(6, 2, Out)");
    assert_eq!(r.bindings["Out"].to_string(), "[6,5,4,3,2,1]");
    assert!(r.report.status == RunStatus::Completed);
}

#[test]
fn large_program_within_budget() {
    // 30k reductions of list building: exercise the scheduler's throughput
    // path and the budget guard's headroom.
    let src = r#"
        build(0, L) :- L := [].
        build(N, L) :- N > 0 | L := [N|L1], N1 := N - 1, build(N1, L1).
        len([], N) :- N := 0.
        len([_|T], N) :- len(T, N1), N := N1 + 1.
        go(N, Len) :- build(N, L), len(L, Len).
    "#;
    let r = run(src, "go(5000, Len)");
    assert_eq!(r.bindings["Len"].to_string(), "5000");
}
