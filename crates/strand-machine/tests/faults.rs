//! Fault-injection layer: crashes, message faults, slowdowns, and the
//! timeout/ack builtins that make fault-tolerant protocols writable.

use strand_machine::{run_goal, EdgeFaults, FaultPlan, MachineConfig, RunStatus, TraceEvent};

/// Two servers in a chain: node 1 forwards a token to a worker on node 2
/// and waits for the reply. Crashing node 2 strands the waiter.
const CHAIN: &str = r#"
    go(R) :- work(R)@2, wait(R).
    work(R) :- R := done.
    wait(R) :- R == done | true.
"#;

#[test]
fn crash_strands_waiters_as_partitioned() {
    let cfg = MachineConfig::with_nodes(2).faults(FaultPlan::default().crash(2, 0));
    let r = run_goal(CHAIN, "go(R)", cfg).expect("runs");
    match &r.report.status {
        RunStatus::Partitioned {
            suspended,
            crashed_nodes,
            ..
        } => {
            assert!(*suspended >= 1, "wait/1 should be stranded");
            assert_eq!(crashed_nodes, &vec![2]);
        }
        other => panic!("expected Partitioned, got {other:?}"),
    }
    assert_eq!(r.report.metrics.nodes_crashed, 1);
    // The spawn toward the dead node is lost, and counted.
    assert!(r.report.metrics.msgs_dropped >= 1);
}

#[test]
fn crash_records_dead_goals_and_trace() {
    // Crash after the worker arrives but (latency 10) before it reduces.
    let mut cfg = MachineConfig::with_nodes(2).faults(FaultPlan::default().crash(2, 10));
    cfg.record_trace = true;
    let r = run_goal(CHAIN, "go(R)", cfg).expect("runs");
    assert!(matches!(r.report.status, RunStatus::Partitioned { .. }));
    assert!(
        !r.report.dead_goals.is_empty(),
        "queued worker should be snapshotted"
    );
    assert!(r
        .report
        .trace
        .iter()
        .any(|e| matches!(e, TraceEvent::Crash { .. })));
}

#[test]
fn crash_on_idle_machine_does_not_hang() {
    // The crash time is far beyond the program's end; the run must still
    // terminate (crashes fire against the event horizon, not real events).
    let cfg = MachineConfig::with_nodes(2).faults(FaultPlan::default().crash(2, 1_000_000));
    let r = run_goal("go.", "go", cfg).expect("runs");
    assert_eq!(r.report.status, RunStatus::Completed);
}

#[test]
fn certain_drop_loses_remote_spawn() {
    let cfg = MachineConfig::with_nodes(2).faults(FaultPlan::default().drop_prob(1.0).seed(1));
    let r = run_goal("go :- ping@2. ping :- print(pong).", "go", cfg).expect("runs");
    assert_eq!(r.report.status, RunStatus::Completed);
    assert_eq!(r.report.metrics.msgs_dropped, 1);
    assert!(r.report.output.is_empty(), "pong must not print");
}

#[test]
fn certain_duplication_doubles_remote_spawn() {
    let cfg = MachineConfig::with_nodes(2).faults(FaultPlan::default().dup_prob(1.0).seed(1));
    let r = run_goal("go :- ping@2. ping :- print(pong).", "go", cfg).expect("runs");
    assert_eq!(r.report.status, RunStatus::Completed);
    assert_eq!(r.report.metrics.msgs_duplicated, 1);
    assert_eq!(r.report.output, vec!["pong", "pong"]);
}

#[test]
fn delay_fault_stretches_makespan() {
    let quiet = run_goal("go :- ping@2. ping.", "go", MachineConfig::with_nodes(2)).expect("runs");
    let cfg = MachineConfig::with_nodes(2).faults(FaultPlan::default().delay(1.0, 500).seed(1));
    let slow = run_goal("go :- ping@2. ping.", "go", cfg).expect("runs");
    assert_eq!(slow.report.metrics.msgs_delayed, 1);
    assert!(
        slow.report.metrics.makespan >= quiet.report.metrics.makespan + 500,
        "delay must show up in the makespan: {} vs {}",
        slow.report.metrics.makespan,
        quiet.report.metrics.makespan
    );
}

#[test]
fn edge_override_shields_one_link() {
    // Default drops everything, but the 1→2 edge is overridden quiet.
    let plan = FaultPlan::default()
        .drop_prob(1.0)
        .edge(1, 2, EdgeFaults::default())
        .seed(3);
    let cfg = MachineConfig::with_nodes(3).faults(plan);
    let src = "go :- ping@2, ping@3. ping :- print(pong).";
    let r = run_goal(src, "go", cfg).expect("runs");
    assert_eq!(r.report.output, vec!["pong"]);
    assert_eq!(r.report.metrics.msgs_dropped, 1);
}

#[test]
fn slowdown_inflates_straggler_busy_time() {
    let src = "go :- spin(20)@1, spin(20)@2.
               spin(0). spin(N) :- N > 0 | N1 := N - 1, spin(N1).";
    let fair = run_goal(src, "go", MachineConfig::with_nodes(2)).expect("runs");
    let cfg = MachineConfig::with_nodes(2).faults(FaultPlan::default().slowdown(2, 8));
    let skewed = run_goal(src, "go", cfg).expect("runs");
    assert_eq!(
        fair.report.metrics.busy[0], skewed.report.metrics.busy[0],
        "node 1 unaffected"
    );
    assert!(
        skewed.report.metrics.busy[1] >= 8 * fair.report.metrics.busy[1],
        "node 2 should run 8x slower: {} vs {}",
        skewed.report.metrics.busy[1],
        fair.report.metrics.busy[1]
    );
}

#[test]
fn faults_are_deterministic_and_seed_sensitive() {
    let src = "go :- fan(40). fan(0). fan(N) :- N > 0 | ping@2, N1 := N - 1, fan(N1). ping.";
    let run = |seed: u64| {
        let cfg =
            MachineConfig::with_nodes(2).faults(FaultPlan::default().drop_prob(0.5).seed(seed));
        run_goal(src, "go", cfg).expect("runs").report.metrics
    };
    let (a, b, c) = (run(7), run(7), run(8));
    assert_eq!(a.msgs_dropped, b.msgs_dropped);
    assert_eq!(a.makespan, b.makespan);
    assert_eq!(a.total_reductions, b.total_reductions);
    assert!(a.msgs_dropped > 0, "p=0.5 over 40 sends drops something");
    assert_ne!(
        (a.msgs_dropped, a.makespan),
        (c.msgs_dropped, c.makespan),
        "different fault seeds should diverge (40 coin flips)"
    );
}

#[test]
fn empty_plan_changes_nothing() {
    // A default (empty) plan must leave runs bit-identical to the plain
    // machine: quiet edges consume no fault RNG.
    let src = "go(X) :- draw(X)@2. draw(X) :- rand_num(1000, X).";
    let plain = run_goal(src, "go(X)", MachineConfig::with_nodes(2)).expect("runs");
    let cfg = MachineConfig::with_nodes(2).faults(FaultPlan::default().seed(99));
    let faulted = run_goal(src, "go(X)", cfg).expect("runs");
    assert_eq!(plain.bindings["X"], faulted.bindings["X"]);
    assert_eq!(
        plain.report.metrics.makespan,
        faulted.report.metrics.makespan
    );
}

// ---- timeout / ack / unique_id builtins -------------------------------

#[test]
fn after_unless_fires_when_uncancelled() {
    let r = run_goal(
        "go(T) :- after_unless(_C, 50, T).",
        "go(T)",
        MachineConfig::default(),
    )
    .expect("runs");
    assert_eq!(r.bindings["T"].to_string(), "timeout");
    assert!(r.report.metrics.makespan >= 50);
}

#[test]
fn cancelled_timer_evaporates_without_cost() {
    // Binding the cancel cell defuses the timer: T stays unbound and —
    // crucially — the pending timer must not stretch the makespan.
    let r = run_goal(
        "go(C, T) :- after_unless(C, 5000, T), C := done.",
        "go(C, T)",
        MachineConfig::default(),
    )
    .expect("runs");
    assert_eq!(r.report.status, RunStatus::Completed);
    assert!(matches!(r.bindings["T"], strand_core::Term::Var(_)));
    assert!(
        r.report.metrics.makespan < 5000,
        "cancelled timer stretched the clock to {}",
        r.report.metrics.makespan
    );
}

#[test]
fn ack_is_idempotent() {
    let r = run_goal(
        "go(A) :- ack(A), ack(A), ack(A).",
        "go(A)",
        MachineConfig::default(),
    )
    .expect("runs");
    assert_eq!(r.report.status, RunStatus::Completed);
    assert_eq!(r.bindings["A"].to_string(), "ok");
}

#[test]
fn unique_ids_are_distinct() {
    let r = run_goal(
        "go(A, B, C) :- unique_id(A), unique_id(B), unique_id(C).",
        "go(A, B, C)",
        MachineConfig::default(),
    )
    .expect("runs");
    let (a, b, c) = (
        r.bindings["A"].to_string(),
        r.bindings["B"].to_string(),
        r.bindings["C"].to_string(),
    );
    assert_ne!(a, b);
    assert_ne!(b, c);
    assert_ne!(a, c);
}

// ---- graceful budget exhaustion ---------------------------------------

#[test]
fn budget_exhaustion_truncates_when_not_fail_fast() {
    let cfg = MachineConfig {
        max_reductions: 100,
        fail_fast: false,
        ..Default::default()
    };
    let src = "go :- loop(0). loop(N) :- N >= 0 | print(N), N1 := N + 1, loop(N1).";
    let r = run_goal(src, "go", cfg).expect("collecting run still returns");
    match r.report.status {
        RunStatus::Truncated { reductions } => assert!(reductions >= 100),
        ref other => panic!("expected Truncated, got {other:?}"),
    }
    assert!(!r.report.output.is_empty(), "partial output survives");
    assert!(!r.report.errors.is_empty(), "budget error is collected");
}

#[test]
fn budget_exhaustion_still_errors_when_fail_fast() {
    let cfg = MachineConfig {
        max_reductions: 100,
        ..Default::default()
    };
    let src = "go :- loop(0). loop(N) :- N >= 0 | N1 := N + 1, loop(N1).";
    assert!(run_goal(src, "go", cfg).is_err());
}

// ---- diagnostics: error collection and quiescence reporting -----------

#[test]
fn independent_errors_are_all_collected_with_timestamps() {
    // Two unrelated assignment conflicts plus healthy work: with fail_fast
    // off, both errors land in the report and the rest still completes.
    let src = r#"
        go(X) :- clash(1), clash(3), fine(X).
        clash(N) :- N := 2.
        fine(X) :- X := ok.
    "#;
    let cfg = MachineConfig {
        fail_fast: false,
        ..Default::default()
    };
    let r = run_goal(src, "go(X)", cfg).expect("collecting run returns");
    assert_eq!(r.report.errors.len(), 2, "{:?}", r.report.errors);
    assert_eq!(r.report.status, RunStatus::Completed);
    assert_eq!(r.bindings["X"].to_string(), "ok");
    // Errors carry the virtual time they occurred at, in order.
    let times: Vec<_> = r.report.errors.iter().map(|(t, _)| *t).collect();
    let mut sorted = times.clone();
    sorted.sort();
    assert_eq!(times, sorted, "errors recorded in time order");
}

#[test]
fn quiescent_report_counts_all_but_snapshots_at_most_16() {
    // Spawn 20 goals that each suspend forever on an unbound flag. The
    // status reports the true count; the diagnostic snapshot is capped.
    let src = r#"
        go(N) :- N > 0 | hang(N, _F), N1 := N - 1, go(N1).
        go(0).
        hang(N, F) :- F == never | print(N).
    "#;
    let r = run_goal(src, "go(20)", MachineConfig::default()).expect("runs");
    match r.report.status {
        RunStatus::Quiescent { suspended } => assert_eq!(suspended, 20),
        ref other => panic!("expected Quiescent, got {other:?}"),
    }
    assert_eq!(
        r.report.suspended_goals.len(),
        16,
        "snapshot capped at 16 of 20"
    );
    // Snapshots are resolved terms naming the stuck procedure — usable
    // diagnostics, not raw store indices.
    for g in &r.report.suspended_goals {
        assert!(g.to_string().starts_with("hang("), "{g}");
    }
}

#[test]
fn small_quiescent_report_snapshots_everything() {
    let src = "go :- hang(_F). hang(F) :- F == never | true.";
    let r = run_goal(src, "go", MachineConfig::default()).expect("runs");
    assert_eq!(r.report.status, RunStatus::Quiescent { suspended: 1 });
    assert_eq!(r.report.suspended_goals.len(), 1);
}
