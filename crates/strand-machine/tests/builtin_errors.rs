//! Error-path tests for machine builtins: every misuse is reported as a
//! diagnosable runtime error, never a panic or a silent wrong answer.

use strand_core::StrandError;
use strand_machine::{run_goal, MachineConfig};

fn expect_err(src: &str, goal: &str) -> StrandError {
    run_goal(src, goal, MachineConfig::default()).expect_err("program should fail")
}

#[test]
fn distribute_index_out_of_range() {
    let src = "go :- make_tuple(2, T), distribute(5, T, msg).";
    let e = expect_err(src, "go");
    assert!(e.to_string().contains("out of"), "{e}");
}

#[test]
fn distribute_on_non_port_slot() {
    let src = "go :- make_tuple(2, T), put_arg(1, T, 42), distribute(1, T, msg).";
    let e = expect_err(src, "go");
    assert!(e.to_string().contains("not a port"), "{e}");
}

#[test]
fn put_arg_double_fill() {
    let src = "go :- make_tuple(2, T), put_arg(1, T, a), put_arg(1, T, b).";
    let e = expect_err(src, "go");
    assert!(e.to_string().contains("already filled"), "{e}");
}

#[test]
fn arg_out_of_range() {
    let src = "go(V) :- make_tuple(2, T), arg(3, T, V).";
    let e = expect_err(src, "go(V)");
    assert!(e.to_string().contains("out of range"), "{e}");
}

#[test]
fn arg_on_non_tuple() {
    let src = "go(V) :- arg(1, [a, b], V).";
    let e = expect_err(src, "go(V)");
    assert!(e.to_string().contains("tuple"), "{e}");
}

#[test]
fn rand_num_needs_positive_bound() {
    let e = expect_err("go(R) :- rand_num(0, R).", "go(R)");
    assert!(e.to_string().contains("bad bound"), "{e}");
    let e = expect_err("go(R) :- rand_num(-3, R).", "go(R)");
    assert!(e.to_string().contains("bad bound"), "{e}");
}

#[test]
fn length_of_non_collection() {
    let e = expect_err("go(N) :- length(7, N).", "go(N)");
    assert!(e.to_string().contains("neither tuple nor list"), "{e}");
}

#[test]
fn make_tuple_rejects_nonpositive_arity() {
    let e = expect_err("go(T) :- make_tuple(0, T).", "go(T)");
    assert!(e.to_string().contains("bad arity"), "{e}");
}

#[test]
fn open_port_requires_unbound_args() {
    let e = expect_err("go :- open_port(5, S), use(S). use(_).", "go");
    assert!(e.to_string().contains("unbound"), "{e}");
}

#[test]
fn gauge_requires_atom_and_int() {
    let e = expect_err("go :- gauge(7, 3).", "go");
    assert!(e.to_string().contains("atom name"), "{e}");
}

#[test]
fn division_by_zero_reported() {
    let e = expect_err("go(V) :- V := 1 / 0.", "go(V)");
    assert!(matches!(e, StrandError::DivideByZero { .. }), "{e}");
}

#[test]
fn assignment_to_bound_reports_both_values() {
    let e = expect_err("go :- x(V), V := 2. x(V) :- V := 1.", "go");
    match e {
        StrandError::DoubleAssign { .. } => {}
        other => panic!("wrong error: {other}"),
    }
}

#[test]
fn guard_type_error_surfaces() {
    // An unknown guard test is a programmer error, reported eagerly.
    let e = expect_err("f(X) :- frobnicate(X) | g(X). g(_).", "f(1)");
    assert!(e.to_string().contains("frobnicate"), "{e}");
}

#[test]
fn errors_do_not_corrupt_collected_mode() {
    // With fail_fast off, multiple independent errors are all collected.
    let src = r#"
        go :- bad1, bad2, fine(X), use(X).
        bad1 :- make_tuple(0, _).
        bad2 :- length(7, _).
        fine(X) :- X := ok.
        use(_).
    "#;
    let cfg = MachineConfig {
        fail_fast: false,
        ..Default::default()
    };
    let r = run_goal(src, "go", cfg).unwrap();
    assert_eq!(r.report.errors.len(), 2, "{:?}", r.report.errors);
}
